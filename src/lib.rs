//! Workspace umbrella crate: re-exports for examples and integration tests.
pub use hhpim;
