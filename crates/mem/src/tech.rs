//! Memory and PE technology parameters (Tables III and V of the paper).
//!
//! The paper obtains these numbers from NVSim at a 45 nm node, with the
//! HP cluster at **1.2 V** and the LP cluster at **0.8 V** (the LP-MRAM
//! point follows fabricated STT-MRAM chip specs). We embed the published
//! values verbatim and provide an NVSim-like interpolation model for
//! other supply voltages (used only by sweep ablations).

use crate::energy::{Energy, Power};
use hhpim_sim::SimDuration;
use std::fmt;

/// Memory technology family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MemKind {
    /// Volatile SRAM: fast, high leakage, loses contents when gated.
    Sram,
    /// Non-volatile STT-MRAM: slower/costlier access, tiny leakage,
    /// retains contents when power-gated.
    Mram,
}

impl MemKind {
    /// Whether the technology retains data without power.
    pub const fn is_non_volatile(self) -> bool {
        matches!(self, MemKind::Mram)
    }
}

impl fmt::Display for MemKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemKind::Sram => write!(f, "SRAM"),
            MemKind::Mram => write!(f, "MRAM"),
        }
    }
}

/// Cluster voltage/performance class (the two halves of HH-PIM).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ClusterClass {
    /// High-performance cluster (Vdd = 1.2 V).
    HighPerformance,
    /// Low-power cluster (Vdd = 0.8 V).
    LowPower,
}

impl ClusterClass {
    /// Supply voltage of this class, in volts.
    pub const fn vdd(self) -> f64 {
        match self {
            ClusterClass::HighPerformance => 1.2,
            ClusterClass::LowPower => 0.8,
        }
    }

    /// Short label used in reports ("HP"/"LP").
    pub const fn label(self) -> &'static str {
        match self {
            ClusterClass::HighPerformance => "HP",
            ClusterClass::LowPower => "LP",
        }
    }

    /// Both classes, HP first (matches the paper's table ordering).
    pub const ALL: [ClusterClass; 2] = [ClusterClass::HighPerformance, ClusterClass::LowPower];
}

impl fmt::Display for ClusterClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// Read/write access latencies (Table III).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessTiming {
    /// Read latency.
    pub read: SimDuration,
    /// Write latency.
    pub write: SimDuration,
}

impl AccessTiming {
    /// Creates timings from fractional nanoseconds.
    pub fn from_ns(read: f64, write: f64) -> Self {
        AccessTiming {
            read: SimDuration::from_ns_f64(read),
            write: SimDuration::from_ns_f64(write),
        }
    }
}

/// Dynamic and static power (Table V).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerProfile {
    /// Power drawn during a read access.
    pub dynamic_read: Power,
    /// Power drawn during a write access.
    pub dynamic_write: Power,
    /// Leakage power while powered on (per 64 kB module bank).
    pub static_power: Power,
}

impl PowerProfile {
    /// Creates a profile from milliwatt values.
    pub fn from_mw(dynamic_read: f64, dynamic_write: f64, static_power: f64) -> Self {
        PowerProfile {
            dynamic_read: Power::from_mw(dynamic_read),
            dynamic_write: Power::from_mw(dynamic_write),
            static_power: Power::from_mw(static_power),
        }
    }
}

/// Reference capacity for which [`PowerProfile::static_power`] is quoted:
/// the paper's PIM modules each hold 64 kB per memory type.
pub const REFERENCE_BANK_BYTES: usize = 64 * 1024;

/// A complete memory technology operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryTech {
    /// Technology family.
    pub kind: MemKind,
    /// Cluster class (fixes the supply voltage).
    pub class: ClusterClass,
    /// Access latencies.
    pub timing: AccessTiming,
    /// Power profile (static power per 64 kB).
    pub power: PowerProfile,
}

impl MemoryTech {
    /// Energy of a single read access (dynamic only).
    pub fn read_energy(&self) -> Energy {
        self.power.dynamic_read * self.timing.read
    }

    /// Energy of a single write access (dynamic only).
    pub fn write_energy(&self) -> Energy {
        self.power.dynamic_write * self.timing.write
    }

    /// Leakage power for a bank of `bytes` capacity, scaled linearly from
    /// the 64 kB reference of Table V.
    pub fn static_power_for(&self, bytes: usize) -> Power {
        self.power.static_power * (bytes as f64 / REFERENCE_BANK_BYTES as f64)
    }

    /// Display name such as `"HP-MRAM"`.
    pub fn name(&self) -> String {
        format!("{}-{}", self.class.label(), self.kind)
    }
}

/// Processing-element (PE) operating point (Tables III and V).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PeTech {
    /// Cluster class.
    pub class: ClusterClass,
    /// Latency of one MAC operation.
    pub mac_latency: SimDuration,
    /// Power drawn while computing.
    pub dynamic: Power,
    /// Leakage power while powered on.
    pub static_power: Power,
}

impl PeTech {
    /// Energy of a single MAC operation (dynamic only).
    pub fn mac_energy(&self) -> Energy {
        self.dynamic * self.mac_latency
    }
}

/// HP-cluster SRAM at 1.2 V (Tables III & V).
pub fn hp_sram() -> MemoryTech {
    MemoryTech {
        kind: MemKind::Sram,
        class: ClusterClass::HighPerformance,
        timing: AccessTiming::from_ns(1.12, 1.12),
        power: PowerProfile::from_mw(508.93, 500.0, 23.29),
    }
}

/// HP-cluster STT-MRAM at 1.2 V (Tables III & V).
pub fn hp_mram() -> MemoryTech {
    MemoryTech {
        kind: MemKind::Mram,
        class: ClusterClass::HighPerformance,
        timing: AccessTiming::from_ns(2.62, 11.81),
        power: PowerProfile::from_mw(428.48, 133.78, 2.98),
    }
}

/// LP-cluster SRAM at 0.8 V (Tables III & V).
pub fn lp_sram() -> MemoryTech {
    MemoryTech {
        kind: MemKind::Sram,
        class: ClusterClass::LowPower,
        timing: AccessTiming::from_ns(1.41, 1.41),
        power: PowerProfile::from_mw(177.3, 177.3, 5.45),
    }
}

/// LP-cluster STT-MRAM at 0.8 V (Tables III & V).
pub fn lp_mram() -> MemoryTech {
    MemoryTech {
        kind: MemKind::Mram,
        class: ClusterClass::LowPower,
        timing: AccessTiming::from_ns(2.96, 14.65),
        power: PowerProfile::from_mw(179.05, 47.78, 0.84),
    }
}

/// HP-cluster PE at 1.2 V (Tables III & V).
pub fn hp_pe() -> PeTech {
    PeTech {
        class: ClusterClass::HighPerformance,
        mac_latency: SimDuration::from_ns_f64(5.52),
        dynamic: Power::from_mw(0.9),
        static_power: Power::from_mw(0.48),
    }
}

/// LP-cluster PE at 0.8 V (Tables III & V).
pub fn lp_pe() -> PeTech {
    PeTech {
        class: ClusterClass::LowPower,
        mac_latency: SimDuration::from_ns_f64(10.68),
        dynamic: Power::from_mw(0.51),
        static_power: Power::from_mw(0.25),
    }
}

/// Looks up the published technology for a `(class, kind)` pair.
pub fn tech_for(class: ClusterClass, kind: MemKind) -> MemoryTech {
    match (class, kind) {
        (ClusterClass::HighPerformance, MemKind::Sram) => hp_sram(),
        (ClusterClass::HighPerformance, MemKind::Mram) => hp_mram(),
        (ClusterClass::LowPower, MemKind::Sram) => lp_sram(),
        (ClusterClass::LowPower, MemKind::Mram) => lp_mram(),
    }
}

/// Looks up the published PE parameters for a cluster class.
pub fn pe_for(class: ClusterClass) -> PeTech {
    match class {
        ClusterClass::HighPerformance => hp_pe(),
        ClusterClass::LowPower => lp_pe(),
    }
}

/// NVSim-like voltage interpolation between the two published operating
/// points (1.2 V and 0.8 V).
///
/// The paper only evaluates the two voltages above; this model supports
/// *sweep ablations* at other supply points. Latency and power are
/// interpolated log-linearly in Vdd between the published HP and LP
/// values of the same memory kind, which reproduces the published points
/// exactly and captures the qualitative trend (lower Vdd → slower,
/// lower-power) in between.
///
/// # Panics
///
/// Panics if `vdd` is outside `[0.6, 1.4]` (far outside the validity of
/// any interpolation against the published anchors).
///
/// # Examples
///
/// ```
/// use hhpim_mem::{tech_at_vdd, MemKind};
/// let mid = tech_at_vdd(MemKind::Sram, 1.0);
/// let hp = hhpim_mem::hp_sram();
/// let lp = hhpim_mem::lp_sram();
/// assert!(mid.timing.read > hp.timing.read);
/// assert!(mid.timing.read < lp.timing.read);
/// ```
pub fn tech_at_vdd(kind: MemKind, vdd: f64) -> MemoryTech {
    assert!(
        (0.6..=1.4).contains(&vdd),
        "vdd {vdd} V outside supported interpolation range [0.6, 1.4]"
    );
    let (hi, lo) = match kind {
        MemKind::Sram => (hp_sram(), lp_sram()),
        MemKind::Mram => (hp_mram(), lp_mram()),
    };
    let (v_hi, v_lo) = (
        ClusterClass::HighPerformance.vdd(),
        ClusterClass::LowPower.vdd(),
    );
    // Log-linear interpolation coordinate in vdd.
    let t = (vdd - v_lo) / (v_hi - v_lo);
    let lerp_log = |a: f64, b: f64| -> f64 {
        // a at v_lo, b at v_hi; both strictly positive for all our params.
        (a.ln() + t * (b.ln() - a.ln())).exp()
    };
    let class = if vdd >= 1.0 {
        ClusterClass::HighPerformance
    } else {
        ClusterClass::LowPower
    };
    MemoryTech {
        kind,
        class,
        timing: AccessTiming::from_ns(
            lerp_log(lo.timing.read.as_ns_f64(), hi.timing.read.as_ns_f64()),
            lerp_log(lo.timing.write.as_ns_f64(), hi.timing.write.as_ns_f64()),
        ),
        power: PowerProfile::from_mw(
            lerp_log(lo.power.dynamic_read.as_mw(), hi.power.dynamic_read.as_mw()),
            lerp_log(
                lo.power.dynamic_write.as_mw(),
                hi.power.dynamic_write.as_mw(),
            ),
            lerp_log(lo.power.static_power.as_mw(), hi.power.static_power.as_mw()),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iii_latencies() {
        assert_eq!(hp_mram().timing.read, SimDuration::from_ns_f64(2.62));
        assert_eq!(hp_mram().timing.write, SimDuration::from_ns_f64(11.81));
        assert_eq!(hp_sram().timing.read, SimDuration::from_ns_f64(1.12));
        assert_eq!(lp_mram().timing.read, SimDuration::from_ns_f64(2.96));
        assert_eq!(lp_mram().timing.write, SimDuration::from_ns_f64(14.65));
        assert_eq!(lp_sram().timing.read, SimDuration::from_ns_f64(1.41));
        assert_eq!(hp_pe().mac_latency, SimDuration::from_ns_f64(5.52));
        assert_eq!(lp_pe().mac_latency, SimDuration::from_ns_f64(10.68));
    }

    #[test]
    fn table_v_powers() {
        assert_eq!(hp_mram().power.dynamic_read.as_mw(), 428.48);
        assert_eq!(hp_mram().power.dynamic_write.as_mw(), 133.78);
        assert_eq!(hp_mram().power.static_power.as_mw(), 2.98);
        assert_eq!(hp_sram().power.static_power.as_mw(), 23.29);
        assert_eq!(lp_sram().power.static_power.as_mw(), 5.45);
        assert_eq!(lp_mram().power.static_power.as_mw(), 0.84);
        assert_eq!(hp_pe().dynamic.as_mw(), 0.9);
        assert_eq!(lp_pe().static_power.as_mw(), 0.25);
    }

    #[test]
    fn access_energy_ordering_matches_paper_narrative() {
        // Dynamic read energy: LP-SRAM < LP-MRAM < HP-SRAM < HP-MRAM.
        let e = |t: MemoryTech| t.read_energy().as_pj();
        assert!(e(lp_sram()) < e(lp_mram()));
        assert!(e(lp_mram()) < e(hp_sram()));
        assert!(e(hp_sram()) < e(hp_mram()));
        // Static power: MRAM ≪ SRAM in both classes.
        assert!(lp_mram().power.static_power < lp_sram().power.static_power);
        assert!(hp_mram().power.static_power < hp_sram().power.static_power);
    }

    #[test]
    fn static_power_scales_with_capacity() {
        let t = hp_sram();
        let half = t.static_power_for(32 * 1024);
        assert!((half.as_mw() - 23.29 / 2.0).abs() < 1e-9);
        let double = t.static_power_for(128 * 1024);
        assert!((double.as_mw() - 46.58).abs() < 1e-9);
    }

    #[test]
    fn nonvolatility_flags() {
        assert!(MemKind::Mram.is_non_volatile());
        assert!(!MemKind::Sram.is_non_volatile());
    }

    #[test]
    fn names() {
        assert_eq!(hp_mram().name(), "HP-MRAM");
        assert_eq!(lp_sram().name(), "LP-SRAM");
    }

    #[test]
    fn voltage_interpolation_hits_anchors() {
        for kind in [MemKind::Sram, MemKind::Mram] {
            let hi = tech_at_vdd(kind, 1.2);
            let lo = tech_at_vdd(kind, 0.8);
            let (ref_hi, ref_lo) = match kind {
                MemKind::Sram => (hp_sram(), lp_sram()),
                MemKind::Mram => (hp_mram(), lp_mram()),
            };
            assert_eq!(hi.timing.read, ref_hi.timing.read);
            assert_eq!(lo.timing.read, ref_lo.timing.read);
            assert!(
                (hi.power.static_power.as_mw() - ref_hi.power.static_power.as_mw()).abs() < 1e-9
            );
            assert!(
                (lo.power.static_power.as_mw() - ref_lo.power.static_power.as_mw()).abs() < 1e-9
            );
        }
    }

    #[test]
    fn voltage_interpolation_monotone_latency() {
        let mut last = tech_at_vdd(MemKind::Mram, 1.2).timing.read;
        for v in [1.1, 1.0, 0.9, 0.8] {
            let cur = tech_at_vdd(MemKind::Mram, v).timing.read;
            assert!(cur >= last, "latency must grow as vdd drops");
            last = cur;
        }
    }

    #[test]
    #[should_panic(expected = "outside supported")]
    fn voltage_out_of_range_panics() {
        tech_at_vdd(MemKind::Sram, 0.3);
    }

    #[test]
    fn tech_for_lookup_consistent() {
        for class in ClusterClass::ALL {
            for kind in [MemKind::Sram, MemKind::Mram] {
                let t = tech_for(class, kind);
                assert_eq!(t.class, class);
                assert_eq!(t.kind, kind);
            }
        }
    }

    #[test]
    fn cluster_class_metadata() {
        assert_eq!(ClusterClass::HighPerformance.vdd(), 1.2);
        assert_eq!(ClusterClass::LowPower.vdd(), 0.8);
        assert_eq!(ClusterClass::HighPerformance.to_string(), "HP");
    }
}
