//! # hhpim-mem — memory technology models for the HH-PIM reproduction
//!
//! The paper's HH-PIM modules pair **STT-MRAM** and **SRAM** banks whose
//! latencies (Table III) and powers (Table V) come from NVSim at 45 nm,
//! with the HP cluster at 1.2 V and the LP cluster at 0.8 V. This crate
//! embeds those published operating points and provides:
//!
//! * [`Energy`] / [`Power`] — unit-safe quantities where
//!   `Power * SimDuration = Energy` (mW × ns = pJ),
//! * [`MemoryTech`] / [`PeTech`] — the four memory operating points
//!   (HP/LP × SRAM/MRAM) plus the two PE classes, and an NVSim-like
//!   voltage interpolation ([`tech_at_vdd`]) for sweep ablations,
//! * [`MemoryBank`] — a cycle-level bank with serialized port, occupancy
//!   tracking, **power gating** (volatility-aware) and exact static
//!   energy accrual,
//! * [`EnergyLedger`] — deterministic per-category energy accounting.
//!
//! # Examples
//!
//! ```
//! use hhpim_mem::{hp_sram, lp_mram};
//!
//! // The core trade-off the paper exploits: SRAM is fast but leaky,
//! // MRAM is slower but nearly free to keep around.
//! assert!(hp_sram().timing.read < lp_mram().timing.read);
//! assert!(lp_mram().power.static_power < hp_sram().power.static_power);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bank;
pub mod energy;
pub mod ledger;
pub mod tech;

pub use bank::{Access, AccessKind, BankError, GateParams, GateState, MemoryBank, ResolvedAccess};
pub use energy::{Energy, Power};
pub use ledger::EnergyLedger;
pub use tech::{
    hp_mram, hp_pe, hp_sram, lp_mram, lp_pe, lp_sram, pe_for, tech_at_vdd, tech_for, AccessTiming,
    ClusterClass, MemKind, MemoryTech, PeTech, PowerProfile, REFERENCE_BANK_BYTES,
};
