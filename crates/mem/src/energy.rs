//! Energy and power quantities.
//!
//! The unit choices make the paper's numbers fall out naturally:
//! power in **milliwatts** (Table V) times latency in **nanoseconds**
//! (Table III) yields energy in **picojoules** with no conversion factors.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Sub};
use hhpim_sim::SimDuration;

/// An amount of energy, stored in picojoules.
///
/// # Examples
///
/// ```
/// use hhpim_mem::{Energy, Power};
/// use hhpim_sim::SimDuration;
/// // An HP-SRAM read: 508.93 mW for 1.12 ns ≈ 570 pJ.
/// let e = Power::from_mw(508.93) * SimDuration::from_ns_f64(1.12);
/// assert!((e.as_pj() - 570.0).abs() < 0.1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Energy(f64);

impl Energy {
    /// Zero energy.
    pub const ZERO: Energy = Energy(0.0);

    /// Creates an energy from picojoules.
    ///
    /// # Panics
    ///
    /// Panics if `pj` is negative or not finite.
    pub fn from_pj(pj: f64) -> Self {
        assert!(
            pj.is_finite() && pj >= 0.0,
            "energy must be finite and non-negative"
        );
        Energy(pj)
    }

    /// Creates an energy from nanojoules.
    pub fn from_nj(nj: f64) -> Self {
        Self::from_pj(nj * 1e3)
    }

    /// Creates an energy from microjoules.
    pub fn from_uj(uj: f64) -> Self {
        Self::from_pj(uj * 1e6)
    }

    /// Creates an energy from millijoules.
    pub fn from_mj(mj: f64) -> Self {
        Self::from_pj(mj * 1e9)
    }

    /// Returns the energy in picojoules.
    pub fn as_pj(self) -> f64 {
        self.0
    }

    /// Returns the energy in nanojoules.
    pub fn as_nj(self) -> f64 {
        self.0 / 1e3
    }

    /// Returns the energy in microjoules.
    pub fn as_uj(self) -> f64 {
        self.0 / 1e6
    }

    /// Returns the energy in millijoules.
    pub fn as_mj(self) -> f64 {
        self.0 / 1e9
    }

    /// Returns the energy in joules.
    pub fn as_j(self) -> f64 {
        self.0 / 1e12
    }

    /// Saturating subtraction (clamps at zero).
    pub fn saturating_sub(self, rhs: Energy) -> Energy {
        Energy((self.0 - rhs.0).max(0.0))
    }
}

impl Add for Energy {
    type Output = Energy;
    fn add(self, rhs: Energy) -> Energy {
        Energy(self.0 + rhs.0)
    }
}

impl AddAssign for Energy {
    fn add_assign(&mut self, rhs: Energy) {
        self.0 += rhs.0;
    }
}

impl Sub for Energy {
    type Output = Energy;
    /// # Panics
    ///
    /// Panics (in debug builds) if the result would be negative.
    fn sub(self, rhs: Energy) -> Energy {
        debug_assert!(self.0 >= rhs.0, "energy subtraction went negative");
        Energy(self.0 - rhs.0)
    }
}

impl Mul<f64> for Energy {
    type Output = Energy;
    fn mul(self, rhs: f64) -> Energy {
        Energy(self.0 * rhs)
    }
}

impl Mul<u64> for Energy {
    type Output = Energy;
    fn mul(self, rhs: u64) -> Energy {
        Energy(self.0 * rhs as f64)
    }
}

impl Div<f64> for Energy {
    type Output = Energy;
    fn div(self, rhs: f64) -> Energy {
        Energy(self.0 / rhs)
    }
}

impl Div<Energy> for Energy {
    /// Dimensionless ratio of two energies.
    type Output = f64;
    fn div(self, rhs: Energy) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for Energy {
    fn sum<I: Iterator<Item = Energy>>(iter: I) -> Self {
        iter.fold(Energy::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Energy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let pj = self.0;
        if pj >= 1e9 {
            write!(f, "{:.3}mJ", pj / 1e9)
        } else if pj >= 1e6 {
            write!(f, "{:.3}uJ", pj / 1e6)
        } else if pj >= 1e3 {
            write!(f, "{:.3}nJ", pj / 1e3)
        } else {
            write!(f, "{:.3}pJ", pj)
        }
    }
}

/// Electrical power, stored in milliwatts.
///
/// # Examples
///
/// ```
/// use hhpim_mem::Power;
/// let p = Power::from_mw(23.29);
/// assert!((p.as_w() - 0.02329).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Power(f64);

impl Power {
    /// Zero power.
    pub const ZERO: Power = Power(0.0);

    /// Creates a power from milliwatts.
    ///
    /// # Panics
    ///
    /// Panics if `mw` is negative or not finite.
    pub fn from_mw(mw: f64) -> Self {
        assert!(
            mw.is_finite() && mw >= 0.0,
            "power must be finite and non-negative"
        );
        Power(mw)
    }

    /// Creates a power from microwatts.
    pub fn from_uw(uw: f64) -> Self {
        Self::from_mw(uw / 1e3)
    }

    /// Creates a power from watts.
    pub fn from_w(w: f64) -> Self {
        Self::from_mw(w * 1e3)
    }

    /// Returns the power in milliwatts.
    pub fn as_mw(self) -> f64 {
        self.0
    }

    /// Returns the power in watts.
    pub fn as_w(self) -> f64 {
        self.0 / 1e3
    }
}

impl Add for Power {
    type Output = Power;
    fn add(self, rhs: Power) -> Power {
        Power(self.0 + rhs.0)
    }
}

impl AddAssign for Power {
    fn add_assign(&mut self, rhs: Power) {
        self.0 += rhs.0;
    }
}

impl Mul<f64> for Power {
    type Output = Power;
    fn mul(self, rhs: f64) -> Power {
        Power(self.0 * rhs)
    }
}

impl Mul<SimDuration> for Power {
    type Output = Energy;
    /// Energy = power × time (mW × ns = pJ).
    fn mul(self, rhs: SimDuration) -> Energy {
        Energy(self.0 * rhs.as_ns_f64())
    }
}

impl Sum for Power {
    fn sum<I: Iterator<Item = Power>>(iter: I) -> Self {
        iter.fold(Power::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Power {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1e3 {
            write!(f, "{:.3}W", self.0 / 1e3)
        } else if self.0 >= 1.0 {
            write!(f, "{:.3}mW", self.0)
        } else {
            write!(f, "{:.3}uW", self.0 * 1e3)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_times_time_is_energy() {
        // Table V / Table III spot-checks.
        let hp_mram_read = Power::from_mw(428.48) * SimDuration::from_ns_f64(2.62);
        assert!((hp_mram_read.as_pj() - 1122.6).abs() < 0.1);
        let lp_sram_read = Power::from_mw(177.3) * SimDuration::from_ns_f64(1.41);
        assert!((lp_sram_read.as_pj() - 250.0).abs() < 0.1);
    }

    #[test]
    fn energy_units_roundtrip() {
        let e = Energy::from_mj(1.5);
        assert!((e.as_uj() - 1500.0).abs() < 1e-9);
        assert!((e.as_j() - 1.5e-3).abs() < 1e-15);
        assert_eq!(Energy::from_nj(2.0).as_pj(), 2000.0);
        assert_eq!(Energy::from_uj(2.0).as_nj(), 2000.0);
    }

    #[test]
    fn energy_arithmetic() {
        let a = Energy::from_pj(10.0);
        let b = Energy::from_pj(4.0);
        assert_eq!((a + b).as_pj(), 14.0);
        assert_eq!((a - b).as_pj(), 6.0);
        assert_eq!((a * 2.0).as_pj(), 20.0);
        assert_eq!((a * 3u64).as_pj(), 30.0);
        assert_eq!((a / 2.0).as_pj(), 5.0);
        assert_eq!(a / b, 2.5);
        assert_eq!(b.saturating_sub(a), Energy::ZERO);
    }

    #[test]
    fn energy_sum() {
        let total: Energy = (1..=4).map(|i| Energy::from_pj(i as f64)).sum();
        assert_eq!(total.as_pj(), 10.0);
    }

    #[test]
    fn display_scales() {
        assert_eq!(Energy::from_pj(5.0).to_string(), "5.000pJ");
        assert_eq!(Energy::from_nj(5.0).to_string(), "5.000nJ");
        assert_eq!(Energy::from_mj(5.0).to_string(), "5.000mJ");
        assert_eq!(Power::from_mw(5.0).to_string(), "5.000mW");
        assert_eq!(Power::from_mw(0.5).to_string(), "500.000uW");
        assert_eq!(Power::from_w(5.0).to_string(), "5.000W");
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_energy() {
        Energy::from_pj(-1.0);
    }

    #[test]
    fn power_uw_constructor() {
        assert!((Power::from_uw(355.0).as_mw() - 0.355).abs() < 1e-12);
    }
}
