//! Cycle-level memory bank with a serialized port, occupancy tracking,
//! power gating and exact energy accrual.
//!
//! A bank models one memory instance inside a PIM module (e.g. the 64 kB
//! MRAM of an HP-PIM module). Key behaviours from the paper:
//!
//! * **Serialized port** — a module cannot read MRAM and SRAM operands
//!   truly in parallel; each bank serves one access at a time.
//! * **Power gating** — MRAM banks may be gated at any idle moment and
//!   retain contents; SRAM banks may only be gated when they hold no
//!   live data (volatile).
//! * **Static energy** — accrued continuously while powered on, scaled
//!   to the bank's capacity from the 64 kB reference of Table V.

use crate::energy::{Energy, Power};
use crate::tech::MemoryTech;
use hhpim_sim::{BusyResource, SimDuration, SimTime};
use std::fmt;

/// Power state of a bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateState {
    /// Powered and accessible; accrues static energy.
    On,
    /// Power-gated: no static energy, not accessible.
    Gated,
}

/// Wake-up cost parameters for leaving the gated state.
///
/// Defaults are conservative: one SRAM-read-scale latency and a small
/// fixed charge; the paper treats wake-up cost as negligible relative to
/// time-slice scales.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GateParams {
    /// Latency from `ungate` until the bank is accessible.
    pub wake_latency: SimDuration,
    /// Energy charged per wake-up.
    pub wake_energy: Energy,
}

impl Default for GateParams {
    fn default() -> Self {
        GateParams {
            wake_latency: SimDuration::from_ns(2),
            wake_energy: Energy::from_pj(50.0),
        }
    }
}

/// Kind of access issued to a bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Read words out of the bank.
    Read,
    /// Write words into the bank.
    Write,
}

/// Errors returned by bank operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BankError {
    /// The bank is power-gated and cannot serve accesses.
    Gated,
    /// An allocation would exceed the bank's capacity.
    CapacityExceeded {
        /// Bytes requested.
        requested: usize,
        /// Bytes still free.
        available: usize,
    },
    /// Gating a volatile bank that still holds live data would lose it.
    WouldLoseData {
        /// Live bytes that would be lost.
        live_bytes: usize,
    },
    /// Freeing more bytes than are live.
    Underflow,
}

impl fmt::Display for BankError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BankError::Gated => write!(f, "bank is power-gated"),
            BankError::CapacityExceeded {
                requested,
                available,
            } => {
                write!(
                    f,
                    "allocation of {requested} B exceeds {available} B available"
                )
            }
            BankError::WouldLoseData { live_bytes } => {
                write!(f, "gating volatile bank would lose {live_bytes} live bytes")
            }
            BankError::Underflow => write!(f, "freeing more bytes than are live"),
        }
    }
}

impl std::error::Error for BankError {}

/// Result of a completed access.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Access {
    /// Instant at which the data is available / committed.
    pub done_at: SimTime,
    /// Dynamic energy consumed by the access.
    pub energy: Energy,
}

/// Per-word access coefficients resolved from a bank's technology once,
/// at lowering time, so a timing-graph replay pays no per-access
/// technology lookups. Obtained from [`MemoryBank::resolve`] and spent
/// through [`MemoryBank::access_resolved`]; the two paths share the same
/// arithmetic, so a resolved replay is bit-identical to
/// [`MemoryBank::access`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResolvedAccess {
    /// The access kind these coefficients were resolved for.
    pub kind: AccessKind,
    /// Port service latency per word.
    pub latency: SimDuration,
    /// Dynamic energy per word.
    pub energy_per_word: Energy,
}

/// A single memory bank (see module docs).
///
/// # Examples
///
/// ```
/// use hhpim_mem::{MemoryBank, AccessKind};
/// use hhpim_sim::SimTime;
///
/// let mut bank = MemoryBank::new(hhpim_mem::hp_sram(), 64 * 1024);
/// bank.store(1024).unwrap();
/// let acc = bank.access(SimTime::ZERO, AccessKind::Read, 1).unwrap();
/// assert_eq!(acc.done_at.as_ps(), 1_120); // 1.12 ns HP-SRAM read
/// ```
#[derive(Debug, Clone)]
pub struct MemoryBank {
    tech: MemoryTech,
    capacity: usize,
    live_bytes: usize,
    port: BusyResource,
    state: GateState,
    gate: GateParams,
    last_accrual: SimTime,
    static_energy: Energy,
    dynamic_energy: Energy,
    wake_energy_total: Energy,
    reads: u64,
    writes: u64,
    wakeups: u64,
}

impl MemoryBank {
    /// Creates a powered-on, empty bank.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(tech: MemoryTech, capacity: usize) -> Self {
        assert!(capacity > 0, "bank capacity must be non-zero");
        MemoryBank {
            tech,
            capacity,
            live_bytes: 0,
            port: BusyResource::new(),
            state: GateState::On,
            gate: GateParams::default(),
            last_accrual: SimTime::ZERO,
            static_energy: Energy::ZERO,
            dynamic_energy: Energy::ZERO,
            wake_energy_total: Energy::ZERO,
            reads: 0,
            writes: 0,
            wakeups: 0,
        }
    }

    /// Overrides the wake-up cost parameters.
    pub fn with_gate_params(mut self, gate: GateParams) -> Self {
        self.gate = gate;
        self
    }

    /// The bank's technology.
    pub fn tech(&self) -> &MemoryTech {
        &self.tech
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Bytes currently holding live data.
    pub fn live_bytes(&self) -> usize {
        self.live_bytes
    }

    /// Free capacity in bytes.
    pub fn free_bytes(&self) -> usize {
        self.capacity - self.live_bytes
    }

    /// Current power state.
    pub fn state(&self) -> GateState {
        self.state
    }

    /// Leakage power at the current state (zero when gated).
    pub fn static_power(&self) -> Power {
        match self.state {
            GateState::On => self.tech.static_power_for(self.capacity),
            GateState::Gated => Power::ZERO,
        }
    }

    /// Accrued static energy up to the last [`Self::advance_to`] call.
    pub fn static_energy(&self) -> Energy {
        self.static_energy
    }

    /// Accumulated dynamic access energy.
    pub fn dynamic_energy(&self) -> Energy {
        self.dynamic_energy
    }

    /// Accumulated wake-up energy.
    pub fn wake_energy(&self) -> Energy {
        self.wake_energy_total
    }

    /// Total energy (static + dynamic + wake).
    pub fn total_energy(&self) -> Energy {
        self.static_energy + self.dynamic_energy + self.wake_energy_total
    }

    /// `(reads, writes, wakeups)` counters.
    pub fn counters(&self) -> (u64, u64, u64) {
        (self.reads, self.writes, self.wakeups)
    }

    /// Advances the static-energy accrual boundary to `now`.
    ///
    /// Must be called with monotonically non-decreasing times; earlier
    /// times are ignored.
    pub fn advance_to(&mut self, now: SimTime) {
        if now <= self.last_accrual {
            return;
        }
        if self.state == GateState::On {
            let dt = now.saturating_since(self.last_accrual);
            self.static_energy += self.tech.static_power_for(self.capacity) * dt;
        }
        self.last_accrual = now;
    }

    /// Marks `bytes` of the bank as holding live data.
    ///
    /// # Errors
    ///
    /// Returns [`BankError::CapacityExceeded`] if the bank is too full and
    /// [`BankError::Gated`] if the bank is gated.
    pub fn store(&mut self, bytes: usize) -> Result<(), BankError> {
        if self.state == GateState::Gated {
            return Err(BankError::Gated);
        }
        if bytes > self.free_bytes() {
            return Err(BankError::CapacityExceeded {
                requested: bytes,
                available: self.free_bytes(),
            });
        }
        self.live_bytes += bytes;
        Ok(())
    }

    /// Releases `bytes` of live data.
    ///
    /// # Errors
    ///
    /// Returns [`BankError::Underflow`] if more bytes are freed than live.
    pub fn free(&mut self, bytes: usize) -> Result<(), BankError> {
        if bytes > self.live_bytes {
            return Err(BankError::Underflow);
        }
        self.live_bytes -= bytes;
        Ok(())
    }

    /// Issues an access of `words` sequential words (one latency + one
    /// dynamic-energy quantum each, serialized on the bank port).
    ///
    /// # Errors
    ///
    /// Returns [`BankError::Gated`] if the bank is gated.
    pub fn access(
        &mut self,
        at: SimTime,
        kind: AccessKind,
        words: u64,
    ) -> Result<Access, BankError> {
        let resolved = self.resolve(kind);
        self.access_resolved(at, &resolved, words)
    }

    /// Resolves the per-word coefficients for `kind` from the bank's
    /// technology — done once at graph-lowering time so replay skips the
    /// per-access technology match.
    pub fn resolve(&self, kind: AccessKind) -> ResolvedAccess {
        let (latency, energy_per_word) = match kind {
            AccessKind::Read => (self.tech.timing.read, self.tech.read_energy()),
            AccessKind::Write => (self.tech.timing.write, self.tech.write_energy()),
        };
        ResolvedAccess {
            kind,
            latency,
            energy_per_word,
        }
    }

    /// [`MemoryBank::access`] with pre-resolved coefficients: identical
    /// gating check, port serialization, energy accrual and counters,
    /// minus the technology lookup.
    ///
    /// # Errors
    ///
    /// Returns [`BankError::Gated`] if the bank is gated.
    pub fn access_resolved(
        &mut self,
        at: SimTime,
        resolved: &ResolvedAccess,
        words: u64,
    ) -> Result<Access, BankError> {
        if self.state == GateState::Gated {
            return Err(BankError::Gated);
        }
        self.advance_to(at);
        let service = resolved.latency * words;
        let done_at = self.port.acquire(at, service);
        let energy = resolved.energy_per_word * words;
        self.dynamic_energy += energy;
        match resolved.kind {
            AccessKind::Read => self.reads += words,
            AccessKind::Write => self.writes += words,
        }
        Ok(Access { done_at, energy })
    }

    /// Power-gates the bank at `now`.
    ///
    /// # Errors
    ///
    /// Returns [`BankError::WouldLoseData`] for a volatile (SRAM) bank
    /// that still holds live data. MRAM banks may always be gated.
    pub fn gate(&mut self, now: SimTime) -> Result<(), BankError> {
        if !self.tech.kind.is_non_volatile() && self.live_bytes > 0 {
            return Err(BankError::WouldLoseData {
                live_bytes: self.live_bytes,
            });
        }
        self.advance_to(now);
        self.state = GateState::Gated;
        Ok(())
    }

    /// Wakes a gated bank; returns the instant it becomes accessible.
    /// A no-op (returning `now`) when already on.
    pub fn ungate(&mut self, now: SimTime) -> SimTime {
        self.advance_to(now);
        if self.state == GateState::On {
            return now;
        }
        self.state = GateState::On;
        self.wakeups += 1;
        self.wake_energy_total += self.gate.wake_energy;
        // The port is considered busy during wake-up.
        self.port.acquire(now, self.gate.wake_latency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tech::{hp_mram, hp_sram, lp_mram};

    #[test]
    fn access_latency_and_energy() {
        let mut b = MemoryBank::new(hp_mram(), 64 * 1024);
        let a = b.access(SimTime::ZERO, AccessKind::Read, 1).unwrap();
        assert_eq!(a.done_at, SimTime::ZERO + SimDuration::from_ns_f64(2.62));
        assert!((a.energy.as_pj() - 1122.6).abs() < 0.1);
        let w = b.access(a.done_at, AccessKind::Write, 1).unwrap();
        assert_eq!(w.done_at, a.done_at + SimDuration::from_ns_f64(11.81));
        assert_eq!(b.counters(), (1, 1, 0));
    }

    #[test]
    fn port_serializes_concurrent_accesses() {
        let mut b = MemoryBank::new(hp_sram(), 1024);
        let a1 = b.access(SimTime::ZERO, AccessKind::Read, 1).unwrap();
        let a2 = b.access(SimTime::ZERO, AccessKind::Read, 1).unwrap();
        assert_eq!(a2.done_at, a1.done_at + SimDuration::from_ns_f64(1.12));
    }

    #[test]
    fn burst_access_scales() {
        let mut b = MemoryBank::new(hp_sram(), 1024);
        let a = b.access(SimTime::ZERO, AccessKind::Read, 10).unwrap();
        assert_eq!(a.done_at.as_ps(), 11_200);
        assert!((a.energy.as_pj() - 5700.0).abs() < 1.0);
    }

    #[test]
    fn static_energy_accrues_only_when_on() {
        let mut b = MemoryBank::new(hp_sram(), 64 * 1024);
        b.advance_to(SimTime::from_ns(1000));
        // 23.29 mW × 1000 ns = 23290 pJ.
        assert!((b.static_energy().as_pj() - 23_290.0).abs() < 1.0);
        b.gate(SimTime::from_ns(1000)).unwrap();
        b.advance_to(SimTime::from_ns(2000));
        assert!((b.static_energy().as_pj() - 23_290.0).abs() < 1.0);
    }

    #[test]
    fn sram_gating_protects_live_data() {
        let mut b = MemoryBank::new(hp_sram(), 1024);
        b.store(10).unwrap();
        assert_eq!(
            b.gate(SimTime::ZERO),
            Err(BankError::WouldLoseData { live_bytes: 10 })
        );
        b.free(10).unwrap();
        assert!(b.gate(SimTime::ZERO).is_ok());
    }

    #[test]
    fn mram_gating_retains_data() {
        let mut b = MemoryBank::new(lp_mram(), 1024);
        b.store(512).unwrap();
        b.gate(SimTime::ZERO).unwrap();
        assert_eq!(b.live_bytes(), 512, "non-volatile contents survive gating");
        assert_eq!(
            b.access(SimTime::ZERO, AccessKind::Read, 1),
            Err(BankError::Gated)
        );
        let ready = b.ungate(SimTime::from_ns(100));
        assert!(ready > SimTime::from_ns(100), "wake-up takes time");
        assert!(b.access(ready, AccessKind::Read, 1).is_ok());
        assert_eq!(b.counters().2, 1);
    }

    #[test]
    fn capacity_enforced() {
        let mut b = MemoryBank::new(hp_sram(), 100);
        b.store(60).unwrap();
        assert_eq!(
            b.store(50),
            Err(BankError::CapacityExceeded {
                requested: 50,
                available: 40
            })
        );
        assert_eq!(b.free(70), Err(BankError::Underflow));
        assert_eq!(b.free_bytes(), 40);
    }

    #[test]
    fn gated_bank_rejects_store() {
        let mut b = MemoryBank::new(lp_mram(), 100);
        b.gate(SimTime::ZERO).unwrap();
        assert_eq!(b.store(1), Err(BankError::Gated));
    }

    #[test]
    fn static_power_reflects_state() {
        let mut b = MemoryBank::new(hp_sram(), 64 * 1024);
        assert!((b.static_power().as_mw() - 23.29).abs() < 1e-9);
        b.gate(SimTime::ZERO).unwrap();
        assert_eq!(b.static_power(), Power::ZERO);
    }

    #[test]
    fn ungate_when_on_is_noop() {
        let mut b = MemoryBank::new(hp_sram(), 1024);
        let t = b.ungate(SimTime::from_ns(5));
        assert_eq!(t, SimTime::from_ns(5));
        assert_eq!(b.counters().2, 0);
        assert_eq!(b.wake_energy(), Energy::ZERO);
    }

    #[test]
    fn resolved_access_is_bit_identical_to_access() {
        let mut a = MemoryBank::new(hp_mram(), 64 * 1024);
        let mut b = a.clone();
        let read = b.resolve(AccessKind::Read);
        let write = b.resolve(AccessKind::Write);
        for (t, words) in [(0u64, 3u64), (5, 1), (5, 7), (40, 255)] {
            let at = SimTime::from_ns(t);
            let lhs = a.access(at, AccessKind::Read, words).unwrap();
            let rhs = b.access_resolved(at, &read, words).unwrap();
            assert_eq!(lhs, rhs);
            let lhs = a.access(at, AccessKind::Write, words).unwrap();
            let rhs = b.access_resolved(at, &write, words).unwrap();
            assert_eq!(lhs, rhs);
        }
        assert_eq!(a.counters(), b.counters());
        assert_eq!(a.dynamic_energy().as_pj(), b.dynamic_energy().as_pj());
        assert_eq!(a.static_energy().as_pj(), b.static_energy().as_pj());
        // Gating is still enforced on the resolved path.
        a.gate(SimTime::from_ns(1000)).unwrap();
        b.gate(SimTime::from_ns(1000)).unwrap();
        assert_eq!(
            b.access_resolved(SimTime::from_ns(1001), &read, 1),
            Err(BankError::Gated)
        );
    }

    #[test]
    fn error_display() {
        assert_eq!(BankError::Gated.to_string(), "bank is power-gated");
        assert!(BankError::WouldLoseData { live_bytes: 3 }
            .to_string()
            .contains("3 live"));
    }
}
