//! Energy bookkeeping by category.
//!
//! Every experiment in the paper reports *energy breakdowns* (dynamic vs
//! static, per memory type, per cluster). [`EnergyLedger`] is a generic
//! accumulator keyed by a caller-chosen category type so each layer of
//! the stack can account in its own vocabulary.

use crate::energy::Energy;
use std::fmt;

/// An energy accumulator keyed by category `K`.
///
/// Backed by a `Vec` kept sorted by category, so iteration order (and
/// therefore report output) is deterministic — and `add`, the hot
/// operation on the streaming/replay paths, is a binary search over a
/// dozen-entry contiguous array instead of a `BTreeMap` node walk.
/// The accumulation arithmetic is unchanged (one `+=` per add against
/// the category's running sum), so ledgers fold bit-identically to the
/// former map-backed implementation.
///
/// # Examples
///
/// ```
/// use hhpim_mem::{Energy, EnergyLedger};
///
/// #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
/// enum Cat { DynRead, Static }
///
/// let mut ledger = EnergyLedger::new();
/// ledger.add(Cat::DynRead, Energy::from_pj(570.0));
/// ledger.add(Cat::DynRead, Energy::from_pj(570.0));
/// ledger.add(Cat::Static, Energy::from_nj(1.0));
/// assert_eq!(ledger.get(Cat::DynRead).as_pj(), 1140.0);
/// assert_eq!(ledger.total().as_pj(), 2140.0);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct EnergyLedger<K: Ord> {
    /// `(category, running sum)` pairs, sorted by category.
    entries: Vec<(K, Energy)>,
}

impl<K: Ord> EnergyLedger<K> {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        EnergyLedger {
            entries: Vec::new(),
        }
    }

    /// Adds energy under a category.
    pub fn add(&mut self, category: K, energy: Energy) {
        match self.entries.binary_search_by(|(k, _)| k.cmp(&category)) {
            Ok(i) => self.entries[i].1 += energy,
            // Matches the map-backed `or_insert(ZERO) += energy` fold.
            Err(i) => self.entries.insert(i, (category, Energy::ZERO + energy)),
        }
    }

    /// Energy recorded under `category` (zero if absent).
    pub fn get(&self, category: K) -> Energy {
        self.entries
            .binary_search_by(|(k, _)| k.cmp(&category))
            .map(|i| self.entries[i].1)
            .unwrap_or(Energy::ZERO)
    }

    /// Resolves a category to its slot index (its position in category
    /// order), or `None` if the category has not been recorded.
    ///
    /// The index stays valid until the category *set* changes — i.e.
    /// as long as [`EnergyLedger::len`] is unchanged, since categories
    /// are only ever inserted, never removed. Replay loops that add the
    /// same category list every iteration (the streaming runtime's
    /// memoized slice path) resolve slots once and then accumulate via
    /// [`EnergyLedger::add_at`], skipping the per-add search exactly as
    /// [`crate::MemoryBank::resolve`]/`access_resolved` skip the
    /// per-access technology lookup.
    pub fn slot_of(&self, category: &K) -> Option<usize> {
        self.entries.binary_search_by(|(k, _)| k.cmp(category)).ok()
    }

    /// Adds energy at a slot resolved by [`EnergyLedger::slot_of`] —
    /// the same `+=` against the category's running sum as
    /// [`EnergyLedger::add`], minus the search.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range. A stale slot (taken before an
    /// intervening insertion changed [`EnergyLedger::len`]) silently
    /// credits the wrong category — callers must re-resolve whenever
    /// the length changes.
    pub fn add_at(&mut self, slot: usize, energy: Energy) {
        self.entries[slot].1 += energy;
    }

    /// Sum over all categories.
    pub fn total(&self) -> Energy {
        self.entries.iter().map(|&(_, v)| v).sum()
    }

    /// Number of distinct categories recorded.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates `(category, energy)` pairs in category order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, Energy)> {
        self.entries.iter().map(|(k, v)| (k, *v))
    }

    /// Merges another ledger into this one.
    pub fn merge(&mut self, other: &EnergyLedger<K>)
    where
        K: Clone,
    {
        for (k, v) in other.iter() {
            self.add(k.clone(), v);
        }
    }

    /// Sum of energies whose category satisfies `pred`.
    pub fn total_where(&self, mut pred: impl FnMut(&K) -> bool) -> Energy {
        self.entries
            .iter()
            .filter(|(k, _)| pred(k))
            .map(|(_, v)| *v)
            .sum()
    }

    /// Removes all entries.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

impl<K: Ord + fmt::Debug> fmt::Display for EnergyLedger<K> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.entries.is_empty() {
            return write!(f, "(empty ledger)");
        }
        for (k, v) in &self.entries {
            writeln!(f, "{k:?}: {v}")?;
        }
        write!(f, "total: {}", self.total())
    }
}

impl<K: Ord> FromIterator<(K, Energy)> for EnergyLedger<K> {
    fn from_iter<I: IntoIterator<Item = (K, Energy)>>(iter: I) -> Self {
        let mut ledger = EnergyLedger::new();
        for (k, v) in iter {
            ledger.add(k, v);
        }
        ledger
    }
}

impl<K: Ord> Extend<(K, Energy)> for EnergyLedger<K> {
    fn extend<I: IntoIterator<Item = (K, Energy)>>(&mut self, iter: I) {
        for (k, v) in iter {
            self.add(k, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_by_category() {
        let mut l = EnergyLedger::new();
        l.add("read", Energy::from_pj(1.0));
        l.add("read", Energy::from_pj(2.0));
        l.add("write", Energy::from_pj(4.0));
        assert_eq!(l.get("read").as_pj(), 3.0);
        assert_eq!(l.get("missing"), Energy::ZERO);
        assert_eq!(l.total().as_pj(), 7.0);
        assert_eq!(l.len(), 2);
    }

    #[test]
    fn merge_adds_categories() {
        let mut a: EnergyLedger<&str> = [("x", Energy::from_pj(1.0))].into_iter().collect();
        let b: EnergyLedger<&str> = [("x", Energy::from_pj(2.0)), ("y", Energy::from_pj(5.0))]
            .into_iter()
            .collect();
        a.merge(&b);
        assert_eq!(a.get("x").as_pj(), 3.0);
        assert_eq!(a.get("y").as_pj(), 5.0);
    }

    #[test]
    fn total_where_filters() {
        let l: EnergyLedger<u32> = (1..=4).map(|i| (i, Energy::from_pj(i as f64))).collect();
        assert_eq!(l.total_where(|&k| k % 2 == 0).as_pj(), 6.0);
    }

    #[test]
    fn display_deterministic() {
        let mut l = EnergyLedger::new();
        l.add("b", Energy::from_pj(2.0));
        l.add("a", Energy::from_pj(1.0));
        let s = l.to_string();
        let a_pos = s.find("\"a\"").unwrap();
        let b_pos = s.find("\"b\"").unwrap();
        assert!(a_pos < b_pos, "BTreeMap ordering must hold in display");
        assert!(s.ends_with("total: 3.000pJ"));
    }

    #[test]
    fn empty_display() {
        let l: EnergyLedger<u8> = EnergyLedger::new();
        assert_eq!(l.to_string(), "(empty ledger)");
        assert!(l.is_empty());
    }

    #[test]
    fn extend_and_clear() {
        let mut l = EnergyLedger::new();
        l.extend([(1u8, Energy::from_pj(1.0)), (1, Energy::from_pj(1.0))]);
        assert_eq!(l.get(1).as_pj(), 2.0);
        l.clear();
        assert!(l.is_empty());
    }
}
