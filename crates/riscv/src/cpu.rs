//! RV32IM interpreter.
//!
//! The paper's processor pairs a RISC-V Rocket core with the PIM over
//! AXI; benchmark applications running on the core enqueue PIM
//! instructions and poll for completion. This interpreter executes the
//! RV32I base set plus the M extension — everything those driver
//! programs need — against a pluggable [`Bus`].

use core::fmt;

/// Memory/IO access interface presented to the CPU.
pub trait Bus {
    /// Loads a 32-bit word from a 4-byte-aligned address.
    fn load32(&mut self, addr: u32) -> Result<u32, BusFault>;
    /// Stores a 32-bit word to a 4-byte-aligned address.
    fn store32(&mut self, addr: u32, value: u32) -> Result<(), BusFault>;

    /// Loads a byte (default via word access).
    fn load8(&mut self, addr: u32) -> Result<u8, BusFault> {
        let word = self.load32(addr & !3)?;
        Ok((word >> ((addr & 3) * 8)) as u8)
    }

    /// Stores a byte (default read-modify-write).
    fn store8(&mut self, addr: u32, value: u8) -> Result<(), BusFault> {
        let aligned = addr & !3;
        let shift = (addr & 3) * 8;
        let word = self.load32(aligned)?;
        let word = (word & !(0xFF << shift)) | ((value as u32) << shift);
        self.store32(aligned, word)
    }
}

/// A bus access fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BusFault {
    /// Faulting address.
    pub addr: u32,
}

impl fmt::Display for BusFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bus fault at {:#010x}", self.addr)
    }
}

impl std::error::Error for BusFault {}

/// CPU execution errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CpuError {
    /// An illegal or unsupported instruction word.
    IllegalInstruction {
        /// Program counter.
        pc: u32,
        /// Raw instruction word.
        word: u32,
    },
    /// A memory access faulted.
    Fault(BusFault),
    /// The step budget ran out before `ebreak`/`ecall`.
    OutOfFuel,
    /// A misaligned branch/jump target.
    MisalignedPc {
        /// The bad target.
        target: u32,
    },
}

impl fmt::Display for CpuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CpuError::IllegalInstruction { pc, word } => {
                write!(f, "illegal instruction {word:#010x} at {pc:#010x}")
            }
            CpuError::Fault(b) => write!(f, "{b}"),
            CpuError::OutOfFuel => write!(f, "step budget exhausted"),
            CpuError::MisalignedPc { target } => {
                write!(f, "misaligned jump target {target:#010x}")
            }
        }
    }
}

impl std::error::Error for CpuError {}

impl From<BusFault> for CpuError {
    fn from(b: BusFault) -> Self {
        CpuError::Fault(b)
    }
}

/// Why execution stopped normally.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Halt {
    /// `ecall` executed (environment call; used as "program done").
    Ecall,
    /// `ebreak` executed.
    Ebreak,
}

/// The RV32IM hart.
#[derive(Debug, Clone)]
pub struct Cpu {
    /// General-purpose registers (`x0` hard-wired to zero).
    regs: [u32; 32],
    /// Program counter.
    pub pc: u32,
    retired: u64,
}

impl Default for Cpu {
    fn default() -> Self {
        Self::new()
    }
}

impl Cpu {
    /// Creates a hart with cleared registers at PC 0.
    pub fn new() -> Self {
        Cpu {
            regs: [0; 32],
            pc: 0,
            retired: 0,
        }
    }

    /// Reads register `x{i}`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 32`.
    pub fn reg(&self, i: usize) -> u32 {
        assert!(i < 32, "register index out of range");
        self.regs[i]
    }

    /// Writes register `x{i}` (writes to `x0` are ignored).
    ///
    /// # Panics
    ///
    /// Panics if `i >= 32`.
    pub fn set_reg(&mut self, i: usize, value: u32) {
        assert!(i < 32, "register index out of range");
        if i != 0 {
            self.regs[i] = value;
        }
    }

    /// Instructions retired so far.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Executes instructions until `ecall`/`ebreak`, an error, or `fuel`
    /// instructions have retired.
    ///
    /// # Errors
    ///
    /// Returns the first [`CpuError`] encountered.
    pub fn run(&mut self, bus: &mut impl Bus, fuel: u64) -> Result<Halt, CpuError> {
        for _ in 0..fuel {
            if let Some(halt) = self.step(bus)? {
                return Ok(halt);
            }
        }
        Err(CpuError::OutOfFuel)
    }

    /// Executes a single instruction; `Some(halt)` on `ecall`/`ebreak`.
    ///
    /// # Errors
    ///
    /// Returns the first [`CpuError`] encountered.
    pub fn step(&mut self, bus: &mut impl Bus) -> Result<Option<Halt>, CpuError> {
        let pc = self.pc;
        let word = bus.load32(pc)?;
        let opcode = word & 0x7F;
        let rd = ((word >> 7) & 0x1F) as usize;
        let funct3 = (word >> 12) & 0x7;
        let rs1 = ((word >> 15) & 0x1F) as usize;
        let rs2 = ((word >> 20) & 0x1F) as usize;
        let funct7 = word >> 25;
        let imm_i = (word as i32) >> 20;
        let imm_s = (((word & 0xFE00_0000) as i32) >> 20) | (((word >> 7) & 0x1F) as i32);
        let imm_b = ((((word >> 31) & 1) << 12)
            | (((word >> 7) & 1) << 11)
            | (((word >> 25) & 0x3F) << 5)
            | (((word >> 8) & 0xF) << 1)) as i32;
        let imm_b = (imm_b << 19) >> 19;
        let imm_u = (word & 0xFFFF_F000) as i32;
        let imm_j = ((((word >> 31) & 1) << 20)
            | (((word >> 12) & 0xFF) << 12)
            | (((word >> 20) & 1) << 11)
            | (((word >> 21) & 0x3FF) << 1)) as i32;
        let imm_j = (imm_j << 11) >> 11;

        let mut next_pc = pc.wrapping_add(4);
        let x = |i: usize| self.regs[i];

        match opcode {
            0x37 => self.set_reg(rd, imm_u as u32), // lui
            0x17 => self.set_reg(rd, pc.wrapping_add(imm_u as u32)), // auipc
            0x6F => {
                // jal
                let target = pc.wrapping_add(imm_j as u32);
                if !target.is_multiple_of(4) {
                    return Err(CpuError::MisalignedPc { target });
                }
                self.set_reg(rd, next_pc);
                next_pc = target;
            }
            0x67 => {
                // jalr
                let target = x(rs1).wrapping_add(imm_i as u32) & !1;
                if !target.is_multiple_of(4) {
                    return Err(CpuError::MisalignedPc { target });
                }
                self.set_reg(rd, next_pc);
                next_pc = target;
            }
            0x63 => {
                let taken = match funct3 {
                    0 => x(rs1) == x(rs2),                   // beq
                    1 => x(rs1) != x(rs2),                   // bne
                    4 => (x(rs1) as i32) < (x(rs2) as i32),  // blt
                    5 => (x(rs1) as i32) >= (x(rs2) as i32), // bge
                    6 => x(rs1) < x(rs2),                    // bltu
                    7 => x(rs1) >= x(rs2),                   // bgeu
                    _ => return Err(CpuError::IllegalInstruction { pc, word }),
                };
                if taken {
                    let target = pc.wrapping_add(imm_b as u32);
                    if !target.is_multiple_of(4) {
                        return Err(CpuError::MisalignedPc { target });
                    }
                    next_pc = target;
                }
            }
            0x03 => {
                let addr = x(rs1).wrapping_add(imm_i as u32);
                let value = match funct3 {
                    0 => bus.load8(addr)? as i8 as i32 as u32, // lb
                    2 => bus.load32(addr)?,                    // lw
                    4 => bus.load8(addr)? as u32,              // lbu
                    _ => return Err(CpuError::IllegalInstruction { pc, word }),
                };
                self.set_reg(rd, value);
            }
            0x23 => {
                let addr = x(rs1).wrapping_add(imm_s as u32);
                match funct3 {
                    0 => bus.store8(addr, x(rs2) as u8)?, // sb
                    2 => bus.store32(addr, x(rs2))?,      // sw
                    _ => return Err(CpuError::IllegalInstruction { pc, word }),
                }
            }
            0x13 => {
                let a = x(rs1);
                let shamt = (imm_i & 0x1F) as u32;
                let value = match funct3 {
                    0 => a.wrapping_add(imm_i as u32), // addi
                    2 => ((a as i32) < imm_i) as u32,  // slti
                    3 => (a < imm_i as u32) as u32,    // sltiu
                    4 => a ^ imm_i as u32,             // xori
                    6 => a | imm_i as u32,             // ori
                    7 => a & imm_i as u32,             // andi
                    1 => a << shamt,                   // slli
                    5 => {
                        if funct7 & 0x20 != 0 {
                            ((a as i32) >> shamt) as u32 // srai
                        } else {
                            a >> shamt // srli
                        }
                    }
                    _ => return Err(CpuError::IllegalInstruction { pc, word }),
                };
                self.set_reg(rd, value);
            }
            0x33 => {
                let (a, b) = (x(rs1), x(rs2));
                let value = if funct7 == 1 {
                    // M extension.
                    match funct3 {
                        0 => a.wrapping_mul(b),                                      // mul
                        1 => (((a as i32 as i64) * (b as i32 as i64)) >> 32) as u32, // mulh
                        2 => (((a as i32 as i64) * (b as u64 as i64)) >> 32) as u32, // mulhsu
                        3 => (((a as u64) * (b as u64)) >> 32) as u32,               // mulhu
                        4 => {
                            // div
                            if b == 0 {
                                u32::MAX
                            } else if a as i32 == i32::MIN && b as i32 == -1 {
                                a
                            } else {
                                ((a as i32) / (b as i32)) as u32
                            }
                        }
                        5 => a.checked_div(b).unwrap_or(u32::MAX), // divu
                        6 => {
                            // rem
                            if b == 0 {
                                a
                            } else if a as i32 == i32::MIN && b as i32 == -1 {
                                0
                            } else {
                                ((a as i32) % (b as i32)) as u32
                            }
                        }
                        7 => {
                            if b == 0 {
                                a
                            } else {
                                a % b
                            }
                        } // remu
                        _ => return Err(CpuError::IllegalInstruction { pc, word }),
                    }
                } else {
                    match (funct3, funct7) {
                        (0, 0x00) => a.wrapping_add(b),                 // add
                        (0, 0x20) => a.wrapping_sub(b),                 // sub
                        (1, 0x00) => a << (b & 0x1F),                   // sll
                        (2, 0x00) => ((a as i32) < (b as i32)) as u32,  // slt
                        (3, 0x00) => (a < b) as u32,                    // sltu
                        (4, 0x00) => a ^ b,                             // xor
                        (5, 0x00) => a >> (b & 0x1F),                   // srl
                        (5, 0x20) => ((a as i32) >> (b & 0x1F)) as u32, // sra
                        (6, 0x00) => a | b,                             // or
                        (7, 0x00) => a & b,                             // and
                        _ => return Err(CpuError::IllegalInstruction { pc, word }),
                    }
                };
                self.set_reg(rd, value);
            }
            0x73 => {
                self.retired += 1;
                self.pc = next_pc;
                return Ok(Some(if imm_i == 1 {
                    Halt::Ebreak
                } else {
                    Halt::Ecall
                }));
            }
            0x0F => {} // fence: no-op for a single hart
            _ => return Err(CpuError::IllegalInstruction { pc, word }),
        }
        self.retired += 1;
        self.pc = next_pc;
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble_rv;
    use crate::bus::SystemBus;

    fn run_program(src: &str) -> (Cpu, SystemBus) {
        let code = assemble_rv(src).expect("assembles");
        let mut bus = SystemBus::new(64 * 1024);
        bus.load_program(0, &code);
        let mut cpu = Cpu::new();
        cpu.run(&mut bus, 100_000).expect("halts");
        (cpu, bus)
    }

    #[test]
    fn arithmetic_and_logic() {
        let (cpu, _) = run_program(
            "li x1, 20
             li x2, 22
             add x3, x1, x2
             sub x4, x2, x1
             xor x5, x1, x2
             and x6, x1, x2
             or x7, x1, x2
             slli x8, x1, 3
             ecall",
        );
        assert_eq!(cpu.reg(3), 42);
        assert_eq!(cpu.reg(4), 2);
        assert_eq!(cpu.reg(5), 20 ^ 22);
        assert_eq!(cpu.reg(6), 20 & 22);
        assert_eq!(cpu.reg(7), 20 | 22);
        assert_eq!(cpu.reg(8), 160);
    }

    #[test]
    fn mul_div_rem() {
        let (cpu, _) = run_program(
            "li x1, -6
             li x2, 4
             mul x3, x1, x2
             div x4, x1, x2
             rem x5, x1, x2
             divu x6, x2, x2
             ecall",
        );
        assert_eq!(cpu.reg(3) as i32, -24);
        assert_eq!(cpu.reg(4) as i32, -1);
        assert_eq!(cpu.reg(5) as i32, -2);
        assert_eq!(cpu.reg(6), 1);
    }

    #[test]
    fn division_by_zero_semantics() {
        let (cpu, _) = run_program(
            "li x1, 7
             li x2, 0
             div x3, x1, x2
             rem x4, x1, x2
             ecall",
        );
        assert_eq!(cpu.reg(3), u32::MAX);
        assert_eq!(cpu.reg(4), 7);
    }

    #[test]
    fn loads_and_stores() {
        let (cpu, mut bus) = run_program(
            "li x1, 0x1000
             li x2, 0xABCD
             sw x2, 0(x1)
             lw x3, 0(x1)
             li x4, 0x7F
             sb x4, 5(x1)
             lbu x5, 5(x1)
             ecall",
        );
        assert_eq!(cpu.reg(3), 0xABCD);
        assert_eq!(cpu.reg(5), 0x7F);
        assert_eq!(bus.load32(0x1000).unwrap(), 0xABCD);
    }

    #[test]
    fn branch_loop_sums() {
        // Sum 1..=10 with a bne loop.
        let (cpu, _) = run_program(
            "li x1, 0
             li x2, 1
             li x3, 11
        loop:
             add x1, x1, x2
             addi x2, x2, 1
             bne x2, x3, loop
             ecall",
        );
        assert_eq!(cpu.reg(1), 55);
    }

    #[test]
    fn jal_links_return_address() {
        let (cpu, _) = run_program(
            "jal x1, target
             li x2, 99
             ecall
        target:
             li x3, 7
             jalr x0, x1, 0",
        );
        assert_eq!(cpu.reg(3), 7);
        assert_eq!(cpu.reg(2), 99, "returned and executed the li");
    }

    #[test]
    fn x0_is_hardwired() {
        let (cpu, _) = run_program("li x1, 5\nadd x0, x1, x1\necall");
        assert_eq!(cpu.reg(0), 0);
    }

    #[test]
    fn illegal_instruction_reported() {
        let mut bus = SystemBus::new(4096);
        bus.load_program(0, &[0xFFFF_FFFF]);
        let mut cpu = Cpu::new();
        let err = cpu.run(&mut bus, 10).unwrap_err();
        assert!(matches!(err, CpuError::IllegalInstruction { pc: 0, .. }));
    }

    #[test]
    fn out_of_fuel() {
        // Infinite loop.
        let code = assemble_rv("loop: jal x0, loop").unwrap();
        let mut bus = SystemBus::new(4096);
        bus.load_program(0, &code);
        let mut cpu = Cpu::new();
        assert_eq!(cpu.run(&mut bus, 100).unwrap_err(), CpuError::OutOfFuel);
        assert_eq!(cpu.retired(), 100);
    }
}
