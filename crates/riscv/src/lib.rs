//! # hhpim-riscv — the RV32IM host-core substrate
//!
//! The paper's processor drives HH-PIM from a RISC-V Rocket core over
//! AXI (Fig. 3). This crate provides the software equivalent:
//!
//! * [`Cpu`] — an RV32IM interpreter (base integer + multiply/divide),
//! * [`assemble_rv`] — a mini-assembler with labels and `li`,
//! * [`SystemBus`] — RAM plus the memory-mapped PIM window at
//!   [`PIM_BASE`] through which driver programs enqueue encoded PIM
//!   instructions and read back accumulators.
//!
//! # Examples
//!
//! ```
//! use hhpim_riscv::{assemble_rv, Cpu, SystemBus};
//! let code = assemble_rv("li x1, 40\naddi x1, x1, 2\necall").unwrap();
//! let mut bus = SystemBus::new(4096);
//! bus.load_program(0, &code);
//! let mut cpu = Cpu::new();
//! cpu.run(&mut bus, 1000).unwrap();
//! assert_eq!(cpu.reg(1), 42);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asm;
pub mod bus;
pub mod cpu;

pub use asm::{assemble_rv, RvAsmError};
pub use bus::{SystemBus, PIM_BASE};
pub use cpu::{Bus, BusFault, Cpu, CpuError, Halt};
