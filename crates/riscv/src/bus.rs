//! System bus: RAM plus the memory-mapped PIM interface.
//!
//! Mirrors the paper's Fig. 3 processor: the core talks to HH-PIM over
//! an AXI window. The register map (word offsets from [`PIM_BASE`]):
//!
//! | offset | register | behaviour |
//! |--------|----------|-----------|
//! | 0x0    | `QUEUE_LO` | latch low 32 bits of a PIM instruction word |
//! | 0x4    | `QUEUE_HI` | latch high 32 bits **and push** to the queue |
//! | 0x8    | `STATUS`   | read: bit0 = halted, bits 16.. = executed count |
//! | 0xC    | `DOORBELL` | write: drain the queue through the machine |
//! | 0x10   | `ACC_SEL`  | write: select module for accumulator readback |
//! | 0x14   | `ACC`      | read: selected module's accumulator |

use crate::cpu::{Bus, BusFault};
use hhpim_isa::PimInstruction;
use hhpim_pim::PimMachine;

/// Base address of the PIM MMIO window.
pub const PIM_BASE: u32 = 0x4000_0000;

const REG_QUEUE_LO: u32 = 0x0;
const REG_QUEUE_HI: u32 = 0x4;
const REG_STATUS: u32 = 0x8;
const REG_DOORBELL: u32 = 0xC;
const REG_ACC_SEL: u32 = 0x10;
const REG_ACC: u32 = 0x14;
const PIM_WINDOW: u32 = 0x18;

/// RAM + memory-mapped PIM machine.
#[derive(Debug)]
pub struct SystemBus {
    ram: Vec<u8>,
    pim: Option<PimMachine>,
    queue_lo: u32,
    acc_sel: u32,
    executed: u32,
    pim_error: Option<hhpim_pim::MachineError>,
}

impl SystemBus {
    /// Creates a bus with `ram_bytes` of zeroed RAM and no PIM attached.
    ///
    /// # Panics
    ///
    /// Panics if `ram_bytes` is zero or not word-aligned.
    pub fn new(ram_bytes: usize) -> Self {
        assert!(
            ram_bytes > 0 && ram_bytes.is_multiple_of(4),
            "RAM must be non-empty and word-aligned"
        );
        SystemBus {
            ram: vec![0; ram_bytes],
            pim: None,
            queue_lo: 0,
            acc_sel: 0,
            executed: 0,
            pim_error: None,
        }
    }

    /// Attaches a PIM machine at [`PIM_BASE`].
    pub fn with_pim(mut self, pim: PimMachine) -> Self {
        self.pim = Some(pim);
        self
    }

    /// The attached PIM machine, if any.
    pub fn pim(&self) -> Option<&PimMachine> {
        self.pim.as_ref()
    }

    /// Exclusive access to the attached PIM machine.
    pub fn pim_mut(&mut self) -> Option<&mut PimMachine> {
        self.pim.as_mut()
    }

    /// First PIM error raised while draining the queue, if any.
    pub fn pim_error(&self) -> Option<&hhpim_pim::MachineError> {
        self.pim_error.as_ref()
    }

    /// Copies instruction words into RAM at a byte address.
    ///
    /// # Panics
    ///
    /// Panics if the program exceeds RAM.
    pub fn load_program(&mut self, base: u32, words: &[u32]) {
        for (i, &w) in words.iter().enumerate() {
            let addr = base as usize + i * 4;
            assert!(addr + 4 <= self.ram.len(), "program exceeds RAM");
            self.ram[addr..addr + 4].copy_from_slice(&w.to_le_bytes());
        }
    }

    fn pim_load(&mut self, offset: u32) -> Result<u32, BusFault> {
        match offset {
            REG_STATUS => {
                let halted = self.pim.as_ref().map(|p| p.is_halted()).unwrap_or(true);
                Ok((halted as u32)
                    | (self.executed << 16)
                    | ((self.pim_error.is_some() as u32) << 1))
            }
            REG_ACC => {
                let sel = self.acc_sel as usize;
                let acc = self
                    .pim
                    .as_ref()
                    .filter(|p| sel < p.module_count())
                    .map(|p| p.module(sel).pe().accumulator())
                    .unwrap_or(0);
                Ok(acc as u32)
            }
            REG_QUEUE_LO => Ok(self.queue_lo),
            REG_ACC_SEL => Ok(self.acc_sel),
            _ => Err(BusFault {
                addr: PIM_BASE + offset,
            }),
        }
    }

    fn pim_store(&mut self, offset: u32, value: u32) -> Result<(), BusFault> {
        match offset {
            REG_QUEUE_LO => {
                self.queue_lo = value;
                Ok(())
            }
            REG_QUEUE_HI => {
                let word = ((value as u64) << 32) | self.queue_lo as u64;
                let Some(pim) = self.pim.as_mut() else {
                    return Err(BusFault {
                        addr: PIM_BASE + offset,
                    });
                };
                match hhpim_isa::decode(word) {
                    Ok(inst) => {
                        if let Err(e) = pim.execute(inst) {
                            self.pim_error.get_or_insert(e);
                        } else {
                            self.executed += 1;
                        }
                    }
                    Err(e) => {
                        self.pim_error
                            .get_or_insert(hhpim_pim::MachineError::Decode(e));
                    }
                }
                Ok(())
            }
            REG_DOORBELL => {
                // Instructions execute eagerly on push in this model; the
                // doorbell issues a barrier so the core observes retire.
                if let Some(pim) = self.pim.as_mut() {
                    let _ = pim.execute(PimInstruction::Barrier);
                }
                Ok(())
            }
            REG_ACC_SEL => {
                self.acc_sel = value;
                Ok(())
            }
            _ => Err(BusFault {
                addr: PIM_BASE + offset,
            }),
        }
    }
}

impl Bus for SystemBus {
    fn load32(&mut self, addr: u32) -> Result<u32, BusFault> {
        if !addr.is_multiple_of(4) {
            return Err(BusFault { addr });
        }
        if (PIM_BASE..PIM_BASE + PIM_WINDOW).contains(&addr) {
            return self.pim_load(addr - PIM_BASE);
        }
        let a = addr as usize;
        if a + 4 > self.ram.len() {
            return Err(BusFault { addr });
        }
        Ok(u32::from_le_bytes(
            self.ram[a..a + 4].try_into().expect("4 bytes"),
        ))
    }

    fn store32(&mut self, addr: u32, value: u32) -> Result<(), BusFault> {
        if !addr.is_multiple_of(4) {
            return Err(BusFault { addr });
        }
        if (PIM_BASE..PIM_BASE + PIM_WINDOW).contains(&addr) {
            return self.pim_store(addr - PIM_BASE, value);
        }
        let a = addr as usize;
        if a + 4 > self.ram.len() {
            return Err(BusFault { addr });
        }
        self.ram[a..a + 4].copy_from_slice(&value.to_le_bytes());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hhpim_isa::{encode, MemSelect, ModuleMask};
    use hhpim_pim::MachineConfig;

    fn bus_with_pim() -> SystemBus {
        let mut pim = PimMachine::new(MachineConfig::default());
        pim.preload(0, MemSelect::Mram, 0, &[2, 3]).unwrap();
        pim.preload_activations(0, &[4, 5]).unwrap();
        SystemBus::new(4096).with_pim(pim)
    }

    fn push(bus: &mut SystemBus, inst: PimInstruction) {
        let w = encode(inst);
        bus.store32(PIM_BASE + REG_QUEUE_LO, w as u32).unwrap();
        bus.store32(PIM_BASE + REG_QUEUE_HI, (w >> 32) as u32)
            .unwrap();
    }

    #[test]
    fn mmio_push_and_readback() {
        let mut bus = bus_with_pim();
        push(
            &mut bus,
            PimInstruction::ClearAcc {
                modules: ModuleMask::single(0),
            },
        );
        push(
            &mut bus,
            PimInstruction::Mac {
                modules: ModuleMask::single(0),
                mem: MemSelect::Mram,
                addr: 0,
                count: 2,
            },
        );
        bus.store32(PIM_BASE + REG_DOORBELL, 1).unwrap();
        bus.store32(PIM_BASE + REG_ACC_SEL, 0).unwrap();
        let acc = bus.load32(PIM_BASE + REG_ACC).unwrap();
        assert_eq!(acc as i32, 2 * 4 + 3 * 5);
        assert!(bus.pim_error().is_none());
        // Two instructions executed, reported in STATUS.
        let status = bus.load32(PIM_BASE + REG_STATUS).unwrap();
        assert_eq!(status >> 16, 2);
    }

    #[test]
    fn corrupt_word_sets_error_bit() {
        let mut bus = bus_with_pim();
        bus.store32(PIM_BASE + REG_QUEUE_LO, 0xFFFF_FFFF).unwrap();
        bus.store32(PIM_BASE + REG_QUEUE_HI, 0xFFFF_FFFF).unwrap();
        assert!(bus.pim_error().is_some());
        let status = bus.load32(PIM_BASE + REG_STATUS).unwrap();
        assert_eq!(status & 0b10, 0b10);
    }

    #[test]
    fn ram_roundtrip_and_bounds() {
        let mut bus = SystemBus::new(64);
        bus.store32(60, 0xDEAD_BEEF).unwrap();
        assert_eq!(bus.load32(60).unwrap(), 0xDEAD_BEEF);
        assert!(bus.load32(64).is_err());
        assert!(bus.store32(2, 0).is_err(), "misaligned store");
    }

    #[test]
    fn mmio_without_pim_faults_queue() {
        let mut bus = SystemBus::new(64);
        assert!(bus.store32(PIM_BASE + REG_QUEUE_HI, 0).is_err());
        // Status still readable (reports halted).
        assert_eq!(bus.load32(PIM_BASE + REG_STATUS).unwrap() & 1, 1);
    }

    #[test]
    fn unmapped_mmio_offset_faults() {
        let mut bus = bus_with_pim();
        assert!(bus.load32(PIM_BASE + PIM_WINDOW - 4 + 8).is_err());
    }
}
