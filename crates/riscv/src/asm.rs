//! Mini-assembler for the RV32IM subset the driver programs use.
//!
//! Supports labels, decimal/hex immediates, the `li` pseudo-instruction
//! (expanding to `lui`+`addi` when needed, always two words for
//! deterministic layout) and `#` comments.

use core::fmt;
use std::collections::HashMap;

/// Assembly errors with 1-based line numbers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RvAsmError {
    /// Source line.
    pub line: usize,
    /// Message.
    pub message: String,
}

impl fmt::Display for RvAsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for RvAsmError {}

fn err(line: usize, message: impl Into<String>) -> RvAsmError {
    RvAsmError {
        line,
        message: message.into(),
    }
}

fn parse_reg(s: &str, line: usize) -> Result<u32, RvAsmError> {
    let name = s.trim().trim_end_matches(',');
    let body = name
        .strip_prefix('x')
        .ok_or_else(|| err(line, format!("bad register `{name}`")))?;
    let idx: u32 = body
        .parse()
        .map_err(|_| err(line, format!("bad register `{name}`")))?;
    if idx >= 32 {
        return Err(err(line, format!("register {name} out of range")));
    }
    Ok(idx)
}

fn parse_imm(s: &str, line: usize) -> Result<i64, RvAsmError> {
    let t = s.trim().trim_end_matches(',');
    let (neg, body) = match t.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, t),
    };
    let value = if let Some(hex) = body.strip_prefix("0x") {
        i64::from_str_radix(hex, 16)
    } else {
        body.parse()
    }
    .map_err(|_| err(line, format!("bad immediate `{t}`")))?;
    Ok(if neg { -value } else { value })
}

/// `off(reg)` operand.
fn parse_mem(s: &str, line: usize) -> Result<(i64, u32), RvAsmError> {
    let t = s.trim().trim_end_matches(',');
    let open = t
        .find('(')
        .ok_or_else(|| err(line, format!("bad memory operand `{t}`")))?;
    let close = t
        .rfind(')')
        .ok_or_else(|| err(line, format!("bad memory operand `{t}`")))?;
    let off = if open == 0 {
        0
    } else {
        parse_imm(&t[..open], line)?
    };
    let reg = parse_reg(&t[open + 1..close], line)?;
    Ok((off, reg))
}

fn r_type(funct7: u32, rs2: u32, rs1: u32, funct3: u32, rd: u32, opcode: u32) -> u32 {
    (funct7 << 25) | (rs2 << 20) | (rs1 << 15) | (funct3 << 12) | (rd << 7) | opcode
}

fn i_type(imm: i64, rs1: u32, funct3: u32, rd: u32, opcode: u32) -> u32 {
    ((imm as u32 & 0xFFF) << 20) | (rs1 << 15) | (funct3 << 12) | (rd << 7) | opcode
}

fn s_type(imm: i64, rs2: u32, rs1: u32, funct3: u32, opcode: u32) -> u32 {
    let imm = imm as u32;
    ((imm >> 5 & 0x7F) << 25)
        | (rs2 << 20)
        | (rs1 << 15)
        | (funct3 << 12)
        | ((imm & 0x1F) << 7)
        | opcode
}

fn b_type(imm: i64, rs2: u32, rs1: u32, funct3: u32) -> u32 {
    let imm = imm as u32;
    ((imm >> 12 & 1) << 31)
        | ((imm >> 5 & 0x3F) << 25)
        | (rs2 << 20)
        | (rs1 << 15)
        | (funct3 << 12)
        | ((imm >> 1 & 0xF) << 8)
        | ((imm >> 11 & 1) << 7)
        | 0x63
}

fn j_type(imm: i64, rd: u32) -> u32 {
    let imm = imm as u32;
    ((imm >> 20 & 1) << 31)
        | ((imm >> 1 & 0x3FF) << 21)
        | ((imm >> 11 & 1) << 20)
        | ((imm >> 12 & 0xFF) << 12)
        | (rd << 7)
        | 0x6F
}

/// Number of words a source instruction occupies (for label layout).
fn words_for(mnemonic: &str) -> u32 {
    match mnemonic {
        "li" => 2, // always lui+addi for deterministic layout
        _ => 1,
    }
}

/// Assembles RV32IM source into instruction words.
///
/// # Errors
///
/// Returns the first [`RvAsmError`] with its line number.
///
/// # Examples
///
/// ```
/// use hhpim_riscv::assemble_rv;
/// let code = assemble_rv("li x1, 42\necall").unwrap();
/// assert_eq!(code.len(), 3); // li expands to lui+addi
/// ```
pub fn assemble_rv(source: &str) -> Result<Vec<u32>, RvAsmError> {
    // Pass 1: label addresses.
    let mut labels: HashMap<String, u32> = HashMap::new();
    let mut addr = 0u32;
    for (ln, raw) in source.lines().enumerate() {
        let line = ln + 1;
        let code = raw.split('#').next().unwrap_or("").trim();
        if code.is_empty() {
            continue;
        }
        let mut rest = code;
        while let Some(colon) = rest.find(':') {
            let label = rest[..colon].trim();
            if label.is_empty() || label.contains(char::is_whitespace) {
                return Err(err(line, format!("bad label `{label}`")));
            }
            if labels.insert(label.to_string(), addr).is_some() {
                return Err(err(line, format!("duplicate label `{label}`")));
            }
            rest = rest[colon + 1..].trim();
        }
        if !rest.is_empty() {
            let mnemonic = rest.split_whitespace().next().expect("non-empty");
            addr += 4 * words_for(mnemonic);
        }
    }

    // Pass 2: encode.
    let mut out: Vec<u32> = Vec::new();
    for (ln, raw) in source.lines().enumerate() {
        let line = ln + 1;
        let code = raw.split('#').next().unwrap_or("").trim();
        if code.is_empty() {
            continue;
        }
        let mut rest = code;
        while let Some(colon) = rest.find(':') {
            rest = rest[colon + 1..].trim();
        }
        if rest.is_empty() {
            continue;
        }
        let mut parts = rest.split_whitespace();
        let mnemonic = parts.next().expect("non-empty");
        let ops: Vec<&str> = rest[mnemonic.len()..]
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .collect();
        let here = out.len() as u32 * 4;
        let target = |name: &str| -> Result<i64, RvAsmError> {
            if let Some(&a) = labels.get(name) {
                Ok(a as i64 - here as i64)
            } else {
                parse_imm(name, line)
            }
        };
        match mnemonic {
            "li" => {
                let rd = parse_reg(
                    ops.first().ok_or_else(|| err(line, "li needs rd, imm"))?,
                    line,
                )?;
                let imm = parse_imm(
                    ops.get(1).ok_or_else(|| err(line, "li needs rd, imm"))?,
                    line,
                )?;
                let imm = imm as i32;
                let lo = (imm << 20) >> 20; // sign-extended low 12
                let hi = (imm.wrapping_sub(lo)) as u32; // upper 20 in place
                out.push((hi & 0xFFFF_F000) | (rd << 7) | 0x37); // lui
                out.push(i_type(lo as i64, rd, 0, rd, 0x13)); // addi rd, rd, lo
            }
            "lui" => {
                let rd = parse_reg(ops[0], line)?;
                let imm = parse_imm(ops.get(1).ok_or_else(|| err(line, "lui needs imm"))?, line)?;
                out.push(((imm as u32) << 12) | (rd << 7) | 0x37);
            }
            "addi" | "andi" | "ori" | "xori" | "slti" | "sltiu" | "slli" | "srli" | "srai" => {
                if ops.len() != 3 {
                    return Err(err(line, format!("{mnemonic} needs rd, rs1, imm")));
                }
                let rd = parse_reg(ops[0], line)?;
                let rs1 = parse_reg(ops[1], line)?;
                let imm = parse_imm(ops[2], line)?;
                let (funct3, extra) = match mnemonic {
                    "addi" => (0, 0),
                    "slti" => (2, 0),
                    "sltiu" => (3, 0),
                    "xori" => (4, 0),
                    "ori" => (6, 0),
                    "andi" => (7, 0),
                    "slli" => (1, 0),
                    "srli" => (5, 0),
                    _ => (5, 0x400), // srai
                };
                out.push(i_type(imm | extra, rs1, funct3, rd, 0x13));
            }
            "add" | "sub" | "sll" | "slt" | "sltu" | "xor" | "srl" | "sra" | "or" | "and"
            | "mul" | "mulh" | "mulhsu" | "mulhu" | "div" | "divu" | "rem" | "remu" => {
                if ops.len() != 3 {
                    return Err(err(line, format!("{mnemonic} needs rd, rs1, rs2")));
                }
                let rd = parse_reg(ops[0], line)?;
                let rs1 = parse_reg(ops[1], line)?;
                let rs2 = parse_reg(ops[2], line)?;
                let (funct7, funct3) = match mnemonic {
                    "add" => (0x00, 0),
                    "sub" => (0x20, 0),
                    "sll" => (0x00, 1),
                    "slt" => (0x00, 2),
                    "sltu" => (0x00, 3),
                    "xor" => (0x00, 4),
                    "srl" => (0x00, 5),
                    "sra" => (0x20, 5),
                    "or" => (0x00, 6),
                    "and" => (0x00, 7),
                    "mul" => (0x01, 0),
                    "mulh" => (0x01, 1),
                    "mulhsu" => (0x01, 2),
                    "mulhu" => (0x01, 3),
                    "div" => (0x01, 4),
                    "divu" => (0x01, 5),
                    "rem" => (0x01, 6),
                    _ => (0x01, 7), // remu
                };
                out.push(r_type(funct7, rs2, rs1, funct3, rd, 0x33));
            }
            "lw" | "lb" | "lbu" => {
                let rd = parse_reg(ops[0], line)?;
                let (off, rs1) = parse_mem(
                    ops.get(1)
                        .ok_or_else(|| err(line, "load needs mem operand"))?,
                    line,
                )?;
                let funct3 = match mnemonic {
                    "lb" => 0,
                    "lw" => 2,
                    _ => 4,
                };
                out.push(i_type(off, rs1, funct3, rd, 0x03));
            }
            "sw" | "sb" => {
                let rs2 = parse_reg(ops[0], line)?;
                let (off, rs1) = parse_mem(
                    ops.get(1)
                        .ok_or_else(|| err(line, "store needs mem operand"))?,
                    line,
                )?;
                let funct3 = if mnemonic == "sb" { 0 } else { 2 };
                out.push(s_type(off, rs2, rs1, funct3, 0x23));
            }
            "beq" | "bne" | "blt" | "bge" | "bltu" | "bgeu" => {
                if ops.len() != 3 {
                    return Err(err(line, format!("{mnemonic} needs rs1, rs2, target")));
                }
                let rs1 = parse_reg(ops[0], line)?;
                let rs2 = parse_reg(ops[1], line)?;
                let off = target(ops[2])?;
                let funct3 = match mnemonic {
                    "beq" => 0,
                    "bne" => 1,
                    "blt" => 4,
                    "bge" => 5,
                    "bltu" => 6,
                    _ => 7,
                };
                out.push(b_type(off, rs2, rs1, funct3));
            }
            "jal" => {
                let rd = parse_reg(ops[0], line)?;
                let off = target(ops.get(1).ok_or_else(|| err(line, "jal needs target"))?)?;
                out.push(j_type(off, rd));
            }
            "jalr" => {
                if ops.len() != 3 {
                    return Err(err(line, "jalr needs rd, rs1, imm"));
                }
                let rd = parse_reg(ops[0], line)?;
                let rs1 = parse_reg(ops[1], line)?;
                let imm = parse_imm(ops[2], line)?;
                out.push(i_type(imm, rs1, 0, rd, 0x67));
            }
            "ecall" => out.push(0x0000_0073),
            "ebreak" => out.push(0x0010_0073),
            "nop" => out.push(i_type(0, 0, 0, 0, 0x13)),
            other => return Err(err(line, format!("unknown mnemonic `{other}`"))),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn li_expands_to_two_words() {
        assert_eq!(assemble_rv("li x5, 1").unwrap().len(), 2);
        assert_eq!(assemble_rv("li x5, 0x12345678").unwrap().len(), 2);
    }

    #[test]
    fn labels_resolve_forward_and_back() {
        let code = assemble_rv(
            "start: addi x1, x0, 1
             beq x1, x0, start
             jal x0, end
             nop
             end: ecall",
        )
        .unwrap();
        assert_eq!(code.len(), 5);
    }

    #[test]
    fn duplicate_label_rejected() {
        let e = assemble_rv("a: nop\na: nop").unwrap_err();
        assert!(e.message.contains("duplicate"));
        assert_eq!(e.line, 2);
    }

    #[test]
    fn unknown_mnemonic_rejected() {
        let e = assemble_rv("frob x1, x2").unwrap_err();
        assert!(e.message.contains("unknown mnemonic"));
    }

    #[test]
    fn bad_register_rejected() {
        let e = assemble_rv("add x1, x99, x2").unwrap_err();
        assert!(e.message.contains("out of range"));
    }

    #[test]
    fn memory_operands() {
        // sw x2, 8(x1) — S-type split immediate.
        let w = assemble_rv("sw x2, 8(x1)").unwrap()[0];
        assert_eq!(w & 0x7F, 0x23);
        // lw x3, -4(x2)
        let w = assemble_rv("lw x3, -4(x2)").unwrap()[0];
        assert_eq!(w & 0x7F, 0x03);
    }

    #[test]
    fn encodes_known_words() {
        // addi x1, x0, 5 => 0x00500093
        assert_eq!(assemble_rv("addi x1, x0, 5").unwrap()[0], 0x0050_0093);
        // add x3, x1, x2 => 0x002081B3
        assert_eq!(assemble_rv("add x3, x1, x2").unwrap()[0], 0x0020_81B3);
        // ecall
        assert_eq!(assemble_rv("ecall").unwrap()[0], 0x0000_0073);
    }
}
