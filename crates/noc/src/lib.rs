//! # hhpim-noc — lightweight system interconnect
//!
//! The paper's processor uses µNoC, "a lightweight Network-on-Chip
//! optimized for edge devices", to connect the Rocket core, system
//! memory and the HH-PIM block over AXI (Fig. 3). This crate models
//! that substrate at the transfer level: a ring of routers moving
//! fixed-size flits with per-hop latency and energy, plus an AXI-like
//! burst interface on top.
//!
//! # Examples
//!
//! ```
//! use hhpim_noc::{Ring, NodeId, Transfer};
//! use hhpim_sim::SimTime;
//!
//! // Core (0) sends a 64-byte burst to the PIM block (2) on a 4-node ring.
//! let mut ring = Ring::new(4);
//! let done = ring
//!     .transfer(SimTime::ZERO, Transfer { from: NodeId(0), to: NodeId(2), bytes: 64 })
//!     .unwrap();
//! assert!(done > SimTime::ZERO);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::fmt;
use hhpim_mem::{Energy, EnergyLedger};
use hhpim_sim::{BusyResource, SimDuration, SimTime};

/// A node endpoint on the interconnect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A burst transfer request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transfer {
    /// Source node.
    pub from: NodeId,
    /// Destination node.
    pub to: NodeId,
    /// Payload size in bytes.
    pub bytes: usize,
}

/// Interconnect errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NocError {
    /// A node id beyond the ring size.
    UnknownNode(NodeId),
    /// Zero-byte transfer.
    EmptyTransfer,
}

impl fmt::Display for NocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NocError::UnknownNode(n) => write!(f, "unknown node {n}"),
            NocError::EmptyTransfer => write!(f, "zero-byte transfer"),
        }
    }
}

impl std::error::Error for NocError {}

/// Ring parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RingConfig {
    /// Flit payload in bytes.
    pub flit_bytes: usize,
    /// Latency of one router hop per flit.
    pub hop_latency: SimDuration,
    /// Energy of one router hop per flit.
    pub hop_energy: Energy,
    /// Serialization interval between flits at injection.
    pub injection_interval: SimDuration,
}

impl Default for RingConfig {
    /// Edge-scale defaults: 8-byte flits, 1 ns hops, 0.8 pJ per
    /// flit-hop (µNoC-class figures at 45 nm).
    fn default() -> Self {
        RingConfig {
            flit_bytes: 8,
            hop_latency: SimDuration::from_ns(1),
            hop_energy: Energy::from_pj(0.8),
            injection_interval: SimDuration::from_ns(1),
        }
    }
}

/// Energy categories reported by the ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum NocEnergyCat {
    /// Router/link traversal energy.
    Hops,
}

/// A unidirectional ring interconnect of `n` routers.
#[derive(Debug, Clone)]
pub struct Ring {
    n: usize,
    config: RingConfig,
    links: Vec<BusyResource>,
    ledger: EnergyLedger<NocEnergyCat>,
    flits_moved: u64,
}

impl Ring {
    /// Creates a ring of `n` nodes with default parameters.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn new(n: usize) -> Self {
        Self::with_config(n, RingConfig::default())
    }

    /// Creates a ring with explicit parameters.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or `flit_bytes == 0`.
    pub fn with_config(n: usize, config: RingConfig) -> Self {
        assert!(n >= 2, "ring needs at least two nodes");
        assert!(config.flit_bytes > 0, "flits must carry payload");
        Ring {
            n,
            config,
            links: vec![BusyResource::new(); n],
            ledger: EnergyLedger::new(),
            flits_moved: 0,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the ring is empty (never true).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Hops from `from` to `to` along the ring direction.
    pub fn hops(&self, from: NodeId, to: NodeId) -> usize {
        (to.0 + self.n - from.0) % self.n
    }

    /// Total energy spent so far.
    pub fn total_energy(&self) -> Energy {
        self.ledger.total()
    }

    /// Flits moved so far.
    pub fn flits_moved(&self) -> u64 {
        self.flits_moved
    }

    /// Issues a burst transfer at `at`; returns the delivery instant of
    /// the last flit.
    ///
    /// Flits serialize at the injection port and pipeline through the
    /// ring: the first flit pays full hop latency, subsequent flits
    /// stream behind it.
    ///
    /// # Errors
    ///
    /// Returns [`NocError`] for unknown nodes or empty transfers.
    pub fn transfer(&mut self, at: SimTime, t: Transfer) -> Result<SimTime, NocError> {
        if t.from.0 >= self.n {
            return Err(NocError::UnknownNode(t.from));
        }
        if t.to.0 >= self.n {
            return Err(NocError::UnknownNode(t.to));
        }
        if t.bytes == 0 {
            return Err(NocError::EmptyTransfer);
        }
        let flits = t.bytes.div_ceil(self.config.flit_bytes) as u64;
        let hops = self.hops(t.from, t.to).max(1) as u64;
        // Injection serialization on the source link.
        let inject_done = self.links[t.from.0].acquire(at, self.config.injection_interval * flits);
        // Pipeline: last flit arrives hops×hop_latency after injection.
        let delivered = inject_done + self.config.hop_latency * hops;
        self.flits_moved += flits;
        self.ledger
            .add(NocEnergyCat::Hops, self.config.hop_energy * (flits * hops));
        Ok(delivered)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hop_count_wraps() {
        let ring = Ring::new(4);
        assert_eq!(ring.hops(NodeId(0), NodeId(2)), 2);
        assert_eq!(ring.hops(NodeId(3), NodeId(0)), 1);
        assert_eq!(ring.hops(NodeId(1), NodeId(1)), 0);
    }

    #[test]
    fn transfer_latency_scales_with_size_and_distance() {
        let mut ring = Ring::new(4);
        let near = ring
            .transfer(
                SimTime::ZERO,
                Transfer {
                    from: NodeId(0),
                    to: NodeId(1),
                    bytes: 8,
                },
            )
            .unwrap();
        let mut ring2 = Ring::new(4);
        let far = ring2
            .transfer(
                SimTime::ZERO,
                Transfer {
                    from: NodeId(0),
                    to: NodeId(3),
                    bytes: 8,
                },
            )
            .unwrap();
        assert!(far > near);
        let mut ring3 = Ring::new(4);
        let big = ring3
            .transfer(
                SimTime::ZERO,
                Transfer {
                    from: NodeId(0),
                    to: NodeId(1),
                    bytes: 256,
                },
            )
            .unwrap();
        assert!(big > near);
    }

    #[test]
    fn energy_accrues_per_flit_hop() {
        let mut ring = Ring::new(4);
        ring.transfer(
            SimTime::ZERO,
            Transfer {
                from: NodeId(0),
                to: NodeId(2),
                bytes: 16,
            },
        )
        .unwrap();
        // 2 flits × 2 hops × 0.8 pJ.
        assert!((ring.total_energy().as_pj() - 3.2).abs() < 1e-9);
        assert_eq!(ring.flits_moved(), 2);
    }

    #[test]
    fn injection_port_serializes_bursts() {
        let mut ring = Ring::new(4);
        let t = Transfer {
            from: NodeId(0),
            to: NodeId(1),
            bytes: 64,
        };
        let a = ring.transfer(SimTime::ZERO, t).unwrap();
        let b = ring.transfer(SimTime::ZERO, t).unwrap();
        assert!(b > a, "second burst queues behind the first");
    }

    #[test]
    fn errors() {
        let mut ring = Ring::new(2);
        assert_eq!(
            ring.transfer(
                SimTime::ZERO,
                Transfer {
                    from: NodeId(5),
                    to: NodeId(0),
                    bytes: 1
                }
            ),
            Err(NocError::UnknownNode(NodeId(5)))
        );
        assert_eq!(
            ring.transfer(
                SimTime::ZERO,
                Transfer {
                    from: NodeId(0),
                    to: NodeId(1),
                    bytes: 0
                }
            ),
            Err(NocError::EmptyTransfer)
        );
        assert_eq!(NocError::EmptyTransfer.to_string(), "zero-byte transfer");
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn tiny_ring_rejected() {
        Ring::new(1);
    }
}
