//! # hhpim-fpga — FPGA resource estimation (Table II)
//!
//! The paper prototypes its processors on a Genesys2 (Kintex-7) board
//! and reports per-IP resource utilization (Table II). This crate
//! regenerates that table from a structural cost model: each component
//! is described by its datapath widths and storage, and per-primitive
//! costs calibrated against the published Table II rows produce
//! LUT/FF/BRAM/DSP estimates for arbitrary configurations (e.g. wider
//! clusters for ablations).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::fmt;
use core::iter::Sum;
use core::ops::Add;

/// An FPGA resource bundle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Resources {
    /// Look-up tables.
    pub luts: u32,
    /// Flip-flops.
    pub ffs: u32,
    /// 36 kb block RAMs.
    pub brams: u32,
    /// DSP slices.
    pub dsps: u32,
}

impl Add for Resources {
    type Output = Resources;
    fn add(self, rhs: Resources) -> Resources {
        Resources {
            luts: self.luts + rhs.luts,
            ffs: self.ffs + rhs.ffs,
            brams: self.brams + rhs.brams,
            dsps: self.dsps + rhs.dsps,
        }
    }
}

impl Sum for Resources {
    fn sum<I: Iterator<Item = Resources>>(iter: I) -> Self {
        iter.fold(Resources::default(), |a, b| a + b)
    }
}

impl fmt::Display for Resources {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} LUTs, {} FFs, {} BRAMs, {} DSPs",
            self.luts, self.ffs, self.brams, self.dsps
        )
    }
}

/// The IPs of the paper's prototype (Table II rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Component {
    /// RISC-V Rocket core.
    RocketCore,
    /// UART/SPI/I2C/JTAG peripherals.
    Peripherals,
    /// µNoC system interconnect.
    SystemInterconnect,
    /// One HP-PIM module (memory + PE + interface).
    HpPimModule,
    /// The HP-PIM cluster controller.
    HpPimController,
    /// One LP-PIM module.
    LpPimModule,
    /// The LP-PIM cluster controller.
    LpPimController,
}

impl Component {
    /// Published Table II utilization for this IP.
    pub fn table_ii(self) -> Resources {
        match self {
            Component::RocketCore => Resources {
                luts: 14_998,
                ffs: 9_762,
                brams: 12,
                dsps: 4,
            },
            Component::Peripherals => Resources {
                luts: 4_704,
                ffs: 7_159,
                brams: 0,
                dsps: 0,
            },
            Component::SystemInterconnect => Resources {
                luts: 5_237,
                ffs: 7_720,
                brams: 0,
                dsps: 0,
            },
            Component::HpPimModule => Resources {
                luts: 968,
                ffs: 1_055,
                brams: 32,
                dsps: 2,
            },
            Component::HpPimController => Resources {
                luts: 2_823,
                ffs: 875,
                brams: 0,
                dsps: 0,
            },
            Component::LpPimModule => Resources {
                luts: 1_074,
                ffs: 1_094,
                brams: 32,
                dsps: 2,
            },
            Component::LpPimController => Resources {
                luts: 2_149,
                ffs: 875,
                brams: 0,
                dsps: 0,
            },
        }
    }

    /// Paper name of the IP.
    pub fn name(self) -> &'static str {
        match self {
            Component::RocketCore => "RISC-V Rocket Core",
            Component::Peripherals => "Peripherals",
            Component::SystemInterconnect => "System Interconnect",
            Component::HpPimModule => "HP-PIM Module",
            Component::HpPimController => "HP-PIM Module Controller",
            Component::LpPimModule => "LP-PIM Module",
            Component::LpPimController => "LP-PIM Module Controller",
        }
    }
}

/// Structural description of a PIM module for estimation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModuleDescriptor {
    /// Total module memory in kB (MRAM-emulation + SRAM map to BRAM).
    pub memory_kb: u32,
    /// MAC datapath width in bits.
    pub mac_width_bits: u32,
    /// Whether the module synchronizes two memory types in LOAD
    /// (hybrid modules carry extra interface muxing).
    pub hybrid_interface: bool,
    /// Extra control depth for low-power handshaking (LP modules are
    /// slightly larger in Table II despite identical datapaths).
    pub lp_handshake: bool,
}

/// Per-primitive calibration constants, fitted so that the paper's
/// module shapes reproduce Table II within a few percent.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostFactors {
    /// LUTs per bit of MAC datapath.
    pub luts_per_mac_bit: f64,
    /// FFs per bit of MAC datapath (pipeline registers).
    pub ffs_per_mac_bit: f64,
    /// Base LUTs for module FSM + interface.
    pub module_base_luts: f64,
    /// Base FFs for module FSM + interface.
    pub module_base_ffs: f64,
    /// Extra LUT factor for hybrid (dual-memory) interfaces.
    pub hybrid_factor: f64,
    /// Extra LUT factor for LP handshaking.
    pub lp_factor: f64,
    /// kB of memory per 36 kb BRAM (4 kB, i.e. 32 kb data + ECC slack).
    pub kb_per_bram: f64,
    /// DSPs per 16 bits of MAC width.
    pub dsps_per_16_bits: f64,
}

impl Default for CostFactors {
    fn default() -> Self {
        CostFactors {
            luts_per_mac_bit: 9.0,
            ffs_per_mac_bit: 14.0,
            module_base_luts: 680.0,
            module_base_ffs: 607.0,
            hybrid_factor: 1.0,
            lp_factor: 1.11,
            kb_per_bram: 4.0,
            dsps_per_16_bits: 1.0,
        }
    }
}

/// Estimates resources for a module described by `desc`.
pub fn estimate_module(desc: &ModuleDescriptor, f: &CostFactors) -> Resources {
    let mut luts = f.module_base_luts + f.luts_per_mac_bit * desc.mac_width_bits as f64;
    if desc.hybrid_interface {
        luts *= f.hybrid_factor;
    }
    if desc.lp_handshake {
        luts *= f.lp_factor;
    }
    let ffs = f.module_base_ffs
        + f.ffs_per_mac_bit * desc.mac_width_bits as f64
        + if desc.lp_handshake { 39.0 } else { 0.0 };
    Resources {
        luts: luts.round() as u32,
        ffs: ffs.round() as u32,
        brams: (desc.memory_kb as f64 / f.kb_per_bram).ceil() as u32,
        dsps: ((desc.mac_width_bits as f64 / 16.0) * f.dsps_per_16_bits).ceil() as u32,
    }
}

/// The paper's HP-PIM module shape (64 kB + 64 kB, 32-bit MAC path).
pub fn hp_module_descriptor() -> ModuleDescriptor {
    ModuleDescriptor {
        memory_kb: 128,
        mac_width_bits: 32,
        hybrid_interface: true,
        lp_handshake: false,
    }
}

/// The paper's LP-PIM module shape.
pub fn lp_module_descriptor() -> ModuleDescriptor {
    ModuleDescriptor {
        memory_kb: 128,
        mac_width_bits: 32,
        hybrid_interface: true,
        lp_handshake: true,
    }
}

/// One row of a regenerated Table II.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableRow {
    /// IP name.
    pub name: String,
    /// Estimated (or published) resources.
    pub resources: Resources,
}

/// Regenerates Table II for a cluster of `hp_modules` + `lp_modules`,
/// using estimates for the PIM rows and published values for the
/// non-PIM IPs (whose internals we do not model structurally).
pub fn table_ii_rows(hp_modules: u32, lp_modules: u32, f: &CostFactors) -> Vec<TableRow> {
    let hp = estimate_module(&hp_module_descriptor(), f);
    let lp = estimate_module(&lp_module_descriptor(), f);
    let mut rows = vec![
        TableRow {
            name: Component::RocketCore.name().into(),
            resources: Component::RocketCore.table_ii(),
        },
        TableRow {
            name: Component::Peripherals.name().into(),
            resources: Component::Peripherals.table_ii(),
        },
        TableRow {
            name: Component::SystemInterconnect.name().into(),
            resources: Component::SystemInterconnect.table_ii(),
        },
        TableRow {
            name: Component::HpPimModule.name().into(),
            resources: hp,
        },
        TableRow {
            name: Component::HpPimController.name().into(),
            resources: Component::HpPimController.table_ii(),
        },
    ];
    // Cluster totals in Table II exceed modules + controller by the
    // CMD/MEM interface glue (HP: 6951 vs 4x968+2823): ~245 LUTs and
    // ~365 FFs per cluster, included here as a calibrated constant.
    const GLUE_LUTS: u32 = 245;
    const GLUE_FFS: u32 = 365;
    let hp_cluster = Resources {
        luts: hp.luts * hp_modules + Component::HpPimController.table_ii().luts + GLUE_LUTS,
        ffs: hp.ffs * hp_modules + Component::HpPimController.table_ii().ffs + GLUE_FFS,
        brams: hp.brams * hp_modules,
        dsps: hp.dsps * hp_modules,
    };
    rows.push(TableRow {
        name: format!("Total (HP-PIM cluster x{hp_modules})"),
        resources: hp_cluster,
    });
    if lp_modules > 0 {
        rows.push(TableRow {
            name: Component::LpPimModule.name().into(),
            resources: lp,
        });
        rows.push(TableRow {
            name: Component::LpPimController.name().into(),
            resources: Component::LpPimController.table_ii(),
        });
        let lp_cluster = Resources {
            luts: lp.luts * lp_modules + Component::LpPimController.table_ii().luts + GLUE_LUTS,
            ffs: lp.ffs * lp_modules + Component::LpPimController.table_ii().ffs + GLUE_FFS,
            brams: lp.brams * lp_modules,
            dsps: lp.dsps * lp_modules,
        };
        rows.push(TableRow {
            name: format!("Total (LP-PIM cluster x{lp_modules})"),
            resources: lp_cluster,
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pct(a: u32, b: u32) -> f64 {
        (a as f64 - b as f64).abs() / b as f64 * 100.0
    }

    #[test]
    fn hp_module_estimate_matches_table_ii() {
        let est = estimate_module(&hp_module_descriptor(), &CostFactors::default());
        let published = Component::HpPimModule.table_ii();
        assert!(
            pct(est.luts, published.luts) < 5.0,
            "luts {est} vs {published}"
        );
        assert!(
            pct(est.ffs, published.ffs) < 5.0,
            "ffs {est} vs {published}"
        );
        assert_eq!(est.brams, published.brams);
        assert_eq!(est.dsps, published.dsps);
    }

    #[test]
    fn lp_module_estimate_matches_table_ii() {
        let est = estimate_module(&lp_module_descriptor(), &CostFactors::default());
        let published = Component::LpPimModule.table_ii();
        assert!(
            pct(est.luts, published.luts) < 5.0,
            "luts {est} vs {published}"
        );
        assert!(
            pct(est.ffs, published.ffs) < 5.0,
            "ffs {est} vs {published}"
        );
        assert_eq!(est.brams, published.brams);
    }

    #[test]
    fn cluster_totals_match_table_ii() {
        // Paper totals: HP cluster 6951 LUTs / 5460 FFs / 128 BRAM / 8 DSP,
        // LP cluster 6680 / 5616 / 128 / 8 (4 modules each).
        let rows = table_ii_rows(4, 4, &CostFactors::default());
        let hp_total = &rows
            .iter()
            .find(|r| r.name.contains("HP-PIM cluster"))
            .unwrap()
            .resources;
        assert!(pct(hp_total.luts, 6_951) < 6.0, "{hp_total}");
        assert!(pct(hp_total.ffs, 5_460) < 6.0, "{hp_total}");
        assert_eq!(hp_total.brams, 128);
        assert_eq!(hp_total.dsps, 8);
        let lp_total = &rows
            .iter()
            .find(|r| r.name.contains("LP-PIM cluster"))
            .unwrap()
            .resources;
        assert!(pct(lp_total.luts, 6_680) < 6.0, "{lp_total}");
        assert!(pct(lp_total.ffs, 5_616) < 6.0, "{lp_total}");
        assert_eq!(lp_total.brams, 128);
    }

    #[test]
    fn lp_modules_cost_more_logic_than_hp() {
        let f = CostFactors::default();
        let hp = estimate_module(&hp_module_descriptor(), &f);
        let lp = estimate_module(&lp_module_descriptor(), &f);
        assert!(
            lp.luts > hp.luts,
            "Table II shows LP modules slightly larger"
        );
        assert!(lp.ffs > hp.ffs);
    }

    #[test]
    fn homogeneous_table_omits_lp_rows() {
        let rows = table_ii_rows(8, 0, &CostFactors::default());
        assert!(rows.iter().all(|r| !r.name.contains("LP-PIM")));
    }

    #[test]
    fn resources_add_and_sum() {
        let a = Resources {
            luts: 1,
            ffs: 2,
            brams: 3,
            dsps: 4,
        };
        let total: Resources = [a, a].into_iter().sum();
        assert_eq!(
            total,
            Resources {
                luts: 2,
                ffs: 4,
                brams: 6,
                dsps: 8
            }
        );
        assert_eq!(total.to_string(), "2 LUTs, 4 FFs, 6 BRAMs, 8 DSPs");
    }

    #[test]
    fn estimate_scales_with_memory() {
        let f = CostFactors::default();
        let small = estimate_module(
            &ModuleDescriptor {
                memory_kb: 64,
                ..hp_module_descriptor()
            },
            &f,
        );
        let big = estimate_module(
            &ModuleDescriptor {
                memory_kb: 256,
                ..hp_module_descriptor()
            },
            &f,
        );
        assert!(big.brams > small.brams);
    }
}
