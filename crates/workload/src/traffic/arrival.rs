//! Stochastic arrival processes: *when* the next inference request
//! lands, measured in slice units.
//!
//! Every process is a deterministic state machine over the vendored
//! SplitMix64 generator: given the same seed and the same
//! configuration, the gap sequence is bit-identical across runs and
//! platforms (the [determinism contract](super) the traffic engine
//! builds on). Rates are expressed in **arrivals per slice**, so a
//! `Poisson::new(3.0)` feed offers on average three requests every
//! time slice regardless of the wall-clock slice duration a pacer
//! later chooses.

use core::fmt;
use rand::rngs::StdRng;
use rand::Rng;

/// A point process producing inter-arrival gaps in slice units.
///
/// Implementations draw *all* their randomness from the `StdRng`
/// handed to [`ArrivalProcess::next_gap`] — never from ambient state —
/// so a process cloned before first use and replayed against an
/// identically seeded generator reproduces the same arrival sequence
/// bit for bit.
pub trait ArrivalProcess: fmt::Debug + Send {
    /// Human-readable description, e.g. `poisson(λ=3)` (used in
    /// source labels and reports).
    fn label(&self) -> String;

    /// The next inter-arrival gap in slice units: finite and
    /// strictly positive. Advances the process's internal state (the
    /// MMPP phase, the diurnal clock) as a pure function of the draws
    /// it makes on `rng`.
    fn next_gap(&mut self, rng: &mut StdRng) -> f64;

    /// Boxed clone. Cloning snapshots the process state; cloning a
    /// never-advanced process yields a pristine one.
    fn clone_box(&self) -> Box<dyn ArrivalProcess>;
}

impl Clone for Box<dyn ArrivalProcess> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

fn assert_rate(rate: f64, what: &str) {
    assert!(
        rate.is_finite() && rate > 0.0,
        "{what} must be a positive finite rate, got {rate}"
    );
}

/// Memoryless arrivals at a constant mean rate λ: exponential gaps
/// with mean `1/λ` — the standard open-loop traffic model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Poisson {
    rate: f64,
}

impl Poisson {
    /// A Poisson process offering `rate` arrivals per slice on
    /// average.
    ///
    /// # Panics
    ///
    /// Panics unless `rate` is finite and positive.
    pub fn new(rate: f64) -> Self {
        assert_rate(rate, "poisson rate");
        Poisson { rate }
    }

    /// The configured mean arrival rate λ.
    pub fn rate(&self) -> f64 {
        self.rate
    }
}

impl ArrivalProcess for Poisson {
    fn label(&self) -> String {
        format!("poisson(λ={})", self.rate)
    }

    fn next_gap(&mut self, rng: &mut StdRng) -> f64 {
        rng.gen_exp(self.rate).max(f64::MIN_POSITIVE)
    }

    fn clone_box(&self) -> Box<dyn ArrivalProcess> {
        Box::new(*self)
    }
}

/// A metronome: arrivals at exactly `1/rate` slice intervals, no
/// randomness at all. The control case for every statistical claim
/// about the stochastic processes, and the right feed for replaying
/// fixed-rate SLO experiments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConstantRate {
    rate: f64,
}

impl ConstantRate {
    /// A deterministic process offering exactly `rate` arrivals per
    /// slice.
    ///
    /// # Panics
    ///
    /// Panics unless `rate` is finite and positive.
    pub fn new(rate: f64) -> Self {
        assert_rate(rate, "constant rate");
        ConstantRate { rate }
    }

    /// The configured arrival rate.
    pub fn rate(&self) -> f64 {
        self.rate
    }
}

impl ArrivalProcess for ConstantRate {
    fn label(&self) -> String {
        format!("constant({}/slice)", self.rate)
    }

    fn next_gap(&mut self, _rng: &mut StdRng) -> f64 {
        1.0 / self.rate
    }

    fn clone_box(&self) -> Box<dyn ArrivalProcess> {
        Box::new(*self)
    }
}

/// Which phase a [`BurstyOnOff`] process is in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Burst,
    Idle,
}

/// A two-state Markov-modulated Poisson process (MMPP-2): the process
/// alternates between a *burst* phase (high rate) and an *idle* phase
/// (low rate), dwelling in each for an exponentially distributed
/// time. This is the classic model for bursty edge traffic — a camera
/// that streams frames while motion is detected and trickles
/// keep-alives otherwise.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurstyOnOff {
    burst_rate: f64,
    idle_rate: f64,
    mean_burst: f64,
    mean_idle: f64,
    phase: Phase,
    /// Dwell time left in the current phase; `None` until the first
    /// gap draws it.
    remaining: Option<f64>,
}

impl BurstyOnOff {
    /// An MMPP-2 starting in the burst phase.
    ///
    /// `burst_rate`/`idle_rate` are arrivals per slice within each
    /// phase; `mean_burst`/`mean_idle` are the mean phase dwell times
    /// in slices.
    ///
    /// # Panics
    ///
    /// Panics unless all four parameters are finite and positive.
    pub fn new(burst_rate: f64, idle_rate: f64, mean_burst: f64, mean_idle: f64) -> Self {
        assert_rate(burst_rate, "burst rate");
        assert_rate(idle_rate, "idle rate");
        assert_rate(mean_burst, "mean burst dwell");
        assert_rate(mean_idle, "mean idle dwell");
        BurstyOnOff {
            burst_rate,
            idle_rate,
            mean_burst,
            mean_idle,
            phase: Phase::Burst,
            remaining: None,
        }
    }

    /// The long-run mean arrival rate: the dwell-weighted average of
    /// the two phase rates.
    pub fn mean_rate(&self) -> f64 {
        (self.burst_rate * self.mean_burst + self.idle_rate * self.mean_idle)
            / (self.mean_burst + self.mean_idle)
    }

    fn phase_rate(&self) -> f64 {
        match self.phase {
            Phase::Burst => self.burst_rate,
            Phase::Idle => self.idle_rate,
        }
    }

    fn mean_dwell(&self) -> f64 {
        match self.phase {
            Phase::Burst => self.mean_burst,
            Phase::Idle => self.mean_idle,
        }
    }
}

impl ArrivalProcess for BurstyOnOff {
    fn label(&self) -> String {
        format!(
            "bursty(burst λ={} for ~{}, idle λ={} for ~{})",
            self.burst_rate, self.mean_burst, self.idle_rate, self.mean_idle
        )
    }

    fn next_gap(&mut self, rng: &mut StdRng) -> f64 {
        let mut elapsed = 0.0;
        loop {
            let remaining = match self.remaining {
                Some(r) => r,
                None => {
                    let dwell = rng.gen_exp(1.0 / self.mean_dwell());
                    self.remaining = Some(dwell);
                    dwell
                }
            };
            // The exponential clock is memoryless, so a candidate gap
            // that overshoots the phase boundary can be discarded and
            // redrawn at the next phase's rate without biasing either
            // phase's statistics.
            let gap = rng.gen_exp(self.phase_rate());
            if gap <= remaining {
                self.remaining = Some(remaining - gap);
                return (elapsed + gap).max(f64::MIN_POSITIVE);
            }
            elapsed += remaining;
            self.remaining = None;
            self.phase = match self.phase {
                Phase::Burst => Phase::Idle,
                Phase::Idle => Phase::Burst,
            };
        }
    }

    fn clone_box(&self) -> Box<dyn ArrivalProcess> {
        Box::new(*self)
    }
}

/// A non-homogeneous Poisson process whose rate follows a periodic
/// curve — the day/night cycle of real serving traffic, scaled down
/// to slice units.
///
/// The curve is a piecewise-constant profile of non-negative rate
/// multipliers spread evenly over `period` slices; the instantaneous
/// rate at time `t` is `base_rate × curve[⌊(t mod period) / seg⌋]`.
/// Sampling uses Lewis–Shedler thinning against the curve's peak, so
/// the sequence stays exact (not slice-discretized) and deterministic
/// per seed.
#[derive(Debug, Clone, PartialEq)]
pub struct Diurnal {
    base_rate: f64,
    curve: Vec<f64>,
    period: f64,
    /// Absolute time of the last arrival (the process's own clock).
    clock: f64,
}

impl Diurnal {
    /// A diurnal process over `period` slices with the given rate
    /// `curve` (multipliers of `base_rate`).
    ///
    /// # Panics
    ///
    /// Panics unless `base_rate` and `period` are finite and
    /// positive, the curve is non-empty, every multiplier is finite
    /// and non-negative, and at least one multiplier is positive.
    pub fn new(base_rate: f64, period: f64, curve: Vec<f64>) -> Self {
        assert_rate(base_rate, "diurnal base rate");
        assert_rate(period, "diurnal period");
        assert!(!curve.is_empty(), "diurnal curve must be non-empty");
        assert!(
            curve.iter().all(|&m| m.is_finite() && m >= 0.0),
            "diurnal curve multipliers must be finite and non-negative: {curve:?}"
        );
        assert!(
            curve.iter().any(|&m| m > 0.0),
            "diurnal curve must have at least one positive multiplier"
        );
        Diurnal {
            base_rate,
            curve,
            period,
            clock: 0.0,
        }
    }

    /// The instantaneous arrival rate at absolute time `t` (slices).
    pub fn rate_at(&self, t: f64) -> f64 {
        let pos = (t.rem_euclid(self.period)) / self.period * self.curve.len() as f64;
        self.base_rate * self.curve[(pos as usize).min(self.curve.len() - 1)]
    }

    /// The curve's peak rate (the thinning envelope).
    pub fn peak_rate(&self) -> f64 {
        self.base_rate * self.curve.iter().cloned().fold(0.0, f64::max)
    }

    /// The long-run mean arrival rate (curve average × base rate).
    pub fn mean_rate(&self) -> f64 {
        self.base_rate * self.curve.iter().sum::<f64>() / self.curve.len() as f64
    }
}

impl ArrivalProcess for Diurnal {
    fn label(&self) -> String {
        format!(
            "diurnal(base λ={}, period {}, {} segments)",
            self.base_rate,
            self.period,
            self.curve.len()
        )
    }

    fn next_gap(&mut self, rng: &mut StdRng) -> f64 {
        let peak = self.peak_rate();
        let start = self.clock;
        loop {
            self.clock += rng.gen_exp(peak).max(f64::MIN_POSITIVE);
            // Thinning: accept a candidate with probability
            // rate(t)/peak; rejected candidates only advance the
            // envelope clock.
            if rng.gen_bool((self.rate_at(self.clock) / peak).clamp(0.0, 1.0)) {
                return (self.clock - start).max(f64::MIN_POSITIVE);
            }
        }
    }

    fn clone_box(&self) -> Box<dyn ArrivalProcess> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn gaps(process: &mut dyn ArrivalProcess, seed: u64, n: usize) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| process.next_gap(&mut rng)).collect()
    }

    #[test]
    fn gaps_are_positive_and_finite() {
        let mut procs: Vec<Box<dyn ArrivalProcess>> = vec![
            Box::new(Poisson::new(3.0)),
            Box::new(ConstantRate::new(0.5)),
            Box::new(BurstyOnOff::new(8.0, 0.2, 4.0, 6.0)),
            Box::new(Diurnal::new(2.0, 24.0, vec![0.2, 1.0, 0.6, 0.1])),
        ];
        for p in &mut procs {
            for g in gaps(p.as_mut(), 99, 2000) {
                assert!(g.is_finite() && g > 0.0, "{}: gap {g}", p.label());
            }
        }
    }

    #[test]
    fn same_seed_same_gaps() {
        let mut a = BurstyOnOff::new(8.0, 0.2, 4.0, 6.0);
        let mut b = a;
        assert_eq!(gaps(&mut a, 7, 500), gaps(&mut b, 7, 500));
        let mut c = BurstyOnOff::new(8.0, 0.2, 4.0, 6.0);
        assert_ne!(gaps(&mut a, 7, 500), gaps(&mut c, 8, 500));
    }

    #[test]
    fn constant_rate_is_a_metronome() {
        let mut c = ConstantRate::new(4.0);
        assert!(gaps(&mut c, 0, 100).iter().all(|&g| g == 0.25));
    }

    #[test]
    fn poisson_mean_gap_tracks_rate() {
        let mut p = Poisson::new(5.0);
        let gs = gaps(&mut p, 42, 50_000);
        let mean = gs.iter().sum::<f64>() / gs.len() as f64;
        assert!((mean * 5.0 - 1.0).abs() < 0.03, "mean gap {mean}");
    }

    #[test]
    fn bursty_long_run_rate_matches_dwell_weighted_mean() {
        let mut p = BurstyOnOff::new(10.0, 0.5, 3.0, 5.0);
        let expect = p.mean_rate();
        let gs = gaps(&mut p, 11, 100_000);
        let rate = gs.len() as f64 / gs.iter().sum::<f64>();
        assert!(
            (rate / expect - 1.0).abs() < 0.05,
            "observed {rate} vs {expect}"
        );
    }

    #[test]
    fn bursty_has_heavier_tail_than_poisson() {
        // Matched mean rates: the MMPP's gap variance must exceed the
        // memoryless process's (burstiness = overdispersion).
        let mut b = BurstyOnOff::new(10.0, 0.1, 2.0, 8.0);
        let mut p = Poisson::new(b.mean_rate());
        let var = |gs: &[f64]| {
            let m = gs.iter().sum::<f64>() / gs.len() as f64;
            gs.iter().map(|g| (g - m) * (g - m)).sum::<f64>() / gs.len() as f64
        };
        assert!(var(&gaps(&mut b, 3, 50_000)) > var(&gaps(&mut p, 3, 50_000)));
    }

    #[test]
    fn diurnal_rate_follows_curve() {
        let d = Diurnal::new(2.0, 8.0, vec![1.0, 0.25]);
        assert_eq!(d.rate_at(0.0), 2.0);
        assert_eq!(d.rate_at(3.9), 2.0);
        assert_eq!(d.rate_at(4.1), 0.5);
        assert_eq!(d.rate_at(12.1), 0.5); // wraps around the period
        assert_eq!(d.peak_rate(), 2.0);
        assert_eq!(d.mean_rate(), 1.25);
    }

    #[test]
    fn diurnal_long_run_rate_matches_curve_mean() {
        let mut d = Diurnal::new(3.0, 10.0, vec![0.1, 0.5, 1.0, 0.5]);
        let expect = d.mean_rate();
        let gs = gaps(&mut d, 21, 100_000);
        let rate = gs.len() as f64 / gs.iter().sum::<f64>();
        assert!(
            (rate / expect - 1.0).abs() < 0.05,
            "observed {rate} vs {expect}"
        );
    }

    #[test]
    fn diurnal_quiet_segments_carry_fewer_arrivals() {
        let mut d = Diurnal::new(4.0, 10.0, vec![1.0, 0.05]);
        let mut rng = StdRng::seed_from_u64(17);
        let (mut busy, mut quiet) = (0u64, 0u64);
        let mut t = 0.0;
        for _ in 0..20_000 {
            t += d.next_gap(&mut rng);
            if t.rem_euclid(10.0) < 5.0 {
                busy += 1;
            } else {
                quiet += 1;
            }
        }
        assert!(busy > quiet * 5, "busy {busy} vs quiet {quiet}");
    }

    #[test]
    #[should_panic(expected = "positive finite rate")]
    fn zero_rate_rejected() {
        Poisson::new(0.0);
    }

    #[test]
    #[should_panic(expected = "at least one positive multiplier")]
    fn all_zero_curve_rejected() {
        Diurnal::new(1.0, 4.0, vec![0.0, 0.0]);
    }
}
