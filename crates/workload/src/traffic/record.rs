//! Trace recording and replay with time warp.
//!
//! A [`TraceRecorder`] captures `(arrival time, load)` pairs from any
//! run — a live [`TrafficEngine`](super::TrafficEngine) tap, or an
//! engine observer capturing completed slices — into a
//! [`RecordedTrace`], a versioned on-disk JSON format (hand-rolled,
//! no new dependencies, mirroring `bench_gate`'s). A
//! [`ReplayTraffic`] then re-bins the recorded arrivals into
//! per-slice loads, optionally **time-warped**: compressed (warp > 1)
//! or dilated (warp < 1).
//!
//! Floating-point values are written with Rust's shortest round-trip
//! formatting, so save → load reproduces every sample bit for bit —
//! which is what makes "replay at warp 1.0 is bit-identical to the
//! original run" a checkable contract rather than a hope.

use super::SliceBinner;
use crate::scenario::{LoadTrace, TraceError};
use core::fmt;
use std::path::Path;
use std::sync::{Arc, Mutex};

/// Version stamp written into every recorded trace file.
pub const TRACE_FORMAT_VERSION: u32 = 1;

/// One captured arrival: when it landed (slice units) and how much
/// load it carried.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecordedArrival {
    /// Arrival time in slice units (non-negative, finite).
    pub time: f64,
    /// The arrival's load, a fraction of a slice in `[0, 1]`.
    pub load: f64,
}

/// Why a recorded trace could not be built, saved, or loaded.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TrafficError {
    /// An arrival's time is negative/non-finite, times go backwards,
    /// or a load leaves `[0, 1]`.
    InvalidArrival {
        /// Index of the offending arrival.
        index: usize,
        /// Its recorded time.
        time: f64,
        /// Its recorded load.
        load: f64,
    },
    /// The file carries a format version this build does not read.
    Version {
        /// Version found in the file.
        found: u32,
        /// Version this build writes and reads.
        supported: u32,
    },
    /// The file is not a well-formed recorded trace.
    Parse {
        /// What went wrong.
        message: String,
        /// Byte offset where parsing stopped.
        offset: usize,
    },
    /// The file could not be read or written.
    Io {
        /// The path involved.
        path: String,
        /// The OS error message.
        message: String,
    },
}

impl fmt::Display for TrafficError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrafficError::InvalidArrival { index, time, load } => write!(
                f,
                "invalid arrival #{index}: time {time}, load {load} \
                 (times must be finite, non-negative and non-decreasing; loads in [0, 1])"
            ),
            TrafficError::Version { found, supported } => write!(
                f,
                "recorded trace version {found} unsupported (this build reads {supported})"
            ),
            TrafficError::Parse { message, offset } => {
                write!(f, "malformed recorded trace at byte {offset}: {message}")
            }
            TrafficError::Io { path, message } => write!(f, "{path}: {message}"),
        }
    }
}

impl std::error::Error for TrafficError {}

/// A validated, versioned capture of `(arrival time, load)` pairs.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordedTrace {
    version: u32,
    label: String,
    arrivals: Vec<RecordedArrival>,
}

impl RecordedTrace {
    /// Builds a trace from captured arrivals, validating that times
    /// are finite, non-negative and non-decreasing, and loads are in
    /// `[0, 1]`.
    ///
    /// # Errors
    ///
    /// [`TrafficError::InvalidArrival`] naming the first offender.
    pub fn new(
        label: impl Into<String>,
        arrivals: Vec<RecordedArrival>,
    ) -> Result<Self, TrafficError> {
        let mut prev = 0.0f64;
        for (index, a) in arrivals.iter().enumerate() {
            let time_ok = a.time.is_finite() && a.time >= 0.0 && a.time >= prev;
            let load_ok = a.load.is_finite() && (0.0..=1.0).contains(&a.load);
            if !time_ok || !load_ok {
                return Err(TrafficError::InvalidArrival {
                    index,
                    time: a.time,
                    load: a.load,
                });
            }
            prev = a.time;
        }
        Ok(RecordedTrace {
            version: TRACE_FORMAT_VERSION,
            label: label.into(),
            arrivals,
        })
    }

    /// The format version the trace was written with.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// The run's human-readable label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The captured arrivals, in time order.
    pub fn arrivals(&self) -> &[RecordedArrival] {
        &self.arrivals
    }

    /// Number of captured arrivals.
    pub fn len(&self) -> usize {
        self.arrivals.len()
    }

    /// Whether nothing was captured.
    pub fn is_empty(&self) -> bool {
        self.arrivals.is_empty()
    }

    /// Time of the last arrival (the run's extent in slice units).
    pub fn duration(&self) -> f64 {
        self.arrivals.last().map(|a| a.time).unwrap_or(0.0)
    }

    /// Serializes the trace to its on-disk JSON form:
    ///
    /// ```json
    /// {
    ///   "version": 1,
    ///   "label": "poisson(λ=3) seed 0xdac2025",
    ///   "arrivals": [
    ///     [0.3183, 0.1],
    ///     [0.5921, 0.1]
    ///   ]
    /// }
    /// ```
    ///
    /// Numbers use shortest round-trip formatting, so parsing the
    /// output reproduces every sample bit for bit.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"version\": {},\n", self.version));
        out.push_str(&format!("  \"label\": {},\n", escape_json(&self.label)));
        out.push_str("  \"arrivals\": [");
        for (i, a) in self.arrivals.iter().enumerate() {
            let sep = if i + 1 == self.arrivals.len() {
                ""
            } else {
                ","
            };
            out.push_str(&format!("\n    [{:?}, {:?}]{sep}", a.time, a.load));
        }
        if !self.arrivals.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }

    /// Parses a trace from its JSON form and validates it.
    ///
    /// # Errors
    ///
    /// [`TrafficError::Parse`] for malformed input,
    /// [`TrafficError::Version`] for a future format version,
    /// [`TrafficError::InvalidArrival`] for out-of-contract samples.
    pub fn from_json(text: &str) -> Result<Self, TrafficError> {
        let mut parser = Parser::new(text);
        let (version, label, arrivals) = parser.parse_trace()?;
        if version != TRACE_FORMAT_VERSION {
            return Err(TrafficError::Version {
                found: version,
                supported: TRACE_FORMAT_VERSION,
            });
        }
        RecordedTrace::new(label, arrivals)
    }

    /// Writes the trace to `path` as JSON.
    ///
    /// # Errors
    ///
    /// [`TrafficError::Io`] on filesystem failure.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), TrafficError> {
        let path = path.as_ref();
        std::fs::write(path, self.to_json()).map_err(|e| TrafficError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        })
    }

    /// Reads and validates a trace from `path`.
    ///
    /// # Errors
    ///
    /// See [`RecordedTrace::from_json`]; filesystem failures surface
    /// as [`TrafficError::Io`].
    pub fn load(path: impl AsRef<Path>) -> Result<Self, TrafficError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path).map_err(|e| TrafficError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        })?;
        Self::from_json(&text)
    }
}

/// A shareable arrival capture buffer.
///
/// Clones share one underlying buffer, so the same recorder can tap a
/// [`TrafficEngine`](super::TrafficEngine) *and* sit inside an engine
/// observer closure while the original handle reads the capture back
/// with [`TraceRecorder::finish`].
#[derive(Debug, Clone, Default)]
pub struct TraceRecorder {
    shared: Arc<Mutex<Vec<RecordedArrival>>>,
}

impl TraceRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Captures one arrival. Samples are validated at
    /// [`TraceRecorder::finish`], not here, so observers stay
    /// infallible.
    pub fn record(&self, time: f64, load: f64) {
        self.shared
            .lock()
            .expect("recorder lock")
            .push(RecordedArrival { time, load });
    }

    /// Arrivals captured so far.
    pub fn len(&self) -> usize {
        self.shared.lock().expect("recorder lock").len()
    }

    /// Whether nothing has been captured yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Discards everything captured so far.
    pub fn clear(&self) {
        self.shared.lock().expect("recorder lock").clear();
    }

    /// Snapshots the capture into a validated [`RecordedTrace`]
    /// (the recorder keeps recording; snapshots are independent).
    ///
    /// # Errors
    ///
    /// [`TrafficError::InvalidArrival`] if an out-of-contract sample
    /// was recorded.
    pub fn finish(&self, label: impl Into<String>) -> Result<RecordedTrace, TrafficError> {
        RecordedTrace::new(label, self.shared.lock().expect("recorder lock").clone())
    }
}

/// Replays a [`RecordedTrace`] as a stream of per-slice loads,
/// optionally time-warped.
///
/// ## Time-warp semantics
///
/// With warp factor `w`, the arrival recorded at time `t` replays at
/// time `t / w`:
///
/// * `w = 1` — the identity: re-binning the recorded arrivals with
///   the same rule the live engine used, so the replayed per-slice
///   loads (and any execution report built from them) are
///   bit-identical to the original run.
/// * `w < 1` — **dilation** (slower): arrivals spread over more
///   slices. Every recorded load value is preserved; idle (zero-load)
///   slices appear between them.
/// * `w > 1` — **compression** (faster): arrivals pile into fewer
///   slices. Loads merge through the saturating binner, so total
///   offered load is conserved and per-arrival load values are
///   preserved up to slice saturation (overflow backlogs into the
///   following slices, exactly as live oversubscription would).
#[derive(Debug, Clone)]
pub struct ReplayTraffic {
    arrivals: Vec<RecordedArrival>,
    warp: f64,
    cursor: usize,
    binner: SliceBinner,
    next_slice: usize,
}

impl ReplayTraffic {
    /// A replay of `trace` at warp 1.0 (original timing).
    pub fn new(trace: RecordedTrace) -> Self {
        ReplayTraffic {
            arrivals: trace.arrivals,
            warp: 1.0,
            cursor: 0,
            binner: SliceBinner::default(),
            next_slice: 0,
        }
    }

    /// Sets the time-warp factor: `factor > 1` compresses (replays
    /// faster), `factor < 1` dilates (replays slower).
    ///
    /// # Panics
    ///
    /// Panics unless `factor` is finite and positive, or if the
    /// replay already started.
    pub fn warp(mut self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0,
            "warp factor {factor} must be finite and positive"
        );
        assert!(
            self.cursor == 0 && self.next_slice == 0,
            "set the warp before pulling loads"
        );
        self.warp = factor;
        self
    }

    /// The active warp factor.
    pub fn warp_factor(&self) -> f64 {
        self.warp
    }

    fn warped_time(&self, index: usize) -> f64 {
        self.arrivals[index].time / self.warp
    }

    /// The load for the next slice: every remaining arrival whose
    /// warped time lands before the slice's end, folded through the
    /// same saturating binner the live engine uses. Returns `0.0`
    /// forever once the trace (and its backlog) is exhausted.
    pub fn next_load(&mut self) -> f64 {
        let end = (self.next_slice + 1) as f64;
        self.binner.open();
        while self.cursor < self.arrivals.len() && self.warped_time(self.cursor) < end {
            self.binner.add(self.arrivals[self.cursor].load);
            self.cursor += 1;
        }
        self.next_slice += 1;
        self.binner.close()
    }

    /// Whether every arrival has replayed and the backlog drained.
    pub fn is_exhausted(&self) -> bool {
        self.cursor == self.arrivals.len() && self.binner.backlog() == 0.0
    }

    /// The next slice index the replay will fill.
    pub fn position(&self) -> usize {
        self.next_slice
    }

    /// Saturation overflow waiting for a future slice.
    pub fn backlog(&self) -> f64 {
        self.binner.backlog()
    }

    /// Runs the replay to exhaustion, returning every per-slice load
    /// (idle slices included).
    pub fn to_loads(mut self) -> Vec<f64> {
        let mut loads = Vec::new();
        while !self.is_exhausted() {
            loads.push(self.next_load());
        }
        loads
    }

    /// Runs the replay to exhaustion into a finite [`LoadTrace`]
    /// (origin [`crate::TraceOrigin::Replay`]) for the session/server
    /// layers.
    ///
    /// # Errors
    ///
    /// [`TraceError::Empty`] when the recording held no arrivals.
    pub fn to_trace(self) -> Result<LoadTrace, TraceError> {
        LoadTrace::replay(self.to_loads())
    }
}

impl Iterator for ReplayTraffic {
    type Item = f64;

    /// Never `None` — zeros after exhaustion (check
    /// [`ReplayTraffic::is_exhausted`] or use
    /// [`ReplayTraffic::to_loads`] for the finite form).
    fn next(&mut self) -> Option<f64> {
        Some(self.next_load())
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A minimal JSON reader for the recorded-trace schema (the same
/// no-dependency idiom as `bench_gate`'s baseline parser).
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, TrafficError> {
        Err(TrafficError::Parse {
            message: message.into(),
            offset: self.pos,
        })
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), TrafficError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!("expected `{}`", byte as char))
        }
    }

    fn parse_string(&mut self) -> Result<String, TrafficError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos).copied() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos).copied() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .and_then(char::from_u32);
                            match hex {
                                Some(c) => {
                                    out.push(c);
                                    self.pos += 4;
                                }
                                None => return self.err("bad \\u escape"),
                            }
                        }
                        _ => return self.err("unknown escape"),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 sequences pass through intact.
                    let start = self.pos;
                    self.pos += 1;
                    while self.bytes.get(self.pos).is_some_and(|b| b & 0xC0 == 0x80) {
                        self.pos += 1;
                    }
                    match std::str::from_utf8(&self.bytes[start..self.pos]) {
                        Ok(s) => out.push_str(s),
                        Err(_) => return self.err("invalid UTF-8 in string"),
                    }
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<f64, TrafficError> {
        self.skip_ws();
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b"+-0123456789.eE".contains(b))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or(())
            .or_else(|()| self.err("expected a number"))
    }

    fn parse_arrivals(&mut self) -> Result<Vec<RecordedArrival>, TrafficError> {
        self.expect(b'[')?;
        let mut arrivals = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(arrivals);
        }
        loop {
            self.expect(b'[')?;
            let time = self.parse_number()?;
            self.expect(b',')?;
            let load = self.parse_number()?;
            self.expect(b']')?;
            arrivals.push(RecordedArrival { time, load });
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(arrivals);
                }
                _ => return self.err("expected `,` or `]` in arrivals"),
            }
        }
    }

    fn parse_trace(&mut self) -> Result<(u32, String, Vec<RecordedArrival>), TrafficError> {
        self.expect(b'{')?;
        let (mut version, mut label, mut arrivals) = (None, None, None);
        loop {
            let key = self.parse_string()?;
            self.expect(b':')?;
            match key.as_str() {
                "version" => {
                    let v = self.parse_number()?;
                    if v < 0.0 || v.fract() != 0.0 {
                        return self.err(format!("non-integer version {v}"));
                    }
                    version = Some(v as u32);
                }
                "label" => label = Some(self.parse_string()?),
                "arrivals" => arrivals = Some(self.parse_arrivals()?),
                other => return self.err(format!("unknown key `{other}`")),
            }
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    break;
                }
                _ => return self.err("expected `,` or `}`"),
            }
        }
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return self.err("trailing content after trace object");
        }
        match (version, label, arrivals) {
            (Some(v), Some(l), Some(a)) => Ok((v, l, a)),
            (None, ..) => self.err("missing `version`"),
            (_, None, _) => self.err("missing `label`"),
            _ => self.err("missing `arrivals`"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> RecordedTrace {
        RecordedTrace::new(
            "test \"run\" λ=3",
            vec![
                RecordedArrival {
                    time: 0.3,
                    load: 0.1,
                },
                RecordedArrival {
                    time: 0.7,
                    load: 0.25,
                },
                RecordedArrival {
                    time: 2.5,
                    load: 1.0,
                },
                RecordedArrival {
                    time: 1e2 / 3.0,
                    load: 0.123456789012345,
                },
            ],
        )
        .unwrap()
    }

    #[test]
    fn json_round_trip_is_bit_identical() {
        let trace = sample_trace();
        let back = RecordedTrace::from_json(&trace.to_json()).unwrap();
        assert_eq!(trace, back);
    }

    #[test]
    fn save_load_round_trip() {
        let trace = sample_trace();
        let path = std::env::temp_dir().join(format!("hhpim_trace_{}.json", std::process::id()));
        trace.save(&path).unwrap();
        let back = RecordedTrace::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(trace, back);
    }

    #[test]
    fn future_version_rejected() {
        let text = sample_trace()
            .to_json()
            .replace("\"version\": 1", "\"version\": 99");
        assert_eq!(
            RecordedTrace::from_json(&text).unwrap_err(),
            TrafficError::Version {
                found: 99,
                supported: TRACE_FORMAT_VERSION
            }
        );
    }

    #[test]
    fn malformed_inputs_are_typed_errors() {
        for text in [
            "",
            "{",
            "{\"version\": 1}",
            "{\"version\": 1, \"label\": \"x\", \"arrivals\": [[0.1]]}",
            "{\"version\": 1, \"label\": \"x\", \"arrivals\": []} trailing",
            "{\"version\": 1.5, \"label\": \"x\", \"arrivals\": []}",
            "{\"bogus\": 1}",
        ] {
            assert!(
                matches!(
                    RecordedTrace::from_json(text),
                    Err(TrafficError::Parse { .. })
                ),
                "{text:?}"
            );
        }
    }

    #[test]
    fn invalid_arrivals_rejected() {
        let bad = RecordedTrace::new(
            "x",
            vec![
                RecordedArrival {
                    time: 1.0,
                    load: 0.5,
                },
                RecordedArrival {
                    time: 0.5,
                    load: 0.5,
                },
            ],
        );
        assert!(matches!(
            bad,
            Err(TrafficError::InvalidArrival { index: 1, .. })
        ));
        let oversized = RecordedTrace::new(
            "x",
            vec![RecordedArrival {
                time: 0.0,
                load: 1.5,
            }],
        );
        assert!(matches!(
            oversized,
            Err(TrafficError::InvalidArrival { index: 0, .. })
        ));
    }

    #[test]
    fn recorder_clones_share_a_buffer() {
        let recorder = TraceRecorder::new();
        let tap = recorder.clone();
        tap.record(0.5, 0.2);
        tap.record(1.5, 0.4);
        assert_eq!(recorder.len(), 2);
        let trace = recorder.finish("shared").unwrap();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.label(), "shared");
        recorder.clear();
        assert!(tap.is_empty());
    }

    #[test]
    fn replay_rebins_per_slice() {
        let trace = RecordedTrace::new(
            "bins",
            vec![
                RecordedArrival {
                    time: 0.2,
                    load: 0.3,
                },
                RecordedArrival {
                    time: 0.9,
                    load: 0.4,
                },
                RecordedArrival {
                    time: 3.5,
                    load: 0.5,
                },
            ],
        )
        .unwrap();
        let loads = ReplayTraffic::new(trace).to_loads();
        assert_eq!(loads, vec![0.3 + 0.4, 0.0, 0.0, 0.5]);
    }

    #[test]
    fn dilation_preserves_every_load_sample() {
        let trace = RecordedTrace::new(
            "dilate",
            vec![
                RecordedArrival {
                    time: 0.5,
                    load: 0.3,
                },
                RecordedArrival {
                    time: 1.5,
                    load: 0.6,
                },
                RecordedArrival {
                    time: 2.5,
                    load: 0.9,
                },
            ],
        )
        .unwrap();
        // Warp 0.5 = half speed: arrival k lands in slice 2k+1.
        let loads = ReplayTraffic::new(trace).warp(0.5).to_loads();
        assert_eq!(loads, vec![0.0, 0.3, 0.0, 0.6, 0.0, 0.9]);
    }

    #[test]
    fn compression_conserves_total_load() {
        let arrivals: Vec<RecordedArrival> = (0..40)
            .map(|i| RecordedArrival {
                time: i as f64 * 0.9,
                load: 0.35,
            })
            .collect();
        let total: f64 = arrivals.iter().map(|a| a.load).sum();
        let trace = RecordedTrace::new("compress", arrivals).unwrap();
        let loads = ReplayTraffic::new(trace).warp(4.0).to_loads();
        assert!((loads.iter().sum::<f64>() - total).abs() < 1e-9);
        assert!(loads.iter().all(|&l| (0.0..=1.0).contains(&l)));
        // 4× compression of a ~0.39-load/slice feed saturates slices.
        assert!(loads.iter().filter(|&&l| l == 1.0).count() > 5, "{loads:?}");
    }

    #[test]
    fn exhausted_replay_yields_zeros() {
        let trace = RecordedTrace::new(
            "tiny",
            vec![RecordedArrival {
                time: 0.1,
                load: 0.2,
            }],
        )
        .unwrap();
        let mut replay = ReplayTraffic::new(trace);
        assert_eq!(replay.next_load(), 0.2);
        assert!(replay.is_exhausted());
        assert_eq!(replay.next_load(), 0.0);
        assert_eq!(replay.next_load(), 0.0);
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn zero_warp_rejected() {
        let trace = RecordedTrace::new("x", vec![]).unwrap();
        let _ = ReplayTraffic::new(trace).warp(0.0);
    }
}
