//! # Load generation: stochastic arrivals, record/replay, pacing
//!
//! The traffic subsystem turns the fixed 7-entry scenario catalogue
//! into an open-ended load-testing toolbox:
//!
//! * [`ArrivalProcess`] — *when* requests land: [`Poisson`],
//!   [`BurstyOnOff`] (MMPP-2), [`Diurnal`], [`ConstantRate`], all
//!   seeded and deterministic over the vendored SplitMix64.
//! * [`TrafficConfig`] / [`TrafficEngine`] — compose an arrival
//!   process with a per-arrival [`LoadDistribution`] into an
//!   unbounded stream of per-slice loads in `[0, 1]`, with saturated
//!   slices carrying their overflow into a backlog
//!   (load-conserving, via [`LoadTrace::saturating_merge`]).
//! * [`ClosedLoop`] — an AIMD controller whose next offered load
//!   depends on observed engine feedback (queue depth, deadline
//!   misses), which no fixed-length `LoadTrace` can express.
//! * [`TraceRecorder`] / [`RecordedTrace`] / [`ReplayTraffic`] —
//!   capture `(arrival time, load)` pairs from any run into a
//!   versioned on-disk JSON format and replay them compressed or
//!   dilated ([`ReplayTraffic::warp`]).
//! * [`Pacer`] / [`LoadReport`] — pace a run against the wall clock
//!   at a target slice rate and report sustained slices/sec, offered
//!   vs. achieved load, and p50/p95/p99 slice latency.
//!
//! ## Determinism contract
//!
//! Same seed + same [`TrafficConfig`] ⇒ bit-identical arrival
//! sequence, bit-identical per-slice loads, and therefore
//! bit-identical execution reports downstream. Wall-clock pacing
//! never perturbs the load sequence — it only times its delivery.
//!
//! See `docs/traffic.md` for the full tour.

mod arrival;
mod pace;
mod record;

pub use arrival::{ArrivalProcess, BurstyOnOff, ConstantRate, Diurnal, Poisson};
pub use pace::{LoadReport, Pacer};
pub use record::{
    RecordedArrival, RecordedTrace, ReplayTraffic, TraceRecorder, TrafficError,
    TRACE_FORMAT_VERSION,
};

use crate::scenario::{LoadTrace, TraceError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How much computational load each arrival contributes, as a
/// fraction of a full slice.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LoadDistribution {
    /// Every arrival costs the same fixed fraction of a slice.
    Constant(f64),
    /// Arrival cost sampled uniformly from `[low, high]`.
    Uniform {
        /// Smallest per-arrival load.
        low: f64,
        /// Largest per-arrival load.
        high: f64,
    },
}

impl LoadDistribution {
    /// The distribution's mean per-arrival load.
    pub fn mean(&self) -> f64 {
        match *self {
            LoadDistribution::Constant(l) => l,
            LoadDistribution::Uniform { low, high } => (low + high) / 2.0,
        }
    }

    /// Validates the distribution's parameters: loads must be finite,
    /// non-negative fractions of a slice (`0 ≤ load ≤ 1`), and a
    /// uniform range must not be inverted.
    fn validate(&self) {
        match *self {
            LoadDistribution::Constant(l) => {
                assert!(
                    l.is_finite() && (0.0..=1.0).contains(&l),
                    "per-arrival load {l} outside [0, 1]"
                );
            }
            LoadDistribution::Uniform { low, high } => {
                for l in [low, high] {
                    assert!(
                        l.is_finite() && (0.0..=1.0).contains(&l),
                        "per-arrival load {l} outside [0, 1]"
                    );
                }
                assert!(low <= high, "inverted load range [{low}, {high}]");
            }
        }
    }

    fn sample(&self, rng: &mut StdRng) -> f64 {
        match *self {
            LoadDistribution::Constant(l) => l,
            LoadDistribution::Uniform { low, high } => rng.gen_range(low..=high),
        }
    }
}

impl Default for LoadDistribution {
    /// One arrival = one inference at the paper's 10-task slice cap.
    fn default() -> Self {
        LoadDistribution::Constant(0.1)
    }
}

/// The full, cloneable description of a synthetic traffic feed: an
/// arrival process, a per-arrival load distribution, and the RNG
/// seed. Two engines built from equal configs produce bit-identical
/// streams.
#[derive(Debug, Clone)]
pub struct TrafficConfig {
    /// When arrivals land (cloned pristine into each engine).
    pub process: Box<dyn ArrivalProcess>,
    /// How much load each arrival carries.
    pub load: LoadDistribution,
    /// Seed for the engine's SplitMix64 stream.
    pub seed: u64,
}

impl TrafficConfig {
    /// A config over an explicit arrival process with the default
    /// load distribution and seed.
    pub fn new(process: impl ArrivalProcess + 'static) -> Self {
        TrafficConfig {
            process: Box::new(process),
            load: LoadDistribution::default(),
            seed: 0xDAC_2025,
        }
    }

    /// Shorthand for a [`Poisson`] feed at `rate` arrivals per slice.
    pub fn poisson(rate: f64) -> Self {
        Self::new(Poisson::new(rate))
    }

    /// Shorthand for a [`ConstantRate`] metronome feed.
    pub fn constant(rate: f64) -> Self {
        Self::new(ConstantRate::new(rate))
    }

    /// Shorthand for a [`BurstyOnOff`] MMPP-2 feed.
    pub fn bursty(burst_rate: f64, idle_rate: f64, mean_burst: f64, mean_idle: f64) -> Self {
        Self::new(BurstyOnOff::new(
            burst_rate, idle_rate, mean_burst, mean_idle,
        ))
    }

    /// Shorthand for a [`Diurnal`] feed over a periodic rate curve.
    pub fn diurnal(base_rate: f64, period: f64, curve: Vec<f64>) -> Self {
        Self::new(Diurnal::new(base_rate, period, curve))
    }

    /// Replaces the per-arrival load distribution.
    ///
    /// # Panics
    ///
    /// Panics if the distribution's loads leave `[0, 1]` or the range
    /// is inverted.
    pub fn with_load(mut self, load: LoadDistribution) -> Self {
        load.validate();
        self.load = load;
        self
    }

    /// Replaces the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Human-readable description of the feed.
    pub fn label(&self) -> String {
        format!("{} seed {:#x}", self.process.label(), self.seed)
    }
}

/// Folds time-stamped arrivals into per-slice loads, saturating each
/// slice at `1.0` and carrying the overflow forward — the *single*
/// binning rule, shared by [`TrafficEngine`] (live generation) and
/// [`ReplayTraffic`] (recorded arrivals), so a recorded run replayed
/// at warp 1.0 rebins bit-identically.
#[derive(Debug, Clone, Default)]
pub(crate) struct SliceBinner {
    accum: f64,
    carry: f64,
}

impl SliceBinner {
    /// Opens the next slice, seeding it from the carried backlog.
    pub(crate) fn open(&mut self) {
        let (accum, carry) = LoadTrace::saturating_merge(0.0, self.carry);
        self.accum = accum;
        self.carry = carry;
    }

    /// Adds one arrival's load to the open slice (overflow joins the
    /// backlog).
    pub(crate) fn add(&mut self, load: f64) {
        let (accum, overflow) = LoadTrace::saturating_merge(self.accum, load);
        self.accum = accum;
        self.carry += overflow;
    }

    /// Closes the slice, returning its load in `[0, 1]`.
    pub(crate) fn close(&mut self) -> f64 {
        let load = self.accum;
        self.accum = 0.0;
        load
    }

    /// Backlog still waiting for a future slice.
    pub(crate) fn backlog(&self) -> f64 {
        self.carry
    }
}

/// The live traffic generator: composes a [`TrafficConfig`] into an
/// unbounded stream of per-slice loads.
///
/// Arrivals time-stamped within `[k, k+1)` contribute to the load
/// offered at slice `k`; a slice saturates at `1.0` and the excess
/// carries into the backlog, so total offered load is conserved (the
/// engine's queue then realizes the backlog as latency). The stream
/// never ends — pull [`TrafficEngine::next_load`], iterate, or
/// snapshot a finite horizon with [`TrafficEngine::take_trace`].
#[derive(Debug, Clone)]
pub struct TrafficEngine {
    process: Box<dyn ArrivalProcess>,
    load: LoadDistribution,
    rng: StdRng,
    binner: SliceBinner,
    /// Absolute time of the most recently generated arrival.
    clock: f64,
    /// An arrival generated past the current slice boundary, waiting
    /// for its slice to open.
    pending: Option<(f64, f64)>,
    next_slice: usize,
    arrivals: u64,
    offered: f64,
    recorder: Option<TraceRecorder>,
}

impl TrafficEngine {
    /// A generator over `config`, starting at slice 0 with a fresh
    /// seeded RNG.
    pub fn new(config: TrafficConfig) -> Self {
        config.load.validate();
        TrafficEngine {
            rng: StdRng::seed_from_u64(config.seed),
            process: config.process,
            load: config.load,
            binner: SliceBinner::default(),
            clock: 0.0,
            pending: None,
            next_slice: 0,
            arrivals: 0,
            offered: 0.0,
            recorder: None,
        }
    }

    /// Attaches a [`TraceRecorder`]: every generated arrival is
    /// captured as an `(arrival time, load)` pair (the recorder
    /// clones share one buffer, so keep the original to read the
    /// capture back).
    pub fn with_recorder(mut self, recorder: &TraceRecorder) -> Self {
        self.recorder = Some(recorder.clone());
        self
    }

    fn next_arrival(&mut self) -> (f64, f64) {
        let gap = self.process.next_gap(&mut self.rng);
        debug_assert!(gap.is_finite() && gap > 0.0, "gap {gap}");
        self.clock += gap;
        let load = self.load.sample(&mut self.rng);
        self.arrivals += 1;
        self.offered += load;
        if let Some(recorder) = &self.recorder {
            recorder.record(self.clock, load);
        }
        (self.clock, load)
    }

    /// The load offered to the next slice: backlog first, then every
    /// arrival landing before the slice's end, saturating at `1.0`.
    pub fn next_load(&mut self) -> f64 {
        let end = (self.next_slice + 1) as f64;
        self.binner.open();
        loop {
            match self.pending {
                Some((time, _)) if time >= end => break,
                Some((_, load)) => {
                    self.binner.add(load);
                    self.pending = None;
                }
                None => self.pending = Some(self.next_arrival()),
            }
        }
        self.next_slice += 1;
        self.binner.close()
    }

    /// Snapshots the next `slices` loads as a finite [`LoadTrace`]
    /// (origin [`crate::TraceOrigin::Replay`]), advancing the stream.
    ///
    /// # Errors
    ///
    /// [`TraceError::Empty`] when `slices == 0`.
    pub fn take_trace(&mut self, slices: usize) -> Result<LoadTrace, TraceError> {
        if slices == 0 {
            return Err(TraceError::Empty);
        }
        LoadTrace::replay((0..slices).map(|_| self.next_load()).collect())
    }

    /// The next slice index the stream will fill.
    pub fn position(&self) -> usize {
        self.next_slice
    }

    /// Arrivals generated so far.
    pub fn arrivals(&self) -> u64 {
        self.arrivals
    }

    /// The process's clock: absolute time of the latest arrival, in
    /// slices.
    pub fn clock(&self) -> f64 {
        self.clock
    }

    /// Observed mean arrival rate (arrivals per slice of process
    /// time) — the statistic the offered-load fidelity contract is
    /// stated over.
    pub fn mean_rate(&self) -> f64 {
        if self.clock > 0.0 {
            self.arrivals as f64 / self.clock
        } else {
            0.0
        }
    }

    /// Total load generated so far (including backlog not yet
    /// emitted).
    pub fn offered(&self) -> f64 {
        self.offered
    }

    /// Mean offered load per elapsed slice.
    pub fn mean_offered(&self) -> f64 {
        if self.next_slice > 0 {
            self.offered / self.next_slice as f64
        } else {
            0.0
        }
    }

    /// Backlog carried past the last closed slice (saturation
    /// overflow waiting for capacity).
    pub fn backlog(&self) -> f64 {
        self.binner.backlog()
    }
}

impl Iterator for TrafficEngine {
    type Item = f64;

    /// Never `None`: the stream is unbounded (take what you need).
    fn next(&mut self) -> Option<f64> {
        Some(self.next_load())
    }
}

/// Engine feedback one slice of closed-loop traffic reacts to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LoadFeedback {
    /// Loads waiting in the engine queue after the slice.
    pub queue_depth: usize,
    /// Deadline misses observed in the slice.
    pub deadline_misses: u64,
}

/// Tuning for the [`ClosedLoop`] AIMD controller.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClosedLoopConfig {
    /// Offered load before any feedback arrives.
    pub initial: f64,
    /// Lower clamp on offered load.
    pub floor: f64,
    /// Upper clamp on offered load.
    pub ceil: f64,
    /// Additive increase applied after a clean observation.
    pub increase: f64,
    /// Multiplicative factor applied on pressure (missed deadline or
    /// deep queue).
    pub decrease: f64,
    /// Queue depths beyond this count as pressure.
    pub target_queue: usize,
}

impl Default for ClosedLoopConfig {
    fn default() -> Self {
        ClosedLoopConfig {
            initial: 0.5,
            floor: 0.05,
            ceil: 1.0,
            increase: 0.05,
            decrease: 0.5,
            target_queue: 4,
        }
    }
}

/// Response-dependent load: an additive-increase /
/// multiplicative-decrease controller that probes for the machine's
/// sustainable throughput, backing off when the engine reports
/// deadline misses or a queue deeper than its target.
///
/// This is the one traffic mode a fixed-length [`LoadTrace`] cannot
/// express — the next offered load is a function of the run so far.
/// The controller itself is deterministic (no RNG): identical
/// feedback sequences produce identical load sequences.
#[derive(Debug, Clone, PartialEq)]
pub struct ClosedLoop {
    config: ClosedLoopConfig,
    offered: f64,
    observations: u64,
    backoffs: u64,
}

impl ClosedLoop {
    /// A controller under `config`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ floor ≤ initial ≤ ceil ≤ 1`, the increase
    /// is non-negative, and the decrease factor is in `(0, 1]`.
    pub fn new(config: ClosedLoopConfig) -> Self {
        assert!(
            0.0 <= config.floor
                && config.floor <= config.initial
                && config.initial <= config.ceil
                && config.ceil <= 1.0,
            "need 0 ≤ floor ≤ initial ≤ ceil ≤ 1, got {config:?}"
        );
        assert!(config.increase >= 0.0, "negative increase: {config:?}");
        assert!(
            config.decrease > 0.0 && config.decrease <= 1.0,
            "decrease factor outside (0, 1]: {config:?}"
        );
        ClosedLoop {
            config,
            offered: config.initial,
            observations: 0,
            backoffs: 0,
        }
    }

    /// The load to offer for the next slice.
    pub fn next_load(&mut self) -> f64 {
        self.offered
    }

    /// Currently offered load.
    pub fn offered(&self) -> f64 {
        self.offered
    }

    /// Feeds one slice's observed feedback into the controller:
    /// pressure (a deadline miss, or a queue beyond the target)
    /// multiplies the offered load by the decrease factor; a clean
    /// slice adds the additive increase. The result clamps to
    /// `[floor, ceil]`.
    pub fn observe(&mut self, feedback: LoadFeedback) {
        self.observations += 1;
        let pressured =
            feedback.deadline_misses > 0 || feedback.queue_depth > self.config.target_queue;
        self.offered = if pressured {
            self.backoffs += 1;
            self.offered * self.config.decrease
        } else {
            self.offered + self.config.increase
        }
        .clamp(self.config.floor, self.config.ceil);
    }

    /// Observations consumed so far.
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// Multiplicative back-offs taken so far.
    pub fn backoffs(&self) -> u64 {
        self.backoffs
    }

    /// The controller's tuning.
    pub fn config(&self) -> &ClosedLoopConfig {
        &self.config
    }
}

impl Default for ClosedLoop {
    fn default() -> Self {
        Self::new(ClosedLoopConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_config_bit_identical_stream() {
        let config = TrafficConfig::bursty(8.0, 0.2, 3.0, 5.0)
            .with_load(LoadDistribution::Uniform {
                low: 0.05,
                high: 0.3,
            })
            .with_seed(99);
        let a: Vec<f64> = TrafficEngine::new(config.clone()).take(200).collect();
        let b: Vec<f64> = TrafficEngine::new(config.clone()).take(200).collect();
        assert_eq!(a, b);
        let c: Vec<f64> = TrafficEngine::new(config.with_seed(100))
            .take(200)
            .collect();
        assert_ne!(a, c);
    }

    #[test]
    fn loads_stay_in_unit_interval() {
        let mut engine = TrafficEngine::new(
            TrafficConfig::poisson(20.0).with_load(LoadDistribution::Constant(0.4)),
        );
        for _ in 0..500 {
            let l = engine.next_load();
            assert!((0.0..=1.0).contains(&l), "{l}");
        }
    }

    #[test]
    fn offered_load_is_conserved_through_saturation() {
        // λ·E[load] = 20 × 0.4 = 8 slices' worth of work per slice:
        // heavily oversubscribed, so nearly every slice saturates and
        // the rest backlogs — but no load is lost.
        let mut engine = TrafficEngine::new(
            TrafficConfig::poisson(20.0).with_load(LoadDistribution::Constant(0.4)),
        );
        let emitted: f64 = (0..100).map(|_| engine.next_load()).sum();
        // Arrivals past slice 100 (the pending one) are generated but
        // not yet binned; subtract it like the binner will.
        let pending = engine.pending.map(|(_, l)| l).unwrap_or(0.0);
        let generated = engine.offered() - pending;
        assert!(
            (emitted + engine.backlog() - generated).abs() < 1e-9,
            "emitted {emitted} + backlog {} != generated {generated}",
            engine.backlog()
        );
        assert!(engine.backlog() > 100.0, "oversubscription must backlog");
    }

    #[test]
    fn mean_offered_tracks_rate_times_load() {
        let mut engine = TrafficEngine::new(
            TrafficConfig::poisson(3.0).with_load(LoadDistribution::Constant(0.1)),
        );
        for _ in 0..5_000 {
            engine.next_load();
        }
        let expect = 3.0 * 0.1;
        assert!(
            (engine.mean_offered() / expect - 1.0).abs() < 0.05,
            "mean offered {} vs {expect}",
            engine.mean_offered()
        );
    }

    #[test]
    fn take_trace_matches_streamed_loads() {
        let config = TrafficConfig::constant(2.0).with_load(LoadDistribution::Constant(0.25));
        let streamed: Vec<f64> = TrafficEngine::new(config.clone()).take(40).collect();
        let trace = TrafficEngine::new(config).take_trace(40).unwrap();
        assert_eq!(trace.loads(), streamed.as_slice());
        assert!(TrafficEngine::new(TrafficConfig::poisson(1.0))
            .take_trace(0)
            .is_err());
    }

    #[test]
    fn constant_rate_two_per_slice_fills_every_slice() {
        let mut engine = TrafficEngine::new(
            TrafficConfig::constant(2.0).with_load(LoadDistribution::Constant(0.3)),
        );
        let loads: Vec<f64> = (0..10).map(|_| engine.next_load()).collect();
        // Gaps of 0.5 put arrivals at 0.5, 1.0, 1.5, 2.0 … — exactly
        // two per slice from slice 1 on, one in slice 0.
        assert_eq!(loads[0], 0.3);
        assert!(
            loads[1..].iter().all(|&l| (l - 0.6).abs() < 1e-12),
            "{loads:?}"
        );
    }

    #[test]
    fn closed_loop_backs_off_under_pressure_and_recovers() {
        let mut ctl = ClosedLoop::default();
        let start = ctl.next_load();
        ctl.observe(LoadFeedback {
            queue_depth: 0,
            deadline_misses: 2,
        });
        let after_miss = ctl.next_load();
        assert!(after_miss < start, "{after_miss} !< {start}");
        for _ in 0..40 {
            ctl.observe(LoadFeedback::default());
        }
        assert_eq!(ctl.next_load(), ctl.config().ceil, "clean feedback climbs");
        ctl.observe(LoadFeedback {
            queue_depth: 100,
            deadline_misses: 0,
        });
        assert!(
            ctl.next_load() < ctl.config().ceil,
            "deep queue is pressure"
        );
        assert_eq!(ctl.backoffs(), 2);
    }

    #[test]
    fn closed_loop_respects_floor() {
        let mut ctl = ClosedLoop::default();
        for _ in 0..50 {
            ctl.observe(LoadFeedback {
                queue_depth: 0,
                deadline_misses: 1,
            });
        }
        assert_eq!(ctl.offered(), ctl.config().floor);
    }

    #[test]
    fn closed_loop_is_deterministic() {
        let feedback = [
            LoadFeedback::default(),
            LoadFeedback {
                queue_depth: 9,
                deadline_misses: 0,
            },
            LoadFeedback::default(),
            LoadFeedback {
                queue_depth: 0,
                deadline_misses: 1,
            },
        ];
        let run = |mut ctl: ClosedLoop| -> Vec<f64> {
            feedback
                .iter()
                .map(|&f| {
                    let l = ctl.next_load();
                    ctl.observe(f);
                    l
                })
                .collect()
        };
        assert_eq!(run(ClosedLoop::default()), run(ClosedLoop::default()));
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn oversized_arrival_load_rejected() {
        TrafficConfig::poisson(1.0).with_load(LoadDistribution::Constant(1.5));
    }
}
