//! Wall-clock pacing for engine/server rounds.
//!
//! A [`Pacer`] holds a run to a target slice rate against real time:
//! call [`Pacer::pace`] before each round (it sleeps until the round's
//! scheduled start, or not at all when the run is behind) and
//! [`Pacer::complete`] after, which records how late the round
//! finished relative to its scheduled start. [`Pacer::finish`] folds
//! the timings into a [`LoadReport`]: sustained slices/sec, offered
//! vs. achieved load, and p50/p95/p99/max slice latency.
//!
//! The pacer schedules against the run's start (`start + k·interval`),
//! not the previous round's end, so a single slow slice does not shift
//! every later deadline — the run catches back up, and the slow slice
//! alone shows up in the latency tail.

use core::fmt;
use std::time::{Duration, Instant};

/// Paces rounds against wall-clock time at a fixed slice rate.
#[derive(Debug, Clone)]
pub struct Pacer {
    interval: Duration,
    start: Option<Instant>,
    inflight: Option<Instant>,
    latencies: Vec<Duration>,
    late: u64,
}

impl Pacer {
    /// A pacer releasing one round every `interval`.
    ///
    /// # Panics
    ///
    /// Panics on a zero interval.
    pub fn new(interval: Duration) -> Self {
        assert!(!interval.is_zero(), "pacing interval must be non-zero");
        Pacer {
            interval,
            start: None,
            inflight: None,
            latencies: Vec::new(),
            late: 0,
        }
    }

    /// A pacer targeting `slices_per_sec` rounds per second.
    ///
    /// # Panics
    ///
    /// Panics unless the rate is finite and positive.
    pub fn from_rate(slices_per_sec: f64) -> Self {
        assert!(
            slices_per_sec.is_finite() && slices_per_sec > 0.0,
            "slice rate {slices_per_sec} must be finite and positive"
        );
        Pacer::new(Duration::from_secs_f64(1.0 / slices_per_sec))
    }

    /// The configured per-round interval.
    pub fn interval(&self) -> Duration {
        self.interval
    }

    /// The configured target rate in slices per second.
    pub fn target_rate(&self) -> f64 {
        1.0 / self.interval.as_secs_f64()
    }

    /// Rounds completed so far.
    pub fn completed(&self) -> u64 {
        self.latencies.len() as u64
    }

    /// Blocks until round `k`'s scheduled start (`start + k·interval`,
    /// with the clock starting at the first call). Returns immediately
    /// when the run is already behind schedule — the pacer never
    /// inserts catch-up sleeps.
    pub fn pace(&mut self) {
        let start = *self.start.get_or_insert_with(Instant::now);
        let ticks = u32::try_from(self.latencies.len()).expect("pacer tick count overflow");
        let scheduled = start + self.interval * ticks;
        let now = Instant::now();
        if scheduled > now {
            std::thread::sleep(scheduled - now);
        }
        self.inflight = Some(scheduled);
    }

    /// Records the in-flight round's completion. Slice latency is
    /// measured from the round's *scheduled* start, so time spent
    /// waiting behind an earlier overrun counts against this slice.
    ///
    /// # Panics
    ///
    /// Panics when called without a matching [`Pacer::pace`].
    pub fn complete(&mut self) {
        let scheduled = self.inflight.take().expect("complete() without pace()");
        let latency = Instant::now().saturating_duration_since(scheduled);
        if latency > self.interval {
            self.late += 1;
        }
        self.latencies.push(latency);
    }

    /// Folds the recorded timings into a [`LoadReport`].
    ///
    /// `offered_load` and `achieved_load` are mean per-slice loads in
    /// `[0, 1]` supplied by the caller (the pacer only observes time):
    /// what the traffic source asked for, and what the engine actually
    /// executed.
    pub fn finish(&self, offered_load: f64, achieved_load: f64) -> LoadReport {
        let slices = self.latencies.len() as u64;
        let elapsed = self.start.map(|s| s.elapsed()).unwrap_or(Duration::ZERO);
        let sustained_rate = if elapsed.is_zero() {
            0.0
        } else {
            slices as f64 / elapsed.as_secs_f64()
        };
        let mut sorted = self.latencies.clone();
        sorted.sort_unstable();
        let percentile = |q: f64| -> Duration {
            if sorted.is_empty() {
                return Duration::ZERO;
            }
            let idx = ((q * sorted.len() as f64).ceil() as usize)
                .saturating_sub(1)
                .min(sorted.len() - 1);
            sorted[idx]
        };
        LoadReport {
            slices,
            elapsed,
            target_rate: self.target_rate(),
            sustained_rate,
            offered_load,
            achieved_load,
            late_slices: self.late,
            p50: percentile(0.50),
            p95: percentile(0.95),
            p99: percentile(0.99),
            max_latency: sorted.last().copied().unwrap_or(Duration::ZERO),
        }
    }
}

/// What a paced run sustained: rates, loads, and the latency tail.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadReport {
    /// Rounds completed.
    pub slices: u64,
    /// Wall-clock span from the first `pace()` to `finish()`.
    pub elapsed: Duration,
    /// Configured slice rate (slices/sec).
    pub target_rate: f64,
    /// Achieved slice rate (slices/sec) over `elapsed`.
    pub sustained_rate: f64,
    /// Mean per-slice load the traffic source offered, in `[0, 1]`.
    pub offered_load: f64,
    /// Mean per-slice load the engine executed, in `[0, 1]`.
    pub achieved_load: f64,
    /// Rounds that finished later than one interval after their
    /// scheduled start.
    pub late_slices: u64,
    /// Median slice latency (completion minus scheduled start).
    pub p50: Duration,
    /// 95th-percentile slice latency.
    pub p95: Duration,
    /// 99th-percentile slice latency.
    pub p99: Duration,
    /// Worst slice latency.
    pub max_latency: Duration,
}

impl LoadReport {
    /// Fraction of offered load the run actually executed (1.0 when
    /// nothing was offered).
    pub fn load_fidelity(&self) -> f64 {
        if self.offered_load <= 0.0 {
            1.0
        } else {
            self.achieved_load / self.offered_load
        }
    }

    /// A bordered stats table for terminal output.
    pub fn table(&self) -> String {
        let ms = |d: Duration| format!("{:.3} ms", d.as_secs_f64() * 1e3);
        let rows: Vec<(&str, String)> = vec![
            ("slices", self.slices.to_string()),
            ("elapsed", format!("{:.3} s", self.elapsed.as_secs_f64())),
            ("target rate", format!("{:.1} slices/s", self.target_rate)),
            (
                "sustained rate",
                format!("{:.1} slices/s", self.sustained_rate),
            ),
            ("offered load", format!("{:.4}", self.offered_load)),
            ("achieved load", format!("{:.4}", self.achieved_load)),
            (
                "load fidelity",
                format!("{:.1} %", self.load_fidelity() * 100.0),
            ),
            ("late slices", self.late_slices.to_string()),
            ("latency p50", ms(self.p50)),
            ("latency p95", ms(self.p95)),
            ("latency p99", ms(self.p99)),
            ("latency max", ms(self.max_latency)),
        ];
        let key_w = rows.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
        let val_w = rows.iter().map(|(_, v)| v.len()).max().unwrap_or(0);
        let mut out = String::new();
        let rule = format!("+-{}-+-{}-+\n", "-".repeat(key_w), "-".repeat(val_w));
        out.push_str(&rule);
        for (k, v) in &rows {
            out.push_str(&format!("| {k:<key_w$} | {v:>val_w$} |\n"));
        }
        out.push_str(&rule);
        out
    }
}

impl fmt::Display for LoadReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.table())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paces_at_the_target_rate() {
        // 1 kHz for 25 slices: at least 24 full intervals must elapse,
        // so the sustained rate cannot overshoot the target by much
        // (undershoot is unbounded on a loaded machine, so only the
        // overshoot side is asserted tightly).
        let mut pacer = Pacer::from_rate(1000.0);
        for _ in 0..25 {
            pacer.pace();
            pacer.complete();
        }
        let report = pacer.finish(0.5, 0.5);
        assert_eq!(report.slices, 25);
        assert!(report.elapsed >= Duration::from_millis(24), "{report:?}");
        assert!(
            report.sustained_rate <= report.target_rate * 1.1,
            "{report:?}"
        );
    }

    #[test]
    fn latency_percentiles_are_ordered() {
        let mut pacer = Pacer::new(Duration::from_micros(200));
        for i in 0..40 {
            pacer.pace();
            if i % 10 == 0 {
                std::thread::sleep(Duration::from_micros(500));
            }
            pacer.complete();
        }
        let report = pacer.finish(0.3, 0.2);
        assert!(report.p50 <= report.p95);
        assert!(report.p95 <= report.p99);
        assert!(report.p99 <= report.max_latency);
        // Every tenth slice overslept a whole interval.
        assert!(report.late_slices >= 4, "{report:?}");
        assert!((report.load_fidelity() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_run_reports_zeros() {
        let pacer = Pacer::from_rate(100.0);
        let report = pacer.finish(0.0, 0.0);
        assert_eq!(report.slices, 0);
        assert_eq!(report.sustained_rate, 0.0);
        assert_eq!(report.p99, Duration::ZERO);
        assert_eq!(report.load_fidelity(), 1.0);
    }

    #[test]
    fn table_renders_every_row() {
        let mut pacer = Pacer::from_rate(10_000.0);
        pacer.pace();
        pacer.complete();
        let table = pacer.finish(0.5, 0.45).table();
        for key in [
            "slices",
            "sustained rate",
            "offered load",
            "achieved load",
            "load fidelity",
            "latency p99",
        ] {
            assert!(table.contains(key), "missing {key} in:\n{table}");
        }
    }

    #[test]
    #[should_panic(expected = "complete() without pace()")]
    fn complete_requires_pace() {
        Pacer::from_rate(10.0).complete();
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn zero_rate_rejected() {
        let _ = Pacer::from_rate(0.0);
    }
}
