//! Object-count-driven load traces: the paper's motivating example of a
//! YOLO-style detector whose computational demand tracks how many
//! objects appear per video segment (§I).
//!
//! Objects enter and leave the scene as a bounded random walk, giving
//! bursty-but-correlated loads unlike the memoryless [`crate::Scenario::Random`].

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the synthetic detection stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObjectStreamParams {
    /// Number of time slices (video segments).
    pub slices: usize,
    /// Maximum simultaneous objects (full load).
    pub max_objects: u32,
    /// Initial object count.
    pub initial_objects: u32,
    /// Largest per-segment change in object count.
    pub max_delta: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ObjectStreamParams {
    fn default() -> Self {
        ObjectStreamParams {
            slices: 50,
            max_objects: 10,
            initial_objects: 2,
            max_delta: 2,
            seed: 42,
        }
    }
}

/// Generates per-slice loads in `[0, 1]` proportional to the number of
/// detected objects.
///
/// # Panics
///
/// Panics if `slices == 0` or `max_objects == 0`.
///
/// # Examples
///
/// ```
/// use hhpim_workload::object_trace::{object_loads, ObjectStreamParams};
/// let loads = object_loads(ObjectStreamParams::default());
/// assert_eq!(loads.len(), 50);
/// assert!(loads.iter().all(|&l| (0.0..=1.0).contains(&l)));
/// ```
pub fn object_loads(params: ObjectStreamParams) -> Vec<f64> {
    assert!(params.slices > 0, "need at least one slice");
    assert!(params.max_objects > 0, "need a non-zero object capacity");
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut objects = params.initial_objects.min(params.max_objects) as i64;
    let delta = params.max_delta as i64;
    (0..params.slices)
        .map(|_| {
            objects = (objects + rng.gen_range(-delta..=delta)).clamp(0, params.max_objects as i64);
            objects as f64 / params.max_objects as f64
        })
        .collect()
}

/// Converts object-stream loads into per-slice task counts (≥1, like
/// [`crate::LoadTrace::task_counts`]).
pub fn object_task_counts(params: ObjectStreamParams, max_tasks: u32) -> Vec<u32> {
    object_loads(params)
        .into_iter()
        .map(|l| ((l * max_tasks as f64).round() as u32).clamp(1, max_tasks))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a = object_loads(ObjectStreamParams::default());
        let b = object_loads(ObjectStreamParams::default());
        assert_eq!(a, b);
        let c = object_loads(ObjectStreamParams {
            seed: 7,
            ..ObjectStreamParams::default()
        });
        assert_ne!(a, c);
    }

    #[test]
    fn loads_bounded_and_correlated() {
        let params = ObjectStreamParams {
            slices: 200,
            ..ObjectStreamParams::default()
        };
        let loads = object_loads(params);
        assert!(loads.iter().all(|&l| (0.0..=1.0).contains(&l)));
        // Random walk: successive deltas bounded by max_delta / max_objects.
        let max_step = params.max_delta as f64 / params.max_objects as f64 + 1e-9;
        for w in loads.windows(2) {
            assert!((w[1] - w[0]).abs() <= max_step, "{} -> {}", w[0], w[1]);
        }
    }

    #[test]
    fn task_counts_clamped() {
        let counts = object_task_counts(ObjectStreamParams::default(), 10);
        assert!(counts.iter().all(|&n| (1..=10).contains(&n)));
        assert_eq!(counts.len(), 50);
    }

    #[test]
    #[should_panic(expected = "at least one slice")]
    fn zero_slices_rejected() {
        object_loads(ObjectStreamParams {
            slices: 0,
            ..ObjectStreamParams::default()
        });
    }
}
