//! # hhpim-workload — dynamic inference workloads
//!
//! Generators for the six benchmark scenarios of Fig. 4 (constant
//! low/high, periodic spikes, pulsing, random) and the double-buffered
//! task queue whose occupancy drives the placement optimizer's
//! `t_constraint` (paper §III-A/§IV-A).
//!
//! # Examples
//!
//! ```
//! use hhpim_workload::{LoadTrace, Scenario, ScenarioParams};
//! let trace = LoadTrace::generate(Scenario::PeriodicSpike, ScenarioParams::default());
//! let tasks = trace.task_counts(10); // ≤10 inferences per slice
//! assert_eq!(tasks.len(), 50);
//! assert_eq!(tasks[0], 10); // spike
//! assert_eq!(tasks[1], 2);  // low baseline
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod buffer;
pub mod object_trace;
pub mod scenario;
pub mod traffic;

pub use buffer::{t_constraint_ps, Task, TaskBuffer};
pub use object_trace::{object_loads, object_task_counts, ObjectStreamParams};
pub use scenario::{LoadTrace, Scenario, ScenarioParams, TraceError, TraceOrigin};
pub use traffic::{
    ArrivalProcess, BurstyOnOff, ClosedLoop, ClosedLoopConfig, ConstantRate, Diurnal,
    LoadDistribution, LoadFeedback, LoadReport, Pacer, Poisson, RecordedArrival, RecordedTrace,
    ReplayTraffic, TraceRecorder, TrafficConfig, TrafficEngine, TrafficError, TRACE_FORMAT_VERSION,
};
