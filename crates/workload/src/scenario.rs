//! The six workload scenarios of Fig. 4.
//!
//! Each scenario produces a *computational load* in `[0, 1]` per time
//! slice; the runtime converts load to an inference (task) count via the
//! per-slice maximum. The spike and pulse patterns "simulate realistic
//! scenarios in AI applications on edge devices, where computational
//! demands periodically surge" (paper, §IV-A).

use core::fmt;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One of the paper's six benchmark workload patterns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[non_exhaustive]
pub enum Scenario {
    /// Case 1: consistently low load.
    LowConstant,
    /// Case 2: consistently high load.
    HighConstant,
    /// Case 3: periodic spikes over a low baseline.
    PeriodicSpike,
    /// Case 4: frequent periodic spikes.
    PeriodicSpikeFrequent,
    /// Case 5: alternating high/low pulses.
    HighLowPulsing,
    /// Case 6: uniformly random load.
    Random,
}

impl Scenario {
    /// All six cases in paper order.
    pub const ALL: [Scenario; 6] = [
        Scenario::LowConstant,
        Scenario::HighConstant,
        Scenario::PeriodicSpike,
        Scenario::PeriodicSpikeFrequent,
        Scenario::HighLowPulsing,
        Scenario::Random,
    ];

    /// The 1-based case number used in the paper.
    pub fn case_number(self) -> usize {
        Scenario::ALL
            .iter()
            .position(|&s| s == self)
            .expect("scenario in ALL")
            + 1
    }

    /// The paper's label for this case.
    pub fn label(self) -> &'static str {
        match self {
            Scenario::LowConstant => "Low Workload Constant",
            Scenario::HighConstant => "High Workload Constant",
            Scenario::PeriodicSpike => "Periodic Spike Pattern",
            Scenario::PeriodicSpikeFrequent => "Periodic Spike Pattern (frequent)",
            Scenario::HighLowPulsing => "High-Low Pulsing Pattern",
            Scenario::Random => "Random Workload",
        }
    }
}

impl fmt::Display for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Case {}: {}", self.case_number(), self.label())
    }
}

/// Why a trace could not be built from its parameters or loads.
///
/// Returned by [`LoadTrace::try_generate`] and [`LoadTrace::replay`]
/// instead of silently yielding an empty or out-of-range run.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum TraceError {
    /// The parameters describe a zero-length trace (no slices / no
    /// recorded loads).
    Empty,
    /// A load level lies outside `[0, 1]`.
    LevelOutOfRange {
        /// The offending level.
        level: f64,
    },
    /// The low level exceeds the high level.
    InvertedLevels {
        /// Configured low level.
        low: f64,
        /// Configured high level.
        high: f64,
    },
    /// A replayed load sample lies outside `[0, 1]` or is not finite.
    LoadOutOfRange {
        /// Index of the offending sample.
        index: usize,
        /// The offending sample.
        load: f64,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Empty => write!(f, "trace has zero slices"),
            TraceError::LevelOutOfRange { level } => {
                write!(f, "load level {level} outside [0, 1]")
            }
            TraceError::InvertedLevels { low, high } => {
                write!(f, "low level {low} above high level {high}")
            }
            TraceError::LoadOutOfRange { index, load } => {
                write!(f, "replayed load {load} at slice {index} outside [0, 1]")
            }
        }
    }
}

impl std::error::Error for TraceError {}

/// Where a [`LoadTrace`]'s samples came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum TraceOrigin {
    /// Generated from one of the paper's canned [`Scenario`]s.
    Scenario(Scenario),
    /// Replayed from recorded per-slice loads.
    Replay,
}

impl fmt::Display for TraceOrigin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceOrigin::Scenario(s) => write!(f, "{s}"),
            TraceOrigin::Replay => write!(f, "replayed loads"),
        }
    }
}

/// Parameters shaping scenario generation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScenarioParams {
    /// Number of time slices (the paper runs 50).
    pub slices: usize,
    /// Load level of "low" phases.
    pub low: f64,
    /// Load level of "high" phases.
    pub high: f64,
    /// Spike period for Case 3, in slices.
    pub spike_period: usize,
    /// Spike period for Case 4 (frequent), in slices.
    pub frequent_spike_period: usize,
    /// Half-period of the Case 5 pulse, in slices.
    pub pulse_half_period: usize,
    /// RNG seed for Case 6.
    pub seed: u64,
}

impl Default for ScenarioParams {
    fn default() -> Self {
        ScenarioParams {
            slices: 50,
            low: 0.2,
            high: 1.0,
            spike_period: 10,
            frequent_spike_period: 4,
            pulse_half_period: 5,
            seed: 0xDAC_2025,
        }
    }
}

/// A generated or replayed workload: per-slice load levels in `[0, 1]`.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadTrace {
    origin: TraceOrigin,
    loads: Vec<f64>,
}

impl LoadTrace {
    /// Generates the trace for `scenario` under `params`.
    ///
    /// # Panics
    ///
    /// Panics on any [`TraceError`] — use [`LoadTrace::try_generate`]
    /// to handle invalid parameters gracefully.
    pub fn generate(scenario: Scenario, params: ScenarioParams) -> Self {
        Self::try_generate(scenario, params)
            .unwrap_or_else(|e| panic!("invalid scenario params: {e}"))
    }

    /// Generates the trace for `scenario` under `params`, rejecting
    /// parameters that would describe an empty or out-of-range run.
    ///
    /// # Errors
    ///
    /// [`TraceError::Empty`] when `params.slices == 0`,
    /// [`TraceError::LevelOutOfRange`] when a level leaves `[0, 1]`,
    /// [`TraceError::InvertedLevels`] when `low > high`.
    pub fn try_generate(scenario: Scenario, params: ScenarioParams) -> Result<Self, TraceError> {
        if params.slices == 0 {
            return Err(TraceError::Empty);
        }
        for level in [params.low, params.high] {
            if !(0.0..=1.0).contains(&level) {
                return Err(TraceError::LevelOutOfRange { level });
            }
        }
        if params.low > params.high {
            return Err(TraceError::InvertedLevels {
                low: params.low,
                high: params.high,
            });
        }
        let mut rng = StdRng::seed_from_u64(params.seed);
        let loads = (0..params.slices)
            .map(|i| match scenario {
                Scenario::LowConstant => params.low,
                Scenario::HighConstant => params.high,
                Scenario::PeriodicSpike => {
                    if params.spike_period > 0 && i % params.spike_period == 0 {
                        params.high
                    } else {
                        params.low
                    }
                }
                Scenario::PeriodicSpikeFrequent => {
                    if params.frequent_spike_period > 0 && i % params.frequent_spike_period == 0 {
                        params.high
                    } else {
                        params.low
                    }
                }
                Scenario::HighLowPulsing => {
                    let half = params.pulse_half_period.max(1);
                    if (i / half).is_multiple_of(2) {
                        params.high
                    } else {
                        params.low
                    }
                }
                Scenario::Random => rng.gen_range(params.low..=params.high),
            })
            .collect();
        Ok(LoadTrace {
            origin: TraceOrigin::Scenario(scenario),
            loads,
        })
    }

    /// Builds a trace by replaying recorded per-slice loads — e.g. a
    /// measured object-count stream — through the same runtime path the
    /// canned scenarios use.
    ///
    /// # Errors
    ///
    /// [`TraceError::Empty`] when `loads` is empty,
    /// [`TraceError::LoadOutOfRange`] when a sample is not a finite
    /// value in `[0, 1]`.
    pub fn replay(loads: Vec<f64>) -> Result<Self, TraceError> {
        if loads.is_empty() {
            return Err(TraceError::Empty);
        }
        for (index, &load) in loads.iter().enumerate() {
            if !load.is_finite() || !(0.0..=1.0).contains(&load) {
                return Err(TraceError::LoadOutOfRange { index, load });
            }
        }
        Ok(LoadTrace {
            origin: TraceOrigin::Replay,
            loads,
        })
    }

    /// Where this trace came from.
    pub fn origin(&self) -> TraceOrigin {
        self.origin
    }

    /// The scenario that produced this trace (`None` for replays).
    pub fn scenario(&self) -> Option<Scenario> {
        match self.origin {
            TraceOrigin::Scenario(s) => Some(s),
            _ => None,
        }
    }

    /// Per-slice load levels.
    pub fn loads(&self) -> &[f64] {
        &self.loads
    }

    /// Number of slices.
    pub fn len(&self) -> usize {
        self.loads.len()
    }

    /// Whether the trace is empty (never true).
    pub fn is_empty(&self) -> bool {
        self.loads.is_empty()
    }

    /// Quantizes one load level into an integer task count given the
    /// maximum number of inferences a slice can hold. A zero load is
    /// an idle slice and executes nothing; any positive load issues at
    /// least one task (a near-idle camera still runs detection), and
    /// the count saturates at `max_tasks_per_slice`. This is the
    /// single quantization rule — batch replays, the streaming engine,
    /// and traffic replay all call it, so they cannot diverge.
    pub fn task_count_for(load: f64, max_tasks_per_slice: u32) -> u32 {
        if load <= 0.0 {
            0
        } else {
            ((load * max_tasks_per_slice as f64).round() as u32).clamp(1, max_tasks_per_slice)
        }
    }

    /// Merges a pending (accumulated) load with a newly offered one
    /// without exceeding a full slice: returns `(merged, overflow)`
    /// where `merged` is the combined load clamped to `1.0` and
    /// `overflow` is whatever did not fit. Load-coalescing admission
    /// policies use this to pack several small offered loads into one
    /// saturated slice — the point at which the fastest placement's
    /// per-slice task cap is reached — while conserving total load:
    /// `merged + overflow == accum + load` (both inputs are treated as
    /// non-negative; negative inputs are clamped to zero).
    pub fn saturating_merge(accum: f64, load: f64) -> (f64, f64) {
        let total = accum.max(0.0) + load.max(0.0);
        if total <= 1.0 {
            (total, 0.0)
        } else {
            (1.0, total - 1.0)
        }
    }

    /// Converts loads to integer task counts via
    /// [`LoadTrace::task_count_for`].
    pub fn task_counts(&self, max_tasks_per_slice: u32) -> Vec<u32> {
        self.loads
            .iter()
            .map(|&l| Self::task_count_for(l, max_tasks_per_slice))
            .collect()
    }

    /// Mean load over the trace.
    pub fn mean_load(&self) -> f64 {
        self.loads.iter().sum::<f64>() / self.loads.len() as f64
    }

    /// Renders a one-line ASCII sparkline of the trace (for reports).
    pub fn sparkline(&self) -> String {
        const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
        self.loads
            .iter()
            .map(|&l| LEVELS[((l * 7.0).round() as usize).min(7)])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> ScenarioParams {
        ScenarioParams::default()
    }

    #[test]
    fn constant_cases_are_flat() {
        let low = LoadTrace::generate(Scenario::LowConstant, params());
        assert!(low.loads().iter().all(|&l| l == 0.2));
        let high = LoadTrace::generate(Scenario::HighConstant, params());
        assert!(high.loads().iter().all(|&l| l == 1.0));
    }

    #[test]
    fn spikes_occur_at_period() {
        let t = LoadTrace::generate(Scenario::PeriodicSpike, params());
        for (i, &l) in t.loads().iter().enumerate() {
            if i % 10 == 0 {
                assert_eq!(l, 1.0, "slice {i} should spike");
            } else {
                assert_eq!(l, 0.2, "slice {i} should idle");
            }
        }
        let freq = LoadTrace::generate(Scenario::PeriodicSpikeFrequent, params());
        let spikes = freq.loads().iter().filter(|&&l| l == 1.0).count();
        assert_eq!(spikes, 13, "every 4th of 50 slices spikes");
    }

    #[test]
    fn pulsing_alternates_blocks() {
        let t = LoadTrace::generate(Scenario::HighLowPulsing, params());
        assert!(t.loads()[..5].iter().all(|&l| l == 1.0));
        assert!(t.loads()[5..10].iter().all(|&l| l == 0.2));
        assert!(t.loads()[10..15].iter().all(|&l| l == 1.0));
    }

    #[test]
    fn random_is_seeded_and_bounded() {
        let a = LoadTrace::generate(Scenario::Random, params());
        let b = LoadTrace::generate(Scenario::Random, params());
        assert_eq!(a, b, "same seed, same trace");
        let c = LoadTrace::generate(
            Scenario::Random,
            ScenarioParams {
                seed: 1,
                ..params()
            },
        );
        assert_ne!(a, c, "different seed, different trace");
        assert!(a.loads().iter().all(|&l| (0.2..=1.0).contains(&l)));
    }

    #[test]
    fn task_counts_round_and_clamp() {
        let t = LoadTrace::generate(Scenario::LowConstant, params());
        assert!(t.task_counts(10).iter().all(|&n| n == 2));
        // A zero-load trace is idle: no tasks issued.
        let z = LoadTrace::generate(
            Scenario::LowConstant,
            ScenarioParams {
                low: 0.0,
                ..params()
            },
        );
        assert!(z.task_counts(10).iter().all(|&n| n == 0));
        // But any positive load issues at least one task.
        assert_eq!(LoadTrace::task_count_for(0.01, 10), 1);
        let h = LoadTrace::generate(Scenario::HighConstant, params());
        assert!(h.task_counts(10).iter().all(|&n| n == 10));
    }

    #[test]
    fn saturating_merge_conserves_load_and_clamps() {
        // Under a full slice: everything merges, nothing overflows.
        assert_eq!(LoadTrace::saturating_merge(0.2, 0.3), (0.5, 0.0));
        // Over a full slice: the merged load saturates at 1.0 and the
        // remainder carries over.
        let (merged, overflow) = LoadTrace::saturating_merge(0.8, 0.5);
        assert_eq!(merged, 1.0);
        assert!((overflow - 0.3).abs() < 1e-12);
        // Conservation across arbitrary pairs.
        for (a, l) in [(0.0, 0.0), (0.4, 0.9), (1.0, 1.0), (0.7, 0.2)] {
            let (m, o) = LoadTrace::saturating_merge(a, l);
            assert!((0.0..=1.0).contains(&m));
            assert!(o >= 0.0);
            assert!((m + o - (a + l)).abs() < 1e-12, "{a} + {l}");
        }
        // Negative inputs are clamped, not propagated.
        assert_eq!(LoadTrace::saturating_merge(-0.5, 0.25), (0.25, 0.0));
    }

    #[test]
    fn mean_load_orders_cases() {
        let low = LoadTrace::generate(Scenario::LowConstant, params()).mean_load();
        let spike = LoadTrace::generate(Scenario::PeriodicSpike, params()).mean_load();
        let pulse = LoadTrace::generate(Scenario::HighLowPulsing, params()).mean_load();
        let high = LoadTrace::generate(Scenario::HighConstant, params()).mean_load();
        assert!(low < spike && spike < pulse && pulse < high);
    }

    #[test]
    fn case_numbers_match_paper() {
        assert_eq!(Scenario::LowConstant.case_number(), 1);
        assert_eq!(Scenario::Random.case_number(), 6);
        assert_eq!(
            Scenario::HighLowPulsing.to_string(),
            "Case 5: High-Low Pulsing Pattern"
        );
    }

    #[test]
    fn sparkline_has_one_char_per_slice() {
        let t = LoadTrace::generate(Scenario::Random, params());
        assert_eq!(t.sparkline().chars().count(), 50);
    }

    #[test]
    #[should_panic(expected = "above high level")]
    fn inverted_levels_rejected() {
        LoadTrace::generate(
            Scenario::LowConstant,
            ScenarioParams {
                low: 0.9,
                high: 0.1,
                ..ScenarioParams::default()
            },
        );
    }

    #[test]
    fn zero_length_trace_is_a_typed_error() {
        // Regression: an all-defaults params with `slices: 0` used to be
        // an assert; the typed path must reject it before generation.
        let err = LoadTrace::try_generate(
            Scenario::Random,
            ScenarioParams {
                slices: 0,
                ..ScenarioParams::default()
            },
        )
        .unwrap_err();
        assert_eq!(err, TraceError::Empty);
        assert!(err.to_string().contains("zero slices"));
    }

    #[test]
    fn try_generate_rejects_bad_levels_with_typed_errors() {
        let high = LoadTrace::try_generate(
            Scenario::LowConstant,
            ScenarioParams {
                high: 1.5,
                ..ScenarioParams::default()
            },
        )
        .unwrap_err();
        assert_eq!(high, TraceError::LevelOutOfRange { level: 1.5 });
        let inverted = LoadTrace::try_generate(
            Scenario::LowConstant,
            ScenarioParams {
                low: 0.8,
                high: 0.3,
                ..ScenarioParams::default()
            },
        )
        .unwrap_err();
        assert!(matches!(inverted, TraceError::InvertedLevels { .. }));
    }

    #[test]
    fn replay_validates_and_round_trips() {
        let loads = vec![0.1, 0.9, 0.4];
        let t = LoadTrace::replay(loads.clone()).unwrap();
        assert_eq!(t.loads(), loads.as_slice());
        assert_eq!(t.origin(), TraceOrigin::Replay);
        assert_eq!(t.scenario(), None);
        assert_eq!(t.task_counts(10), vec![1, 9, 4]);

        assert_eq!(
            LoadTrace::replay(Vec::new()).unwrap_err(),
            TraceError::Empty
        );
        assert_eq!(
            LoadTrace::replay(vec![0.5, 1.2]).unwrap_err(),
            TraceError::LoadOutOfRange {
                index: 1,
                load: 1.2
            }
        );
        assert!(matches!(
            LoadTrace::replay(vec![f64::NAN]).unwrap_err(),
            TraceError::LoadOutOfRange { index: 0, .. }
        ));
    }

    #[test]
    fn generated_traces_know_their_scenario() {
        let t = LoadTrace::generate(Scenario::PeriodicSpike, params());
        assert_eq!(t.scenario(), Some(Scenario::PeriodicSpike));
        assert_eq!(t.origin(), TraceOrigin::Scenario(Scenario::PeriodicSpike));
    }
}
