//! The six workload scenarios of Fig. 4.
//!
//! Each scenario produces a *computational load* in `[0, 1]` per time
//! slice; the runtime converts load to an inference (task) count via the
//! per-slice maximum. The spike and pulse patterns "simulate realistic
//! scenarios in AI applications on edge devices, where computational
//! demands periodically surge" (paper, §IV-A).

use core::fmt;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One of the paper's six benchmark workload patterns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Scenario {
    /// Case 1: consistently low load.
    LowConstant,
    /// Case 2: consistently high load.
    HighConstant,
    /// Case 3: periodic spikes over a low baseline.
    PeriodicSpike,
    /// Case 4: frequent periodic spikes.
    PeriodicSpikeFrequent,
    /// Case 5: alternating high/low pulses.
    HighLowPulsing,
    /// Case 6: uniformly random load.
    Random,
}

impl Scenario {
    /// All six cases in paper order.
    pub const ALL: [Scenario; 6] = [
        Scenario::LowConstant,
        Scenario::HighConstant,
        Scenario::PeriodicSpike,
        Scenario::PeriodicSpikeFrequent,
        Scenario::HighLowPulsing,
        Scenario::Random,
    ];

    /// The 1-based case number used in the paper.
    pub fn case_number(self) -> usize {
        Scenario::ALL
            .iter()
            .position(|&s| s == self)
            .expect("scenario in ALL")
            + 1
    }

    /// The paper's label for this case.
    pub fn label(self) -> &'static str {
        match self {
            Scenario::LowConstant => "Low Workload Constant",
            Scenario::HighConstant => "High Workload Constant",
            Scenario::PeriodicSpike => "Periodic Spike Pattern",
            Scenario::PeriodicSpikeFrequent => "Periodic Spike Pattern (frequent)",
            Scenario::HighLowPulsing => "High-Low Pulsing Pattern",
            Scenario::Random => "Random Workload",
        }
    }
}

impl fmt::Display for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Case {}: {}", self.case_number(), self.label())
    }
}

/// Parameters shaping scenario generation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScenarioParams {
    /// Number of time slices (the paper runs 50).
    pub slices: usize,
    /// Load level of "low" phases.
    pub low: f64,
    /// Load level of "high" phases.
    pub high: f64,
    /// Spike period for Case 3, in slices.
    pub spike_period: usize,
    /// Spike period for Case 4 (frequent), in slices.
    pub frequent_spike_period: usize,
    /// Half-period of the Case 5 pulse, in slices.
    pub pulse_half_period: usize,
    /// RNG seed for Case 6.
    pub seed: u64,
}

impl Default for ScenarioParams {
    fn default() -> Self {
        ScenarioParams {
            slices: 50,
            low: 0.2,
            high: 1.0,
            spike_period: 10,
            frequent_spike_period: 4,
            pulse_half_period: 5,
            seed: 0xDAC_2025,
        }
    }
}

/// A generated workload: per-slice load levels in `[0, 1]`.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadTrace {
    scenario: Scenario,
    loads: Vec<f64>,
}

impl LoadTrace {
    /// Generates the trace for `scenario` under `params`.
    ///
    /// # Panics
    ///
    /// Panics if `params.slices == 0`, if the load levels leave `[0, 1]`,
    /// or if `low > high`.
    pub fn generate(scenario: Scenario, params: ScenarioParams) -> Self {
        assert!(params.slices > 0, "need at least one slice");
        assert!(
            (0.0..=1.0).contains(&params.low) && (0.0..=1.0).contains(&params.high),
            "load levels must lie in [0, 1]"
        );
        assert!(params.low <= params.high, "low level above high level");
        let mut rng = StdRng::seed_from_u64(params.seed);
        let loads = (0..params.slices)
            .map(|i| match scenario {
                Scenario::LowConstant => params.low,
                Scenario::HighConstant => params.high,
                Scenario::PeriodicSpike => {
                    if params.spike_period > 0 && i % params.spike_period == 0 {
                        params.high
                    } else {
                        params.low
                    }
                }
                Scenario::PeriodicSpikeFrequent => {
                    if params.frequent_spike_period > 0 && i % params.frequent_spike_period == 0 {
                        params.high
                    } else {
                        params.low
                    }
                }
                Scenario::HighLowPulsing => {
                    let half = params.pulse_half_period.max(1);
                    if (i / half).is_multiple_of(2) {
                        params.high
                    } else {
                        params.low
                    }
                }
                Scenario::Random => rng.gen_range(params.low..=params.high),
            })
            .collect();
        LoadTrace { scenario, loads }
    }

    /// The scenario that produced this trace.
    pub fn scenario(&self) -> Scenario {
        self.scenario
    }

    /// Per-slice load levels.
    pub fn loads(&self) -> &[f64] {
        &self.loads
    }

    /// Number of slices.
    pub fn len(&self) -> usize {
        self.loads.len()
    }

    /// Whether the trace is empty (never true).
    pub fn is_empty(&self) -> bool {
        self.loads.is_empty()
    }

    /// Converts loads to integer task counts given the maximum number of
    /// inferences a slice can hold; every slice issues at least one task
    /// (an idle camera still runs detection).
    pub fn task_counts(&self, max_tasks_per_slice: u32) -> Vec<u32> {
        self.loads
            .iter()
            .map(|&l| {
                ((l * max_tasks_per_slice as f64).round() as u32).clamp(1, max_tasks_per_slice)
            })
            .collect()
    }

    /// Mean load over the trace.
    pub fn mean_load(&self) -> f64 {
        self.loads.iter().sum::<f64>() / self.loads.len() as f64
    }

    /// Renders a one-line ASCII sparkline of the trace (for reports).
    pub fn sparkline(&self) -> String {
        const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
        self.loads
            .iter()
            .map(|&l| LEVELS[((l * 7.0).round() as usize).min(7)])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> ScenarioParams {
        ScenarioParams::default()
    }

    #[test]
    fn constant_cases_are_flat() {
        let low = LoadTrace::generate(Scenario::LowConstant, params());
        assert!(low.loads().iter().all(|&l| l == 0.2));
        let high = LoadTrace::generate(Scenario::HighConstant, params());
        assert!(high.loads().iter().all(|&l| l == 1.0));
    }

    #[test]
    fn spikes_occur_at_period() {
        let t = LoadTrace::generate(Scenario::PeriodicSpike, params());
        for (i, &l) in t.loads().iter().enumerate() {
            if i % 10 == 0 {
                assert_eq!(l, 1.0, "slice {i} should spike");
            } else {
                assert_eq!(l, 0.2, "slice {i} should idle");
            }
        }
        let freq = LoadTrace::generate(Scenario::PeriodicSpikeFrequent, params());
        let spikes = freq.loads().iter().filter(|&&l| l == 1.0).count();
        assert_eq!(spikes, 13, "every 4th of 50 slices spikes");
    }

    #[test]
    fn pulsing_alternates_blocks() {
        let t = LoadTrace::generate(Scenario::HighLowPulsing, params());
        assert!(t.loads()[..5].iter().all(|&l| l == 1.0));
        assert!(t.loads()[5..10].iter().all(|&l| l == 0.2));
        assert!(t.loads()[10..15].iter().all(|&l| l == 1.0));
    }

    #[test]
    fn random_is_seeded_and_bounded() {
        let a = LoadTrace::generate(Scenario::Random, params());
        let b = LoadTrace::generate(Scenario::Random, params());
        assert_eq!(a, b, "same seed, same trace");
        let c = LoadTrace::generate(
            Scenario::Random,
            ScenarioParams {
                seed: 1,
                ..params()
            },
        );
        assert_ne!(a, c, "different seed, different trace");
        assert!(a.loads().iter().all(|&l| (0.2..=1.0).contains(&l)));
    }

    #[test]
    fn task_counts_round_and_clamp() {
        let t = LoadTrace::generate(Scenario::LowConstant, params());
        assert!(t.task_counts(10).iter().all(|&n| n == 2));
        // A zero-load trace still issues one task per slice.
        let z = LoadTrace::generate(
            Scenario::LowConstant,
            ScenarioParams {
                low: 0.0,
                ..params()
            },
        );
        assert!(z.task_counts(10).iter().all(|&n| n == 1));
        let h = LoadTrace::generate(Scenario::HighConstant, params());
        assert!(h.task_counts(10).iter().all(|&n| n == 10));
    }

    #[test]
    fn mean_load_orders_cases() {
        let low = LoadTrace::generate(Scenario::LowConstant, params()).mean_load();
        let spike = LoadTrace::generate(Scenario::PeriodicSpike, params()).mean_load();
        let pulse = LoadTrace::generate(Scenario::HighLowPulsing, params()).mean_load();
        let high = LoadTrace::generate(Scenario::HighConstant, params()).mean_load();
        assert!(low < spike && spike < pulse && pulse < high);
    }

    #[test]
    fn case_numbers_match_paper() {
        assert_eq!(Scenario::LowConstant.case_number(), 1);
        assert_eq!(Scenario::Random.case_number(), 6);
        assert_eq!(
            Scenario::HighLowPulsing.to_string(),
            "Case 5: High-Low Pulsing Pattern"
        );
    }

    #[test]
    fn sparkline_has_one_char_per_slice() {
        let t = LoadTrace::generate(Scenario::Random, params());
        assert_eq!(t.sparkline().chars().count(), 50);
    }

    #[test]
    #[should_panic(expected = "low level above high")]
    fn inverted_levels_rejected() {
        LoadTrace::generate(
            Scenario::LowConstant,
            ScenarioParams {
                low: 0.9,
                high: 0.1,
                ..ScenarioParams::default()
            },
        );
    }
}
