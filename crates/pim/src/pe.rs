//! The processing element (PE) of a PIM module.
//!
//! Each PIM module carries one PE executing INT8 multiply-accumulate
//! operations into a 32-bit accumulator — the dominant operation of the
//! quantized TinyML workloads in Table IV. The PE is modelled both
//! *functionally* (bit-exact INT8×INT8→INT32 accumulation, so FPGA-style
//! correctness checks are possible) and *temporally/energetically*
//! (latency and power from Tables III and V).

use hhpim_mem::{Energy, PeTech, Power};
use hhpim_sim::{BusyResource, SimTime};

/// An INT8 MAC processing element with a 32-bit accumulator.
///
/// # Examples
///
/// ```
/// use hhpim_pim::ProcessingElement;
/// use hhpim_sim::SimTime;
///
/// let mut pe = ProcessingElement::new(hhpim_mem::hp_pe());
/// let done = pe.mac_burst(SimTime::ZERO, &[(2, 3), (-4, 5)]);
/// assert_eq!(pe.accumulator(), 2 * 3 + (-4) * 5);
/// assert_eq!(done.as_ps(), 2 * 5_520); // two MACs at 5.52 ns each
/// ```
#[derive(Debug, Clone)]
pub struct ProcessingElement {
    tech: PeTech,
    acc: i32,
    unit: BusyResource,
    macs: u64,
    dynamic_energy: Energy,
    static_energy: Energy,
    last_accrual: SimTime,
    powered: bool,
}

impl ProcessingElement {
    /// Creates a powered-on PE with a cleared accumulator.
    pub fn new(tech: PeTech) -> Self {
        ProcessingElement {
            tech,
            acc: 0,
            unit: BusyResource::new(),
            macs: 0,
            dynamic_energy: Energy::ZERO,
            static_energy: Energy::ZERO,
            last_accrual: SimTime::ZERO,
            powered: true,
        }
    }

    /// The PE's technology parameters.
    pub fn tech(&self) -> &PeTech {
        &self.tech
    }

    /// Current accumulator value.
    pub fn accumulator(&self) -> i32 {
        self.acc
    }

    /// Number of MAC operations retired.
    pub fn macs_retired(&self) -> u64 {
        self.macs
    }

    /// Dynamic energy consumed by MACs so far.
    pub fn dynamic_energy(&self) -> Energy {
        self.dynamic_energy
    }

    /// Static energy accrued up to the last [`Self::advance_to`].
    pub fn static_energy(&self) -> Energy {
        self.static_energy
    }

    /// Whether the PE is powered (accrues leakage).
    pub fn is_powered(&self) -> bool {
        self.powered
    }

    /// Powers the PE on or off (off = no leakage, used when a whole
    /// module is idle under the paper's gating policy). The accumulator
    /// is *not* preserved across power-off.
    pub fn set_powered(&mut self, now: SimTime, powered: bool) {
        self.advance_to(now);
        if self.powered && !powered {
            self.acc = 0;
        }
        self.powered = powered;
    }

    /// Advances leakage accrual to `now` (monotonic; earlier times are
    /// ignored).
    pub fn advance_to(&mut self, now: SimTime) {
        if now <= self.last_accrual {
            return;
        }
        if self.powered {
            let dt = now.saturating_since(self.last_accrual);
            self.static_energy += self.tech.static_power * dt;
        }
        self.last_accrual = now;
    }

    /// Leakage power in the current state.
    pub fn static_power(&self) -> Power {
        if self.powered {
            self.tech.static_power
        } else {
            Power::ZERO
        }
    }

    /// Clears the accumulator (zero-latency architectural operation).
    pub fn clear(&mut self) {
        self.acc = 0;
    }

    /// Executes a burst of `(weight, activation)` MACs starting no
    /// earlier than `at`; returns the completion instant.
    ///
    /// Accumulation wraps on i32 overflow, matching the RTL behaviour of
    /// a fixed-width accumulator.
    ///
    /// # Panics
    ///
    /// Panics if the PE is powered off.
    pub fn mac_burst(&mut self, at: SimTime, operands: &[(i8, i8)]) -> SimTime {
        assert!(self.powered, "MAC issued to a powered-off PE");
        self.advance_to(at);
        for &(w, a) in operands {
            self.acc = self.acc.wrapping_add((w as i32) * (a as i32));
        }
        let n = operands.len() as u64;
        self.macs += n;
        self.dynamic_energy += self.tech.mac_energy() * n;
        self.unit.acquire(at, self.tech.mac_latency * n)
    }

    /// Executes a burst of `count` MACs whose products have already been
    /// folded into `delta` by the caller; returns the completion instant.
    ///
    /// Because i32 wrapping addition is associative and commutative, the
    /// accumulator lands on exactly the value the pair-by-pair
    /// [`Self::mac_burst`] chain produces — this is the allocation-free
    /// twin used by timing-graph replay, which folds operands straight
    /// out of bank storage instead of materializing a pair `Vec`.
    ///
    /// # Panics
    ///
    /// Panics if the PE is powered off.
    pub fn mac_burst_prefolded(&mut self, at: SimTime, delta: i32, count: u64) -> SimTime {
        assert!(self.powered, "MAC issued to a powered-off PE");
        self.advance_to(at);
        self.acc = self.acc.wrapping_add(delta);
        self.macs += count;
        self.dynamic_energy += self.tech.mac_energy() * count;
        self.unit.acquire(at, self.tech.mac_latency * count)
    }

    /// Retires `count` MACs with exact timing/energy/counter metering
    /// but no functional accumulation (the accumulator is untouched).
    ///
    /// This is the traffic-level twin of [`Self::mac_burst`] used by
    /// compiled multi-layer schedules, where operand values cannot
    /// affect timing or energy; it costs O(1) regardless of `count`.
    ///
    /// # Panics
    ///
    /// Panics if the PE is powered off.
    pub fn mac_stream(&mut self, at: SimTime, count: u64) -> SimTime {
        assert!(self.powered, "MAC issued to a powered-off PE");
        self.advance_to(at);
        self.macs += count;
        self.dynamic_energy += self.tech.mac_energy() * count;
        self.unit.acquire(at, self.tech.mac_latency * count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hhpim_mem::{hp_pe, lp_pe};
    use hhpim_sim::SimDuration;

    #[test]
    fn functional_mac() {
        let mut pe = ProcessingElement::new(hp_pe());
        pe.mac_burst(SimTime::ZERO, &[(10, 10), (-5, 4), (127, 127)]);
        assert_eq!(pe.accumulator(), 100 - 20 + 16129);
        assert_eq!(pe.macs_retired(), 3);
    }

    #[test]
    fn accumulator_wraps_like_hardware() {
        let mut pe = ProcessingElement::new(hp_pe());
        // Drive the accumulator near i32::MAX then push it over.
        for _ in 0..133_152 {
            pe.mac_burst(SimTime::ZERO, &[(127, 127)]);
        }
        let before = pe.accumulator();
        pe.mac_burst(SimTime::ZERO, &[(127, 127)]);
        assert_eq!(pe.accumulator(), before.wrapping_add(16129));
    }

    #[test]
    fn burst_latency_scales() {
        let mut pe = ProcessingElement::new(lp_pe());
        let done = pe.mac_burst(SimTime::ZERO, &[(1, 1); 10]);
        assert_eq!(done, SimTime::ZERO + SimDuration::from_ns_f64(106.8));
    }

    #[test]
    fn back_to_back_bursts_serialize() {
        let mut pe = ProcessingElement::new(hp_pe());
        let d1 = pe.mac_burst(SimTime::ZERO, &[(1, 1)]);
        let d2 = pe.mac_burst(SimTime::ZERO, &[(1, 1)]);
        assert_eq!(d2, d1 + SimDuration::from_ns_f64(5.52));
    }

    #[test]
    fn dynamic_energy_per_mac() {
        let mut pe = ProcessingElement::new(hp_pe());
        pe.mac_burst(SimTime::ZERO, &[(1, 1); 100]);
        // 0.9 mW × 5.52 ns ≈ 4.968 pJ per MAC.
        assert!((pe.dynamic_energy().as_pj() - 496.8).abs() < 0.5);
    }

    #[test]
    fn leakage_accrues_only_when_powered() {
        let mut pe = ProcessingElement::new(hp_pe());
        pe.advance_to(SimTime::from_ns(1000));
        // 0.48 mW × 1000 ns = 480 pJ.
        assert!((pe.static_energy().as_pj() - 480.0).abs() < 0.5);
        pe.set_powered(SimTime::from_ns(1000), false);
        pe.advance_to(SimTime::from_ns(2000));
        assert!((pe.static_energy().as_pj() - 480.0).abs() < 0.5);
        assert_eq!(pe.static_power(), Power::ZERO);
    }

    #[test]
    fn power_off_clears_accumulator() {
        let mut pe = ProcessingElement::new(hp_pe());
        pe.mac_burst(SimTime::ZERO, &[(3, 3)]);
        pe.set_powered(SimTime::ZERO, false);
        pe.set_powered(SimTime::ZERO, true);
        assert_eq!(pe.accumulator(), 0);
    }

    #[test]
    #[should_panic(expected = "powered-off")]
    fn mac_on_gated_pe_panics() {
        let mut pe = ProcessingElement::new(hp_pe());
        pe.set_powered(SimTime::ZERO, false);
        pe.mac_burst(SimTime::ZERO, &[(1, 1)]);
    }

    #[test]
    fn prefolded_burst_matches_mac_burst_bit_for_bit() {
        let mut a = ProcessingElement::new(hp_pe());
        let mut b = ProcessingElement::new(hp_pe());
        let operands: Vec<(i8, i8)> = (0..100)
            .map(|i| (((i * 37) % 256) as u8 as i8, ((i * 91) % 256) as u8 as i8))
            .collect();
        for chunk in operands.chunks(23) {
            let d1 = a.mac_burst(SimTime::ZERO, chunk);
            let delta = chunk.iter().fold(0i32, |acc, &(w, a)| {
                acc.wrapping_add((w as i32) * (a as i32))
            });
            let d2 = b.mac_burst_prefolded(SimTime::ZERO, delta, chunk.len() as u64);
            assert_eq!(d1, d2);
        }
        assert_eq!(a.accumulator(), b.accumulator());
        assert_eq!(a.macs_retired(), b.macs_retired());
        assert_eq!(a.dynamic_energy().as_pj(), b.dynamic_energy().as_pj());
    }

    #[test]
    fn clear_resets_accumulator() {
        let mut pe = ProcessingElement::new(hp_pe());
        pe.mac_burst(SimTime::ZERO, &[(2, 2)]);
        pe.clear();
        assert_eq!(pe.accumulator(), 0);
    }
}
