//! A PIM module: hybrid MRAM+SRAM memory, an interface and a PE.
//!
//! Per Fig. 1 of the paper, every module (HP or LP) contains an MRAM
//! bank, an SRAM bank, an internal interface and one PE. The interface
//! "dynamically adjusts the load process based on data storage status",
//! synchronizing the differing read cycles of MRAM and SRAM in the LOAD
//! state — modelled here by starting PE execution only once *both*
//! operand streams (weights from the selected bank, activations from
//! SRAM) have arrived.
//!
//! The module is bit-accurate: banks have real byte contents, so whole
//! quantized networks can be executed and checked against a software
//! reference (the FPGA functional-verification step of §IV-A).

use crate::pe::ProcessingElement;
use hhpim_isa::MemSelect;
use hhpim_mem::{
    pe_for, tech_for, AccessKind, BankError, ClusterClass, Energy, MemKind, MemoryBank,
    ResolvedAccess,
};
use hhpim_sim::{SimTime, Summary};
use std::fmt;

/// Errors raised by module operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModuleError {
    /// The underlying bank rejected the access.
    Bank(BankError),
    /// An address range fell outside the bank.
    AddrOutOfRange {
        /// First out-of-range byte address.
        addr: usize,
        /// Bank capacity in bytes.
        capacity: usize,
    },
    /// The activation pointer would run past the SRAM activation region.
    ActivationOverrun,
}

impl fmt::Display for ModuleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModuleError::Bank(e) => write!(f, "bank error: {e}"),
            ModuleError::AddrOutOfRange { addr, capacity } => {
                write!(f, "address {addr:#x} outside bank of {capacity} bytes")
            }
            ModuleError::ActivationOverrun => write!(f, "activation pointer overran SRAM"),
        }
    }
}

impl std::error::Error for ModuleError {}

impl From<BankError> for ModuleError {
    fn from(e: BankError) -> Self {
        ModuleError::Bank(e)
    }
}

/// Configuration of a single PIM module.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModuleConfig {
    /// MRAM bank capacity in bytes (0 disables the bank, as in the
    /// SRAM-only Baseline/Heterogeneous architectures of Table I).
    pub mram_bytes: usize,
    /// SRAM bank capacity in bytes.
    pub sram_bytes: usize,
    /// Byte offset in SRAM where the activation region begins.
    pub act_base: usize,
}

impl Default for ModuleConfig {
    /// The paper's HH-PIM module: 64 kB MRAM + 64 kB SRAM, with the top
    /// quarter of SRAM reserved for activations.
    fn default() -> Self {
        ModuleConfig {
            mram_bytes: 64 * 1024,
            sram_bytes: 64 * 1024,
            act_base: 48 * 1024,
        }
    }
}

/// A single PIM module (see module-level docs).
#[derive(Debug, Clone)]
pub struct PimModule {
    class: ClusterClass,
    mram: Option<MemoryBank>,
    mram_data: Vec<u8>,
    sram: MemoryBank,
    sram_data: Vec<u8>,
    pe: ProcessingElement,
    act_ptr: usize,
    act_base: usize,
    free_at: SimTime,
    mac_burst_latency: Summary,
}

impl PimModule {
    /// Creates a module of the given class.
    ///
    /// # Panics
    ///
    /// Panics if `sram_bytes` is zero or `act_base >= sram_bytes` —
    /// a module always needs SRAM for activations.
    pub fn new(class: ClusterClass, config: ModuleConfig) -> Self {
        assert!(config.sram_bytes > 0, "module requires SRAM");
        assert!(
            config.act_base < config.sram_bytes,
            "activation base outside SRAM"
        );
        let mram = (config.mram_bytes > 0)
            .then(|| MemoryBank::new(tech_for(class, MemKind::Mram), config.mram_bytes));
        PimModule {
            class,
            mram,
            mram_data: vec![0; config.mram_bytes],
            sram: MemoryBank::new(tech_for(class, MemKind::Sram), config.sram_bytes),
            sram_data: vec![0; config.sram_bytes],
            pe: ProcessingElement::new(pe_for(class)),
            act_ptr: config.act_base,
            act_base: config.act_base,
            free_at: SimTime::ZERO,
            mac_burst_latency: Summary::new(),
        }
    }

    /// The module's cluster class.
    pub fn class(&self) -> ClusterClass {
        self.class
    }

    /// Whether the module has an MRAM bank.
    pub fn has_mram(&self) -> bool {
        self.mram.is_some()
    }

    /// The module's PE.
    pub fn pe(&self) -> &ProcessingElement {
        &self.pe
    }

    /// Shared view of a bank.
    ///
    /// # Panics
    ///
    /// Panics when selecting MRAM on an SRAM-only module.
    pub fn bank(&self, mem: MemSelect) -> &MemoryBank {
        match mem {
            MemSelect::Mram => self.mram.as_ref().expect("module has no MRAM bank"),
            MemSelect::Sram => &self.sram,
        }
    }

    fn bank_mut(&mut self, mem: MemSelect) -> Result<&mut MemoryBank, ModuleError> {
        match mem {
            MemSelect::Mram => self.mram.as_mut().ok_or(ModuleError::AddrOutOfRange {
                addr: 0,
                capacity: 0,
            }),
            MemSelect::Sram => Ok(&mut self.sram),
        }
    }

    /// Instant at which the module completes all issued work.
    pub fn free_at(&self) -> SimTime {
        self.free_at
    }

    /// Distribution of MAC-burst latencies (ns), for reports.
    pub fn mac_burst_latency(&self) -> &Summary {
        &self.mac_burst_latency
    }

    /// Advances static-energy accrual of all powered components to `now`.
    pub fn advance_to(&mut self, now: SimTime) {
        if let Some(m) = self.mram.as_mut() {
            m.advance_to(now);
        }
        self.sram.advance_to(now);
        self.pe.advance_to(now);
    }

    /// Total energy (dynamic + static + wake) across banks and PE.
    pub fn total_energy(&self) -> Energy {
        let mram = self
            .mram
            .as_ref()
            .map(MemoryBank::total_energy)
            .unwrap_or(Energy::ZERO);
        mram + self.sram.total_energy() + self.pe.dynamic_energy() + self.pe.static_energy()
    }

    fn check_range(&self, mem: MemSelect, addr: usize, len: usize) -> Result<(), ModuleError> {
        let capacity = match mem {
            MemSelect::Mram => self.mram_data.len(),
            MemSelect::Sram => self.sram_data.len(),
        };
        if addr + len > capacity {
            return Err(ModuleError::AddrOutOfRange {
                addr: addr + len,
                capacity,
            });
        }
        Ok(())
    }

    fn data(&self, mem: MemSelect) -> &[u8] {
        match mem {
            MemSelect::Mram => &self.mram_data,
            MemSelect::Sram => &self.sram_data,
        }
    }

    fn data_mut(&mut self, mem: MemSelect) -> &mut Vec<u8> {
        match mem {
            MemSelect::Mram => &mut self.mram_data,
            MemSelect::Sram => &mut self.sram_data,
        }
    }

    /// Host-side preload: writes bytes directly (no timing/energy), used
    /// for test fixture setup, mirroring a JTAG/debug load on the FPGA.
    ///
    /// # Errors
    ///
    /// Returns [`ModuleError::AddrOutOfRange`] on overflow.
    pub fn preload(
        &mut self,
        mem: MemSelect,
        addr: usize,
        bytes: &[u8],
    ) -> Result<(), ModuleError> {
        self.check_range(mem, addr, bytes.len())?;
        let occupy = bytes.len();
        self.data_mut(mem)[addr..addr + occupy].copy_from_slice(bytes);
        let bank = self.bank_mut(mem)?;
        // Occupancy tracking saturates at capacity: preloads may overwrite.
        let free = bank.free_bytes();
        let _ = bank.store(occupy.min(free));
        Ok(())
    }

    /// Host-side readback of bytes (no timing/energy).
    ///
    /// # Errors
    ///
    /// Returns [`ModuleError::AddrOutOfRange`] on overflow.
    pub fn read_back(&self, mem: MemSelect, addr: usize, len: usize) -> Result<&[u8], ModuleError> {
        self.check_range(mem, addr, len)?;
        Ok(&self.data(mem)[addr..addr + len])
    }

    /// Clears the PE accumulator and rewinds the activation pointer to
    /// the activation base (zero-latency architectural operation).
    pub fn clear_acc(&mut self) {
        self.pe.clear();
        self.act_ptr = self.act_base;
    }

    /// Executes `count` MACs: weights stream from `mem` at `addr`,
    /// activations stream from the SRAM activation region. The PE starts
    /// when both operand bursts have arrived (the LOAD-state
    /// synchronization the paper's interface performs); returns the
    /// completion instant.
    ///
    /// # Errors
    ///
    /// Propagates bank errors (gated banks) and range errors.
    pub fn mac(
        &mut self,
        at: SimTime,
        mem: MemSelect,
        addr: usize,
        count: usize,
    ) -> Result<SimTime, ModuleError> {
        let at = at.max(self.free_at);
        self.check_range(mem, addr, count)?;
        if self.act_ptr + count > self.sram_data.len() {
            return Err(ModuleError::ActivationOverrun);
        }
        // Weight burst from the selected bank.
        let w_done = self
            .bank_mut(mem)?
            .access(at, AccessKind::Read, count as u64)?
            .done_at;
        // Activation burst always from SRAM. When weights also come from
        // SRAM the single port serializes both bursts automatically.
        let a_done = self
            .sram
            .access(at, AccessKind::Read, count as u64)?
            .done_at;
        let operands_ready = w_done.max(a_done);
        let pairs: Vec<(i8, i8)> = (0..count)
            .map(|i| {
                let w = self.data(mem)[addr + i] as i8;
                let a = self.sram_data[self.act_ptr + i] as i8;
                (w, a)
            })
            .collect();
        let done = self.pe.mac_burst(operands_ready, &pairs);
        self.act_ptr += count;
        self.free_at = done;
        self.mac_burst_latency
            .add(done.saturating_since(at).as_ns_f64());
        Ok(done)
    }

    /// Streams `count` MACs through the PE with exact timing/energy
    /// metering but no functional accumulation: weights burst from
    /// `mem` starting at `addr` (wrapping within the bank), activations
    /// burst from SRAM, and the PE starts once both operand streams
    /// have arrived — the same LOAD-state synchronization as
    /// [`Self::mac`], at O(1) cost regardless of `count`.
    ///
    /// Compiled multi-layer *schedules* use this path (operand values
    /// cannot affect timing or energy); the bit-exact path for
    /// functional verification remains [`Self::mac`].
    ///
    /// # Errors
    ///
    /// Propagates bank errors (gated banks) and range errors on `addr`.
    pub fn mac_stream(
        &mut self,
        at: SimTime,
        mem: MemSelect,
        addr: usize,
        count: usize,
    ) -> Result<SimTime, ModuleError> {
        let at = at.max(self.free_at);
        self.check_range(mem, addr, 1)?;
        let w_done = self
            .bank_mut(mem)?
            .access(at, AccessKind::Read, count as u64)?
            .done_at;
        let a_done = self
            .sram
            .access(at, AccessKind::Read, count as u64)?
            .done_at;
        let operands_ready = w_done.max(a_done);
        let done = self.pe.mac_stream(operands_ready, count as u64);
        self.free_at = done;
        self.mac_burst_latency
            .add(done.saturating_since(at).as_ns_f64());
        Ok(done)
    }

    /// [`Self::mac`] with pre-resolved bank coefficients and no operand
    /// `Vec`: the weight/activation products are folded inline out of
    /// bank storage and applied through
    /// [`ProcessingElement::mac_burst_prefolded`], which lands on the
    /// identical accumulator, timing, energy and counters (wrapping i32
    /// addition is associative). `weights` must be resolved from the
    /// bank `mem` selects and `acts` from this module's SRAM.
    ///
    /// # Errors
    ///
    /// Propagates bank errors (gated banks) and range errors, exactly
    /// as [`Self::mac`] does.
    pub fn mac_resolved(
        &mut self,
        at: SimTime,
        mem: MemSelect,
        weights: &ResolvedAccess,
        acts: &ResolvedAccess,
        addr: usize,
        count: usize,
    ) -> Result<SimTime, ModuleError> {
        let at = at.max(self.free_at);
        self.check_range(mem, addr, count)?;
        if self.act_ptr + count > self.sram_data.len() {
            return Err(ModuleError::ActivationOverrun);
        }
        let w_done = self
            .bank_mut(mem)?
            .access_resolved(at, weights, count as u64)?
            .done_at;
        let a_done = self.sram.access_resolved(at, acts, count as u64)?.done_at;
        let operands_ready = w_done.max(a_done);
        let delta = {
            let w = &self.data(mem)[addr..addr + count];
            let a = &self.sram_data[self.act_ptr..self.act_ptr + count];
            let mut d = 0i32;
            for i in 0..count {
                d = d.wrapping_add((w[i] as i8 as i32) * (a[i] as i8 as i32));
            }
            d
        };
        let done = self
            .pe
            .mac_burst_prefolded(operands_ready, delta, count as u64);
        self.act_ptr += count;
        self.free_at = done;
        self.mac_burst_latency
            .add(done.saturating_since(at).as_ns_f64());
        Ok(done)
    }

    /// [`Self::mac_stream`] with pre-resolved bank coefficients — the
    /// timing-graph replay primitive for compiled schedules. Identical
    /// metering, gating checks and range errors; no technology lookups.
    ///
    /// # Errors
    ///
    /// Propagates bank errors (gated banks) and range errors on `addr`.
    pub fn mac_stream_resolved(
        &mut self,
        at: SimTime,
        mem: MemSelect,
        weights: &ResolvedAccess,
        acts: &ResolvedAccess,
        addr: usize,
        count: usize,
    ) -> Result<SimTime, ModuleError> {
        let at = at.max(self.free_at);
        self.check_range(mem, addr, 1)?;
        let w_done = self
            .bank_mut(mem)?
            .access_resolved(at, weights, count as u64)?
            .done_at;
        let a_done = self.sram.access_resolved(at, acts, count as u64)?.done_at;
        let operands_ready = w_done.max(a_done);
        let done = self.pe.mac_stream(operands_ready, count as u64);
        self.free_at = done;
        self.mac_burst_latency
            .add(done.saturating_since(at).as_ns_f64());
        Ok(done)
    }

    /// Writes the PE accumulator (4 bytes, little-endian) to `mem` at
    /// `addr`; returns the completion instant.
    ///
    /// # Errors
    ///
    /// Propagates bank and range errors.
    pub fn write_back(
        &mut self,
        at: SimTime,
        mem: MemSelect,
        addr: usize,
    ) -> Result<SimTime, ModuleError> {
        let at = at.max(self.free_at);
        self.check_range(mem, addr, 4)?;
        let value = self.pe.accumulator().to_le_bytes();
        let done = self
            .bank_mut(mem)?
            .access(at, AccessKind::Write, 4)?
            .done_at;
        self.data_mut(mem)[addr..addr + 4].copy_from_slice(&value);
        self.free_at = done;
        Ok(done)
    }

    /// Copies `count` bytes from `from` at `addr` to the opposite bank at
    /// the same address (read burst then write burst, serialized as the
    /// module interface does); returns the completion instant.
    ///
    /// # Errors
    ///
    /// Propagates bank and range errors; fails on SRAM-only modules.
    pub fn move_intra(
        &mut self,
        at: SimTime,
        from: MemSelect,
        addr: usize,
        count: usize,
    ) -> Result<SimTime, ModuleError> {
        let at = at.max(self.free_at);
        let to = match from {
            MemSelect::Mram => MemSelect::Sram,
            MemSelect::Sram => MemSelect::Mram,
        };
        self.check_range(from, addr, count)?;
        self.check_range(to, addr, count)?;
        let read_done = self
            .bank_mut(from)?
            .access(at, AccessKind::Read, count as u64)?
            .done_at;
        let write_done = self
            .bank_mut(to)?
            .access(read_done, AccessKind::Write, count as u64)?
            .done_at;
        let bytes: Vec<u8> = self.data(from)[addr..addr + count].to_vec();
        self.data_mut(to)[addr..addr + count].copy_from_slice(&bytes);
        // Occupancy: data now live in both banks until explicitly freed.
        let to_bank = self.bank_mut(to)?;
        let free = to_bank.free_bytes();
        let _ = to_bank.store(count.min(free));
        self.free_at = write_done;
        Ok(write_done)
    }

    /// Timed read of `count` bytes (used by the Data Allocator's MEM
    /// interface for inter-cluster transfers and external stores).
    ///
    /// # Errors
    ///
    /// Propagates bank and range errors.
    pub fn read_words(
        &mut self,
        at: SimTime,
        mem: MemSelect,
        addr: usize,
        count: usize,
    ) -> Result<(SimTime, Vec<u8>), ModuleError> {
        let at = at.max(self.free_at);
        self.check_range(mem, addr, count)?;
        let done = self
            .bank_mut(mem)?
            .access(at, AccessKind::Read, count as u64)?
            .done_at;
        let bytes = self.data(mem)[addr..addr + count].to_vec();
        self.free_at = done;
        Ok((done, bytes))
    }

    /// Timed write of bytes (inter-cluster arrivals and external loads).
    ///
    /// # Errors
    ///
    /// Propagates bank and range errors.
    pub fn write_words(
        &mut self,
        at: SimTime,
        mem: MemSelect,
        addr: usize,
        bytes: &[u8],
    ) -> Result<SimTime, ModuleError> {
        let at = at.max(self.free_at);
        self.check_range(mem, addr, bytes.len())?;
        let done = self
            .bank_mut(mem)?
            .access(at, AccessKind::Write, bytes.len() as u64)?
            .done_at;
        let n = bytes.len();
        self.data_mut(mem)[addr..addr + n].copy_from_slice(bytes);
        let bank = self.bank_mut(mem)?;
        let free = bank.free_bytes();
        let _ = bank.store(n.min(free));
        self.free_at = done;
        Ok(done)
    }

    /// Power-gates or wakes a bank. Gating SRAM with live data fails
    /// (volatile); waking returns when the bank is accessible.
    ///
    /// # Errors
    ///
    /// Propagates [`BankError::WouldLoseData`] for live SRAM.
    pub fn set_gated(
        &mut self,
        now: SimTime,
        mem: MemSelect,
        gated: bool,
    ) -> Result<SimTime, ModuleError> {
        let bank = self.bank_mut(mem)?;
        if gated {
            bank.gate(now)?;
            Ok(now)
        } else {
            Ok(bank.ungate(now))
        }
    }

    /// Frees `bytes` of occupancy from a bank (placement bookkeeping).
    ///
    /// # Errors
    ///
    /// Propagates [`BankError::Underflow`].
    pub fn free_bytes(&mut self, mem: MemSelect, bytes: usize) -> Result<(), ModuleError> {
        Ok(self.bank_mut(mem)?.free(bytes)?)
    }

    /// Marks the module idle and powers the PE down or up.
    pub fn set_pe_powered(&mut self, now: SimTime, powered: bool) {
        self.pe.set_powered(now, powered);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hp_module() -> PimModule {
        PimModule::new(ClusterClass::HighPerformance, ModuleConfig::default())
    }

    #[test]
    fn mac_computes_dot_product() {
        let mut m = hp_module();
        m.preload(MemSelect::Mram, 0, &[2u8, 3, 0xFF]).unwrap(); // 2, 3, -1
        let act_base = ModuleConfig::default().act_base;
        m.preload(MemSelect::Sram, act_base, &[10u8, 20, 30])
            .unwrap();
        m.clear_acc();
        m.mac(SimTime::ZERO, MemSelect::Mram, 0, 3).unwrap();
        assert_eq!(m.pe().accumulator(), 2 * 10 + 3 * 20 - 30);
    }

    #[test]
    fn chained_macs_advance_activation_pointer() {
        let mut m = hp_module();
        m.preload(MemSelect::Sram, 0, &[1u8, 1, 1, 1]).unwrap();
        let act_base = ModuleConfig::default().act_base;
        m.preload(MemSelect::Sram, act_base, &[1u8, 2, 3, 4])
            .unwrap();
        m.clear_acc();
        m.mac(SimTime::ZERO, MemSelect::Sram, 0, 2).unwrap();
        m.mac(SimTime::ZERO, MemSelect::Sram, 2, 2).unwrap();
        assert_eq!(m.pe().accumulator(), 1 + 2 + 3 + 4);
        // Clearing rewinds the pointer.
        m.clear_acc();
        m.mac(SimTime::ZERO, MemSelect::Sram, 0, 2).unwrap();
        assert_eq!(m.pe().accumulator(), 1 + 2);
    }

    #[test]
    fn mram_and_sram_loads_overlap() {
        let mut m = hp_module();
        m.preload(MemSelect::Mram, 0, &[1u8; 16]).unwrap();
        let done_mram = m.mac(SimTime::ZERO, MemSelect::Mram, 0, 16).unwrap();

        let mut m2 = hp_module();
        m2.preload(MemSelect::Sram, 0, &[1u8; 16]).unwrap();
        let done_sram = m2.mac(SimTime::ZERO, MemSelect::Sram, 0, 16).unwrap();

        // MRAM weights (2.62 ns) overlap the SRAM activation reads
        // (1.12 ns): operands ready at 16×2.62 = 41.92 ns.
        // SRAM weights serialize with activations on one port:
        // operands ready at 32×1.12 = 35.84 ns. PE: 16×5.52 = 88.32.
        assert_eq!(done_mram.as_ps(), 41_920 + 88_320);
        assert_eq!(done_sram.as_ps(), 35_840 + 88_320);
    }

    #[test]
    fn write_back_persists_accumulator() {
        let mut m = hp_module();
        m.preload(MemSelect::Sram, 0, &[5u8, 5]).unwrap();
        let act_base = ModuleConfig::default().act_base;
        m.preload(MemSelect::Sram, act_base, &[3u8, 4]).unwrap();
        m.clear_acc();
        m.mac(SimTime::ZERO, MemSelect::Sram, 0, 2).unwrap();
        m.write_back(SimTime::ZERO, MemSelect::Sram, 100).unwrap();
        let bytes = m.read_back(MemSelect::Sram, 100, 4).unwrap();
        assert_eq!(i32::from_le_bytes(bytes.try_into().unwrap()), 35);
    }

    #[test]
    fn move_intra_copies_and_times() {
        let mut m = hp_module();
        m.preload(MemSelect::Mram, 10, &[7u8, 8, 9]).unwrap();
        let done = m.move_intra(SimTime::ZERO, MemSelect::Mram, 10, 3).unwrap();
        assert_eq!(m.read_back(MemSelect::Sram, 10, 3).unwrap(), &[7, 8, 9]);
        // 3 MRAM reads (2.62) then 3 SRAM writes (1.12).
        assert_eq!(done.as_ps(), 3 * 2_620 + 3 * 1_120);
    }

    #[test]
    fn sram_only_module_rejects_mram_ops() {
        let cfg = ModuleConfig {
            mram_bytes: 0,
            sram_bytes: 1024,
            act_base: 512,
        };
        let mut m = PimModule::new(ClusterClass::HighPerformance, cfg);
        assert!(!m.has_mram());
        assert!(m.mac(SimTime::ZERO, MemSelect::Mram, 0, 1).is_err());
    }

    #[test]
    fn range_errors() {
        let mut m = hp_module();
        let cap = 64 * 1024;
        assert_eq!(
            m.preload(MemSelect::Mram, cap - 1, &[0, 0]),
            Err(ModuleError::AddrOutOfRange {
                addr: cap + 1,
                capacity: cap
            })
        );
        assert!(m.read_back(MemSelect::Sram, cap, 1).is_err());
    }

    #[test]
    fn activation_overrun_detected() {
        let cfg = ModuleConfig {
            mram_bytes: 1024,
            sram_bytes: 1024,
            act_base: 1020,
        };
        let mut m = PimModule::new(ClusterClass::HighPerformance, cfg);
        m.preload(MemSelect::Mram, 0, &[1u8; 8]).unwrap();
        assert_eq!(
            m.mac(SimTime::ZERO, MemSelect::Mram, 0, 8),
            Err(ModuleError::ActivationOverrun)
        );
    }

    #[test]
    fn gated_bank_rejects_mac() {
        let mut m = hp_module();
        m.preload(MemSelect::Mram, 0, &[1u8; 4]).unwrap();
        m.set_gated(SimTime::ZERO, MemSelect::Mram, true).unwrap();
        assert!(matches!(
            m.mac(SimTime::ZERO, MemSelect::Mram, 0, 4),
            Err(ModuleError::Bank(BankError::Gated))
        ));
        let ready = m.set_gated(SimTime::ZERO, MemSelect::Mram, false).unwrap();
        assert!(m.mac(ready, MemSelect::Mram, 0, 4).is_ok());
    }

    #[test]
    fn lp_module_is_slower() {
        let mut hp = hp_module();
        let mut lp = PimModule::new(ClusterClass::LowPower, ModuleConfig::default());
        for m in [&mut hp, &mut lp] {
            m.preload(MemSelect::Sram, 0, &[1u8; 8]).unwrap();
        }
        let hp_done = hp.mac(SimTime::ZERO, MemSelect::Sram, 0, 8).unwrap();
        let lp_done = lp.mac(SimTime::ZERO, MemSelect::Sram, 0, 8).unwrap();
        assert!(lp_done > hp_done);
    }

    #[test]
    fn energy_totals_accumulate() {
        let mut m = hp_module();
        m.preload(MemSelect::Mram, 0, &[1u8; 4]).unwrap();
        m.mac(SimTime::ZERO, MemSelect::Mram, 0, 4).unwrap();
        m.advance_to(SimTime::from_ns(100));
        let total = m.total_energy();
        assert!(total.as_pj() > 0.0);
        // Components: MRAM reads + SRAM act reads + PE MACs + leakage.
        let mram_dyn = m.bank(MemSelect::Mram).dynamic_energy();
        let sram_dyn = m.bank(MemSelect::Sram).dynamic_energy();
        assert!(mram_dyn.as_pj() > 0.0);
        assert!(sram_dyn.as_pj() > 0.0);
        assert!(total.as_pj() >= (mram_dyn + sram_dyn).as_pj());
    }

    #[test]
    fn resolved_mac_paths_match_object_paths_bit_for_bit() {
        let mut a = hp_module();
        let mut b = hp_module();
        let act_base = ModuleConfig::default().act_base;
        for m in [&mut a, &mut b] {
            m.preload(MemSelect::Mram, 0, &[3u8, 250, 17, 90]).unwrap();
            m.preload(MemSelect::Sram, act_base, &[7u8, 200, 5, 11])
                .unwrap();
            m.clear_acc();
        }
        let weights = b.bank(MemSelect::Mram).resolve(AccessKind::Read);
        let acts = b.bank(MemSelect::Sram).resolve(AccessKind::Read);
        let d1 = a.mac(SimTime::ZERO, MemSelect::Mram, 0, 4).unwrap();
        let d2 = b
            .mac_resolved(SimTime::ZERO, MemSelect::Mram, &weights, &acts, 0, 4)
            .unwrap();
        assert_eq!(d1, d2);
        assert_eq!(a.pe().accumulator(), b.pe().accumulator());
        let s1 = a.mac_stream(d1, MemSelect::Mram, 0, 500).unwrap();
        let s2 = b
            .mac_stream_resolved(d2, MemSelect::Mram, &weights, &acts, 0, 500)
            .unwrap();
        assert_eq!(s1, s2);
        assert_eq!(
            a.total_energy().as_pj(),
            b.total_energy().as_pj(),
            "resolved replay must meter identically"
        );
        assert_eq!(a.pe().macs_retired(), b.pe().macs_retired());
        // Gated banks reject resolved accesses identically.
        for m in [&mut a, &mut b] {
            m.set_gated(s1, MemSelect::Mram, true).unwrap();
        }
        assert_eq!(
            a.mac_stream(s1, MemSelect::Mram, 0, 2).unwrap_err(),
            b.mac_stream_resolved(s1, MemSelect::Mram, &weights, &acts, 0, 2)
                .unwrap_err()
        );
    }

    #[test]
    fn error_display() {
        let e = ModuleError::AddrOutOfRange {
            addr: 0x10,
            capacity: 8,
        };
        assert!(e.to_string().contains("0x10"));
        assert_eq!(
            ModuleError::ActivationOverrun.to_string(),
            "activation pointer overran SRAM"
        );
    }
}
