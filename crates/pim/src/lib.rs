//! # hhpim-pim — structural PIM hardware models
//!
//! The RTL-equivalent of the paper's PIM processor, modelled at the
//! transaction level with bit-accurate data:
//!
//! * [`ProcessingElement`] — INT8 MAC datapath with a 32-bit
//!   accumulator, timed and powered per Tables III/V,
//! * [`PimModule`] — hybrid MRAM+SRAM module whose interface
//!   synchronizes the differing bank latencies in the LOAD state,
//! * [`Cluster`] — HP-/LP-PIM module cluster with its controller
//!   (issue pipeline, Data Allocator, Data Rearrange Buffer, MEM
//!   interface whose bandwidth scales with module count),
//! * [`PimMachine`] — the full machine: instruction queue, one or two
//!   clusters, inter-cluster transfers and an energy/latency report.
//!
//! Because banks hold real bytes, entire quantized networks can be run
//! through the machine and checked against a software reference — the
//! same functional verification the paper performs on its FPGA
//! prototype.
//!
//! # Examples
//!
//! ```
//! use hhpim_pim::{PimMachine, MachineConfig};
//! use hhpim_isa::{assemble, MemSelect};
//!
//! // A dot product on HP module 0, weights in MRAM.
//! let mut machine = PimMachine::new(MachineConfig::default());
//! machine.preload(0, MemSelect::Mram, 0, &[1, 2, 3]).unwrap();
//! machine.preload_activations(0, &[4, 5, 6]).unwrap();
//! let program = assemble("clr m0\nmac m0 mram @0 x3\nbarrier\nhalt").unwrap();
//! machine.run_program(&program).unwrap();
//! assert_eq!(machine.module(0).pe().accumulator(), 4 + 10 + 18);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod machine;
pub mod module;
pub mod pe;

pub use cluster::{Cluster, ControllerConfig, TransferChunk};
pub use machine::{EnergyCat, MachineConfig, MachineError, PimMachine, RunReport};
pub use module::{ModuleConfig, ModuleError, PimModule};
pub use pe::ProcessingElement;
