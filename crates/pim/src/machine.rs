//! The full PIM machine: instruction queue, one or two clusters, and
//! the energy/latency report.
//!
//! Global module indices span both clusters: with `n_hp` HP modules and
//! `n_lp` LP modules, mask bit `i < n_hp` selects HP module `i` and bit
//! `n_hp <= i < n_hp+n_lp` selects LP module `i - n_hp`. This matches
//! Table I, where every architecture has 8 modules total.

use crate::cluster::{Cluster, ControllerConfig};
use crate::module::{ModuleConfig, ModuleError, PimModule};
use hhpim_isa::{
    DecodeError, InstructionQueue, MemSelect, ModuleMask, PimInstruction, QueueFullError,
};
use hhpim_mem::{ClusterClass, Energy, EnergyLedger, MemKind};
use hhpim_sim::SimTime;
use std::fmt;

/// Energy-report category for the machine ledger.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EnergyCat {
    /// Dynamic access energy of a memory type.
    MemDynamic(ClusterClass, MemKind),
    /// Leakage of a memory type.
    MemStatic(ClusterClass, MemKind),
    /// Power-gating wake-up charges of a memory type.
    MemWake(ClusterClass, MemKind),
    /// PE compute energy.
    PeDynamic(ClusterClass),
    /// PE leakage.
    PeStatic(ClusterClass),
    /// Controller issue + leakage energy.
    Controller(ClusterClass),
}

/// Errors surfaced while running a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MachineError {
    /// A queue word failed to decode.
    Decode(DecodeError),
    /// A module rejected an operation (global module index attached).
    Module {
        /// Global module index.
        module: usize,
        /// Underlying error.
        error: ModuleError,
    },
    /// The instruction queue overflowed.
    QueueFull(QueueFullError),
    /// An instruction selected module indices beyond the configuration.
    NoSuchModule {
        /// The offending mask.
        mask: u8,
        /// Total modules configured.
        modules: usize,
    },
}

impl fmt::Display for MachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineError::Decode(e) => write!(f, "decode error: {e}"),
            MachineError::Module { module, error } => {
                write!(f, "module {module}: {error}")
            }
            MachineError::QueueFull(e) => write!(f, "{e}"),
            MachineError::NoSuchModule { mask, modules } => {
                write!(
                    f,
                    "mask {mask:#010b} selects modules beyond the {modules} configured"
                )
            }
        }
    }
}

impl std::error::Error for MachineError {}

impl From<DecodeError> for MachineError {
    fn from(e: DecodeError) -> Self {
        MachineError::Decode(e)
    }
}

impl From<QueueFullError> for MachineError {
    fn from(e: QueueFullError) -> Self {
        MachineError::QueueFull(e)
    }
}

/// Machine shape: module counts and per-module memory sizes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineConfig {
    /// Number of HP-PIM modules.
    pub hp_modules: usize,
    /// Number of LP-PIM modules (0 for homogeneous machines).
    pub lp_modules: usize,
    /// Per-module memory configuration.
    pub module: ModuleConfig,
    /// Controller parameters (shared by both controllers).
    pub controller: ControllerConfig,
    /// Instruction queue depth.
    pub queue_depth: usize,
}

impl Default for MachineConfig {
    /// The paper's HH-PIM: 4 HP + 4 LP modules, 64 kB MRAM + 64 kB SRAM
    /// each (Table I).
    fn default() -> Self {
        MachineConfig {
            hp_modules: 4,
            lp_modules: 4,
            module: ModuleConfig::default(),
            controller: ControllerConfig::default(),
            queue_depth: 1024,
        }
    }
}

/// Allocation-free snapshot of the machine's observable totals, for
/// tight replay loops that only need deltas between instants.
///
/// [`PimMachine::probe`] performs the same static-energy accrual and
/// the same per-module, then per-category f64 additions as
/// [`PimMachine::report`], so `total` is bit-identical to
/// `report().total_energy()` — without building a ledger.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineProbe {
    /// Total energy across every category, bit-identical to
    /// `report().total_energy()`.
    pub total: Energy,
    /// MAC operations retired across all PEs.
    pub macs: u64,
}

/// Outcome of [`PimMachine::run_program`].
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Instant the last operation retired.
    pub finished_at: SimTime,
    /// Per-category energy breakdown.
    pub energy: EnergyLedger<EnergyCat>,
    /// Instructions executed.
    pub instructions: u64,
    /// MAC operations retired across all PEs.
    pub macs: u64,
}

impl RunReport {
    /// Total energy across all categories.
    pub fn total_energy(&self) -> Energy {
        self.energy.total()
    }
}

/// A complete PIM machine (see module docs).
///
/// # Examples
///
/// ```
/// use hhpim_pim::{PimMachine, MachineConfig};
/// use hhpim_isa::{assemble, MemSelect};
///
/// let mut machine = PimMachine::new(MachineConfig::default());
/// machine.preload(0, MemSelect::Mram, 0, &[2, 3]).unwrap();
/// machine.preload_activations(0, &[10, 10]).unwrap();
/// let program = assemble("
///     clr m0
///     mac m0 mram @0 x2
///     barrier
///     halt
/// ").unwrap();
/// let report = machine.run_program(&program).unwrap();
/// assert_eq!(machine.module(0).pe().accumulator(), 50);
/// assert!(report.total_energy().as_pj() > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct PimMachine {
    config: MachineConfig,
    hp: Option<Cluster>,
    lp: Option<Cluster>,
    queue: InstructionQueue,
    now: SimTime,
    halted: bool,
    instructions: u64,
}

impl PimMachine {
    /// Builds a machine from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if both module counts are zero or if more than 8 total
    /// modules are requested (the ISA's mask width).
    pub fn new(config: MachineConfig) -> Self {
        let total = config.hp_modules + config.lp_modules;
        assert!(total > 0, "machine needs at least one module");
        assert!(total <= 8, "ISA module mask addresses at most 8 modules");
        let hp = (config.hp_modules > 0).then(|| {
            Cluster::new(
                ClusterClass::HighPerformance,
                config.hp_modules,
                config.module,
                config.controller,
            )
        });
        let lp = (config.lp_modules > 0).then(|| {
            Cluster::new(
                ClusterClass::LowPower,
                config.lp_modules,
                config.module,
                config.controller,
            )
        });
        PimMachine {
            config,
            hp,
            lp,
            queue: InstructionQueue::new(config.queue_depth),
            now: SimTime::ZERO,
            halted: false,
            instructions: 0,
        }
    }

    /// The machine's configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Total number of modules.
    pub fn module_count(&self) -> usize {
        self.config.hp_modules + self.config.lp_modules
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Whether a `halt` has been executed.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Advances the machine clock to `t` without dispatching work.
    ///
    /// Static energy accrues across the idle span (respecting each
    /// bank's gating state) the next time the machine reports. Times
    /// in the past are ignored, so callers may pass slice boundaries
    /// unconditionally even when work overran them.
    pub fn idle_until(&mut self, t: SimTime) {
        if t > self.now {
            self.now = t;
        }
    }

    /// Counts one executed instruction without dispatching work — the
    /// timing-graph replay issues controller/module operations itself
    /// (through [`Cluster::issue`] and the resolved module primitives)
    /// and charges the machine-level counter through this hook, exactly
    /// as [`PimMachine::execute`]/[`PimMachine::mac_stream`] would.
    pub fn note_instruction(&mut self) {
        self.instructions += 1;
    }

    /// Shared access to a cluster, `None` when the machine has no
    /// modules of that class.
    pub fn cluster(&self, class: ClusterClass) -> Option<&Cluster> {
        match class {
            ClusterClass::HighPerformance => self.hp.as_ref(),
            ClusterClass::LowPower => self.lp.as_ref(),
        }
    }

    /// Exclusive access to a cluster, `None` when the machine has no
    /// modules of that class. Lowered timing-graph replay drives
    /// dispatch through this handle ([`Cluster::issue`] +
    /// [`Cluster::module_mut`]) instead of the interpretive
    /// mask-splitting path.
    pub fn cluster_mut(&mut self, class: ClusterClass) -> Option<&mut Cluster> {
        match class {
            ClusterClass::HighPerformance => self.hp.as_mut(),
            ClusterClass::LowPower => self.lp.as_mut(),
        }
    }

    fn locate(&self, global: usize) -> (ClusterClass, usize) {
        if global < self.config.hp_modules {
            (ClusterClass::HighPerformance, global)
        } else {
            (ClusterClass::LowPower, global - self.config.hp_modules)
        }
    }

    /// Shared access to a module by global index.
    ///
    /// # Panics
    ///
    /// Panics if `global` is out of range.
    pub fn module(&self, global: usize) -> &PimModule {
        assert!(global < self.module_count(), "module index out of range");
        let (class, local) = self.locate(global);
        match class {
            ClusterClass::HighPerformance => self.hp.as_ref().expect("hp exists").module(local),
            ClusterClass::LowPower => self.lp.as_ref().expect("lp exists").module(local),
        }
    }

    /// Exclusive access to a module by global index.
    ///
    /// # Panics
    ///
    /// Panics if `global` is out of range.
    pub fn module_mut(&mut self, global: usize) -> &mut PimModule {
        assert!(global < self.module_count(), "module index out of range");
        let (class, local) = self.locate(global);
        match class {
            ClusterClass::HighPerformance => self.hp.as_mut().expect("hp exists").module_mut(local),
            ClusterClass::LowPower => self.lp.as_mut().expect("lp exists").module_mut(local),
        }
    }

    /// Host-side preload of weights into a module bank.
    ///
    /// # Errors
    ///
    /// Propagates module range errors.
    pub fn preload(
        &mut self,
        global: usize,
        mem: MemSelect,
        addr: usize,
        bytes: &[u8],
    ) -> Result<(), MachineError> {
        self.module_mut(global)
            .preload(mem, addr, bytes)
            .map_err(|error| MachineError::Module {
                module: global,
                error,
            })
    }

    /// Host-side preload of activations into a module's SRAM activation
    /// region.
    ///
    /// # Errors
    ///
    /// Propagates module range errors.
    pub fn preload_activations(&mut self, global: usize, bytes: &[u8]) -> Result<(), MachineError> {
        let act_base = self.config.module.act_base;
        self.preload(global, MemSelect::Sram, act_base, bytes)
    }

    fn split_mask(&self, mask: ModuleMask) -> Result<(u8, u8), MachineError> {
        let bits = mask.bits();
        let total = self.module_count();
        if total < 8 && bits >> total != 0 {
            return Err(MachineError::NoSuchModule {
                mask: bits,
                modules: total,
            });
        }
        let hp = self.config.hp_modules;
        let hp_bits = bits & (((1u16 << hp) - 1) as u8);
        let lp_bits = if hp >= 8 { 0 } else { bits >> hp };
        Ok((hp_bits, lp_bits))
    }

    fn module_offset(&self, class: ClusterClass) -> usize {
        match class {
            ClusterClass::HighPerformance => 0,
            ClusterClass::LowPower => self.config.hp_modules,
        }
    }

    fn run_on_clusters<F>(&mut self, mask: ModuleMask, mut op: F) -> Result<SimTime, MachineError>
    where
        F: FnMut(&mut PimModule, SimTime) -> Result<SimTime, ModuleError>,
    {
        let (hp_bits, lp_bits) = self.split_mask(mask)?;
        let now = self.now;
        let mut latest = now;
        if hp_bits != 0 {
            let c = self.hp.as_mut().ok_or(MachineError::NoSuchModule {
                mask: mask.bits(),
                modules: 0,
            })?;
            let done = c
                .for_selected(now, hp_bits, &mut op)
                .map_err(|(local, error)| MachineError::Module {
                    module: local,
                    error,
                })?;
            latest = latest.max(done);
        }
        if lp_bits != 0 {
            let offset = self.module_offset(ClusterClass::LowPower);
            let c = self.lp.as_mut().ok_or(MachineError::NoSuchModule {
                mask: mask.bits(),
                modules: offset,
            })?;
            let done = c
                .for_selected(now, lp_bits, &mut op)
                .map_err(|(local, error)| MachineError::Module {
                    module: offset + local,
                    error,
                })?;
            latest = latest.max(done);
        }
        Ok(latest)
    }

    /// Executes one instruction immediately (bypassing the queue).
    ///
    /// The machine clock only advances on `Barrier`/`Halt`; other
    /// instructions dispatch at the current time and retire in the
    /// background via per-module `free_at`, mirroring the pipelined
    /// controller.
    ///
    /// # Errors
    ///
    /// Propagates decode, routing and module errors.
    pub fn execute(&mut self, inst: PimInstruction) -> Result<(), MachineError> {
        use PimInstruction::*;
        self.instructions += 1;
        match inst {
            Mac {
                modules,
                mem,
                addr,
                count,
            } => {
                self.run_on_clusters(modules, |m, at| {
                    m.mac(at, mem, addr as usize, count as usize)
                })?;
            }
            WriteBack { modules, mem, addr } => {
                self.run_on_clusters(modules, |m, at| m.write_back(at, mem, addr as usize))?;
            }
            ClearAcc { modules } => {
                self.run_on_clusters(modules, |m, at| {
                    m.clear_acc();
                    Ok(at)
                })?;
            }
            MoveIntra {
                modules,
                mem,
                addr,
                count,
            } => {
                self.run_on_clusters(modules, |m, at| {
                    m.move_intra(at, mem, addr as usize, count as usize)
                })?;
            }
            MoveInter {
                modules,
                mem,
                addr,
                count,
            } => {
                self.move_inter(modules, mem, addr as usize, count as usize)?;
            }
            LoadExt {
                modules,
                mem,
                addr,
                count,
            } => {
                // External data arrives over the host interface; the
                // machine charges the write burst into the bank.
                self.run_on_clusters(modules, |m, at| {
                    let zeros = vec![0u8; count as usize];
                    m.write_words(at, mem, addr as usize, &zeros)
                })?;
            }
            StoreExt {
                modules,
                mem,
                addr,
                count,
            } => {
                self.run_on_clusters(modules, |m, at| {
                    m.read_words(at, mem, addr as usize, count as usize)
                        .map(|(t, _)| t)
                })?;
            }
            GateOff { modules, mem } => {
                self.run_on_clusters(modules, |m, at| m.set_gated(at, mem, true))?;
            }
            GateOn { modules, mem } => {
                self.run_on_clusters(modules, |m, at| m.set_gated(at, mem, false))?;
            }
            Barrier => {
                let mut t = self.now;
                if let Some(c) = &self.hp {
                    t = t.max(c.all_free_at());
                }
                if let Some(c) = &self.lp {
                    t = t.max(c.all_free_at());
                }
                self.now = t;
            }
            Halt => {
                self.halted = true;
            }
            Nop => {}
        }
        Ok(())
    }

    /// Streams `count` traffic-level MACs on every module selected by
    /// `mask` (weights from `mem` at `addr`, activations from SRAM),
    /// charging controller issue overhead like any other instruction.
    /// The machine clock advances on the next `Barrier`, as with
    /// [`PimInstruction::Mac`]; unlike the ISA path, `count` is not
    /// limited to 255 and the PE accumulators are untouched — this is
    /// the execution primitive for compiled multi-layer schedules.
    ///
    /// # Errors
    ///
    /// Propagates routing and module errors.
    pub fn mac_stream(
        &mut self,
        mask: ModuleMask,
        mem: MemSelect,
        addr: usize,
        count: usize,
    ) -> Result<(), MachineError> {
        self.instructions += 1;
        self.run_on_clusters(mask, |m, at| m.mac_stream(at, mem, addr, count))?;
        Ok(())
    }

    /// Inter-cluster transfer through the Data Allocator: reads from the
    /// selected source modules (whichever cluster each belongs to),
    /// buffers chunks, and writes them into the *opposite* cluster.
    fn move_inter(
        &mut self,
        modules: ModuleMask,
        mem: MemSelect,
        addr: usize,
        count: usize,
    ) -> Result<(), MachineError> {
        let (hp_bits, lp_bits) = self.split_mask(modules)?;
        let now = self.now;
        // HP sources → LP destinations.
        if hp_bits != 0 {
            let (Some(hp), Some(lp)) = (self.hp.as_mut(), self.lp.as_mut()) else {
                return Err(MachineError::NoSuchModule {
                    mask: modules.bits(),
                    modules: 0,
                });
            };
            let chunks =
                hp.export_chunks(now, hp_bits, mem, addr, count)
                    .map_err(|(local, error)| MachineError::Module {
                        module: local,
                        error,
                    })?;
            let offset = self.config.hp_modules;
            lp.import_chunks(&chunks, mem)
                .map_err(|(local, error)| MachineError::Module {
                    module: offset + local,
                    error,
                })?;
        }
        // LP sources → HP destinations.
        if lp_bits != 0 {
            let (Some(hp), Some(lp)) = (self.hp.as_mut(), self.lp.as_mut()) else {
                return Err(MachineError::NoSuchModule {
                    mask: modules.bits(),
                    modules: 0,
                });
            };
            let offset = self.config.hp_modules;
            let chunks =
                lp.export_chunks(now, lp_bits, mem, addr, count)
                    .map_err(|(local, error)| MachineError::Module {
                        module: offset + local,
                        error,
                    })?;
            hp.import_chunks(&chunks, mem)
                .map_err(|(local, error)| MachineError::Module {
                    module: local,
                    error,
                })?;
        }
        Ok(())
    }

    /// Enqueues and runs a program until the queue drains or `halt`.
    ///
    /// # Errors
    ///
    /// Propagates queue, decode and module errors.
    pub fn run_program(&mut self, program: &[PimInstruction]) -> Result<RunReport, MachineError> {
        for &inst in program {
            self.queue.push(inst)?;
        }
        while !self.halted {
            let Some(decoded) = self.queue.pop() else {
                break;
            };
            self.execute(decoded?)?;
        }
        // Drain: wait for everything in flight, then accrue statics.
        self.execute(PimInstruction::Barrier)?;
        Ok(self.report())
    }

    /// Builds the current energy/latency report (accruing static energy
    /// up to `now`).
    pub fn report(&mut self) -> RunReport {
        let now = self.now;
        if let Some(c) = self.hp.as_mut() {
            c.advance_to(now);
        }
        if let Some(c) = self.lp.as_mut() {
            c.advance_to(now);
        }
        let mut energy = EnergyLedger::new();
        let mut macs = 0;
        for cluster in [self.hp.as_ref(), self.lp.as_ref()].into_iter().flatten() {
            let class = cluster.class();
            for m in cluster.modules() {
                if m.has_mram() {
                    let b = m.bank(MemSelect::Mram);
                    energy.add(
                        EnergyCat::MemDynamic(class, MemKind::Mram),
                        b.dynamic_energy(),
                    );
                    energy.add(
                        EnergyCat::MemStatic(class, MemKind::Mram),
                        b.static_energy(),
                    );
                    energy.add(EnergyCat::MemWake(class, MemKind::Mram), b.wake_energy());
                }
                let s = m.bank(MemSelect::Sram);
                energy.add(
                    EnergyCat::MemDynamic(class, MemKind::Sram),
                    s.dynamic_energy(),
                );
                energy.add(
                    EnergyCat::MemStatic(class, MemKind::Sram),
                    s.static_energy(),
                );
                energy.add(EnergyCat::MemWake(class, MemKind::Sram), s.wake_energy());
                energy.add(EnergyCat::PeDynamic(class), m.pe().dynamic_energy());
                energy.add(EnergyCat::PeStatic(class), m.pe().static_energy());
                macs += m.pe().macs_retired();
            }
            energy.add(
                EnergyCat::Controller(class),
                cluster.controller_dynamic_energy() + cluster.controller_static_energy(),
            );
        }
        RunReport {
            finished_at: now,
            energy,
            instructions: self.instructions,
            macs,
        }
    }

    /// Snapshots total energy and retired MACs without allocating.
    ///
    /// Performs [`PimMachine::report`]'s static-energy accrual, then
    /// accumulates each ledger category in the same per-module order
    /// and folds the categories in the ledger's key order — so `total`
    /// is bit-identical to `report().total_energy()` while the hot
    /// replay loop pays neither `BTreeMap` nor `Vec`.
    pub fn probe(&mut self) -> MachineProbe {
        let now = self.now;
        if let Some(c) = self.hp.as_mut() {
            c.advance_to(now);
        }
        if let Some(c) = self.lp.as_mut() {
            c.advance_to(now);
        }
        // Accumulators indexed [class][kind]: class 0 = HP, 1 = LP and
        // kind 0 = SRAM, 1 = MRAM, matching the ledger's derived key
        // order (HP < LP, SRAM < MRAM).
        let mut mem_dyn = [[Energy::ZERO; 2]; 2];
        let mut mem_stat = [[Energy::ZERO; 2]; 2];
        let mut mem_wake = [[Energy::ZERO; 2]; 2];
        let mut pe_dyn = [Energy::ZERO; 2];
        let mut pe_stat = [Energy::ZERO; 2];
        let mut ctrl = [Energy::ZERO; 2];
        let mut present = [false; 2];
        let mut mram = [false; 2];
        let mut macs = 0u64;
        for cluster in [self.hp.as_ref(), self.lp.as_ref()].into_iter().flatten() {
            let ci = match cluster.class() {
                ClusterClass::HighPerformance => 0,
                ClusterClass::LowPower => 1,
            };
            present[ci] = true;
            for m in cluster.modules() {
                if m.has_mram() {
                    let b = m.bank(MemSelect::Mram);
                    mem_dyn[ci][1] += b.dynamic_energy();
                    mem_stat[ci][1] += b.static_energy();
                    mem_wake[ci][1] += b.wake_energy();
                    mram[ci] = true;
                }
                let s = m.bank(MemSelect::Sram);
                mem_dyn[ci][0] += s.dynamic_energy();
                mem_stat[ci][0] += s.static_energy();
                mem_wake[ci][0] += s.wake_energy();
                pe_dyn[ci] += m.pe().dynamic_energy();
                pe_stat[ci] += m.pe().static_energy();
                macs += m.pe().macs_retired();
            }
            ctrl[ci] += cluster.controller_dynamic_energy() + cluster.controller_static_energy();
        }
        // Fold categories exactly as `EnergyLedger::total` walks its
        // keys, skipping the ones `report()` never inserts.
        let mut total = Energy::ZERO;
        for cat in [&mem_dyn, &mem_stat, &mem_wake] {
            for ci in 0..2 {
                if present[ci] {
                    total += cat[ci][0];
                    if mram[ci] {
                        total += cat[ci][1];
                    }
                }
            }
        }
        for cat in [&pe_dyn, &pe_stat, &ctrl] {
            for ci in 0..2 {
                if present[ci] {
                    total += cat[ci];
                }
            }
        }
        MachineProbe { total, macs }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hhpim_isa::assemble;

    fn machine() -> PimMachine {
        PimMachine::new(MachineConfig::default())
    }

    #[test]
    fn runs_simple_program() {
        let mut m = machine();
        m.preload(0, MemSelect::Mram, 0, &[1, 2, 3, 4]).unwrap();
        m.preload_activations(0, &[1, 1, 1, 1]).unwrap();
        let prog = assemble("clr m0\nmac m0 mram @0 x4\nbarrier\nhalt").unwrap();
        let report = m.run_program(&prog).unwrap();
        assert_eq!(m.module(0).pe().accumulator(), 10);
        assert_eq!(report.macs, 4);
        assert!(report.finished_at > SimTime::ZERO);
        assert!(m.is_halted());
    }

    #[test]
    fn mask_routes_across_clusters() {
        let mut m = machine();
        for g in [0usize, 5] {
            m.preload(g, MemSelect::Sram, 0, &[2, 2]).unwrap();
            m.preload_activations(g, &[3, 3]).unwrap();
        }
        // m0 is HP module 0; m5 is LP module 1.
        let prog = assemble("clr m0,m5\nmac m0,m5 sram @0 x2\nbarrier\nhalt").unwrap();
        m.run_program(&prog).unwrap();
        assert_eq!(m.module(0).pe().accumulator(), 12);
        assert_eq!(m.module(5).pe().accumulator(), 12);
        assert_eq!(m.module(1).pe().accumulator(), 0);
    }

    #[test]
    fn hp_finishes_before_lp() {
        let mut m = machine();
        m.preload(0, MemSelect::Sram, 0, &[1u8; 64]).unwrap();
        m.preload(4, MemSelect::Sram, 0, &[1u8; 64]).unwrap();
        m.execute(PimInstruction::Mac {
            modules: ModuleMask::single(0),
            mem: MemSelect::Sram,
            addr: 0,
            count: 64,
        })
        .unwrap();
        m.execute(PimInstruction::Mac {
            modules: ModuleMask::single(4),
            mem: MemSelect::Sram,
            addr: 0,
            count: 64,
        })
        .unwrap();
        let hp_done = m.module(0).free_at();
        let lp_done = m.module(4).free_at();
        assert!(hp_done < lp_done, "HP {hp_done} should beat LP {lp_done}");
    }

    #[test]
    fn mac_stream_matches_mac_timing_and_energy() {
        // The traffic-level stream must meter exactly like the ISA MAC
        // path for the same operation count.
        let mut a = machine();
        a.preload(0, MemSelect::Mram, 0, &[1u8; 128]).unwrap();
        a.preload_activations(0, &[1u8; 128]).unwrap();
        a.execute(PimInstruction::Mac {
            modules: ModuleMask::single(0),
            mem: MemSelect::Mram,
            addr: 0,
            count: 128,
        })
        .unwrap();
        a.execute(PimInstruction::Barrier).unwrap();
        let ra = a.report();

        let mut b = machine();
        b.mac_stream(ModuleMask::single(0), MemSelect::Mram, 0, 128)
            .unwrap();
        b.execute(PimInstruction::Barrier).unwrap();
        let rb = b.report();

        assert_eq!(ra.macs, rb.macs);
        assert_eq!(ra.finished_at, rb.finished_at);
        let (ea, eb) = (ra.total_energy().as_pj(), rb.total_energy().as_pj());
        assert!((ea - eb).abs() < 1e-6, "stream {eb} vs mac {ea}");
        // The stream leaves the accumulator untouched.
        assert_eq!(b.module(0).pe().accumulator(), 0);
    }

    #[test]
    fn mac_stream_exceeds_isa_burst_limit() {
        let mut m = machine();
        m.mac_stream(ModuleMask::all(), MemSelect::Sram, 0, 20_000)
            .unwrap();
        m.execute(PimInstruction::Barrier).unwrap();
        let r = m.report();
        assert_eq!(r.macs, 8 * 20_000);
        assert!(r.finished_at > SimTime::ZERO);
    }

    #[test]
    fn inter_cluster_move_transfers_weights() {
        let mut m = machine();
        m.preload(0, MemSelect::Sram, 32, &[42u8; 8]).unwrap();
        let prog = assemble("movx m0 sram @32 x8\nbarrier\nhalt").unwrap();
        m.run_program(&prog).unwrap();
        // HP module 0 exports; LP module 0 (global 4) receives.
        assert_eq!(
            m.module(4).read_back(MemSelect::Sram, 32, 8).unwrap(),
            &[42u8; 8]
        );
    }

    #[test]
    fn gating_program_cuts_static_power() {
        let mut a = machine();
        let mut b = machine();
        let gated = assemble("gateoff all mram\nbarrier\nhalt").unwrap();
        a.run_program(&gated).unwrap();
        b.run_program(&assemble("barrier\nhalt").unwrap()).unwrap();
        // Let both idle for 1 ms, then compare MRAM static energy.
        for mm in [&mut a, &mut b] {
            mm.idle_until(SimTime::from_ns(1_000_000));
        }
        let ra = a.report();
        let rb = b.report();
        let cat = EnergyCat::MemStatic(ClusterClass::HighPerformance, MemKind::Mram);
        assert!(ra.energy.get(cat).as_pj() < rb.energy.get(cat).as_pj());
    }

    #[test]
    fn rejects_mask_beyond_configuration() {
        let cfg = MachineConfig {
            hp_modules: 2,
            lp_modules: 2,
            ..MachineConfig::default()
        };
        let mut m = PimMachine::new(cfg);
        let err = m
            .execute(PimInstruction::ClearAcc {
                modules: ModuleMask::all(),
            })
            .unwrap_err();
        assert!(matches!(err, MachineError::NoSuchModule { .. }));
    }

    #[test]
    fn baseline_shape_runs_without_lp() {
        // Baseline-PIM: 8 HP modules, SRAM only (Table I).
        let cfg = MachineConfig {
            hp_modules: 8,
            lp_modules: 0,
            module: ModuleConfig {
                mram_bytes: 0,
                sram_bytes: 128 * 1024,
                act_base: 96 * 1024,
            },
            ..MachineConfig::default()
        };
        let mut m = PimMachine::new(cfg);
        m.preload(7, MemSelect::Sram, 0, &[1, 1]).unwrap();
        m.preload_activations(7, &[5, 5]).unwrap();
        let prog = assemble("clr m7\nmac m7 sram @0 x2\nbarrier\nhalt").unwrap();
        m.run_program(&prog).unwrap();
        assert_eq!(m.module(7).pe().accumulator(), 10);
    }

    #[test]
    fn report_energy_breakdown_has_all_active_categories() {
        let mut m = machine();
        m.preload(0, MemSelect::Mram, 0, &[1, 1]).unwrap();
        m.preload_activations(0, &[1, 1]).unwrap();
        let prog = assemble("clr m0\nmac m0 mram @0 x2\nbarrier\nhalt").unwrap();
        let report = m.run_program(&prog).unwrap();
        use ClusterClass::*;
        use MemKind::*;
        assert!(
            report
                .energy
                .get(EnergyCat::MemDynamic(HighPerformance, Mram))
                .as_pj()
                > 0.0
        );
        assert!(
            report
                .energy
                .get(EnergyCat::MemDynamic(HighPerformance, Sram))
                .as_pj()
                > 0.0
        );
        assert!(
            report
                .energy
                .get(EnergyCat::PeDynamic(HighPerformance))
                .as_pj()
                > 0.0
        );
        assert!(
            report
                .energy
                .get(EnergyCat::Controller(HighPerformance))
                .as_pj()
                > 0.0
        );
        assert!(
            report
                .energy
                .get(EnergyCat::MemStatic(HighPerformance, Sram))
                .as_pj()
                > 0.0
        );
    }

    #[test]
    fn probe_total_is_bit_identical_to_report_total() {
        let shapes = [
            MachineConfig::default(),
            // HP-only, SRAM-only (Baseline shape).
            MachineConfig {
                hp_modules: 8,
                lp_modules: 0,
                module: ModuleConfig {
                    mram_bytes: 0,
                    sram_bytes: 128 * 1024,
                    act_base: 96 * 1024,
                },
                ..MachineConfig::default()
            },
            // LP-present, asymmetric counts.
            MachineConfig {
                hp_modules: 2,
                lp_modules: 5,
                ..MachineConfig::default()
            },
        ];
        for cfg in shapes {
            let mut m = PimMachine::new(cfg);
            m.mac_stream(ModuleMask::single(0), MemSelect::Sram, 0, 700)
                .unwrap();
            m.execute(PimInstruction::Barrier).unwrap();
            m.idle_until(m.now() + hhpim_sim::SimDuration::from_ns(12_345));
            let p = m.probe();
            let r = m.report();
            assert_eq!(
                p.total.as_pj(),
                r.total_energy().as_pj(),
                "probe must reproduce the ledger fold bit for bit ({cfg:?})"
            );
            assert_eq!(p.macs, r.macs);
            // Probing performs the same accrual side effects as
            // reporting: a second pair still agrees.
            assert_eq!(m.probe().total.as_pj(), m.report().total_energy().as_pj());
        }
    }

    #[test]
    fn split_mask_rejects_bits_beyond_hp_only_machine() {
        let mut m = PimMachine::new(MachineConfig {
            hp_modules: 4,
            lp_modules: 0,
            ..MachineConfig::default()
        });
        let err = m
            .mac_stream(ModuleMask::single(5), MemSelect::Sram, 0, 8)
            .unwrap_err();
        assert_eq!(
            err,
            MachineError::NoSuchModule {
                mask: 0b0010_0000,
                modules: 4
            }
        );
    }

    #[test]
    fn lp_only_machine_routes_module_errors_with_global_index() {
        // With no HP modules the LP cluster owns global indices 0..n;
        // errors must carry the global index, not a shifted one.
        let mut m = PimMachine::new(MachineConfig {
            hp_modules: 0,
            lp_modules: 4,
            ..MachineConfig::default()
        });
        m.module_mut(2)
            .set_gated(SimTime::ZERO, MemSelect::Mram, true)
            .unwrap();
        let err = m
            .mac_stream(ModuleMask::single(2), MemSelect::Mram, 0, 4)
            .unwrap_err();
        assert!(
            matches!(err, MachineError::Module { module: 2, .. }),
            "{err:?}"
        );
        // Bits beyond the configuration still fail with the total.
        let err = m
            .mac_stream(ModuleMask::single(6), MemSelect::Sram, 0, 1)
            .unwrap_err();
        assert_eq!(
            err,
            MachineError::NoSuchModule {
                mask: 0b0100_0000,
                modules: 4
            }
        );
    }

    #[test]
    fn mac_stream_over_empty_mask_is_a_counted_noop() {
        let mut m = machine();
        let before = m.report();
        m.mac_stream(ModuleMask::empty(), MemSelect::Sram, 0, 1000)
            .unwrap();
        m.execute(PimInstruction::Barrier).unwrap();
        let after = m.report();
        assert_eq!(after.macs, before.macs, "no module was selected");
        assert_eq!(
            after.instructions,
            before.instructions + 2,
            "the stream and the barrier are still fetched and decoded"
        );
        assert_eq!(after.finished_at, before.finished_at);
    }

    #[test]
    fn lp_cluster_module_errors_carry_offset_global_index() {
        let mut m = machine();
        // Gate LP module 1 (global 5): the MAC against it must surface
        // global index 5, not the cluster-local 1.
        m.module_mut(5)
            .set_gated(SimTime::ZERO, MemSelect::Mram, true)
            .unwrap();
        let err = m
            .mac_stream(ModuleMask::single(5), MemSelect::Mram, 0, 4)
            .unwrap_err();
        assert!(
            matches!(err, MachineError::Module { module: 5, .. }),
            "{err:?}"
        );
    }

    #[test]
    fn corrupted_queue_word_errors() {
        let mut m = machine();
        m.queue.push_word(u64::MAX).unwrap();
        let mut failed = false;
        while let Some(w) = m.queue.pop() {
            if w.is_err() {
                failed = true;
            }
        }
        assert!(failed);
    }

    #[test]
    #[should_panic(expected = "at most 8")]
    fn too_many_modules_rejected() {
        PimMachine::new(MachineConfig {
            hp_modules: 6,
            lp_modules: 6,
            ..Default::default()
        });
    }
}
