//! A PIM module cluster and its controller.
//!
//! HH-PIM pairs an HP-PIM cluster with an LP-PIM cluster, each managed
//! by its own controller (Fig. 1/2 of the paper). The controller runs
//! the FETCH-DECODE-LOAD-EXECUTE-STORE cycle: here, FETCH/DECODE and
//! per-module command dispatch charge controller overhead on a shared
//! issue pipeline, while LOAD/EXECUTE/STORE timing is paid inside the
//! modules themselves. The controller *issues* and moves on — module
//! `free_at` bookkeeping provides the pipelining, and `Barrier`
//! resynchronizes, exactly as the dual-controller design synchronizes
//! components operating at different speeds.

use crate::module::{ModuleConfig, ModuleError, PimModule};
use hhpim_isa::MemSelect;
use hhpim_mem::{ClusterClass, Energy, Power};
use hhpim_sim::{BusyResource, Clock, Frequency, SimDuration, SimTime};

/// Controller timing/power parameters.
///
/// The paper reports controller *area* (Table II) but not its power; the
/// defaults below are small relative to memory/PE energy and are
/// calibration knobs, documented in DESIGN.md.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControllerConfig {
    /// Controller clock domain.
    pub clock: Clock,
    /// Cycles charged per instruction for FETCH + DECODE.
    pub fetch_decode_cycles: u64,
    /// Extra cycles per selected module for command encode/dispatch.
    pub dispatch_cycles_per_module: u64,
    /// Dynamic energy charged per decoded instruction.
    pub dynamic_per_inst: Energy,
    /// Controller leakage while the cluster is powered.
    pub static_power: Power,
    /// Per-module MEM-interface bandwidth in bytes per cycle (the MEM
    /// Interface Logic is "scaled according to the number of PIM
    /// modules", so total bandwidth grows with cluster size).
    pub mem_if_bytes_per_cycle: u64,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        ControllerConfig {
            clock: Clock::new(Frequency::from_ghz(1)),
            fetch_decode_cycles: 2,
            dispatch_cycles_per_module: 1,
            dynamic_per_inst: Energy::from_pj(6.0),
            static_power: Power::from_mw(0.35),
            mem_if_bytes_per_cycle: 8,
        }
    }
}

/// A chunk of data staged in the Data Rearrange Buffer for delivery to
/// the opposite cluster.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransferChunk {
    /// Index of the source module *within its cluster*.
    pub src_module: usize,
    /// Destination byte address (the Address Generator reuses the source
    /// address by default).
    pub addr: usize,
    /// Payload bytes.
    pub data: Vec<u8>,
    /// Instant the chunk became available in the buffer.
    pub available_at: SimTime,
}

/// A cluster: `n` identical PIM modules plus their controller.
#[derive(Debug, Clone)]
pub struct Cluster {
    class: ClusterClass,
    modules: Vec<PimModule>,
    issue: BusyResource,
    cfg: ControllerConfig,
    ctrl_dynamic: Energy,
    ctrl_static: Energy,
    last_accrual: SimTime,
    instructions_issued: u64,
}

impl Cluster {
    /// Creates a cluster of `n` modules.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(
        class: ClusterClass,
        n: usize,
        module_cfg: ModuleConfig,
        cfg: ControllerConfig,
    ) -> Self {
        assert!(n > 0, "cluster must contain at least one module");
        Cluster {
            class,
            modules: (0..n).map(|_| PimModule::new(class, module_cfg)).collect(),
            issue: BusyResource::new(),
            cfg,
            ctrl_dynamic: Energy::ZERO,
            ctrl_static: Energy::ZERO,
            last_accrual: SimTime::ZERO,
            instructions_issued: 0,
        }
    }

    /// The cluster's class (HP or LP).
    pub fn class(&self) -> ClusterClass {
        self.class
    }

    /// Number of modules.
    pub fn len(&self) -> usize {
        self.modules.len()
    }

    /// Whether the cluster has no modules (never true).
    pub fn is_empty(&self) -> bool {
        self.modules.is_empty()
    }

    /// Shared access to a module.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn module(&self, idx: usize) -> &PimModule {
        &self.modules[idx]
    }

    /// Exclusive access to a module.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn module_mut(&mut self, idx: usize) -> &mut PimModule {
        &mut self.modules[idx]
    }

    /// Iterates the cluster's modules.
    pub fn modules(&self) -> impl Iterator<Item = &PimModule> {
        self.modules.iter()
    }

    /// Instructions issued by this controller.
    pub fn instructions_issued(&self) -> u64 {
        self.instructions_issued
    }

    /// Controller dynamic energy so far.
    pub fn controller_dynamic_energy(&self) -> Energy {
        self.ctrl_dynamic
    }

    /// Controller static energy accrued so far.
    pub fn controller_static_energy(&self) -> Energy {
        self.ctrl_static
    }

    /// Instant when the issue pipeline alone is free — one slot of a
    /// lowered replay's time queue (modules provide the others).
    pub fn issue_free_at(&self) -> SimTime {
        self.issue.free_at()
    }

    /// Instant when every module (and the issue pipeline) is idle.
    pub fn all_free_at(&self) -> SimTime {
        self.modules
            .iter()
            .map(PimModule::free_at)
            .chain(std::iter::once(self.issue.free_at()))
            .max()
            .expect("cluster is non-empty")
    }

    /// Advances static accrual of controller and modules to `now`.
    pub fn advance_to(&mut self, now: SimTime) {
        if now > self.last_accrual {
            let dt = now.saturating_since(self.last_accrual);
            self.ctrl_static += self.cfg.static_power * dt;
            self.last_accrual = now;
        }
        for m in &mut self.modules {
            m.advance_to(now);
        }
    }

    /// Charges controller issue overhead for an instruction targeting
    /// `selected` modules; returns the instant dispatch completes.
    pub fn issue(&mut self, at: SimTime, selected: usize) -> SimTime {
        let cycles =
            self.cfg.fetch_decode_cycles + self.cfg.dispatch_cycles_per_module * selected as u64;
        let dur = self.cfg.clock.cycles_to_duration(cycles);
        self.ctrl_dynamic += self.cfg.dynamic_per_inst;
        self.instructions_issued += 1;
        self.issue.acquire(at, dur)
    }

    /// MEM-interface transfer time for `bytes` on one module lane.
    pub fn mem_if_latency(&self, bytes: usize) -> SimDuration {
        let cycles = (bytes as u64).div_ceil(self.cfg.mem_if_bytes_per_cycle);
        self.cfg.clock.cycles_to_duration(cycles)
    }

    /// Runs `op` on every module selected by the local `mask` bits,
    /// starting after controller dispatch; returns the latest completion.
    ///
    /// # Errors
    ///
    /// Returns the first module error with its local index.
    pub fn for_selected<F>(
        &mut self,
        at: SimTime,
        mask: u8,
        mut op: F,
    ) -> Result<SimTime, (usize, ModuleError)>
    where
        F: FnMut(&mut PimModule, SimTime) -> Result<SimTime, ModuleError>,
    {
        let selected = (mask as u32).count_ones() as usize;
        let dispatched = self.issue(at, selected);
        let mut latest = dispatched;
        for idx in 0..self.modules.len().min(8) {
            if (mask >> idx) & 1 == 1 {
                let done = op(&mut self.modules[idx], dispatched).map_err(|e| (idx, e))?;
                latest = latest.max(done);
            }
        }
        Ok(latest)
    }

    /// Reads chunks out of the selected modules into the Data Rearrange
    /// Buffer (the outbound half of an inter-cluster transfer). Each
    /// chunk's availability includes the module read and a MEM-interface
    /// hop; lanes run in parallel across modules.
    ///
    /// # Errors
    ///
    /// Returns the first module error with its local index.
    pub fn export_chunks(
        &mut self,
        at: SimTime,
        mask: u8,
        mem: MemSelect,
        addr: usize,
        count: usize,
    ) -> Result<Vec<TransferChunk>, (usize, ModuleError)> {
        let selected = (mask as u32).count_ones() as usize;
        let dispatched = self.issue(at, selected);
        let hop = self.mem_if_latency(count);
        let mut chunks = Vec::with_capacity(selected);
        for idx in 0..self.modules.len().min(8) {
            if (mask >> idx) & 1 == 1 {
                let (done, data) = self.modules[idx]
                    .read_words(dispatched, mem, addr, count)
                    .map_err(|e| (idx, e))?;
                chunks.push(TransferChunk {
                    src_module: idx,
                    addr,
                    data,
                    available_at: done + hop,
                });
            }
        }
        Ok(chunks)
    }

    /// Writes buffered chunks into this cluster's modules (the inbound
    /// half of an inter-cluster transfer). The Address Generator maps
    /// source module `i` to destination module `i % len` at the chunk's
    /// address; the Data Rearrange Buffer holds each chunk until the
    /// destination module is ready, preventing conflicts from the
    /// HP/LP speed mismatch.
    ///
    /// # Errors
    ///
    /// Returns the first module error with its local (destination) index.
    pub fn import_chunks(
        &mut self,
        chunks: &[TransferChunk],
        mem: MemSelect,
    ) -> Result<SimTime, (usize, ModuleError)> {
        let mut latest = SimTime::ZERO;
        for chunk in chunks {
            let dst = chunk.src_module % self.modules.len();
            let hop = self.mem_if_latency(chunk.data.len());
            let start = chunk.available_at + hop;
            let done = self.modules[dst]
                .write_words(start, mem, chunk.addr, &chunk.data)
                .map_err(|e| (dst, e))?;
            latest = latest.max(done);
        }
        Ok(latest)
    }

    /// Total energy across modules plus the controller.
    pub fn total_energy(&self) -> Energy {
        self.modules
            .iter()
            .map(PimModule::total_energy)
            .sum::<Energy>()
            + self.ctrl_dynamic
            + self.ctrl_static
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster(n: usize) -> Cluster {
        Cluster::new(
            ClusterClass::HighPerformance,
            n,
            ModuleConfig::default(),
            ControllerConfig::default(),
        )
    }

    #[test]
    fn issue_charges_overhead() {
        let mut c = cluster(4);
        // 2 + 4×1 = 6 cycles at 1 GHz = 6 ns.
        let done = c.issue(SimTime::ZERO, 4);
        assert_eq!(done, SimTime::from_ns(6));
        assert_eq!(c.instructions_issued(), 1);
        assert!(c.controller_dynamic_energy().as_pj() > 0.0);
    }

    #[test]
    fn for_selected_targets_masked_modules() {
        let mut c = cluster(4);
        for i in 0..4 {
            c.module_mut(i)
                .preload(MemSelect::Sram, 0, &[1u8; 4])
                .unwrap();
        }
        // Modules 0 and 2 only.
        let done = c
            .for_selected(SimTime::ZERO, 0b0101, |m, at| {
                m.mac(at, MemSelect::Sram, 0, 4)
            })
            .unwrap();
        assert!(done > SimTime::ZERO);
        assert_eq!(c.module(0).pe().macs_retired(), 4);
        assert_eq!(c.module(1).pe().macs_retired(), 0);
        assert_eq!(c.module(2).pe().macs_retired(), 4);
    }

    #[test]
    fn modules_work_in_parallel() {
        let mut c = cluster(4);
        for i in 0..4 {
            c.module_mut(i)
                .preload(MemSelect::Sram, 0, &[1u8; 64])
                .unwrap();
        }
        let one = {
            let mut c1 = cluster(1);
            c1.module_mut(0)
                .preload(MemSelect::Sram, 0, &[1u8; 64])
                .unwrap();
            c1.for_selected(SimTime::ZERO, 0b0001, |m, at| {
                m.mac(at, MemSelect::Sram, 0, 64)
            })
            .unwrap()
        };
        let four = c
            .for_selected(SimTime::ZERO, 0b1111, |m, at| {
                m.mac(at, MemSelect::Sram, 0, 64)
            })
            .unwrap();
        // Four modules each doing the same burst finish barely later than
        // one (only extra dispatch cycles), not 4× later.
        let slack = four.saturating_since(one);
        assert!(slack < SimDuration::from_ns(10), "slack was {slack}");
    }

    #[test]
    fn export_import_roundtrip_moves_data() {
        let mut src = cluster(2);
        let mut dst = Cluster::new(
            ClusterClass::LowPower,
            2,
            ModuleConfig::default(),
            ControllerConfig::default(),
        );
        src.module_mut(0)
            .preload(MemSelect::Sram, 16, &[9u8, 8, 7])
            .unwrap();
        src.module_mut(1)
            .preload(MemSelect::Sram, 16, &[1u8, 2, 3])
            .unwrap();
        let chunks = src
            .export_chunks(SimTime::ZERO, 0b11, MemSelect::Sram, 16, 3)
            .unwrap();
        assert_eq!(chunks.len(), 2);
        let done = dst.import_chunks(&chunks, MemSelect::Mram).unwrap();
        assert!(done > SimTime::ZERO);
        assert_eq!(
            dst.module(0).read_back(MemSelect::Mram, 16, 3).unwrap(),
            &[9, 8, 7]
        );
        assert_eq!(
            dst.module(1).read_back(MemSelect::Mram, 16, 3).unwrap(),
            &[1, 2, 3]
        );
    }

    #[test]
    fn import_wraps_destination_index() {
        let mut src = cluster(4);
        let mut dst = Cluster::new(
            ClusterClass::LowPower,
            2,
            ModuleConfig::default(),
            ControllerConfig::default(),
        );
        for i in 0..4 {
            src.module_mut(i)
                .preload(MemSelect::Sram, 0, &[i as u8 + 1; 2])
                .unwrap();
        }
        let chunks = src
            .export_chunks(SimTime::ZERO, 0b1111, MemSelect::Sram, 0, 2)
            .unwrap();
        dst.import_chunks(&chunks, MemSelect::Sram).unwrap();
        // Sources 2,3 wrap onto destinations 0,1 (overwriting 0,1's data
        // at the same address — last writer wins).
        assert_eq!(
            dst.module(0).read_back(MemSelect::Sram, 0, 2).unwrap(),
            &[3, 3]
        );
        assert_eq!(
            dst.module(1).read_back(MemSelect::Sram, 0, 2).unwrap(),
            &[4, 4]
        );
    }

    #[test]
    fn static_energy_accrues() {
        let mut c = cluster(2);
        c.advance_to(SimTime::from_ns(1_000));
        assert!(c.controller_static_energy().as_pj() > 0.0);
        assert!(c.total_energy().as_pj() > 0.0);
    }

    #[test]
    fn mem_if_latency_scales_with_bytes() {
        let c = cluster(1);
        assert_eq!(c.mem_if_latency(8), SimDuration::from_ns(1));
        assert_eq!(c.mem_if_latency(9), SimDuration::from_ns(2));
        assert_eq!(c.mem_if_latency(64), SimDuration::from_ns(8));
    }

    #[test]
    fn error_carries_module_index() {
        let mut c = cluster(2);
        // Module 1's MRAM gated: MAC against it must fail with idx 1.
        c.module_mut(1)
            .set_gated(SimTime::ZERO, MemSelect::Mram, true)
            .unwrap();
        c.module_mut(0)
            .preload(MemSelect::Mram, 0, &[1u8; 2])
            .unwrap();
        let err = c
            .for_selected(SimTime::ZERO, 0b11, |m, at| {
                m.mac(at, MemSelect::Mram, 0, 2)
            })
            .unwrap_err();
        assert_eq!(err.0, 1);
    }
}
