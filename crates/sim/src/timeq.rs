//! An indexed time queue for flat timing-graph replay.
//!
//! [`EventQueue`](crate::EventQueue) is a general binary heap: every
//! schedule pays an `O(log n)` sift plus a `(time, seq)` tiebreak. A
//! lowered timing graph needs none of that generality — it tracks one
//! monotonically non-decreasing completion instant per hardware slot
//! (module `free_at`s, controller issue pipelines) and only ever asks
//! for the *latest* of them at a barrier. [`TimeQueue`] is that
//! structure: a flat `Vec<SimTime>` indexed by slot id, with a cached
//! running maximum.
//!
//! Correctness rests on monotonicity: [`TimeQueue::raise`] requires
//! completion times to only grow (true for busy-until resources, whose
//! `acquire` never returns an earlier instant), so the cached maximum
//! never needs recomputation — `max()` is `O(1)` and the whole queue is
//! allocation-free after construction.

use crate::time::SimTime;

/// A fixed-slot time queue: per-slot monotone completion instants with
/// an `O(1)` running maximum.
///
/// # Examples
///
/// ```
/// use hhpim_sim::{SimTime, TimeQueue};
///
/// let mut tq = TimeQueue::new(3);
/// tq.raise(0, SimTime::from_ns(5));
/// tq.raise(2, SimTime::from_ns(9));
/// assert_eq!(tq.max(), SimTime::from_ns(9));
/// assert_eq!(tq.get(1), SimTime::ZERO);
/// ```
#[derive(Debug, Clone)]
pub struct TimeQueue {
    slots: Vec<SimTime>,
    max: SimTime,
}

impl Default for TimeQueue {
    /// An empty (zero-slot) queue; resize by constructing anew.
    fn default() -> Self {
        TimeQueue::new(0)
    }
}

impl TimeQueue {
    /// Creates a queue of `slots` entries, all at [`SimTime::ZERO`].
    pub fn new(slots: usize) -> Self {
        TimeQueue {
            slots: vec![SimTime::ZERO; slots],
            max: SimTime::ZERO,
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the queue has no slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Current completion instant of `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn get(&self, slot: usize) -> SimTime {
        self.slots[slot]
    }

    /// Raises `slot` to complete at `t`; instants only move forward, so
    /// an earlier `t` leaves the slot (and the maximum) untouched.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn raise(&mut self, slot: usize, t: SimTime) {
        if t > self.slots[slot] {
            self.slots[slot] = t;
        }
        if t > self.max {
            self.max = t;
        }
    }

    /// Overwrites `slot` with `t` without the monotone check, then
    /// restores the cached maximum by rescan. For (re)seeding a queue
    /// from live machine state at replay start; `O(n)`.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn seed(&mut self, slot: usize, t: SimTime) {
        self.slots[slot] = t;
        self.max = self.slots.iter().copied().max().unwrap_or(SimTime::ZERO);
    }

    /// The latest completion instant across all slots — the barrier
    /// resynchronization point. `O(1)`.
    pub fn max(&self) -> SimTime {
        self.max
    }

    /// Resets every slot (and the maximum) to `t`.
    pub fn reset(&mut self, t: SimTime) {
        self.slots.fill(t);
        self.max = t;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raise_is_monotone_and_tracks_max() {
        let mut tq = TimeQueue::new(4);
        tq.raise(0, SimTime::from_ns(10));
        tq.raise(1, SimTime::from_ns(20));
        assert_eq!(tq.max(), SimTime::from_ns(20));
        // Lower raise is ignored.
        tq.raise(1, SimTime::from_ns(5));
        assert_eq!(tq.get(1), SimTime::from_ns(20));
        assert_eq!(tq.max(), SimTime::from_ns(20));
        tq.raise(3, SimTime::from_ns(30));
        assert_eq!(tq.max(), SimTime::from_ns(30));
    }

    #[test]
    fn seed_overwrites_and_rescans() {
        let mut tq = TimeQueue::new(3);
        tq.raise(0, SimTime::from_ns(50));
        tq.seed(0, SimTime::from_ns(7));
        assert_eq!(tq.get(0), SimTime::from_ns(7));
        assert_eq!(tq.max(), SimTime::from_ns(7));
        tq.seed(2, SimTime::from_ns(3));
        assert_eq!(tq.max(), SimTime::from_ns(7));
    }

    #[test]
    fn reset_restores_uniform_state() {
        let mut tq = TimeQueue::new(2);
        tq.raise(1, SimTime::from_ns(99));
        tq.reset(SimTime::from_ns(4));
        assert_eq!(tq.get(0), SimTime::from_ns(4));
        assert_eq!(tq.get(1), SimTime::from_ns(4));
        assert_eq!(tq.max(), SimTime::from_ns(4));
    }

    #[test]
    fn empty_queue_maxes_at_zero() {
        let tq = TimeQueue::new(0);
        assert!(tq.is_empty());
        assert_eq!(tq.max(), SimTime::ZERO);
        assert_eq!(TimeQueue::new(3).len(), 3);
    }
}
