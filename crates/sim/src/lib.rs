//! # hhpim-sim — discrete-event simulation kernel
//!
//! The timing substrate for the HH-PIM reproduction (DAC 2025): a small,
//! deterministic discrete-event kernel with picosecond resolution.
//!
//! The paper evaluates its architecture with an RTL design prototyped on
//! an FPGA; this crate provides the equivalent *measurement instrument*
//! in software. It deliberately contains no PIM-specific logic — the
//! structural hardware models live in `hhpim-pim` and build on:
//!
//! * [`SimTime`] / [`SimDuration`] / [`Frequency`] / [`Clock`] — exact
//!   integer time keeping and clock-domain conversion ([`time`]).
//! * [`EventQueue`] — deterministic `(time, seq)`-ordered events with
//!   cancellation ([`event`]).
//! * [`Simulation`] — a run loop with horizons and step budgets
//!   ([`engine`]).
//! * [`BusyResource`] / [`ResourcePool`] — busy-until port and
//!   server-pool models ([`resource`]).
//! * [`TimeQueue`] — indexed, monotone per-slot completion instants
//!   with an `O(1)` running maximum for flat timing-graph replay
//!   ([`timeq`]).
//! * [`TraceBuffer`] — bounded tracing, [`Summary`] — streaming stats.
//!
//! # Examples
//!
//! ```
//! use hhpim_sim::{BusyResource, Clock, Frequency, SimDuration, SimTime};
//!
//! // A 50 MHz memory port serving two 25 ns reads back to back.
//! let clk = Clock::new(Frequency::from_mhz(50));
//! let service = clk.cycles_to_duration(clk.cycles_for(SimDuration::from_ns(25)));
//! let mut port = BusyResource::new();
//! let first = port.acquire(SimTime::ZERO, service);
//! let second = port.acquire(SimTime::ZERO, service);
//! assert_eq!(first, SimTime::from_ns(40)); // 25 ns rounds to 2 cycles
//! assert_eq!(second, SimTime::from_ns(80));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod event;
pub mod resource;
pub mod stats;
pub mod time;
pub mod timeq;
pub mod trace;

pub use engine::{Context, Control, RunOutcome, Simulation};
pub use event::{EventKey, EventQueue, ScheduleInPastError};
pub use resource::{BusyResource, ResourcePool};
pub use stats::Summary;
pub use time::{Clock, Frequency, SimDuration, SimTime};
pub use timeq::TimeQueue;
pub use trace::{TraceBuffer, TraceRecord};
