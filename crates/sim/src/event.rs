//! Deterministic discrete-event queue.
//!
//! Events are ordered by `(time, sequence number)` so that two events
//! scheduled for the same instant pop in the order they were scheduled.
//! This determinism is essential for reproducible architecture studies.

use crate::time::{SimDuration, SimTime};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

/// Opaque handle identifying a scheduled event, usable for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventKey(u64);

#[derive(Debug)]
struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// A time-ordered queue of events with payloads of type `E`.
///
/// The queue tracks the current simulation time: popping an event advances
/// `now` to the event's timestamp. Scheduling in the past is rejected.
///
/// # Examples
///
/// ```
/// use hhpim_sim::{EventQueue, SimDuration, SimTime};
/// let mut q = EventQueue::new();
/// q.schedule_after(SimDuration::from_ns(10), "b").unwrap();
/// q.schedule_after(SimDuration::from_ns(5), "a").unwrap();
/// assert_eq!(q.pop().unwrap().1, "a");
/// assert_eq!(q.now(), SimTime::from_ns(5));
/// assert_eq!(q.pop().unwrap().1, "b");
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Scheduled<E>>>,
    cancelled: HashSet<u64>,
    next_seq: u64,
    now: SimTime,
    processed: u64,
}

/// Error returned when scheduling an event before the current time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduleInPastError {
    /// The current queue time.
    pub now: SimTime,
    /// The rejected timestamp.
    pub requested: SimTime,
}

impl std::fmt::Display for ScheduleInPastError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cannot schedule event at {} before current time {}",
            self.requested, self.now
        )
    }
}

impl std::error::Error for ScheduleInPastError {}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            cancelled: HashSet::new(),
            next_seq: 0,
            now: SimTime::ZERO,
            processed: 0,
        }
    }

    /// Current simulation time (timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events popped so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of pending (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.heap.len() - self.cancelled.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Schedules `payload` at absolute time `at`.
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleInPastError`] if `at` is before [`Self::now`].
    pub fn schedule(&mut self, at: SimTime, payload: E) -> Result<EventKey, ScheduleInPastError> {
        if at < self.now {
            return Err(ScheduleInPastError {
                now: self.now,
                requested: at,
            });
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Scheduled { at, seq, payload }));
        Ok(EventKey(seq))
    }

    /// Schedules `payload` after a delay relative to the current time.
    ///
    /// # Errors
    ///
    /// Never fails in practice; shares the signature of [`Self::schedule`]
    /// for uniform call sites.
    pub fn schedule_after(
        &mut self,
        delay: SimDuration,
        payload: E,
    ) -> Result<EventKey, ScheduleInPastError> {
        self.schedule(self.now + delay, payload)
    }

    /// Cancels a previously scheduled event. Returns `true` if the event
    /// was still pending.
    pub fn cancel(&mut self, key: EventKey) -> bool {
        if key.0 >= self.next_seq {
            return false;
        }
        self.cancelled.insert(key.0)
    }

    /// Timestamp of the next pending event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.skip_cancelled();
        self.heap.peek().map(|Reverse(s)| s.at)
    }

    /// Pops the next event, advancing the queue's clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.skip_cancelled();
        let Reverse(s) = self.heap.pop()?;
        debug_assert!(s.at >= self.now, "event queue time went backwards");
        self.now = s.at;
        self.processed += 1;
        Some((s.at, s.payload))
    }

    fn skip_cancelled(&mut self) {
        while let Some(Reverse(s)) = self.heap.peek() {
            if self.cancelled.remove(&s.seq) {
                self.heap.pop();
            } else {
                break;
            }
        }
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(30), 3).unwrap();
        q.schedule(SimTime::from_ns(10), 1).unwrap();
        q.schedule(SimTime::from_ns(20), 2).unwrap();
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn same_time_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_ns(5);
        for i in 0..10 {
            q.schedule(t, i).unwrap();
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn rejects_past() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(10), ()).unwrap();
        q.pop();
        let err = q.schedule(SimTime::from_ns(5), ()).unwrap_err();
        assert_eq!(err.requested, SimTime::from_ns(5));
        assert_eq!(err.now, SimTime::from_ns(10));
        assert!(err.to_string().contains("before current time"));
    }

    #[test]
    fn cancellation() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_ns(1), "a").unwrap();
        q.schedule(SimTime::from_ns(2), "b").unwrap();
        assert_eq!(q.len(), 2);
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double-cancel reports false");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().1, "b");
    }

    #[test]
    fn cancel_unknown_key_is_noop() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(EventKey(42)));
    }

    #[test]
    fn peek_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_ns(1), "a").unwrap();
        q.schedule(SimTime::from_ns(2), "b").unwrap();
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(SimTime::from_ns(2)));
    }

    #[test]
    fn processed_counter() {
        let mut q = EventQueue::new();
        q.schedule_after(SimDuration::from_ns(1), ()).unwrap();
        q.schedule_after(SimDuration::from_ns(2), ()).unwrap();
        while q.pop().is_some() {}
        assert_eq!(q.processed(), 2);
    }
}
