//! A minimal simulation driver tying an [`EventQueue`] to a handler.
//!
//! Models in this workspace are mostly *resource-availability* models
//! ("this port is busy until t"), so the engine stays deliberately small:
//! a run loop with step limits and stop predicates, suitable both for
//! closed-loop component tests and for the full-processor simulations in
//! `hhpim-pim`.

use crate::event::{EventQueue, ScheduleInPastError};
use crate::time::{SimDuration, SimTime};

/// Outcome of a [`Simulation::run`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The event queue drained completely.
    Drained,
    /// The configured horizon was reached with events still pending.
    HorizonReached,
    /// The handler requested a stop.
    Stopped,
    /// The step budget was exhausted (runaway protection).
    StepBudgetExhausted,
}

/// What the event handler wants the engine to do next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Control {
    /// Keep processing events.
    Continue,
    /// Stop after this event.
    Stop,
}

/// An event-driven simulation: a queue plus user state of type `S`.
///
/// The handler receives the state, a scheduling context and each popped
/// event in deterministic order.
///
/// # Examples
///
/// ```
/// use hhpim_sim::{Simulation, Control, SimDuration};
///
/// // Count down: each event schedules the next until zero.
/// let mut sim = Simulation::new(0u32);
/// sim.schedule_after(SimDuration::from_ns(1), 3u32).unwrap();
/// let outcome = sim.run(|count, ctx, n| {
///     *count += 1;
///     if n > 1 {
///         ctx.schedule_after(SimDuration::from_ns(1), n - 1).unwrap();
///     }
///     Control::Continue
/// });
/// assert_eq!(outcome, hhpim_sim::RunOutcome::Drained);
/// assert_eq!(*sim.state(), 3);
/// ```
#[derive(Debug)]
pub struct Simulation<S, E> {
    queue: EventQueue<E>,
    state: S,
    horizon: Option<SimTime>,
    step_budget: Option<u64>,
}

/// Scheduling context passed to event handlers.
///
/// Borrows the queue so handlers can schedule follow-up events without
/// taking `&mut Simulation` (which would alias the state borrow).
#[derive(Debug)]
pub struct Context<'a, E> {
    queue: &'a mut EventQueue<E>,
}

impl<'a, E> Context<'a, E> {
    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Schedules an event at an absolute time.
    ///
    /// # Errors
    ///
    /// Returns an error if `at` is in the past.
    pub fn schedule(
        &mut self,
        at: SimTime,
        payload: E,
    ) -> Result<crate::event::EventKey, ScheduleInPastError> {
        self.queue.schedule(at, payload)
    }

    /// Schedules an event after a relative delay.
    ///
    /// # Errors
    ///
    /// Returns an error only on timestamp overflow (practically never).
    pub fn schedule_after(
        &mut self,
        delay: SimDuration,
        payload: E,
    ) -> Result<crate::event::EventKey, ScheduleInPastError> {
        self.queue.schedule_after(delay, payload)
    }
}

impl<S, E> Simulation<S, E> {
    /// Creates a simulation owning `state`, with an empty queue at time 0.
    pub fn new(state: S) -> Self {
        Simulation {
            queue: EventQueue::new(),
            state,
            horizon: None,
            step_budget: None,
        }
    }

    /// Limits the run to events at or before `horizon`.
    pub fn with_horizon(mut self, horizon: SimTime) -> Self {
        self.horizon = Some(horizon);
        self
    }

    /// Limits the run to at most `steps` events (runaway protection).
    pub fn with_step_budget(mut self, steps: u64) -> Self {
        self.step_budget = Some(steps);
        self
    }

    /// Shared access to the user state.
    pub fn state(&self) -> &S {
        &self.state
    }

    /// Exclusive access to the user state.
    pub fn state_mut(&mut self) -> &mut S {
        &mut self.state
    }

    /// Consumes the simulation, returning the user state.
    pub fn into_state(self) -> S {
        self.state
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Number of events processed so far.
    pub fn processed(&self) -> u64 {
        self.queue.processed()
    }

    /// Schedules an initial event at an absolute time.
    ///
    /// # Errors
    ///
    /// Returns an error if `at` is in the past.
    pub fn schedule(
        &mut self,
        at: SimTime,
        payload: E,
    ) -> Result<crate::event::EventKey, ScheduleInPastError> {
        self.queue.schedule(at, payload)
    }

    /// Schedules an initial event after a relative delay.
    ///
    /// # Errors
    ///
    /// Returns an error only on timestamp overflow (practically never).
    pub fn schedule_after(
        &mut self,
        delay: SimDuration,
        payload: E,
    ) -> Result<crate::event::EventKey, ScheduleInPastError> {
        self.queue.schedule_after(delay, payload)
    }

    /// Runs until the queue drains, the horizon passes, the handler stops,
    /// or the step budget is exhausted.
    pub fn run<F>(&mut self, mut handler: F) -> RunOutcome
    where
        F: FnMut(&mut S, &mut Context<'_, E>, E) -> Control,
    {
        let mut remaining = self.step_budget;
        loop {
            if let Some(0) = remaining {
                return RunOutcome::StepBudgetExhausted;
            }
            if let (Some(h), Some(t)) = (self.horizon, self.queue.peek_time()) {
                if t > h {
                    return RunOutcome::HorizonReached;
                }
            }
            let Some((_, payload)) = self.queue.pop() else {
                return RunOutcome::Drained;
            };
            if let Some(r) = remaining.as_mut() {
                *r -= 1;
            }
            let mut ctx = Context {
                queue: &mut self.queue,
            };
            match handler(&mut self.state, &mut ctx, payload) {
                Control::Continue => {}
                Control::Stop => return RunOutcome::Stopped,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drains_empty_queue() {
        let mut sim: Simulation<(), u8> = Simulation::new(());
        assert_eq!(sim.run(|_, _, _| Control::Continue), RunOutcome::Drained);
    }

    #[test]
    fn horizon_stops_before_late_events() {
        let mut sim = Simulation::new(0u32).with_horizon(SimTime::from_ns(10));
        sim.schedule(SimTime::from_ns(5), ()).unwrap();
        sim.schedule(SimTime::from_ns(15), ()).unwrap();
        let outcome = sim.run(|count, _, _| {
            *count += 1;
            Control::Continue
        });
        assert_eq!(outcome, RunOutcome::HorizonReached);
        assert_eq!(*sim.state(), 1);
    }

    #[test]
    fn handler_stop() {
        let mut sim = Simulation::new(());
        sim.schedule(SimTime::from_ns(1), 1).unwrap();
        sim.schedule(SimTime::from_ns(2), 2).unwrap();
        let outcome = sim.run(|_, _, n| {
            if n == 1 {
                Control::Stop
            } else {
                Control::Continue
            }
        });
        assert_eq!(outcome, RunOutcome::Stopped);
        assert_eq!(sim.processed(), 1);
    }

    #[test]
    fn step_budget_halts_runaway() {
        let mut sim = Simulation::new(()).with_step_budget(100);
        sim.schedule(SimTime::from_ns(1), ()).unwrap();
        // Self-perpetuating event chain.
        let outcome = sim.run(|_, ctx, ()| {
            ctx.schedule_after(SimDuration::from_ns(1), ()).unwrap();
            Control::Continue
        });
        assert_eq!(outcome, RunOutcome::StepBudgetExhausted);
        assert_eq!(sim.processed(), 100);
    }

    #[test]
    fn chained_events_advance_time() {
        let mut sim = Simulation::new(Vec::new());
        sim.schedule(SimTime::from_ns(1), 0u32).unwrap();
        sim.run(|log: &mut Vec<u64>, ctx, n| {
            log.push(ctx.now().as_ps());
            if n < 2 {
                ctx.schedule_after(SimDuration::from_ns(10), n + 1).unwrap();
            }
            Control::Continue
        });
        assert_eq!(sim.into_state(), vec![1_000, 11_000, 21_000]);
    }
}
