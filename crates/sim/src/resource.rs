//! Busy-until resource modelling.
//!
//! Cycle-level hardware models in this workspace mostly need one
//! primitive: a shared resource (memory port, PE, bus) that serves one
//! request at a time with a deterministic service latency. [`BusyResource`]
//! captures that, and [`ResourcePool`] models `n` interchangeable copies
//! (e.g. the four PIM modules of a cluster).

use crate::time::{SimDuration, SimTime};

/// A single-server resource with earliest-availability semantics.
///
/// # Examples
///
/// ```
/// use hhpim_sim::{BusyResource, SimDuration, SimTime};
/// let mut port = BusyResource::new();
/// // Two back-to-back 10 ns accesses issued at t=0 finish at 10 and 20 ns.
/// let done1 = port.acquire(SimTime::ZERO, SimDuration::from_ns(10));
/// let done2 = port.acquire(SimTime::ZERO, SimDuration::from_ns(10));
/// assert_eq!(done1, SimTime::from_ns(10));
/// assert_eq!(done2, SimTime::from_ns(20));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BusyResource {
    free_at: SimTime,
    busy_total: SimDuration,
    served: u64,
}

impl BusyResource {
    /// Creates a resource that is free at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// The instant at which the resource next becomes free.
    pub fn free_at(&self) -> SimTime {
        self.free_at
    }

    /// Whether the resource is free at `now`.
    pub fn is_free(&self, now: SimTime) -> bool {
        self.free_at <= now
    }

    /// Total busy time accumulated (for utilization reporting).
    pub fn busy_total(&self) -> SimDuration {
        self.busy_total
    }

    /// Number of requests served.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Serves a request arriving at `at` with the given `service` time;
    /// returns the completion instant. Requests queue FIFO: service starts
    /// at `max(at, free_at)`.
    pub fn acquire(&mut self, at: SimTime, service: SimDuration) -> SimTime {
        let start = self.free_at.max(at);
        let done = start + service;
        self.free_at = done;
        self.busy_total += service;
        self.served += 1;
        done
    }

    /// Resets availability and statistics to time zero.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

/// A pool of `n` identical single-server resources with
/// earliest-available dispatch (e.g. a PIM module cluster).
///
/// # Examples
///
/// ```
/// use hhpim_sim::{ResourcePool, SimDuration, SimTime};
/// let mut cluster = ResourcePool::new(4);
/// // Five 8 ns jobs on 4 servers: the fifth waits for the first to finish.
/// let mut last = SimTime::ZERO;
/// for _ in 0..5 {
///     last = cluster.acquire(SimTime::ZERO, SimDuration::from_ns(8));
/// }
/// assert_eq!(last, SimTime::from_ns(16));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResourcePool {
    servers: Vec<BusyResource>,
}

impl ResourcePool {
    /// Creates a pool of `n` servers, all free at time zero.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "resource pool must have at least one server");
        ResourcePool {
            servers: vec![BusyResource::new(); n],
        }
    }

    /// Number of servers in the pool.
    pub fn len(&self) -> usize {
        self.servers.len()
    }

    /// Whether the pool has no servers (never true; kept for API symmetry).
    pub fn is_empty(&self) -> bool {
        self.servers.is_empty()
    }

    /// Serves a request on the earliest-available server; returns the
    /// completion instant. Ties dispatch to the lowest-indexed server for
    /// determinism.
    pub fn acquire(&mut self, at: SimTime, service: SimDuration) -> SimTime {
        let idx = self
            .servers
            .iter()
            .enumerate()
            .min_by_key(|(i, s)| (s.free_at(), *i))
            .map(|(i, _)| i)
            .expect("pool is non-empty");
        self.servers[idx].acquire(at, service)
    }

    /// The earliest instant at which all servers are simultaneously free.
    pub fn all_free_at(&self) -> SimTime {
        self.servers
            .iter()
            .map(BusyResource::free_at)
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Sum of busy time across servers.
    pub fn busy_total(&self) -> SimDuration {
        self.servers.iter().map(BusyResource::busy_total).sum()
    }

    /// Total requests served across servers.
    pub fn served(&self) -> u64 {
        self.servers.iter().map(BusyResource::served).sum()
    }

    /// Resets every server to free-at-zero.
    pub fn reset(&mut self) {
        for s in &mut self.servers {
            s.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_queueing() {
        let mut r = BusyResource::new();
        assert!(r.is_free(SimTime::ZERO));
        let d1 = r.acquire(SimTime::from_ns(5), SimDuration::from_ns(10));
        assert_eq!(d1, SimTime::from_ns(15));
        // Arrives while busy: waits.
        let d2 = r.acquire(SimTime::from_ns(6), SimDuration::from_ns(1));
        assert_eq!(d2, SimTime::from_ns(16));
        // Arrives after idle gap: starts immediately.
        let d3 = r.acquire(SimTime::from_ns(100), SimDuration::from_ns(2));
        assert_eq!(d3, SimTime::from_ns(102));
        assert_eq!(r.busy_total(), SimDuration::from_ns(13));
        assert_eq!(r.served(), 3);
    }

    #[test]
    fn pool_balances_across_servers() {
        let mut p = ResourcePool::new(2);
        let a = p.acquire(SimTime::ZERO, SimDuration::from_ns(10));
        let b = p.acquire(SimTime::ZERO, SimDuration::from_ns(10));
        let c = p.acquire(SimTime::ZERO, SimDuration::from_ns(10));
        assert_eq!(a, SimTime::from_ns(10));
        assert_eq!(b, SimTime::from_ns(10));
        assert_eq!(c, SimTime::from_ns(20));
        assert_eq!(p.all_free_at(), SimTime::from_ns(20));
        assert_eq!(p.served(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn empty_pool_panics() {
        let _ = ResourcePool::new(0);
    }

    #[test]
    fn reset_clears_state() {
        let mut p = ResourcePool::new(2);
        p.acquire(SimTime::ZERO, SimDuration::from_ns(10));
        p.reset();
        assert_eq!(p.all_free_at(), SimTime::ZERO);
        assert_eq!(p.busy_total(), SimDuration::ZERO);
    }
}
