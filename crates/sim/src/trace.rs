//! Bounded in-memory tracing for simulations.
//!
//! Cycle-level debugging needs a record of "what happened when" without
//! unbounded memory growth; [`TraceBuffer`] keeps the most recent `cap`
//! records in insertion order.

use crate::time::SimTime;
use std::collections::VecDeque;
use std::fmt;

/// A single trace record: a timestamp, a component tag and a message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// When the event occurred.
    pub at: SimTime,
    /// Short component identifier (e.g. `"hp-ctrl"`).
    pub tag: &'static str,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for TraceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}: {}", self.at, self.tag, self.message)
    }
}

/// A bounded ring buffer of [`TraceRecord`]s.
///
/// # Examples
///
/// ```
/// use hhpim_sim::{TraceBuffer, SimTime};
/// let mut trace = TraceBuffer::with_capacity(2);
/// trace.record(SimTime::from_ns(1), "pe", "mac issued");
/// trace.record(SimTime::from_ns(2), "pe", "mac retired");
/// trace.record(SimTime::from_ns(3), "pe", "idle");
/// // Oldest record evicted.
/// assert_eq!(trace.len(), 2);
/// assert_eq!(trace.iter().next().unwrap().message, "mac retired");
/// ```
#[derive(Debug, Clone)]
pub struct TraceBuffer {
    records: VecDeque<TraceRecord>,
    cap: usize,
    enabled: bool,
    dropped: u64,
}

impl TraceBuffer {
    /// Creates a buffer retaining at most `cap` records.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero.
    pub fn with_capacity(cap: usize) -> Self {
        assert!(cap > 0, "trace capacity must be non-zero");
        TraceBuffer {
            records: VecDeque::with_capacity(cap.min(4096)),
            cap,
            enabled: true,
            dropped: 0,
        }
    }

    /// Creates a disabled buffer that drops everything (zero overhead in
    /// hot loops beyond a branch).
    pub fn disabled() -> Self {
        TraceBuffer {
            records: VecDeque::new(),
            cap: 1,
            enabled: false,
            dropped: 0,
        }
    }

    /// Whether recording is enabled.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Enables or disables recording.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Records a message; evicts the oldest record when full.
    pub fn record(&mut self, at: SimTime, tag: &'static str, message: impl Into<String>) {
        if !self.enabled {
            return;
        }
        if self.records.len() == self.cap {
            self.records.pop_front();
            self.dropped += 1;
        }
        self.records.push_back(TraceRecord {
            at,
            tag,
            message: message.into(),
        });
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether no records are retained.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Number of records evicted due to capacity.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterates records oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceRecord> {
        self.records.iter()
    }

    /// Clears all retained records (the dropped counter is preserved).
    pub fn clear(&mut self) {
        self.records.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_evicts() {
        let mut t = TraceBuffer::with_capacity(3);
        for i in 0..5u64 {
            t.record(SimTime::from_ns(i), "x", format!("msg{i}"));
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 2);
        let msgs: Vec<_> = t.iter().map(|r| r.message.as_str()).collect();
        assert_eq!(msgs, vec!["msg2", "msg3", "msg4"]);
    }

    #[test]
    fn disabled_buffer_drops_silently() {
        let mut t = TraceBuffer::disabled();
        t.record(SimTime::ZERO, "x", "ignored");
        assert!(t.is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn display_format() {
        let r = TraceRecord {
            at: SimTime::from_ns(5),
            tag: "pe",
            message: "go".into(),
        };
        assert_eq!(r.to_string(), "[5.000ns] pe: go");
    }

    #[test]
    fn toggle_enabled() {
        let mut t = TraceBuffer::with_capacity(2);
        t.set_enabled(false);
        t.record(SimTime::ZERO, "x", "dropped");
        t.set_enabled(true);
        t.record(SimTime::ZERO, "x", "kept");
        assert_eq!(t.len(), 1);
    }
}
