//! Lightweight statistics for simulation reporting: counters and
//! streaming summaries (min/max/mean) without external dependencies.

use core::fmt;

/// A streaming summary of an f64-valued series: count, min, max, mean and
/// variance via Welford's algorithm.
///
/// # Examples
///
/// ```
/// use hhpim_sim::Summary;
/// let mut s = Summary::new();
/// for x in [1.0, 2.0, 3.0] {
///     s.add(x);
/// }
/// assert_eq!(s.count(), 3);
/// assert_eq!(s.mean(), 2.0);
/// assert_eq!(s.min(), Some(1.0));
/// assert_eq!(s.max(), Some(3.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not finite (NaN would silently poison the stats).
    pub fn add(&mut self, x: f64) {
        assert!(x.is_finite(), "summary observations must be finite");
        if self.count == 0 {
            self.min = x;
            self.max = x;
        } else {
            self.min = self.min.min(x);
            self.max = self.max.max(x);
        }
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean; zero when empty.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Minimum observation, if any.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Maximum observation, if any.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Population variance; zero for fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Merges another summary into this one (parallel-reduction friendly).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.count as f64 / total as f64;
        let m2 = self.m2
            + other.m2
            + delta * delta * self.count as f64 * other.count as f64 / total as f64;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.count = total;
        self.mean = mean;
        self.m2 = m2;
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.count == 0 {
            return write!(f, "n=0");
        }
        write!(
            f,
            "n={} mean={:.4} min={:.4} max={:.4} sd={:.4}",
            self.count,
            self.mean,
            self.min,
            self.max,
            self.std_dev()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.to_string(), "n=0");
    }

    #[test]
    fn welford_variance_matches_direct() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = Summary::new();
        for &x in &xs {
            s.add(x);
        }
        assert_eq!(s.mean(), 5.0);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = Summary::new();
        for &x in &xs {
            whole.add(x);
        }
        let mut left = Summary::new();
        let mut right = Summary::new();
        for &x in &xs[..37] {
            left.add(x);
        }
        for &x in &xs[37..] {
            right.add(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Summary::new();
        a.add(3.0);
        let before = a;
        a.merge(&Summary::new());
        assert_eq!(a, before);
        let mut empty = Summary::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan() {
        Summary::new().add(f64::NAN);
    }
}
