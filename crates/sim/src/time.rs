//! Simulation time, durations, frequencies and clock-domain conversion.
//!
//! All simulation time is kept in integer **picoseconds** so that the
//! sub-nanosecond latencies of Table III in the paper (e.g. SRAM reads of
//! 1.12 ns) are representable exactly and event ordering is deterministic.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant on the simulation timeline, in picoseconds.
///
/// `SimTime` is an *instant*; spans between instants are [`SimDuration`].
/// The distinction prevents accidentally adding two instants.
///
/// # Examples
///
/// ```
/// use hhpim_sim::{SimTime, SimDuration};
/// let t = SimTime::ZERO + SimDuration::from_ns(5);
/// assert_eq!(t.as_ps(), 5_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulation time, in picoseconds.
///
/// # Examples
///
/// ```
/// use hhpim_sim::SimDuration;
/// let d = SimDuration::from_ns_f64(2.62);
/// assert_eq!(d.as_ps(), 2_620);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of the simulation timeline.
    pub const ZERO: SimTime = SimTime(0);
    /// The maximum representable instant (used as an "infinity" sentinel).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw picoseconds.
    pub const fn from_ps(ps: u64) -> Self {
        SimTime(ps)
    }

    /// Creates an instant from nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns * 1_000)
    }

    /// Returns the raw picosecond count.
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Returns the instant as fractional nanoseconds.
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Returns the instant as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// Duration elapsed since `earlier`, saturating to zero if `earlier`
    /// is in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration; `None` on overflow.
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The maximum representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration from raw picoseconds.
    pub const fn from_ps(ps: u64) -> Self {
        SimDuration(ps)
    }

    /// Creates a duration from whole nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        SimDuration(ns * 1_000)
    }

    /// Creates a duration from whole microseconds.
    pub const fn from_us(us: u64) -> Self {
        SimDuration(us * 1_000_000)
    }

    /// Creates a duration from whole milliseconds.
    pub const fn from_ms(ms: u64) -> Self {
        SimDuration(ms * 1_000_000_000)
    }

    /// Creates a duration from fractional nanoseconds, rounding to the
    /// nearest picosecond.
    ///
    /// # Panics
    ///
    /// Panics if `ns` is negative or not finite.
    pub fn from_ns_f64(ns: f64) -> Self {
        assert!(
            ns.is_finite() && ns >= 0.0,
            "duration must be finite and non-negative"
        );
        SimDuration((ns * 1e3).round() as u64)
    }

    /// Creates a duration from fractional seconds, rounding to the nearest
    /// picosecond.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "duration must be finite and non-negative"
        );
        SimDuration((secs * 1e12).round() as u64)
    }

    /// Returns the raw picosecond count.
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Returns the duration as fractional nanoseconds.
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Returns the duration as fractional milliseconds.
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns the duration as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Checked multiplication by an integer count; `None` on overflow.
    pub fn checked_mul(self, n: u64) -> Option<SimDuration> {
        self.0.checked_mul(n).map(SimDuration)
    }

    /// Scales the duration by a non-negative factor, rounding to the
    /// nearest picosecond.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "scale factor must be finite and non-negative"
        );
        SimDuration((self.0 as f64 * factor).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Div<SimDuration> for SimDuration {
    /// Integer ratio of two durations (floor division).
    type Output = u64;
    fn div(self, rhs: SimDuration) -> u64 {
        self.0 / rhs.0
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", SimDuration(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ps = self.0;
        if ps >= 1_000_000_000_000 {
            write!(f, "{:.3}s", ps as f64 / 1e12)
        } else if ps >= 1_000_000_000 {
            write!(f, "{:.3}ms", ps as f64 / 1e9)
        } else if ps >= 1_000_000 {
            write!(f, "{:.3}us", ps as f64 / 1e6)
        } else if ps >= 1_000 {
            write!(f, "{:.3}ns", ps as f64 / 1e3)
        } else {
            write!(f, "{ps}ps")
        }
    }
}

/// A clock frequency in hertz.
///
/// # Examples
///
/// ```
/// use hhpim_sim::Frequency;
/// let f = Frequency::from_mhz(50);
/// assert_eq!(f.period().as_ps(), 20_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Frequency(u64);

impl Frequency {
    /// Creates a frequency from hertz.
    ///
    /// # Panics
    ///
    /// Panics if `hz` is zero.
    pub const fn from_hz(hz: u64) -> Self {
        assert!(hz > 0, "frequency must be non-zero");
        Frequency(hz)
    }

    /// Creates a frequency from megahertz.
    pub const fn from_mhz(mhz: u64) -> Self {
        Self::from_hz(mhz * 1_000_000)
    }

    /// Creates a frequency from gigahertz.
    pub const fn from_ghz(ghz: u64) -> Self {
        Self::from_hz(ghz * 1_000_000_000)
    }

    /// Returns the frequency in hertz.
    pub const fn as_hz(self) -> u64 {
        self.0
    }

    /// Returns the clock period, rounded to the nearest picosecond.
    pub fn period(self) -> SimDuration {
        SimDuration((1e12 / self.0 as f64).round() as u64)
    }
}

impl fmt::Display for Frequency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}GHz", self.0 as f64 / 1e9)
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}MHz", self.0 as f64 / 1e6)
        } else {
            write!(f, "{}Hz", self.0)
        }
    }
}

/// A clock domain: converts between cycle counts and simulation time.
///
/// # Examples
///
/// ```
/// use hhpim_sim::{Clock, Frequency, SimDuration};
/// let clk = Clock::new(Frequency::from_mhz(50));
/// assert_eq!(clk.cycles_to_duration(5).as_ps(), 100_000);
/// // A 30 ns latency needs 2 cycles at 50 MHz (20 ns period).
/// assert_eq!(clk.cycles_for(SimDuration::from_ns(30)), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Clock {
    frequency: Frequency,
}

impl Clock {
    /// Creates a clock domain with the given frequency.
    pub const fn new(frequency: Frequency) -> Self {
        Clock { frequency }
    }

    /// Returns this clock's frequency.
    pub const fn frequency(self) -> Frequency {
        self.frequency
    }

    /// Returns this clock's period.
    pub fn period(self) -> SimDuration {
        self.frequency.period()
    }

    /// Converts a cycle count to a duration.
    pub fn cycles_to_duration(self, cycles: u64) -> SimDuration {
        self.period() * cycles
    }

    /// Returns the minimum whole number of cycles covering `d`
    /// (ceiling division); zero-length durations take zero cycles.
    pub fn cycles_for(self, d: SimDuration) -> u64 {
        let p = self.period().as_ps();
        d.as_ps().div_ceil(p)
    }

    /// Rounds an instant up to the next clock edge (multiples of the
    /// period measured from time zero).
    pub fn next_edge(self, t: SimTime) -> SimTime {
        let p = self.period().as_ps();
        SimTime::from_ps(t.as_ps().div_ceil(p) * p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrip() {
        let t = SimTime::from_ns(10);
        let d = SimDuration::from_ns(3);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d) - d, t);
    }

    #[test]
    fn duration_from_fractional_ns_rounds_to_ps() {
        assert_eq!(SimDuration::from_ns_f64(1.12).as_ps(), 1_120);
        assert_eq!(SimDuration::from_ns_f64(11.81).as_ps(), 11_810);
        assert_eq!(SimDuration::from_ns_f64(0.0004).as_ps(), 0);
    }

    #[test]
    fn duration_display_picks_unit() {
        assert_eq!(SimDuration::from_ps(500).to_string(), "500ps");
        assert_eq!(SimDuration::from_ns(2).to_string(), "2.000ns");
        assert_eq!(SimDuration::from_ms(3).to_string(), "3.000ms");
    }

    #[test]
    fn frequency_period() {
        assert_eq!(Frequency::from_mhz(50).period(), SimDuration::from_ns(20));
        assert_eq!(Frequency::from_ghz(1).period(), SimDuration::from_ns(1));
    }

    #[test]
    fn clock_cycle_ceiling() {
        let clk = Clock::new(Frequency::from_mhz(100)); // 10 ns period
        assert_eq!(clk.cycles_for(SimDuration::ZERO), 0);
        assert_eq!(clk.cycles_for(SimDuration::from_ns(1)), 1);
        assert_eq!(clk.cycles_for(SimDuration::from_ns(10)), 1);
        assert_eq!(clk.cycles_for(SimDuration::from_ns(11)), 2);
    }

    #[test]
    fn clock_next_edge() {
        let clk = Clock::new(Frequency::from_mhz(50));
        assert_eq!(clk.next_edge(SimTime::ZERO), SimTime::ZERO);
        assert_eq!(clk.next_edge(SimTime::from_ns(1)), SimTime::from_ns(20));
        assert_eq!(clk.next_edge(SimTime::from_ns(20)), SimTime::from_ns(20));
    }

    #[test]
    fn saturating_since() {
        let a = SimTime::from_ns(5);
        let b = SimTime::from_ns(9);
        assert_eq!(b.saturating_since(a), SimDuration::from_ns(4));
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
    }

    #[test]
    fn duration_sum() {
        let total: SimDuration = [1u64, 2, 3].iter().map(|&n| SimDuration::from_ns(n)).sum();
        assert_eq!(total, SimDuration::from_ns(6));
    }

    #[test]
    fn duration_ratio() {
        assert_eq!(SimDuration::from_ns(100) / SimDuration::from_ns(30), 3);
    }
}
