//! Functional INT8 inference executor.
//!
//! Executes a [`Model`] bit-exactly with integer-only arithmetic:
//! INT8 operands, i32 accumulation and power-of-two requantization
//! (`clamp(acc >> shift)`), the scheme a PIM PE implements cheaply.
//! This is the software *reference* against which the cycle-level PIM
//! machine is verified — the role the FPGA functional checks play in
//! §IV-A of the paper.

use crate::layer::Layer;
use crate::model::Model;
use crate::tensor::Tensor;
use core::fmt;

/// Weights for one parametric layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerWeights {
    /// Flat weights: conv `[oc][in_c/groups][k][k]`, linear `[out][in]`.
    pub weights: Vec<i8>,
    /// Per-output-channel i32 biases.
    pub bias: Vec<i32>,
    /// Right-shift applied to the accumulator before clamping to i8.
    pub shift: u32,
}

/// A model with materialized weights, executable on CPU.
///
/// # Examples
///
/// ```
/// use hhpim_nn::{zoo, QuantizedModel, Tensor};
/// let model = zoo::mobilenet_v2_tiny();
/// let qm = QuantizedModel::random(model, 42);
/// let (c, h, w) = qm.model().input_shape();
/// let logits = qm.infer(&Tensor::zeros(c, h, w));
/// assert_eq!(logits.shape(), (10, 1, 1));
/// ```
#[derive(Debug, Clone)]
pub struct QuantizedModel {
    model: Model,
    weights: Vec<Option<LayerWeights>>,
}

/// Deterministic xorshift64* generator for reproducible weights without
/// an RNG dependency.
#[derive(Debug, Clone)]
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> Self {
        XorShift(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn next_i8(&mut self, span: i8) -> i8 {
        let span = span.max(1) as i64;
        ((self.next() % (2 * span as u64 + 1)) as i64 - span) as i8
    }
}

fn saturate(acc: i32, shift: u32) -> i8 {
    (acc >> shift).clamp(-128, 127) as i8
}

impl QuantizedModel {
    /// Materializes deterministic pseudo-random weights for `model`.
    ///
    /// Weights are drawn from `[-32, 32]`, biases from `[-64, 64]`, and
    /// every layer uses requantization shift 7 — values that keep
    /// activations well-distributed through deep stacks.
    pub fn random(model: Model, seed: u64) -> Self {
        let mut rng = XorShift::new(seed);
        let weights = model
            .layers()
            .iter()
            .map(|info| {
                if info.params == 0 {
                    return None;
                }
                let (out_ch, n_weights) = match info.layer {
                    Layer::Conv2d {
                        out_channels,
                        kernel,
                        groups,
                        ..
                    } => {
                        let icg = info.input.0 / groups.max(1);
                        (out_channels, out_channels * icg * kernel * kernel)
                    }
                    Layer::Linear { out_features } => {
                        let (c, h, w) = info.input;
                        (out_features, out_features * c * h * w)
                    }
                    _ => unreachable!("only conv/linear layers have params"),
                };
                Some(LayerWeights {
                    weights: (0..n_weights).map(|_| rng.next_i8(32)).collect(),
                    bias: (0..out_ch).map(|_| rng.next_i8(64) as i32).collect(),
                    shift: 7,
                })
            })
            .collect();
        QuantizedModel { model, weights }
    }

    /// The underlying model descriptor.
    pub fn model(&self) -> &Model {
        &self.model
    }

    /// Weights of layer `idx`, if it is parametric.
    pub fn layer_weights(&self, idx: usize) -> Option<&LayerWeights> {
        self.weights.get(idx).and_then(|w| w.as_ref())
    }

    /// Runs inference, returning the final activation tensor.
    ///
    /// # Panics
    ///
    /// Panics if `input`'s shape differs from the model's input shape.
    pub fn infer(&self, input: &Tensor<i8>) -> Tensor<i8> {
        self.infer_trace(input)
            .into_iter()
            .next_back()
            .unwrap_or_else(|| input.clone())
    }

    /// Runs inference, returning every layer's output (index-aligned with
    /// [`Model::layers`]). Useful for cross-checking the PIM machine
    /// layer by layer.
    ///
    /// # Panics
    ///
    /// Panics if `input`'s shape differs from the model's input shape.
    pub fn infer_trace(&self, input: &Tensor<i8>) -> Vec<Tensor<i8>> {
        assert_eq!(
            input.shape(),
            self.model.input_shape(),
            "input shape mismatch"
        );
        let mut outputs: Vec<Tensor<i8>> = Vec::with_capacity(self.model.layers().len());
        for (i, info) in self.model.layers().iter().enumerate() {
            let src = if i == 0 { input } else { &outputs[i - 1] };
            let out = match info.layer {
                Layer::Conv2d {
                    out_channels,
                    kernel,
                    stride,
                    padding,
                    groups,
                } => self.conv(
                    src,
                    self.weights[i].as_ref().expect("conv has weights"),
                    out_channels,
                    kernel,
                    stride,
                    padding,
                    groups,
                ),
                Layer::Linear { out_features } => self.linear(
                    src,
                    self.weights[i].as_ref().expect("linear has weights"),
                    out_features,
                ),
                Layer::Relu => {
                    let mut t = src.clone();
                    for v in t.as_mut_slice() {
                        *v = (*v).max(0);
                    }
                    t
                }
                Layer::AvgPool { kernel, stride } => pool(src, kernel, stride, false),
                Layer::MaxPool { kernel, stride } => pool(src, kernel, stride, true),
                Layer::GlobalAvgPool => {
                    let (c, h, w) = src.shape();
                    let mut out = Tensor::zeros(c, 1, 1);
                    for ch in 0..c {
                        let mut sum = 0i32;
                        for y in 0..h {
                            for x in 0..w {
                                sum += *src.at(ch, y, x) as i32;
                            }
                        }
                        *out.at_mut(ch, 0, 0) = (sum / (h * w) as i32).clamp(-128, 127) as i8;
                    }
                    out
                }
                Layer::ResidualAdd { depth } => {
                    let other: &Tensor<i8> = if depth == i + 1 {
                        input
                    } else {
                        &outputs[i - depth]
                    };
                    let mut t = src.clone();
                    for (v, o) in t.as_mut_slice().iter_mut().zip(other.as_slice()) {
                        *v = v.saturating_add(*o);
                    }
                    t
                }
            };
            debug_assert_eq!(out.shape(), info.output, "layer {i} shape mismatch");
            outputs.push(out);
        }
        outputs
    }

    #[allow(clippy::too_many_arguments)]
    fn conv(
        &self,
        src: &Tensor<i8>,
        lw: &LayerWeights,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        groups: usize,
    ) -> Tensor<i8> {
        let (in_c, in_h, in_w) = src.shape();
        let icg = in_c / groups;
        let ocg = out_channels / groups;
        let oh = (in_h + 2 * padding - kernel) / stride + 1;
        let ow = (in_w + 2 * padding - kernel) / stride + 1;
        let mut out = Tensor::zeros(out_channels, oh, ow);
        for oc in 0..out_channels {
            let group = oc / ocg;
            let w_base = oc * icg * kernel * kernel;
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = lw.bias[oc];
                    for ic_off in 0..icg {
                        let ic = group * icg + ic_off;
                        for ky in 0..kernel {
                            for kx in 0..kernel {
                                let iy = (oy * stride + ky) as isize - padding as isize;
                                let ix = (ox * stride + kx) as isize - padding as isize;
                                let a = src.at_padded(ic, iy, ix) as i32;
                                let w = lw.weights[w_base + (ic_off * kernel + ky) * kernel + kx]
                                    as i32;
                                acc += w * a;
                            }
                        }
                    }
                    *out.at_mut(oc, oy, ox) = saturate(acc, lw.shift);
                }
            }
        }
        out
    }

    fn linear(&self, src: &Tensor<i8>, lw: &LayerWeights, out_features: usize) -> Tensor<i8> {
        let flat = src.as_slice();
        let n = flat.len();
        let mut out = Tensor::zeros(out_features, 1, 1);
        for o in 0..out_features {
            let mut acc = lw.bias[o];
            for (j, &a) in flat.iter().enumerate() {
                acc += lw.weights[o * n + j] as i32 * a as i32;
            }
            *out.at_mut(o, 0, 0) = saturate(acc, lw.shift);
        }
        out
    }
}

fn pool(src: &Tensor<i8>, kernel: usize, stride: usize, is_max: bool) -> Tensor<i8> {
    let (c, h, w) = src.shape();
    let oh = (h - kernel) / stride + 1;
    let ow = (w - kernel) / stride + 1;
    let mut out = Tensor::zeros(c, oh, ow);
    for ch in 0..c {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut max = i8::MIN;
                let mut sum = 0i32;
                for ky in 0..kernel {
                    for kx in 0..kernel {
                        let v = *src.at(ch, oy * stride + ky, ox * stride + kx);
                        max = max.max(v);
                        sum += v as i32;
                    }
                }
                *out.at_mut(ch, oy, ox) = if is_max {
                    max
                } else {
                    (sum / (kernel * kernel) as i32).clamp(-128, 127) as i8
                };
            }
        }
    }
    out
}

impl fmt::Display for QuantizedModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "quantized {}", self.model.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{conv, pointwise};

    fn tiny_model() -> Model {
        Model::new(
            "t",
            (2, 4, 4),
            vec![
                conv(4, 3, 1),
                Layer::Relu,
                Layer::MaxPool {
                    kernel: 2,
                    stride: 2,
                },
                pointwise(4),
                Layer::ResidualAdd { depth: 1 },
                Layer::GlobalAvgPool,
                Layer::Linear { out_features: 3 },
            ],
        )
        .unwrap()
    }

    #[test]
    fn inference_shapes_follow_model() {
        let qm = QuantizedModel::random(tiny_model(), 7);
        let outs = qm.infer_trace(&Tensor::zeros(2, 4, 4));
        let expected: Vec<_> = qm.model().layers().iter().map(|i| i.output).collect();
        let got: Vec<_> = outs.iter().map(|t| t.shape()).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn deterministic_across_runs() {
        let a = QuantizedModel::random(tiny_model(), 99);
        let b = QuantizedModel::random(tiny_model(), 99);
        let mut input = Tensor::zeros(2, 4, 4);
        for (i, v) in input.as_mut_slice().iter_mut().enumerate() {
            *v = (i as i8).wrapping_mul(3);
        }
        assert_eq!(a.infer(&input), b.infer(&input));
        // Different seed → different weights (overwhelmingly likely).
        let c = QuantizedModel::random(tiny_model(), 100);
        assert_ne!(
            a.layer_weights(0).unwrap().weights,
            c.layer_weights(0).unwrap().weights
        );
    }

    #[test]
    fn conv_hand_check() {
        // 1 input channel, 1 output channel, 1x1 kernel, weight 2, bias 1,
        // shift 0: out = 2*in + 1.
        let model = Model::new(
            "c",
            (1, 2, 2),
            vec![Layer::Conv2d {
                out_channels: 1,
                kernel: 1,
                stride: 1,
                padding: 0,
                groups: 1,
            }],
        )
        .unwrap();
        let mut qm = QuantizedModel::random(model, 1);
        qm.weights[0] = Some(LayerWeights {
            weights: vec![2],
            bias: vec![1],
            shift: 0,
        });
        let input = Tensor::from_vec(1, 2, 2, vec![1i8, 2, 3, -4]);
        let out = qm.infer(&input);
        assert_eq!(out.as_slice(), &[3, 5, 7, -7]);
    }

    #[test]
    fn linear_hand_check() {
        let model = Model::new("l", (3, 1, 1), vec![Layer::Linear { out_features: 2 }]).unwrap();
        let mut qm = QuantizedModel::random(model, 1);
        qm.weights[0] = Some(LayerWeights {
            weights: vec![1, 2, 3, -1, -2, -3],
            bias: vec![0, 10],
            shift: 0,
        });
        let out = qm.infer(&Tensor::from_vec(3, 1, 1, vec![1i8, 1, 1]));
        assert_eq!(out.as_slice(), &[6, 4]);
    }

    #[test]
    fn relu_clamps_negatives() {
        let model = Model::new("r", (1, 1, 3), vec![Layer::Relu]).unwrap();
        let qm = QuantizedModel::random(model, 1);
        let out = qm.infer(&Tensor::from_vec(1, 1, 3, vec![-5i8, 0, 5]));
        assert_eq!(out.as_slice(), &[0, 0, 5]);
    }

    #[test]
    fn residual_add_saturates() {
        let model = Model::new(
            "a",
            (1, 1, 2),
            vec![Layer::Relu, Layer::ResidualAdd { depth: 2 }],
        )
        .unwrap();
        let qm = QuantizedModel::random(model, 1);
        let out = qm.infer(&Tensor::from_vec(1, 1, 2, vec![100i8, -100]));
        // relu: [100, 0]; add input: [200→127 saturated, -100].
        assert_eq!(out.as_slice(), &[127, -100]);
    }

    #[test]
    fn depthwise_conv_groups() {
        let model = Model::new(
            "dw",
            (2, 1, 1),
            vec![Layer::Conv2d {
                out_channels: 2,
                kernel: 1,
                stride: 1,
                padding: 0,
                groups: 2,
            }],
        )
        .unwrap();
        let mut qm = QuantizedModel::random(model, 1);
        qm.weights[0] = Some(LayerWeights {
            weights: vec![3, 5],
            bias: vec![0, 0],
            shift: 0,
        });
        let out = qm.infer(&Tensor::from_vec(2, 1, 1, vec![2i8, 2]));
        // Channel 0 sees only input 0, channel 1 only input 1.
        assert_eq!(out.as_slice(), &[6, 10]);
    }

    #[test]
    fn zoo_models_execute_end_to_end() {
        for m in crate::zoo::TinyMlModel::ALL {
            let model = m.build();
            let (c, h, w) = model.input_shape();
            let qm = QuantizedModel::random(model, 5);
            let mut input = Tensor::zeros(c, h, w);
            for (i, v) in input.as_mut_slice().iter_mut().enumerate() {
                *v = ((i * 37) % 160) as i8;
            }
            let out = qm.infer(&input);
            assert_eq!(out.shape(), (10, 1, 1), "{m}");
        }
    }

    #[test]
    fn pooling_behaviour() {
        let model = Model::new(
            "p",
            (1, 2, 2),
            vec![Layer::AvgPool {
                kernel: 2,
                stride: 2,
            }],
        )
        .unwrap();
        let qm = QuantizedModel::random(model, 1);
        let out = qm.infer(&Tensor::from_vec(1, 2, 2, vec![1i8, 3, 5, 7]));
        assert_eq!(out.as_slice(), &[4]);
    }
}
