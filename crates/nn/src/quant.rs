//! Symmetric INT8 quantization.
//!
//! Table IV's models are "INT8 Quantized & Pruned"; this module provides
//! the quantizer used to lower float weights/activations into the 8-bit
//! words stored in PIM memory, plus the requantization step between
//! layers (i32 accumulator → i8 activation).

use core::fmt;

/// Symmetric per-tensor quantization parameters: `real = scale * q`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantParams {
    scale: f32,
}

impl QuantParams {
    /// Creates parameters with an explicit scale.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not finite and positive.
    pub fn new(scale: f32) -> Self {
        assert!(
            scale.is_finite() && scale > 0.0,
            "scale must be finite and positive"
        );
        QuantParams { scale }
    }

    /// Derives parameters covering `values` symmetrically (max-abs
    /// calibration). Falls back to scale 1 for an all-zero input.
    pub fn calibrate(values: &[f32]) -> Self {
        let max_abs = values.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        if max_abs == 0.0 {
            QuantParams { scale: 1.0 }
        } else {
            QuantParams {
                scale: max_abs / 127.0,
            }
        }
    }

    /// The quantization scale.
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// Quantizes one value with round-to-nearest and saturation.
    pub fn quantize(&self, value: f32) -> i8 {
        let q = (value / self.scale).round();
        q.clamp(-128.0, 127.0) as i8
    }

    /// Dequantizes one value.
    pub fn dequantize(&self, q: i8) -> f32 {
        q as f32 * self.scale
    }

    /// Quantizes a slice.
    pub fn quantize_all(&self, values: &[f32]) -> Vec<i8> {
        values.iter().map(|&v| self.quantize(v)).collect()
    }

    /// Requantizes an i32 accumulator (at `input_scale * weight_scale`)
    /// into an i8 activation at `self`'s scale, with saturation.
    pub fn requantize(&self, acc: i32, input: QuantParams, weights: QuantParams) -> i8 {
        let real = acc as f64 * input.scale as f64 * weights.scale as f64;
        let q = (real / self.scale as f64).round();
        q.clamp(-128.0, 127.0) as i8
    }
}

impl Default for QuantParams {
    /// Unit scale.
    fn default() -> Self {
        QuantParams { scale: 1.0 }
    }
}

impl fmt::Display for QuantParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q8(scale={})", self.scale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_covers_range() {
        let values = [-3.0f32, 1.5, 2.9];
        let q = QuantParams::calibrate(&values);
        assert_eq!(q.quantize(-3.0), -127);
        assert_eq!(q.quantize(3.0), 127);
        assert_eq!(q.quantize(0.0), 0);
    }

    #[test]
    fn saturation() {
        let q = QuantParams::new(0.1);
        assert_eq!(q.quantize(1000.0), 127);
        assert_eq!(q.quantize(-1000.0), -128);
    }

    #[test]
    fn roundtrip_error_bounded_by_half_scale() {
        let q = QuantParams::new(0.05);
        for v in [-6.0f32, -0.3, 0.0, 0.12, 3.21, 6.3] {
            let err = (q.dequantize(q.quantize(v)) - v).abs();
            assert!(
                err <= 0.5 * q.scale() + 1e-6,
                "error {err} too large for {v}"
            );
        }
    }

    #[test]
    fn zero_input_calibration() {
        let q = QuantParams::calibrate(&[0.0, 0.0]);
        assert_eq!(q.scale(), 1.0);
    }

    #[test]
    fn requantize_matches_float_math() {
        let input = QuantParams::new(0.02);
        let weights = QuantParams::new(0.01);
        let output = QuantParams::new(0.1);
        // acc = 5000 → real 5000×0.0002 = 1.0 → q = 10 at scale 0.1.
        assert_eq!(output.requantize(5000, input, weights), 10);
        // Saturates.
        assert_eq!(output.requantize(i32::MAX, input, weights), 127);
        assert_eq!(output.requantize(i32::MIN, input, weights), -128);
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn zero_scale_rejected() {
        QuantParams::new(0.0);
    }

    #[test]
    fn quantize_all_length() {
        let q = QuantParams::default();
        assert_eq!(q.quantize_all(&[1.0, 2.0, 3.0]), vec![1, 2, 3]);
    }
}
