//! The benchmark model zoo (Table IV of the paper).
//!
//! The paper evaluates TinyML variants of three CNN backbones,
//! characterized only by parameter count, MAC count and PIM-operation
//! ratio:
//!
//! | Model           | #Param | #MAC    | PIM ops |
//! |-----------------|--------|---------|---------|
//! | EfficientNet-B0 | 95 k   | 3.245 M | 85 %    |
//! | MobileNetV2     | 101 k  | 2.528 M | 80 %    |
//! | ResNet-18       | 256 k  | 29.580 M| 75 %    |
//!
//! The authors "extracted the characteristics and operations of these
//! models" rather than running the full ImageNet networks (a real
//! ResNet-18 has 11.7 M parameters). We do the same from the opposite
//! direction: each builder constructs a *tiny* variant using the
//! backbone's characteristic blocks (inverted residuals for the mobile
//! nets, basic residual blocks for ResNet), with widths chosen so the
//! realized parameter/MAC counts land within a few percent of Table IV
//! (asserted by tests). Experiments use [`ModelSpec`], the published
//! numbers, so reproduction results are anchored to the paper.

use crate::layer::{conv, depthwise, pointwise, Layer};
use crate::model::Model;
use core::fmt;

/// The published Table IV characteristics of a benchmark model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelSpec {
    /// Model name as printed in the paper.
    pub name: &'static str,
    /// Parameter count (weights, INT8 ⇒ bytes).
    pub params: u64,
    /// Multiply-accumulate operations per inference.
    pub macs: u64,
    /// Fraction of operations executed on the PIM.
    pub pim_op_ratio: f64,
}

impl ModelSpec {
    /// MACs per inference that run on the PIM.
    pub fn pim_macs(&self) -> u64 {
        (self.macs as f64 * self.pim_op_ratio).round() as u64
    }

    /// Weight footprint in bytes (INT8 quantized).
    pub fn weight_bytes(&self) -> usize {
        self.params as usize
    }

    /// Average weight reuse: PIM MACs per weight per inference.
    pub fn reuse_factor(&self) -> f64 {
        self.pim_macs() as f64 / self.params as f64
    }
}

impl fmt::Display for ModelSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {}k params, {:.3}M MACs, {:.0}% PIM",
            self.name,
            self.params / 1000,
            self.macs as f64 / 1e6,
            self.pim_op_ratio * 100.0
        )
    }
}

/// The three benchmark models of Table IV.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TinyMlModel {
    /// EfficientNet-B0 tiny variant.
    EfficientNetB0,
    /// MobileNetV2 tiny variant.
    MobileNetV2,
    /// ResNet-18 tiny variant.
    ResNet18,
}

impl TinyMlModel {
    /// All three models in Table IV order.
    pub const ALL: [TinyMlModel; 3] = [
        TinyMlModel::EfficientNetB0,
        TinyMlModel::MobileNetV2,
        TinyMlModel::ResNet18,
    ];

    /// The published Table IV characteristics.
    pub fn spec(self) -> ModelSpec {
        match self {
            TinyMlModel::EfficientNetB0 => ModelSpec {
                name: "EfficientNet-B0",
                params: 95_000,
                macs: 3_245_000,
                pim_op_ratio: 0.85,
            },
            TinyMlModel::MobileNetV2 => ModelSpec {
                name: "MobileNetV2",
                params: 101_000,
                macs: 2_528_000,
                pim_op_ratio: 0.80,
            },
            TinyMlModel::ResNet18 => ModelSpec {
                name: "ResNet-18",
                params: 256_000,
                macs: 29_580_000,
                pim_op_ratio: 0.75,
            },
        }
    }

    /// Builds the tiny layer-graph variant (see module docs).
    pub fn build(self) -> Model {
        match self {
            TinyMlModel::EfficientNetB0 => efficientnet_b0_tiny(),
            TinyMlModel::MobileNetV2 => mobilenet_v2_tiny(),
            TinyMlModel::ResNet18 => resnet18_tiny(),
        }
    }
}

impl fmt::Display for TinyMlModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.spec().name)
    }
}

/// Appends an inverted-residual (MBConv) block: pointwise expand →
/// depthwise k×k → pointwise project, with a skip connection when the
/// block preserves shape.
fn mbconv(
    layers: &mut Vec<Layer>,
    in_ch: usize,
    out_ch: usize,
    expand: usize,
    kernel: usize,
    stride: usize,
) -> usize {
    let hidden = in_ch * expand;
    layers.push(pointwise(hidden));
    layers.push(Layer::Relu);
    layers.push(depthwise(hidden, kernel, stride));
    layers.push(Layer::Relu);
    layers.push(pointwise(out_ch));
    if stride == 1 && in_ch == out_ch {
        layers.push(Layer::ResidualAdd { depth: 6 });
    }
    out_ch
}

/// Appends a ResNet basic block (two 3×3 convolutions with identity or
/// projection skip).
fn basic_block(layers: &mut Vec<Layer>, in_ch: usize, out_ch: usize, stride: usize) -> usize {
    if stride == 1 && in_ch == out_ch {
        layers.push(conv(out_ch, 3, 1));
        layers.push(Layer::Relu);
        layers.push(conv(out_ch, 3, 1));
        layers.push(Layer::ResidualAdd { depth: 4 });
        layers.push(Layer::Relu);
    } else {
        // Projection path: the shortcut is a 1×1 strided conv. In the
        // descriptor stack we account for it as an extra conv layer; the
        // add is omitted because the two paths fork (counting-wise the
        // projection conv carries the parameters and MACs).
        layers.push(conv(out_ch, 3, stride));
        layers.push(Layer::Relu);
        layers.push(conv(out_ch, 3, 1));
        layers.push(Layer::Relu);
        layers.push(Layer::Conv2d {
            out_channels: out_ch,
            kernel: 1,
            stride: 1,
            padding: 0,
            groups: 1,
        });
        layers.push(Layer::Relu);
    }
    out_ch
}

/// EfficientNet-B0 tiny: MBConv stack at 48×48 input, width 9, expansion
/// factor 4 (≈95.4 k params, ≈3.22 M MACs).
pub fn efficientnet_b0_tiny() -> Model {
    let w = 9;
    let mut layers = vec![conv(w, 3, 2), Layer::Relu];
    let mut ch = w;
    // (out-multiple, repeats, first-stride, kernel)
    for &(mult, repeats, stride, kernel) in &[
        (1usize, 1usize, 1usize, 3usize),
        (2, 2, 2, 5),
        (4, 2, 2, 3),
        (8, 2, 2, 3),
    ] {
        for r in 0..repeats {
            let s = if r == 0 { stride } else { 1 };
            ch = mbconv(&mut layers, ch, w * mult, 4, kernel, s);
        }
    }
    layers.push(pointwise(w * 12));
    layers.push(Layer::Relu);
    layers.push(Layer::GlobalAvgPool);
    layers.push(Layer::Linear { out_features: 10 });
    Model::new("EfficientNet-B0-tiny", (3, 48, 48), layers).expect("zoo model must be well-formed")
}

/// MobileNetV2 tiny: inverted residuals at 20×20 input, width 11,
/// expansion 3 (≈101.9 k params, ≈2.45 M MACs).
pub fn mobilenet_v2_tiny() -> Model {
    let w = 11;
    let mut layers = vec![conv(w, 3, 1), Layer::Relu];
    let mut ch = w;
    for &(mult, repeats, stride) in &[(1usize, 1usize, 1usize), (2, 2, 2), (4, 2, 2), (8, 2, 2)] {
        for r in 0..repeats {
            let s = if r == 0 { stride } else { 1 };
            ch = mbconv(&mut layers, ch, w * mult, 3, 3, s);
        }
    }
    layers.push(pointwise(w * 8));
    layers.push(Layer::Relu);
    layers.push(Layer::GlobalAvgPool);
    layers.push(Layer::Linear { out_features: 10 });
    Model::new("MobileNetV2-tiny", (3, 20, 20), layers).expect("zoo model must be well-formed")
}

/// ResNet-18 tiny: basic residual blocks at 32×32 input, width 17,
/// stage plan (2, 1, 3) (≈259.6 k params, ≈30.06 M MACs).
pub fn resnet18_tiny() -> Model {
    let w = 17;
    let mut layers = vec![conv(w, 3, 1), Layer::Relu];
    let mut ch = w;
    for &(mult, repeats, stride) in &[(1usize, 2usize, 1usize), (2, 1, 2), (4, 3, 2)] {
        for r in 0..repeats {
            let s = if r == 0 { stride } else { 1 };
            ch = basic_block(&mut layers, ch, w * mult, s);
        }
    }
    layers.push(Layer::GlobalAvgPool);
    layers.push(Layer::Linear { out_features: 10 });
    Model::new("ResNet-18-tiny", (3, 32, 32), layers).expect("zoo model must be well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pct_err(actual: f64, target: f64) -> f64 {
        (actual - target).abs() / target * 100.0
    }

    #[test]
    fn efficientnet_matches_table_iv() {
        let m = efficientnet_b0_tiny();
        let spec = TinyMlModel::EfficientNetB0.spec();
        assert!(
            pct_err(m.total_params() as f64, spec.params as f64) < 5.0,
            "params {} vs {}",
            m.total_params(),
            spec.params
        );
        assert!(
            pct_err(m.total_macs() as f64, spec.macs as f64) < 5.0,
            "macs {} vs {}",
            m.total_macs(),
            spec.macs
        );
    }

    #[test]
    fn mobilenet_matches_table_iv() {
        let m = mobilenet_v2_tiny();
        let spec = TinyMlModel::MobileNetV2.spec();
        assert!(
            pct_err(m.total_params() as f64, spec.params as f64) < 5.0,
            "params {} vs {}",
            m.total_params(),
            spec.params
        );
        assert!(
            pct_err(m.total_macs() as f64, spec.macs as f64) < 5.0,
            "macs {} vs {}",
            m.total_macs(),
            spec.macs
        );
    }

    #[test]
    fn resnet_matches_table_iv() {
        let m = resnet18_tiny();
        let spec = TinyMlModel::ResNet18.spec();
        assert!(
            pct_err(m.total_params() as f64, spec.params as f64) < 5.0,
            "params {} vs {}",
            m.total_params(),
            spec.params
        );
        assert!(
            pct_err(m.total_macs() as f64, spec.macs as f64) < 5.0,
            "macs {} vs {}",
            m.total_macs(),
            spec.macs
        );
    }

    #[test]
    fn specs_are_table_iv_exact() {
        let specs: Vec<_> = TinyMlModel::ALL.iter().map(|m| m.spec()).collect();
        assert_eq!(specs[0].params, 95_000);
        assert_eq!(specs[1].macs, 2_528_000);
        assert_eq!(specs[2].pim_op_ratio, 0.75);
        // Derived quantities.
        assert_eq!(specs[0].pim_macs(), 2_758_250);
        assert!(
            specs[2].reuse_factor() > 80.0,
            "ResNet reuses weights heavily"
        );
    }

    #[test]
    fn all_models_build_and_classify_to_10() {
        for m in TinyMlModel::ALL {
            let model = m.build();
            assert_eq!(model.output_shape(), (10, 1, 1), "{m}");
            assert!(model.pim_ratio() > 0.5, "{m} should be MAC-dominated");
        }
    }

    #[test]
    fn display() {
        assert_eq!(TinyMlModel::ResNet18.to_string(), "ResNet-18");
        assert!(TinyMlModel::EfficientNetB0
            .spec()
            .to_string()
            .contains("95k"));
    }
}
