//! # hhpim-nn — TinyML model substrate
//!
//! The paper's benchmarks are INT8-quantized, pruned TinyML models
//! (Table IV). This crate provides everything needed to both *account*
//! for and *execute* such models:
//!
//! * [`Layer`] / [`Model`] — layer descriptors with shape inference,
//!   parameter/MAC counting, host-vs-PIM operation split and structured
//!   pruning,
//! * [`zoo`] — tiny EfficientNet-B0 / MobileNetV2 / ResNet-18 variants
//!   whose realized counts land within a few percent of Table IV, plus
//!   [`zoo::ModelSpec`] carrying the published numbers,
//! * [`QuantParams`] — symmetric INT8 quantization,
//! * [`QuantizedModel`] — a bit-exact integer-only executor used as the
//!   reference for PIM functional verification,
//! * [`Tensor`] — minimal CHW tensors.
//!
//! # Examples
//!
//! ```
//! use hhpim_nn::zoo::TinyMlModel;
//! let spec = TinyMlModel::EfficientNetB0.spec();
//! assert_eq!(spec.params, 95_000);
//! let model = TinyMlModel::EfficientNetB0.build();
//! // The constructed tiny variant tracks the published numbers.
//! let err = (model.total_macs() as f64 - spec.macs as f64).abs() / spec.macs as f64;
//! assert!(err < 0.05);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exec;
pub mod layer;
pub mod model;
pub mod quant;
pub mod tensor;
pub mod zoo;

pub use exec::{LayerWeights, QuantizedModel};
pub use layer::{Layer, Shape, ShapeError};
pub use model::{LayerInfo, Model};
pub use quant::QuantParams;
pub use tensor::Tensor;
pub use zoo::{ModelSpec, TinyMlModel};
