//! Minimal dense tensors in CHW layout.
//!
//! The functional INT8 executor only needs rank-1 and rank-3 tensors
//! with contiguous storage; this module provides exactly that, with
//! checked indexing and no external dependencies.

use core::fmt;

/// A dense tensor in `(channels, height, width)` layout.
///
/// Rank-1 data (e.g. classifier logits) uses shape `(c, 1, 1)`.
///
/// # Examples
///
/// ```
/// use hhpim_nn::Tensor;
/// let mut t = Tensor::zeros(2, 2, 2);
/// *t.at_mut(1, 0, 1) = 7i8;
/// assert_eq!(*t.at(1, 0, 1), 7);
/// assert_eq!(t.len(), 8);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tensor<T> {
    channels: usize,
    height: usize,
    width: usize,
    data: Vec<T>,
}

impl<T: Copy + Default> Tensor<T> {
    /// Creates a zero-filled tensor.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn zeros(channels: usize, height: usize, width: usize) -> Self {
        assert!(
            channels > 0 && height > 0 && width > 0,
            "tensor dims must be non-zero"
        );
        Tensor {
            channels,
            height,
            width,
            data: vec![T::default(); channels * height * width],
        }
    }

    /// Creates a tensor from existing data in CHW order.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != channels * height * width`.
    pub fn from_vec(channels: usize, height: usize, width: usize, data: Vec<T>) -> Self {
        assert_eq!(
            data.len(),
            channels * height * width,
            "data length does not match shape"
        );
        assert!(
            channels > 0 && height > 0 && width > 0,
            "tensor dims must be non-zero"
        );
        Tensor {
            channels,
            height,
            width,
            data,
        }
    }

    /// Shape as `(channels, height, width)`.
    pub fn shape(&self) -> (usize, usize, usize) {
        (self.channels, self.height, self.width)
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Spatial height.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Spatial width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements (never true).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat view of the data in CHW order.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable flat view of the data in CHW order.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    #[inline]
    fn offset(&self, c: usize, y: usize, x: usize) -> usize {
        debug_assert!(c < self.channels && y < self.height && x < self.width);
        (c * self.height + y) * self.width + x
    }

    /// Checked element access.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds.
    pub fn at(&self, c: usize, y: usize, x: usize) -> &T {
        assert!(
            c < self.channels && y < self.height && x < self.width,
            "index out of bounds"
        );
        &self.data[self.offset(c, y, x)]
    }

    /// Checked mutable element access.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds.
    pub fn at_mut(&mut self, c: usize, y: usize, x: usize) -> &mut T {
        assert!(
            c < self.channels && y < self.height && x < self.width,
            "index out of bounds"
        );
        let off = self.offset(c, y, x);
        &mut self.data[off]
    }

    /// Element access with zero padding outside spatial bounds (used by
    /// convolutions; channel index must still be valid).
    ///
    /// # Panics
    ///
    /// Panics if `c >= channels`.
    pub fn at_padded(&self, c: usize, y: isize, x: isize) -> T {
        assert!(c < self.channels, "channel out of bounds");
        if y < 0 || x < 0 || y as usize >= self.height || x as usize >= self.width {
            T::default()
        } else {
            self.data[self.offset(c, y as usize, x as usize)]
        }
    }
}

impl<T: Copy + Default + fmt::Display> fmt::Display for Tensor<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Tensor({}x{}x{})",
            self.channels, self.height, self.width
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_is_chw() {
        let t = Tensor::from_vec(2, 2, 3, (0..12i32).collect());
        assert_eq!(*t.at(0, 0, 0), 0);
        assert_eq!(*t.at(0, 1, 2), 5);
        assert_eq!(*t.at(1, 0, 0), 6);
        assert_eq!(*t.at(1, 1, 2), 11);
    }

    #[test]
    fn padded_access() {
        let t = Tensor::from_vec(1, 2, 2, vec![1i8, 2, 3, 4]);
        assert_eq!(t.at_padded(0, -1, 0), 0);
        assert_eq!(t.at_padded(0, 0, -1), 0);
        assert_eq!(t.at_padded(0, 2, 0), 0);
        assert_eq!(t.at_padded(0, 1, 1), 4);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn checked_access_panics() {
        let t: Tensor<i8> = Tensor::zeros(1, 1, 1);
        t.at(0, 0, 1);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn shape_mismatch_panics() {
        Tensor::from_vec(2, 2, 2, vec![0i8; 7]);
    }

    #[test]
    fn mutation() {
        let mut t = Tensor::zeros(1, 1, 4);
        t.as_mut_slice()[2] = 9i32;
        *t.at_mut(0, 0, 3) = 5;
        assert_eq!(t.as_slice(), &[0, 0, 9, 5]);
    }

    #[test]
    fn display() {
        let t: Tensor<i8> = Tensor::zeros(3, 8, 8);
        assert_eq!(t.to_string(), "Tensor(3x8x8)");
    }
}
