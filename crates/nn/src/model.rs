//! Whole-model descriptors: resolved layer stacks with aggregate
//! parameter/MAC/PIM-ratio accounting, plus structured pruning.

use crate::layer::{Layer, Shape, ShapeError};
use core::fmt;

/// Per-layer resolved information.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayerInfo {
    /// The layer descriptor.
    pub layer: Layer,
    /// Its input shape.
    pub input: Shape,
    /// Its output shape.
    pub output: Shape,
    /// Trainable parameters.
    pub params: usize,
    /// MAC operations per inference.
    pub macs: u64,
    /// Host (non-PIM) scalar operations per inference.
    pub host_ops: u64,
}

/// A model: a named, shape-resolved layer stack with an optional
/// structured-pruning factor.
///
/// # Examples
///
/// ```
/// use hhpim_nn::{Model, layer};
/// let model = Model::new("toy", (3, 8, 8), vec![
///     layer::conv(8, 3, 1),
///     hhpim_nn::Layer::Relu,
///     hhpim_nn::Layer::GlobalAvgPool,
///     hhpim_nn::Layer::Linear { out_features: 10 },
/// ]).unwrap();
/// assert!(model.total_params() > 0);
/// assert!(model.pim_ratio() > 0.5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Model {
    name: String,
    input: Shape,
    infos: Vec<LayerInfo>,
    sparsity: f64,
}

impl Model {
    /// Builds a model, resolving every layer's shapes.
    ///
    /// # Errors
    ///
    /// Returns the first [`ShapeError`] encountered, with its layer
    /// index, if the stack is inconsistent.
    pub fn new(
        name: impl Into<String>,
        input: Shape,
        layers: Vec<Layer>,
    ) -> Result<Self, (usize, ShapeError)> {
        let mut infos: Vec<LayerInfo> = Vec::with_capacity(layers.len());
        let mut shape = input;
        for (i, layer) in layers.into_iter().enumerate() {
            let output = layer.output_shape(shape).map_err(|e| (i, e))?;
            if let Layer::ResidualAdd { depth } = layer {
                // The residual source is the output `depth` layers back
                // (or the model input when the add sits exactly `depth`
                // layers into the stack).
                let source = if depth == 0 || depth > i + 1 {
                    None
                } else if depth == i + 1 {
                    Some(input)
                } else {
                    Some(infos[i - depth].output)
                };
                match source {
                    Some(s) if s == shape => {}
                    Some(s) => {
                        return Err((
                            i,
                            ShapeError::ResidualMismatch {
                                expected: shape,
                                found: s,
                            },
                        ))
                    }
                    None => {
                        return Err((
                            i,
                            ShapeError::ResidualMismatch {
                                expected: shape,
                                found: (0, 0, 0),
                            },
                        ))
                    }
                }
            }
            infos.push(LayerInfo {
                layer,
                input: shape,
                output,
                params: layer.params(shape),
                macs: layer.macs(shape),
                host_ops: layer.host_ops(shape),
            });
            shape = output;
        }
        Ok(Model {
            name: name.into(),
            input,
            infos,
            sparsity: 0.0,
        })
    }

    /// Applies structured pruning: a fraction `sparsity` of weights (and
    /// the MACs that consume them) is removed from every conv/linear
    /// layer, as in the "INT8 Quantized & Pruned" models of Table IV.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= sparsity < 1.0`.
    pub fn with_pruning(mut self, sparsity: f64) -> Self {
        assert!((0.0..1.0).contains(&sparsity), "sparsity must be in [0, 1)");
        self.sparsity = sparsity;
        self
    }

    /// The model's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Input shape.
    pub fn input_shape(&self) -> Shape {
        self.input
    }

    /// Output shape of the final layer.
    pub fn output_shape(&self) -> Shape {
        self.infos.last().map(|i| i.output).unwrap_or(self.input)
    }

    /// Pruning sparsity in effect.
    pub fn sparsity(&self) -> f64 {
        self.sparsity
    }

    /// Resolved per-layer information (pre-pruning numbers).
    pub fn layers(&self) -> &[LayerInfo] {
        &self.infos
    }

    fn keep(&self) -> f64 {
        1.0 - self.sparsity
    }

    /// Total trainable parameters after pruning.
    pub fn total_params(&self) -> usize {
        let raw: usize = self.infos.iter().map(|i| i.params).sum();
        (raw as f64 * self.keep()).round() as usize
    }

    /// Total MACs per inference after pruning.
    pub fn total_macs(&self) -> u64 {
        let raw: u64 = self.infos.iter().map(|i| i.macs).sum();
        (raw as f64 * self.keep()).round() as u64
    }

    /// Total host (non-PIM) scalar operations per inference.
    pub fn total_host_ops(&self) -> u64 {
        self.infos.iter().map(|i| i.host_ops).sum()
    }

    /// Fraction of operations that execute on the PIM
    /// (`macs / (macs + host_ops)`), the quantity Table IV reports.
    pub fn pim_ratio(&self) -> f64 {
        let macs = self.total_macs() as f64;
        let host = self.total_host_ops() as f64;
        if macs + host == 0.0 {
            0.0
        } else {
            macs / (macs + host)
        }
    }

    /// Weight footprint in bytes (INT8: one byte per parameter).
    pub fn weight_bytes(&self) -> usize {
        self.total_params()
    }
}

impl fmt::Display for Model {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}: input {:?}, {} layers, {} params, {} MACs, PIM ratio {:.1}%",
            self.name,
            self.input,
            self.infos.len(),
            self.total_params(),
            self.total_macs(),
            self.pim_ratio() * 100.0
        )?;
        for (i, info) in self.infos.iter().enumerate() {
            writeln!(
                f,
                "  [{i:2}] {:<32} {:?} -> {:?}  params={} macs={}",
                info.layer.to_string(),
                info.input,
                info.output,
                info.params,
                info.macs
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{conv, pointwise};

    fn toy() -> Model {
        Model::new(
            "toy",
            (3, 8, 8),
            vec![
                conv(8, 3, 1),
                Layer::Relu,
                Layer::MaxPool {
                    kernel: 2,
                    stride: 2,
                },
                pointwise(16),
                Layer::GlobalAvgPool,
                Layer::Linear { out_features: 10 },
            ],
        )
        .unwrap()
    }

    #[test]
    fn shapes_resolve_sequentially() {
        let m = toy();
        let shapes: Vec<_> = m.layers().iter().map(|i| i.output).collect();
        assert_eq!(
            shapes,
            vec![
                (8, 8, 8),
                (8, 8, 8),
                (8, 4, 4),
                (16, 4, 4),
                (16, 1, 1),
                (10, 1, 1)
            ]
        );
        assert_eq!(m.output_shape(), (10, 1, 1));
    }

    #[test]
    fn totals_sum_layers() {
        let m = toy();
        let expect_params = (8 * 3 * 9 + 8) + (16 * 8 + 16) + (10 * 16 + 10);
        assert_eq!(m.total_params(), expect_params);
        assert!(m.total_macs() > 0);
        assert!(m.total_host_ops() > 0);
        assert!(m.pim_ratio() > 0.0 && m.pim_ratio() < 1.0);
    }

    #[test]
    fn pruning_scales_counts() {
        let dense = toy();
        let pruned = toy().with_pruning(0.5);
        assert_eq!(
            pruned.total_params(),
            (dense.total_params() as f64 * 0.5).round() as usize
        );
        assert_eq!(
            pruned.total_macs(),
            (dense.total_macs() as f64 * 0.5).round() as u64
        );
        // Host ops are unaffected by weight pruning.
        assert_eq!(pruned.total_host_ops(), dense.total_host_ops());
    }

    #[test]
    fn bad_stack_reports_layer_index() {
        let err = Model::new(
            "bad",
            (3, 4, 4),
            vec![
                conv(8, 3, 1),
                Layer::Conv2d {
                    out_channels: 4,
                    kernel: 9,
                    stride: 1,
                    padding: 0,
                    groups: 1,
                },
            ],
        )
        .unwrap_err();
        assert_eq!(err.0, 1);
    }

    #[test]
    #[should_panic(expected = "sparsity")]
    fn full_sparsity_rejected() {
        toy().with_pruning(1.0);
    }

    #[test]
    fn weight_bytes_equals_params_for_int8() {
        let m = toy();
        assert_eq!(m.weight_bytes(), m.total_params());
    }

    #[test]
    fn display_contains_layers() {
        let s = toy().to_string();
        assert!(s.contains("toy"));
        assert!(s.contains("conv3x3"));
        assert!(s.contains("linear -> 10"));
    }
}
