//! Layer descriptors with shape inference, parameter and MAC counting.
//!
//! The paper characterizes its benchmark models by `#Param`, `#MAC` and
//! the fraction of PIM-offloadable operations (Table IV); these
//! descriptors compute all three from first principles.

use core::fmt;

/// Spatial shape `(channels, height, width)`.
pub type Shape = (usize, usize, usize);

/// A neural-network layer descriptor (weights not included; see
/// [`crate::exec`] for executable, weighted layers).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layer {
    /// 2-D convolution; `groups == in_channels` makes it depthwise.
    Conv2d {
        /// Output channel count.
        out_channels: usize,
        /// Square kernel size.
        kernel: usize,
        /// Stride in both dimensions.
        stride: usize,
        /// Zero padding on all sides.
        padding: usize,
        /// Channel groups (1 = dense, `in_channels` = depthwise).
        groups: usize,
    },
    /// Fully connected layer over the flattened input.
    Linear {
        /// Output feature count.
        out_features: usize,
    },
    /// Average pooling.
    AvgPool {
        /// Square window.
        kernel: usize,
        /// Stride.
        stride: usize,
    },
    /// Max pooling.
    MaxPool {
        /// Square window.
        kernel: usize,
        /// Stride.
        stride: usize,
    },
    /// Global average pooling to 1×1.
    GlobalAvgPool,
    /// ReLU activation (no parameters, no MACs).
    Relu,
    /// Residual add of the input of the `depth`-layers-ago output
    /// (element-wise; both shapes must match at execution time).
    ResidualAdd {
        /// How many layers back the residual source sits.
        depth: usize,
    },
}

/// Errors from shape inference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShapeError {
    /// Kernel/stride combination does not fit the input.
    KernelTooLarge {
        /// Input shape.
        input: Shape,
        /// Kernel size.
        kernel: usize,
    },
    /// `in_channels` is not divisible by `groups`.
    BadGroups {
        /// Input channels.
        in_channels: usize,
        /// Requested groups.
        groups: usize,
    },
    /// `out_channels` is not divisible by `groups`.
    BadOutGroups {
        /// Output channels.
        out_channels: usize,
        /// Requested groups.
        groups: usize,
    },
    /// A residual add whose source shape differs from the current shape,
    /// or whose depth reaches before the model input.
    ResidualMismatch {
        /// Shape expected at the add (current activation shape).
        expected: Shape,
        /// Shape found at the residual source.
        found: Shape,
    },
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShapeError::KernelTooLarge { input, kernel } => {
                write!(f, "kernel {kernel} too large for input {input:?}")
            }
            ShapeError::BadGroups {
                in_channels,
                groups,
            } => {
                write!(
                    f,
                    "{in_channels} input channels not divisible by {groups} groups"
                )
            }
            ShapeError::BadOutGroups {
                out_channels,
                groups,
            } => {
                write!(
                    f,
                    "{out_channels} output channels not divisible by {groups} groups"
                )
            }
            ShapeError::ResidualMismatch { expected, found } => {
                write!(
                    f,
                    "residual source shape {found:?} does not match {expected:?}"
                )
            }
        }
    }
}

impl std::error::Error for ShapeError {}

fn conv_out(extent: usize, kernel: usize, stride: usize, padding: usize) -> Option<usize> {
    let padded = extent + 2 * padding;
    if padded < kernel {
        return None;
    }
    Some((padded - kernel) / stride + 1)
}

impl Layer {
    /// Output shape for a given input shape.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] when the layer cannot apply to `input`.
    pub fn output_shape(&self, input: Shape) -> Result<Shape, ShapeError> {
        let (c, h, w) = input;
        match *self {
            Layer::Conv2d {
                out_channels,
                kernel,
                stride,
                padding,
                groups,
            } => {
                if c % groups != 0 {
                    return Err(ShapeError::BadGroups {
                        in_channels: c,
                        groups,
                    });
                }
                if out_channels % groups != 0 {
                    return Err(ShapeError::BadOutGroups {
                        out_channels,
                        groups,
                    });
                }
                let oh = conv_out(h, kernel, stride, padding)
                    .ok_or(ShapeError::KernelTooLarge { input, kernel })?;
                let ow = conv_out(w, kernel, stride, padding)
                    .ok_or(ShapeError::KernelTooLarge { input, kernel })?;
                Ok((out_channels, oh, ow))
            }
            Layer::Linear { out_features } => Ok((out_features, 1, 1)),
            Layer::AvgPool { kernel, stride } | Layer::MaxPool { kernel, stride } => {
                let oh = conv_out(h, kernel, stride, 0)
                    .ok_or(ShapeError::KernelTooLarge { input, kernel })?;
                let ow = conv_out(w, kernel, stride, 0)
                    .ok_or(ShapeError::KernelTooLarge { input, kernel })?;
                Ok((c, oh, ow))
            }
            Layer::GlobalAvgPool => Ok((c, 1, 1)),
            Layer::Relu | Layer::ResidualAdd { .. } => Ok(input),
        }
    }

    /// Number of trainable weights (biases included).
    pub fn params(&self, input: Shape) -> usize {
        let (c, h, w) = input;
        match *self {
            Layer::Conv2d {
                out_channels,
                kernel,
                groups,
                ..
            } => out_channels * (c / groups.max(1)) * kernel * kernel + out_channels,
            Layer::Linear { out_features } => out_features * (c * h * w) + out_features,
            _ => 0,
        }
    }

    /// Multiply-accumulate count for one inference on `input`.
    pub fn macs(&self, input: Shape) -> u64 {
        let (c, _, _) = input;
        match *self {
            Layer::Conv2d { kernel, groups, .. } => {
                let Ok((oc, oh, ow)) = self.output_shape(input) else {
                    return 0;
                };
                (oc * oh * ow) as u64 * ((c / groups.max(1)) * kernel * kernel) as u64
            }
            Layer::Linear { out_features } => {
                let (ci, hi, wi) = input;
                (out_features * ci * hi * wi) as u64
            }
            _ => 0,
        }
    }

    /// Whether this layer's MACs run on the PIM (convs and linears do;
    /// pooling, activations and adds stay on the host core — this is
    /// what makes the PIM-operation ratios of Table IV less than 100 %).
    pub fn is_pim_layer(&self) -> bool {
        matches!(self, Layer::Conv2d { .. } | Layer::Linear { .. })
    }

    /// Non-MAC scalar operations executed on the host for this layer
    /// (comparisons, additions, averages). Used to compute the PIM
    /// operation ratio.
    pub fn host_ops(&self, input: Shape) -> u64 {
        let (c, h, w) = input;
        let elems = (c * h * w) as u64;
        match *self {
            Layer::Relu => elems,
            Layer::ResidualAdd { .. } => elems,
            Layer::AvgPool { kernel, .. } | Layer::MaxPool { kernel, .. } => {
                let Ok((oc, oh, ow)) = self.output_shape(input) else {
                    return 0;
                };
                (oc * oh * ow) as u64 * (kernel * kernel) as u64
            }
            Layer::GlobalAvgPool => elems,
            Layer::Conv2d { .. } | Layer::Linear { .. } => 0,
        }
    }
}

impl fmt::Display for Layer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Layer::Conv2d {
                out_channels,
                kernel,
                stride,
                padding,
                groups,
            } => write!(
                f,
                "conv{kernel}x{kernel} -> {out_channels} (s{stride} p{padding} g{groups})"
            ),
            Layer::Linear { out_features } => write!(f, "linear -> {out_features}"),
            Layer::AvgPool { kernel, stride } => write!(f, "avgpool{kernel} s{stride}"),
            Layer::MaxPool { kernel, stride } => write!(f, "maxpool{kernel} s{stride}"),
            Layer::GlobalAvgPool => write!(f, "gap"),
            Layer::Relu => write!(f, "relu"),
            Layer::ResidualAdd { depth } => write!(f, "add(skip {depth})"),
        }
    }
}

/// Convenience constructor for a dense (non-grouped) convolution with
/// same-style padding.
pub fn conv(out_channels: usize, kernel: usize, stride: usize) -> Layer {
    Layer::Conv2d {
        out_channels,
        kernel,
        stride,
        padding: kernel / 2,
        groups: 1,
    }
}

/// Convenience constructor for a depthwise convolution (groups = input
/// channels, resolved at shape-inference time via `groups == 0` marker is
/// avoided; the caller provides the channel count).
pub fn depthwise(channels: usize, kernel: usize, stride: usize) -> Layer {
    Layer::Conv2d {
        out_channels: channels,
        kernel,
        stride,
        padding: kernel / 2,
        groups: channels,
    }
}

/// Convenience constructor for a 1×1 pointwise convolution.
pub fn pointwise(out_channels: usize) -> Layer {
    Layer::Conv2d {
        out_channels,
        kernel: 1,
        stride: 1,
        padding: 0,
        groups: 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_shape_params_macs() {
        let l = conv(16, 3, 1); // 3x3, pad 1
        let input = (3, 32, 32);
        assert_eq!(l.output_shape(input).unwrap(), (16, 32, 32));
        assert_eq!(l.params(input), 16 * 3 * 9 + 16);
        assert_eq!(l.macs(input), (16 * 32 * 32) as u64 * 27);
    }

    #[test]
    fn strided_conv_halves_spatial() {
        let l = conv(8, 3, 2);
        assert_eq!(l.output_shape((4, 32, 32)).unwrap(), (8, 16, 16));
    }

    #[test]
    fn depthwise_params_are_small() {
        let l = depthwise(32, 3, 1);
        let input = (32, 16, 16);
        assert_eq!(l.output_shape(input).unwrap(), (32, 16, 16));
        assert_eq!(l.params(input), 32 * 9 + 32);
        assert_eq!(l.macs(input), (32 * 16 * 16) as u64 * 9);
    }

    #[test]
    fn pointwise_is_1x1() {
        let l = pointwise(64);
        let input = (32, 8, 8);
        assert_eq!(l.output_shape(input).unwrap(), (64, 8, 8));
        assert_eq!(l.params(input), 64 * 32 + 64);
    }

    #[test]
    fn linear_flattens() {
        let l = Layer::Linear { out_features: 10 };
        let input = (64, 2, 2);
        assert_eq!(l.output_shape(input).unwrap(), (10, 1, 1));
        assert_eq!(l.params(input), 10 * 256 + 10);
        assert_eq!(l.macs(input), 2560);
    }

    #[test]
    fn pooling_shapes() {
        assert_eq!(
            Layer::MaxPool {
                kernel: 2,
                stride: 2
            }
            .output_shape((8, 16, 16))
            .unwrap(),
            (8, 8, 8)
        );
        assert_eq!(
            Layer::GlobalAvgPool.output_shape((8, 7, 7)).unwrap(),
            (8, 1, 1)
        );
    }

    #[test]
    fn activation_passthrough() {
        assert_eq!(Layer::Relu.output_shape((5, 4, 4)).unwrap(), (5, 4, 4));
        assert_eq!(Layer::Relu.params((5, 4, 4)), 0);
        assert_eq!(Layer::Relu.macs((5, 4, 4)), 0);
        assert_eq!(Layer::Relu.host_ops((5, 4, 4)), 80);
    }

    #[test]
    fn bad_groups_detected() {
        let l = Layer::Conv2d {
            out_channels: 8,
            kernel: 3,
            stride: 1,
            padding: 1,
            groups: 5,
        };
        assert_eq!(
            l.output_shape((16, 8, 8)),
            Err(ShapeError::BadGroups {
                in_channels: 16,
                groups: 5
            })
        );
    }

    #[test]
    fn kernel_too_large_detected() {
        let l = Layer::Conv2d {
            out_channels: 8,
            kernel: 9,
            stride: 1,
            padding: 0,
            groups: 1,
        };
        assert!(matches!(
            l.output_shape((3, 4, 4)),
            Err(ShapeError::KernelTooLarge { .. })
        ));
    }

    #[test]
    fn pim_layer_classification() {
        assert!(conv(8, 3, 1).is_pim_layer());
        assert!(Layer::Linear { out_features: 10 }.is_pim_layer());
        assert!(!Layer::Relu.is_pim_layer());
        assert!(!Layer::GlobalAvgPool.is_pim_layer());
    }

    #[test]
    fn display_forms() {
        assert_eq!(conv(16, 3, 1).to_string(), "conv3x3 -> 16 (s1 p1 g1)");
        assert_eq!(Layer::ResidualAdd { depth: 3 }.to_string(), "add(skip 3)");
    }
}
