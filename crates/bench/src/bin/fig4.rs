//! Prints the Fig. 4 workload scenarios.
use hhpim_workload::ScenarioParams;
fn main() {
    println!("{}", hhpim_bench::fig4_text(ScenarioParams::default()));
}
