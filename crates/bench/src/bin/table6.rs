//! Runs the Table VI experiment (Cases 3-6 savings).
use hhpim::OptimizerConfig;
use hhpim_workload::ScenarioParams;

fn main() {
    let mut scenario_params = ScenarioParams::default();
    let mut optimizer = OptimizerConfig::default();
    if std::env::args().any(|a| a == "--quick") {
        scenario_params.slices = 12;
        optimizer.time_buckets = 500;
    }
    let matrix =
        hhpim_bench::savings(scenario_params, optimizer).expect("all models fit all architectures");
    println!("{}", hhpim_bench::table6_text(&matrix));
}
