//! Runs the Table VI experiment (Cases 3-6 savings).
use hhpim::{ExperimentConfig, OptimizerConfig};
use hhpim_workload::ScenarioParams;

fn main() {
    let mut config = ExperimentConfig::default();
    if std::env::args().any(|a| a == "--quick") {
        config.scenario_params = ScenarioParams {
            slices: 12,
            ..ScenarioParams::default()
        };
        config.optimizer = OptimizerConfig {
            time_buckets: 500,
            ..OptimizerConfig::default()
        };
    }
    let matrix = hhpim_bench::savings(&config).expect("all models fit all architectures");
    println!("{}", hhpim_bench::table6_text(&matrix));
}
