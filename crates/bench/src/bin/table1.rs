//! Prints the paper's Table1 reproduction.
fn main() {
    println!("{}", hhpim_bench::table1_text());
}
