//! Ablation: supply-voltage sweep using the NVSim-like interpolation
//! between the paper's two published operating points (1.2 V HP,
//! 0.8 V LP). Shows how each memory technology's access latency, access
//! energy and leakage move across the Vdd range — the design space the
//! paper's HP/LP split is drawn from.

use hhpim_bench::render_table;
use hhpim_mem::{tech_at_vdd, MemKind};

fn main() {
    let mut rows = Vec::new();
    for kind in [MemKind::Sram, MemKind::Mram] {
        for step in 0..=8 {
            let vdd = 0.8 + 0.05 * step as f64;
            let t = tech_at_vdd(kind, vdd);
            rows.push(vec![
                format!("{kind}"),
                format!("{vdd:.2}"),
                format!("{:.2}", t.timing.read.as_ns_f64()),
                format!("{:.2}", t.timing.write.as_ns_f64()),
                format!("{:.1}", t.read_energy().as_pj()),
                format!("{:.3}", t.power.static_power.as_mw()),
            ]);
        }
    }
    println!("Supply-voltage design-space sweep (interpolated between the paper's anchors).\n");
    println!(
        "{}",
        render_table(
            &[
                "Tech",
                "Vdd (V)",
                "Read (ns)",
                "Write (ns)",
                "Read E (pJ)",
                "Static (mW/64kB)"
            ],
            &rows
        )
    );
    println!("Anchors at 0.80 V and 1.20 V reproduce Tables III and V exactly.");
}
