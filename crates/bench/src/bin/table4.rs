//! Prints the paper's Table4 reproduction.
fn main() {
    println!("{}", hhpim_bench::table4_text());
}
