//! CI bench gate: measures a fixed set of performance and energy
//! numbers into a machine-readable JSON file and compares two such
//! files, failing (exit code 1) on regression.
//!
//! ```text
//! bench_gate measure --out BENCH_ci.json [--samples N]
//! bench_gate compare BENCH_baseline.json BENCH_ci.json [--threshold 0.20]
//! bench_gate inject --input BENCH_ci.json --out BENCH_bad.json --scale 1.5
//! ```
//!
//! The file has three sections:
//!
//! * `calibration_ns` — wall time of a fixed integer busy-loop. Timing
//!   comparisons are normalized by the calibration ratio, so a
//!   baseline recorded on one machine remains meaningful on another.
//! * `benches` — mean wall time (ns) of each gate benchmark. A bench
//!   regresses when it exceeds `baseline × (1 + threshold) ×
//!   calibration_ratio`.
//! * `energies` — total modelled energy (pJ) per scenario. These are
//!   deterministic model outputs; they fail on >2 % drift in either
//!   direction (an unexplained energy change is a model regression
//!   even when it "improves").
//!
//! `inject` exists so CI can prove the gate trips: it scales every
//! bench entry and perturbs every energy entry, and the workflow
//! asserts `compare` fails against the doctored file. To refresh the
//! checked-in baseline after an intentional change, run `measure` on
//! the reference machine and commit the output (see `docs/ci.md`).

use hhpim::engine::Engine;
use hhpim::server::{QosClass, Server, ShedOnPressure, TenantSpec};
use hhpim::session::{ScenarioSource, SessionBuilder};
use hhpim::{
    run_paced, AllocationLut, Architecture, ArtifactStore, BackendKind, CycleBackend, ExecMode,
    ExecutionBackend, OptimizerConfig, Pacer, PlacementKey, PlacementOptimizer, PlacementStore,
    Processor, TrafficConfig, TrafficEngine,
};
use hhpim_isa::{MemSelect, ModuleMask, PimInstruction};
use hhpim_nn::TinyMlModel;
use hhpim_pim::{MachineConfig, PimMachine};
use hhpim_sim::SimDuration;
use hhpim_workload::{LoadTrace, Scenario, ScenarioParams};
use std::collections::BTreeMap;
use std::process::ExitCode;
use std::time::Instant;

/// Relative tolerance for the deterministic energy entries.
const ENERGY_TOLERANCE: f64 = 0.02;
/// Default timing regression threshold (the CI contract: >20 % fails).
const DEFAULT_THRESHOLD: f64 = 0.20;
/// Calibration ratios are clamped to this band: a slower machine
/// widens the gate proportionally (up to 4×), but a faster machine
/// never tightens it below the recorded baseline — tightening turns
/// ordinary scheduler noise into spurious failures.
const CALIBRATION_CLAMP: (f64, f64) = (1.0, 4.0);
/// Absolute slack added to every timing limit: scheduler blips cost a
/// fixed amount of wall time regardless of how short the bench is, so
/// sub-millisecond benches get this on top of the relative threshold.
/// Negligible against the millisecond-scale gate benches.
const JITTER_ALLOWANCE_NS: f64 = 100_000.0;

#[derive(Debug, Clone, PartialEq, Default)]
struct GateFile {
    calibration_ns: f64,
    benches: BTreeMap<String, f64>,
    energies: BTreeMap<String, f64>,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("measure") => cmd_measure(&args[1..]),
        Some("compare") => cmd_compare(&args[1..]),
        Some("inject") => cmd_inject(&args[1..]),
        _ => {
            eprintln!(
                "usage: bench_gate measure --out FILE [--samples N]\n       \
                 bench_gate compare BASELINE CURRENT [--threshold F]\n       \
                 bench_gate inject --input FILE --out FILE --scale F"
            );
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("bench_gate: {e}");
            ExitCode::FAILURE
        }
    }
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

// ---------------------------------------------------------------- measure

fn cmd_measure(args: &[String]) -> Result<(), String> {
    let out = flag(args, "--out").ok_or("measure requires --out FILE")?;
    let samples: usize = flag(args, "--samples")
        .map(|s| s.parse().map_err(|_| "--samples must be an integer"))
        .transpose()?
        .unwrap_or(7);
    let file = measure(samples);
    std::fs::write(&out, format_json(&file)).map_err(|e| format!("writing {out}: {e}"))?;
    println!(
        "wrote {out} ({} benches, {} energies)",
        file.benches.len(),
        file.energies.len()
    );
    Ok(())
}

fn measure(samples: usize) -> GateFile {
    let mut file = GateFile {
        calibration_ns: calibrate(),
        ..GateFile::default()
    };

    // dp_optimize: one Algorithm 1+2 solve at CI-friendly resolution.
    let dp_processor = Processor::new(Architecture::HhPim, TinyMlModel::MobileNetV2).unwrap();
    let opt_config = OptimizerConfig {
        time_buckets: 500,
        ..OptimizerConfig::default()
    };
    // Just above the peak: tight enough that the relaxed-optimum
    // shortcut cannot answer, so the full Algorithm 1+2 DP runs.
    let t_mid = dp_processor.cost().peak_task_time().mul_f64(1.05);
    file.benches.insert(
        "dp_optimize_mobilenet".into(),
        bench(samples, || {
            let opt = PlacementOptimizer::new(dp_processor.cost(), opt_config);
            opt.optimize(t_mid)
        }),
    );

    // analytic_trace: the closed-form runtime over the paper's
    // 50-slice trace, ×10 per iteration so one measurement is hundreds
    // of microseconds of work (scheduler jitter amortizes away).
    let trace50 = LoadTrace::generate(Scenario::PeriodicSpike, ScenarioParams::default());
    let mut analytic = SessionBuilder::new()
        .architecture(Architecture::HhPim)
        .model(TinyMlModel::MobileNetV2)
        .build_analytic()
        .unwrap();
    file.benches.insert(
        "analytic_trace_50_slices_x10".into(),
        bench(samples, || {
            for _ in 0..10 {
                std::hint::black_box(analytic.execute(&trace50).unwrap());
            }
        }),
    );

    // cycle_trace: the structural machine over a 6-slice trace with a
    // LUT-triggered re-placement (construction excluded).
    let trace6 = LoadTrace::generate(
        Scenario::PeriodicSpike,
        ScenarioParams {
            slices: 6,
            ..ScenarioParams::default()
        },
    );
    let mut cycle = SessionBuilder::new()
        .architecture(Architecture::HhPim)
        .model(TinyMlModel::MobileNetV2)
        .build_cycle()
        .unwrap();
    file.benches.insert(
        "cycle_trace_6_slices".into(),
        bench(samples, || cycle.execute(&trace6).unwrap()),
    );

    // cycle_trace_6_slices_object: the same 6-slice trace on the
    // interpretive object-hierarchy walk (`ExecMode::ObjectWalk`) —
    // the legacy path the timing graph replaced, kept measurable so
    // the gate self-test can assert the graph's speedup and a future
    // change can't silently swap the default back.
    let mut object_cycle =
        CycleBackend::new(Architecture::HhPim, TinyMlModel::MobileNetV2).unwrap();
    object_cycle.set_exec_mode(ExecMode::ObjectWalk);
    file.benches.insert(
        "cycle_trace_6_slices_object".into(),
        bench(samples, || object_cycle.execute(&trace6).unwrap()),
    );

    // timegraph_build: lowering the compiled MobileNetV2 program +
    // boot placement into the flat node arena, from scratch every
    // iteration (×10; `clear_graph` drops the cached programs so
    // `prepare_graph` pays the full lowering). This is the one-time
    // cost the replay path amortizes across every task and slice.
    let mut build_cycle = CycleBackend::new(Architecture::HhPim, TinyMlModel::MobileNetV2).unwrap();
    file.benches.insert(
        "timegraph_build".into(),
        bench(samples, || {
            for _ in 0..10 {
                build_cycle.clear_graph();
                std::hint::black_box(build_cycle.prepare_graph());
            }
        }),
    );

    // session_build_and_run: the facade's hot path — builder →
    // prepared policy (LUT DP solves) → analytic backend → one
    // 12-slice run, end to end.
    file.benches.insert(
        "session_build_and_run".into(),
        bench(samples, || {
            let mut session = SessionBuilder::new()
                .architecture(Architecture::HhPim)
                .model(TinyMlModel::MobileNetV2)
                .scenario(Scenario::PeriodicSpike)
                .scenario_params(ScenarioParams {
                    slices: 12,
                    ..ScenarioParams::default()
                })
                .build()
                .unwrap();
            std::hint::black_box(session.run().unwrap())
        }),
    );

    // lut_build_cold: the full §III-B allocation LUT (10 DP-solved
    // entries at CI resolution), built from scratch every iteration —
    // the cost the PlacementStore amortizes away.
    let lut_runtime = *dp_processor.runtime();
    file.benches.insert(
        "lut_build_cold".into(),
        bench(samples, || {
            let opt = PlacementOptimizer::new(dp_processor.cost(), opt_config);
            AllocationLut::build(&opt, lut_runtime.usable_slice(), lut_runtime.max_tasks)
        }),
    );

    // lut_store_warm: the memoized path — key construction, map
    // lookup and Arc clone on a warm PlacementStore, ×100 per
    // iteration so the sub-microsecond hit amortizes timer noise.
    let warm_store = PlacementStore::new();
    warm_store.lut(dp_processor.cost(), &lut_runtime, &opt_config);
    file.benches.insert(
        "lut_store_warm".into(),
        bench(samples, || {
            for _ in 0..100 {
                std::hint::black_box(warm_store.lut(
                    dp_processor.cost(),
                    &lut_runtime,
                    &opt_config,
                ));
            }
        }),
    );

    // sweep_all_parallel: the full 6×3 savings matrix fanned across 4
    // scoped threads sharing one store. The untimed warm-up iteration
    // populates the store, so the timed samples measure the warm
    // parallel sweep itself.
    let sweep_session = SessionBuilder::new()
        .scenario_params(ScenarioParams {
            slices: 12,
            ..ScenarioParams::default()
        })
        .optimizer(opt_config)
        .store(PlacementStore::shared())
        .threads(4)
        .build()
        .unwrap();
    file.benches.insert(
        "sweep_all_parallel".into(),
        bench(samples, || {
            std::hint::black_box(sweep_session.sweep_all().unwrap())
        }),
    );

    // artifact_save_load: one versioned-JSON LUT persistence round
    // trip — serialize + atomic write-rename, then read + full verify
    // ladder (format/version/key/checksum) + reconstruct. The LUT is
    // built once outside the timer; this measures the disk tier's
    // fixed per-artifact cost, not the DP.
    let artifact_dir =
        std::env::temp_dir().join(format!("hhpim_gate_artifacts_{}", std::process::id()));
    let artifact_store = ArtifactStore::new(&artifact_dir);
    let artifact_key = PlacementKey::for_lut(dp_processor.cost(), &lut_runtime, &opt_config);
    let artifact_lut = {
        let opt = PlacementOptimizer::new(dp_processor.cost(), opt_config);
        AllocationLut::build(&opt, lut_runtime.usable_slice(), lut_runtime.max_tasks)
    };
    file.benches.insert(
        "artifact_save_load".into(),
        bench(samples, || {
            artifact_store
                .save_lut(&artifact_key, &artifact_lut)
                .unwrap();
            std::hint::black_box(artifact_store.load_lut(&artifact_key).unwrap())
        }),
    );

    // sweep_all_disk_warm: the full 6×3 savings matrix on a fresh
    // in-memory store backed by a pre-warmed artifact dir — every LUT
    // comes off disk through the verify ladder, zero DP builds. This
    // is the cold-process/warm-dir path the sweep farm's second run
    // exercises.
    SessionBuilder::new()
        .scenario_params(ScenarioParams {
            slices: 12,
            ..ScenarioParams::default()
        })
        .optimizer(opt_config)
        .store(PlacementStore::shared())
        .artifact_dir(&artifact_dir)
        .build()
        .unwrap()
        .sweep_all()
        .unwrap();
    file.benches.insert(
        "sweep_all_disk_warm".into(),
        bench(samples, || {
            let session = SessionBuilder::new()
                .scenario_params(ScenarioParams {
                    slices: 12,
                    ..ScenarioParams::default()
                })
                .optimizer(opt_config)
                .store(PlacementStore::shared())
                .artifact_dir(&artifact_dir)
                .build()
                .unwrap();
            std::hint::black_box(session.sweep_all().unwrap())
        }),
    );
    let _ = std::fs::remove_dir_all(&artifact_dir);

    // engine_step_hot: the streaming engine's steady-state single-slice
    // step (submit + step on an already-open analytic stream), ×100 per
    // iteration; events are drained so the buffer never caps. This is
    // the per-slice cost of the online serving path.
    let mut step_engine = Engine::new(
        SessionBuilder::new()
            .architecture(Architecture::HhPim)
            .model(TinyMlModel::MobileNetV2)
            .build_analytic()
            .unwrap(),
    );
    file.benches.insert(
        "engine_step_hot".into(),
        bench(samples, || {
            for i in 0..100 {
                step_engine
                    .submit(if i % 2 == 0 { 1.0 } else { 0.1 })
                    .unwrap();
                step_engine.step().unwrap();
            }
            std::hint::black_box(step_engine.events().count())
        }),
    );

    // engine_submit_drain: one full streaming round trip — 12 slices
    // submitted, drained into a report, events consumed — on a reused
    // engine (drain resets it, so every iteration opens a fresh run).
    let mut drain_engine = Engine::new(
        SessionBuilder::new()
            .architecture(Architecture::HhPim)
            .model(TinyMlModel::MobileNetV2)
            .build_analytic()
            .unwrap(),
    );
    file.benches.insert(
        "engine_submit_drain".into(),
        bench(samples, || {
            for i in 0..12 {
                drain_engine
                    .submit(if i % 2 == 0 { 1.0 } else { 0.1 })
                    .unwrap();
            }
            let reports = drain_engine.drain().unwrap();
            drain_engine.events().count();
            std::hint::black_box(reports)
        }),
    );

    // engine_step_n_batch_64: the batched twin of engine_step_hot —
    // 64 equal-load slices submitted then executed by one
    // `Engine::step_n` call, which collapses the run into a single
    // `ExecutionBackend::step_n` drain (the amortized path behind
    // `drain`/`pump` and the server's DRR inner loop).
    let mut batch_engine = Engine::new(
        SessionBuilder::new()
            .architecture(Architecture::HhPim)
            .model(TinyMlModel::MobileNetV2)
            .build_analytic()
            .unwrap(),
    );
    file.benches.insert(
        "engine_step_n_batch_64".into(),
        bench(samples, || {
            for _ in 0..64 {
                batch_engine.submit(0.6).unwrap();
            }
            let executed = batch_engine.step_n(64).unwrap();
            assert_eq!(executed, 64);
            std::hint::black_box(batch_engine.events().count())
        }),
    );

    // server_steady_state: the serving layer's happy path — a
    // two-tenant server under AlwaysAdmit, DRR rounds to completion
    // (12 slices per tenant, analytic backends, warm shared store).
    // The single-tenant case is bit-identical to a session run, so
    // this entry is the scheduler's overhead made visible.
    let mut steady_server = Server::builder()
        .architecture(Architecture::HhPim)
        .store(PlacementStore::shared())
        .tenant(
            TenantSpec::new(
                "camera",
                TinyMlModel::MobileNetV2,
                ScenarioSource::new(
                    Scenario::PeriodicSpike,
                    ScenarioParams {
                        slices: 12,
                        ..ScenarioParams::default()
                    },
                ),
            )
            .qos(QosClass::default().with_priority(3).with_queue_cap(4)),
        )
        .tenant(
            TenantSpec::new(
                "keyword",
                TinyMlModel::MobileNetV2,
                ScenarioSource::new(
                    Scenario::LowConstant,
                    ScenarioParams {
                        slices: 12,
                        ..ScenarioParams::default()
                    },
                ),
            )
            .qos(QosClass::default().with_queue_cap(4)),
        )
        .build()
        .unwrap();
    file.benches.insert(
        "server_steady_state".into(),
        bench(samples, || {
            let report = steady_server.run().unwrap();
            steady_server.events().count();
            std::hint::black_box(report)
        }),
    );

    // server_admission_overload: the control path under pressure — an
    // unmeetable SLO forces ShedOnPressure through its full
    // miss-window / shed / defer machinery every round.
    let mut overload_server = Server::builder()
        .architecture(Architecture::HhPim)
        .store(PlacementStore::shared())
        .admission(ShedOnPressure::new().with_min_samples(2))
        .miss_window(4)
        .tenant(
            TenantSpec::new(
                "strict",
                TinyMlModel::MobileNetV2,
                ScenarioSource::new(
                    Scenario::HighConstant,
                    ScenarioParams {
                        slices: 12,
                        ..ScenarioParams::default()
                    },
                ),
            )
            .qos(
                QosClass::default()
                    .with_priority(3)
                    .with_queue_cap(2)
                    .with_deadline(SimDuration::ZERO)
                    .with_max_miss_rate(0.0),
            ),
        )
        .tenant(
            TenantSpec::new(
                "lax",
                TinyMlModel::MobileNetV2,
                ScenarioSource::new(
                    Scenario::HighConstant,
                    ScenarioParams {
                        slices: 12,
                        ..ScenarioParams::default()
                    },
                ),
            )
            .qos(
                QosClass::default()
                    .with_queue_cap(2)
                    .with_deadline(SimDuration::ZERO),
            ),
        )
        .build()
        .unwrap();
    file.benches.insert(
        "server_admission_overload".into(),
        bench(samples, || {
            let report = overload_server.run().unwrap();
            overload_server.events().count();
            std::hint::black_box(report)
        }),
    );

    // machine_mac_burst: raw ISA-path MAC dispatch on all 8 modules,
    // 200 bursts per iteration on a pre-built machine (ClearAcc
    // rewinds the activation pointer between bursts).
    let mut mac_machine = PimMachine::new(MachineConfig::default());
    for g in 0..8 {
        mac_machine
            .preload(g, MemSelect::Mram, 0, &[1u8; 128])
            .unwrap();
        mac_machine.preload_activations(g, &[1u8; 128]).unwrap();
    }
    file.benches.insert(
        "machine_mac_burst_8x128_x200".into(),
        bench(samples, || {
            for _ in 0..200 {
                mac_machine
                    .execute(PimInstruction::ClearAcc {
                        modules: ModuleMask::all(),
                    })
                    .unwrap();
                mac_machine
                    .execute(PimInstruction::Mac {
                        modules: ModuleMask::all(),
                        mem: MemSelect::Mram,
                        addr: 0,
                        count: 128,
                    })
                    .unwrap();
            }
            mac_machine.execute(PimInstruction::Barrier).unwrap();
        }),
    );

    // nn_inference: bit-exact INT8 reference inference.
    let model = TinyMlModel::MobileNetV2.build();
    let (c, h, w) = model.input_shape();
    let qm = hhpim_nn::QuantizedModel::random(model, 11);
    let input = hhpim_nn::Tensor::zeros(c, h, w);
    file.benches.insert(
        "nn_mobilenet_int8_inference".into(),
        bench(samples, || qm.infer(&input)),
    );

    // traffic_gen_poisson: 10k Poisson arrivals drawn, sampled and
    // binned into per-slice loads by the live traffic generator.
    file.benches.insert(
        "traffic_gen_poisson".into(),
        bench(samples, || {
            let mut traffic = TrafficEngine::new(TrafficConfig::poisson(5.0).with_seed(1));
            while traffic.arrivals() < 10_000 {
                std::hint::black_box(traffic.next_load());
            }
            traffic.arrivals()
        }),
    );

    // paced_steady_state: the paced driver over the hot engine with a
    // 1 ns interval — always behind schedule, so the pacer never
    // sleeps and the entry prices its pace()/complete() bookkeeping
    // against the free-running engine_step_hot path.
    let mut paced_engine = Engine::new(
        SessionBuilder::new()
            .architecture(Architecture::HhPim)
            .model(TinyMlModel::MobileNetV2)
            .build_analytic()
            .unwrap(),
    );
    file.benches.insert(
        "paced_steady_state".into(),
        bench(samples, || {
            let mut traffic = TrafficEngine::new(TrafficConfig::constant(3.0).with_seed(1));
            let mut pacer = Pacer::new(std::time::Duration::from_nanos(1));
            let report = run_paced(&mut paced_engine, &mut traffic, &mut pacer, 64).unwrap();
            paced_engine.drain().unwrap();
            std::hint::black_box(report)
        }),
    );

    // Deterministic per-scenario energies (the fig5/table6 substrate),
    // all pulled through the session facade.
    for scenario in Scenario::ALL {
        let mut session = SessionBuilder::new()
            .architecture(Architecture::HhPim)
            .model(TinyMlModel::MobileNetV2)
            .scenario(scenario)
            .scenario_params(ScenarioParams {
                slices: 12,
                ..ScenarioParams::default()
            })
            .build()
            .unwrap();
        let artifacts = session.run().unwrap();
        file.energies.insert(
            format!("analytic_hhpim_case{}", scenario.case_number()),
            artifacts.primary().total_energy().as_pj(),
        );
    }
    let mut session = SessionBuilder::new()
        .architecture(Architecture::HhPim)
        .model(TinyMlModel::MobileNetV2)
        .scenario(Scenario::PeriodicSpike)
        .scenario_params(ScenarioParams {
            slices: 4,
            ..ScenarioParams::default()
        })
        .backend(BackendKind::Cycle)
        .build()
        .unwrap();
    let artifacts = session.run().unwrap();
    file.energies.insert(
        "cycle_hhpim_case3".into(),
        artifacts.primary().total_energy().as_pj(),
    );

    file
}

/// Trimmed-mean wall time (ns) of `routine`: after one untimed
/// warm-up, `samples` runs are timed, the fastest and slowest are
/// dropped (when at least three exist), and the rest are averaged —
/// a mean that co-tenant scheduler noise cannot single-handedly skew.
fn bench<O, F: FnMut() -> O>(samples: usize, mut routine: F) -> f64 {
    std::hint::black_box(routine());
    let mut times: Vec<f64> = (0..samples.max(1))
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(routine());
            start.elapsed().as_secs_f64() * 1e9
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
    let kept: &[f64] = if times.len() >= 3 {
        &times[1..times.len() - 1]
    } else {
        &times
    };
    kept.iter().sum::<f64>() / kept.len() as f64
}

/// Fixed integer busy-loop, the machine-speed yardstick.
fn calibrate() -> f64 {
    bench(3, || {
        let mut x = 0x9E37_79B9_7F4A_7C15u64;
        for _ in 0..2_000_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
        }
        x
    })
}

// ---------------------------------------------------------------- compare

fn cmd_compare(args: &[String]) -> Result<(), String> {
    let positional: Vec<&String> = args
        .iter()
        .enumerate()
        .filter(|(i, a)| {
            !a.starts_with("--")
                && !matches!(args.get(i.wrapping_sub(1)), Some(p) if p.starts_with("--"))
        })
        .map(|(_, a)| a)
        .collect();
    let [baseline_path, current_path] = positional[..] else {
        return Err("compare requires BASELINE and CURRENT paths".into());
    };
    let threshold: f64 = flag(args, "--threshold")
        .map(|s| s.parse().map_err(|_| "--threshold must be a number"))
        .transpose()?
        .unwrap_or(DEFAULT_THRESHOLD);
    let baseline = read_gate_file(baseline_path)?;
    let current = read_gate_file(current_path)?;
    let failures = compare(&baseline, &current, threshold);
    for line in &failures {
        eprintln!("REGRESSION: {line}");
    }
    if failures.is_empty() {
        println!(
            "bench gate passed: {} benches within {:.0}%, {} energies within {:.0}%",
            current.benches.len(),
            threshold * 100.0,
            current.energies.len(),
            ENERGY_TOLERANCE * 100.0
        );
        Ok(())
    } else {
        Err(format!(
            "{} regression(s) against {baseline_path}",
            failures.len()
        ))
    }
}

fn compare(baseline: &GateFile, current: &GateFile, threshold: f64) -> Vec<String> {
    let mut failures = Vec::new();
    let ratio = if baseline.calibration_ns > 0.0 && current.calibration_ns > 0.0 {
        (current.calibration_ns / baseline.calibration_ns)
            .clamp(CALIBRATION_CLAMP.0, CALIBRATION_CLAMP.1)
    } else {
        1.0
    };
    for (name, base) in &baseline.benches {
        match current.benches.get(name) {
            None => failures.push(format!("bench `{name}` missing from current run")),
            Some(cur) => {
                let limit = base * (1.0 + threshold) * ratio + JITTER_ALLOWANCE_NS;
                if *cur > limit {
                    failures.push(format!(
                        "bench `{name}`: {cur:.0} ns exceeds {limit:.0} ns \
                         (baseline {base:.0} ns, calibration ratio {ratio:.2})"
                    ));
                }
            }
        }
    }
    for (name, base) in &baseline.energies {
        match current.energies.get(name) {
            None => failures.push(format!("energy `{name}` missing from current run")),
            Some(cur) => {
                let rel = (cur - base).abs() / base.abs().max(f64::MIN_POSITIVE);
                if rel > ENERGY_TOLERANCE {
                    failures.push(format!(
                        "energy `{name}`: {cur:.3e} pJ drifted {:.2}% from baseline {base:.3e} pJ",
                        rel * 100.0
                    ));
                }
            }
        }
    }
    failures
}

// ----------------------------------------------------------------- inject

fn cmd_inject(args: &[String]) -> Result<(), String> {
    let input = flag(args, "--input").ok_or("inject requires --input FILE")?;
    let out = flag(args, "--out").ok_or("inject requires --out FILE")?;
    let scale: f64 = flag(args, "--scale")
        .ok_or("inject requires --scale F")?
        .parse()
        .map_err(|_| "--scale must be a number")?;
    let mut file = read_gate_file(&input)?;
    for v in file.benches.values_mut() {
        *v *= scale;
    }
    for v in file.energies.values_mut() {
        *v *= 1.0 + ENERGY_TOLERANCE * 2.0;
    }
    std::fs::write(&out, format_json(&file)).map_err(|e| format!("writing {out}: {e}"))?;
    println!("wrote doctored gate file to {out} (benches ×{scale})");
    Ok(())
}

// ------------------------------------------------------- JSON (no deps)

fn format_json(file: &GateFile) -> String {
    let section = |map: &BTreeMap<String, f64>| -> String {
        map.iter()
            .map(|(k, v)| format!("    \"{k}\": {v:?}"))
            .collect::<Vec<_>>()
            .join(",\n")
    };
    format!(
        "{{\n  \"schema\": 1,\n  \"calibration_ns\": {:?},\n  \"benches\": {{\n{}\n  }},\n  \"energies\": {{\n{}\n  }}\n}}\n",
        file.calibration_ns,
        section(&file.benches),
        section(&file.energies)
    )
}

fn read_gate_file(path: &str) -> Result<GateFile, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    parse_gate_file(&text).map_err(|e| format!("parsing {path}: {e}"))
}

/// Minimal JSON reader for the gate-file shape: one object of numbers
/// and flat number-valued sub-objects. Unknown keys are ignored.
fn parse_gate_file(text: &str) -> Result<GateFile, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let mut file = GateFile::default();
    p.expect(b'{')?;
    loop {
        p.skip_ws();
        if p.eat(b'}') {
            break;
        }
        let key = p.string()?;
        p.expect(b':')?;
        p.skip_ws();
        match key.as_str() {
            "calibration_ns" => file.calibration_ns = p.number()?,
            "benches" => file.benches = p.number_map()?,
            "energies" => file.energies = p.number_map()?,
            _ => p.skip_value()?,
        }
        p.skip_ws();
        if !p.eat(b',') {
            p.expect(b'}')?;
            break;
        }
    }
    Ok(file)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn eat(&mut self, byte: u8) -> bool {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&byte) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.eat(byte) {
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", byte as char, self.pos))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b'"' {
                let s = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "invalid utf-8 in string")?
                    .to_string();
                self.pos += 1;
                return Ok(s);
            }
            if b == b'\\' {
                return Err("escape sequences are not supported".into());
            }
            self.pos += 1;
        }
        Err("unterminated string".into())
    }

    fn number(&mut self) -> Result<f64, String> {
        self.skip_ws();
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b'0'..=b'9' | b'.' | b'-' | b'+' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| format!("invalid number at byte {start}"))
    }

    fn number_map(&mut self) -> Result<BTreeMap<String, f64>, String> {
        let mut map = BTreeMap::new();
        self.expect(b'{')?;
        loop {
            self.skip_ws();
            if self.eat(b'}') {
                break;
            }
            let key = self.string()?;
            self.expect(b':')?;
            map.insert(key, self.number()?);
            self.skip_ws();
            if !self.eat(b',') {
                self.expect(b'}')?;
                break;
            }
        }
        Ok(map)
    }

    fn skip_value(&mut self) -> Result<(), String> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            Some(b'{') => {
                let _ = self.number_map()?;
                Ok(())
            }
            Some(b'"') => self.string().map(|_| ()),
            _ => self.number().map(|_| ()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> GateFile {
        let mut f = GateFile {
            calibration_ns: 1000.0,
            ..GateFile::default()
        };
        f.benches.insert("a".into(), 5.0e6);
        f.benches.insert("b".into(), 2.5e6);
        f.energies.insert("e1".into(), 3.25e9);
        f
    }

    #[test]
    fn json_roundtrip() {
        let f = sample();
        let text = format_json(&f);
        let parsed = parse_gate_file(&text).unwrap();
        assert_eq!(parsed, f);
    }

    #[test]
    fn parser_ignores_unknown_keys() {
        let text =
            "{\"schema\": 1, \"calibration_ns\": 5.0, \"benches\": {}, \"energies\": {\"x\": 1.0}}";
        let parsed = parse_gate_file(text).unwrap();
        assert_eq!(parsed.calibration_ns, 5.0);
        assert_eq!(parsed.energies["x"], 1.0);
    }

    #[test]
    fn compare_passes_identical_files() {
        assert!(compare(&sample(), &sample(), DEFAULT_THRESHOLD).is_empty());
    }

    #[test]
    fn compare_fails_injected_regression() {
        let base = sample();
        let mut bad = sample();
        for v in bad.benches.values_mut() {
            *v *= 1.5; // > 20 % slower
        }
        let failures = compare(&base, &bad, DEFAULT_THRESHOLD);
        assert_eq!(failures.len(), bad.benches.len(), "{failures:?}");
    }

    #[test]
    fn compare_normalizes_by_calibration() {
        let base = sample();
        let mut cur = sample();
        // Machine is 2× slower overall: benches 1.9× slower still pass.
        cur.calibration_ns *= 2.0;
        for v in cur.benches.values_mut() {
            *v *= 1.9;
        }
        assert!(compare(&base, &cur, DEFAULT_THRESHOLD).is_empty());
        // But 3× slower benches on a 2× machine fail.
        for v in cur.benches.values_mut() {
            *v *= 3.0 / 1.9;
        }
        assert!(!compare(&base, &cur, DEFAULT_THRESHOLD).is_empty());
    }

    #[test]
    fn compare_flags_energy_drift_and_missing_entries() {
        let base = sample();
        let mut cur = sample();
        *cur.energies.get_mut("e1").unwrap() *= 1.05;
        cur.benches.remove("a");
        let failures = compare(&base, &cur, DEFAULT_THRESHOLD);
        assert_eq!(failures.len(), 2, "{failures:?}");
    }

    #[test]
    fn measure_produces_complete_file() {
        let f = measure(1);
        assert!(f.calibration_ns > 0.0);
        assert_eq!(f.benches.len(), 20);
        for key in [
            "session_build_and_run",
            "lut_build_cold",
            "lut_store_warm",
            "sweep_all_parallel",
            "artifact_save_load",
            "sweep_all_disk_warm",
            "engine_step_hot",
            "engine_submit_drain",
            "engine_step_n_batch_64",
            "server_steady_state",
            "server_admission_overload",
            "traffic_gen_poisson",
            "paced_steady_state",
            "timegraph_build",
            "cycle_trace_6_slices",
            "cycle_trace_6_slices_object",
        ] {
            assert!(f.benches.contains_key(key), "missing bench `{key}`");
        }
        assert_eq!(f.energies.len(), 7);
        assert!(f.energies.values().all(|&v| v > 0.0));
        // The store's warm path must beat the cold DP by a wide margin
        // — this is the speedup the gate exists to protect.
        assert!(
            f.benches["lut_store_warm"] < f.benches["lut_build_cold"] / 10.0,
            "warm path {} ns not well below cold build {} ns",
            f.benches["lut_store_warm"],
            f.benches["lut_build_cold"]
        );
        // Timing-graph replay must stay well below the interpretive
        // object walk — the speedup these gate entries protect.
        // Observed ≈5–8× in release; the 2× floor also holds in the
        // unoptimized builds this self-test runs under.
        assert!(
            f.benches["cycle_trace_6_slices"] < f.benches["cycle_trace_6_slices_object"] / 2.0,
            "graph path {} ns not well below object walk {} ns",
            f.benches["cycle_trace_6_slices"],
            f.benches["cycle_trace_6_slices_object"]
        );
        // A disk-warm sweep loads three LUT artifacts instead of DP
        // solving them; the whole 18-cell sweep must stay within a
        // small multiple of one cold DP build (loose enough for the
        // unoptimized builds this self-test runs under).
        assert!(
            f.benches["sweep_all_disk_warm"] < f.benches["lut_build_cold"] * 3.0,
            "disk-warm sweep {} ns not within 3x cold build {} ns",
            f.benches["sweep_all_disk_warm"],
            f.benches["lut_build_cold"]
        );
    }
}
