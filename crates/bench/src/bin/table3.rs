//! Prints the paper's Table3 reproduction.
fn main() {
    println!("{}", hhpim_bench::table3_text());
}
