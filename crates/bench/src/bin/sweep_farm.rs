//! Sharded design-space sweep farm: drives N worker **processes**
//! over a shared artifact directory, then merges their shard outputs
//! into one report bit-identical to the serial `sweep_all`.
//!
//! Each worker is this same binary re-invoked in shard mode: it
//! builds a session with `SessionBuilder::artifact_dir`, runs
//! `Session::sweep_shard(i, n)` and persists a `SweepArtifact`
//! (cells + its store's cache counters) into the artifact dir. The
//! parent waits, validates the shard cover with
//! `SweepArtifact::merge` and writes the merged report. LUT DP
//! results persist in the artifact dir, so a second farm run over the
//! same dir performs zero LUT builds — the property the CI smoke job
//! asserts with `--expect-no-builds --expect-disk-hits`.
//!
//! ```text
//! sweep_farm --artifact-dir DIR [--workers N] [--out FILE]
//!            [--slices S] [--buckets B] [--verify-serial]
//!            [--expect-no-builds] [--expect-disk-hits]
//! ```
//!
//! Exit codes: 0 success, 1 a `--verify-serial`/`--expect-*`
//! assertion failed or a worker/merge failed, 2 usage error.

use hhpim::session::SessionBuilder;
use hhpim::{Architecture, OptimizerConfig, PlacementStore, SweepArtifact, SweepStats};
use hhpim_workload::ScenarioParams;
use std::path::{Path, PathBuf};
use std::process::{exit, Command};

struct Config {
    artifact_dir: PathBuf,
    workers: usize,
    out: Option<PathBuf>,
    slices: usize,
    buckets: usize,
    verify_serial: bool,
    expect_no_builds: bool,
    expect_disk_hits: bool,
    /// `Some((index, count, shard_out))` = run as one worker.
    shard: Option<(usize, usize, PathBuf)>,
}

fn usage() -> ! {
    eprintln!(
        "usage: sweep_farm --artifact-dir DIR [--workers N] [--out FILE] \
         [--slices S] [--buckets B] [--verify-serial] \
         [--expect-no-builds] [--expect-disk-hits]"
    );
    exit(2);
}

fn parse_args() -> Config {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut artifact_dir = None;
    let mut workers = 2usize;
    let mut out = None;
    let mut slices = 12usize;
    let mut buckets = 500usize;
    let mut verify_serial = false;
    let mut expect_no_builds = false;
    let mut expect_disk_hits = false;
    let mut shard_index = None;
    let mut shard_count = None;
    let mut shard_out = None;

    let mut i = 0;
    let value = |i: &mut usize| -> String {
        *i += 1;
        args.get(*i).cloned().unwrap_or_else(|| usage())
    };
    while i < args.len() {
        match args[i].as_str() {
            "--artifact-dir" => artifact_dir = Some(PathBuf::from(value(&mut i))),
            "--workers" => workers = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--out" => out = Some(PathBuf::from(value(&mut i))),
            "--slices" => slices = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--buckets" => buckets = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--verify-serial" => verify_serial = true,
            "--expect-no-builds" => expect_no_builds = true,
            "--expect-disk-hits" => expect_disk_hits = true,
            "--shard" => shard_index = Some(value(&mut i).parse().unwrap_or_else(|_| usage())),
            "--of" => shard_count = Some(value(&mut i).parse().unwrap_or_else(|_| usage())),
            "--shard-out" => shard_out = Some(PathBuf::from(value(&mut i))),
            _ => usage(),
        }
        i += 1;
    }
    let artifact_dir = artifact_dir.unwrap_or_else(|| usage());
    if workers == 0 {
        usage();
    }
    let shard = match (shard_index, shard_count, shard_out) {
        (Some(i), Some(n), Some(path)) => Some((i, n, path)),
        (None, None, None) => None,
        _ => usage(),
    };
    Config {
        artifact_dir,
        workers,
        out,
        slices,
        buckets,
        verify_serial,
        expect_no_builds,
        expect_disk_hits,
        shard,
    }
}

fn build_session(config: &Config) -> hhpim::Session {
    SessionBuilder::new()
        .store(PlacementStore::shared())
        .artifact_dir(&config.artifact_dir)
        .scenario_params(ScenarioParams {
            slices: config.slices,
            ..ScenarioParams::default()
        })
        .optimizer(OptimizerConfig {
            time_buckets: config.buckets,
            ..OptimizerConfig::default()
        })
        .build()
        .expect("sweep-only session always builds")
}

/// Worker mode: one shard, persisted with the worker's cache stats.
fn run_shard(config: &Config, index: usize, count: usize, shard_out: &Path) {
    let session = build_session(config);
    let matrix = match session.sweep_shard(index, count) {
        Ok(matrix) => matrix,
        Err(e) => {
            eprintln!("sweep_farm worker {index}/{count}: {e}");
            exit(1);
        }
    };
    let stats = session.cache_stats();
    let artifact = SweepArtifact {
        shard_index: index,
        shard_count: count,
        matrix,
        stats: Some(SweepStats {
            lut_builds: stats.lut_builds,
            disk_hits: stats.disk_hits,
            disk_writes: stats.disk_writes,
        }),
    };
    if let Err(e) = artifact.save(shard_out) {
        eprintln!("sweep_farm worker {index}/{count}: {e}");
        exit(1);
    }
}

fn main() {
    let config = parse_args();
    if let Some((index, count, shard_out)) = config.shard.clone() {
        run_shard(&config, index, count, &shard_out);
        return;
    }

    let exe = std::env::current_exe().expect("own executable path");
    let shard_path = |i: usize| {
        config
            .artifact_dir
            .join(format!("sweep-shard-{i}-of-{}.json", config.workers))
    };
    std::fs::create_dir_all(&config.artifact_dir).expect("artifact dir is creatable");

    // Fan out: one OS process per shard, all sharing the artifact dir.
    let children: Vec<_> = (0..config.workers)
        .map(|i| {
            Command::new(&exe)
                .arg("--artifact-dir")
                .arg(&config.artifact_dir)
                .arg("--slices")
                .arg(config.slices.to_string())
                .arg("--buckets")
                .arg(config.buckets.to_string())
                .arg("--shard")
                .arg(i.to_string())
                .arg("--of")
                .arg(config.workers.to_string())
                .arg("--shard-out")
                .arg(shard_path(i))
                .spawn()
                .expect("worker spawns")
        })
        .collect();
    for (i, mut child) in children.into_iter().enumerate() {
        let status = child.wait().expect("worker is waitable");
        if !status.success() {
            eprintln!("sweep_farm: worker {i} failed ({status})");
            exit(1);
        }
    }

    // Merge with cover validation: every shard present exactly once.
    let shards: Vec<SweepArtifact> = (0..config.workers)
        .map(|i| SweepArtifact::load(shard_path(i)).expect("worker output loads"))
        .collect();
    let merged = match SweepArtifact::merge(&shards) {
        Ok(merged) => merged,
        Err(e) => {
            eprintln!("sweep_farm: {e}");
            exit(1);
        }
    };
    let totals = merged.stats.expect("every worker records stats");
    println!(
        "sweep_farm: {} workers, {} cells; lut_builds={} disk_hits={} disk_writes={}",
        config.workers,
        merged.matrix.cells.len(),
        totals.lut_builds,
        totals.disk_hits,
        totals.disk_writes
    );
    println!(
        "  mean savings vs Baseline-PIM: {:.2}%",
        merged.matrix.mean_versus(Architecture::Baseline)
    );

    if config.verify_serial {
        // An in-process serial sweep on a fresh private store: proves
        // the sharded + persisted path changed no bit of the report
        // (the store re-reads every artifact through the full verify
        // ladder; a corrupt file would rebuild, not drift).
        let serial = build_session(&config)
            .sweep_all()
            .expect("serial sweep runs");
        let identical = serial.cells.len() == merged.matrix.cells.len()
            && serial.cells.iter().zip(&merged.matrix.cells).all(|(a, b)| {
                a.scenario == b.scenario
                    && a.model == b.model
                    && a.vs_baseline.to_bits() == b.vs_baseline.to_bits()
                    && a.vs_heterogeneous.to_bits() == b.vs_heterogeneous.to_bits()
                    && a.vs_hybrid.to_bits() == b.vs_hybrid.to_bits()
            });
        if !identical {
            eprintln!("sweep_farm: merged shard output differs from the serial sweep");
            exit(1);
        }
        println!("  verify-serial: merged output is bit-identical to serial sweep_all");
    }

    if let Some(out) = &config.out {
        // Strip stats so repeated runs (cold, then warm) write
        // byte-identical merged reports.
        let report = SweepArtifact {
            stats: None,
            ..merged.clone()
        };
        report.save(out).expect("merged report saves");
        println!("  merged report written to {}", out.display());
    }

    if config.expect_no_builds && totals.lut_builds > 0 {
        eprintln!(
            "sweep_farm: expected zero LUT rebuilds on a warm artifact dir, saw {}",
            totals.lut_builds
        );
        exit(1);
    }
    if config.expect_disk_hits && totals.disk_hits == 0 {
        eprintln!("sweep_farm: expected at least one disk hit, saw none");
        exit(1);
    }
}
