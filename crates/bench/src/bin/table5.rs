//! Prints the paper's Table5 reproduction.
fn main() {
    println!("{}", hhpim_bench::table5_text());
}
