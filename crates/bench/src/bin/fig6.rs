//! Runs the Fig. 6 sweep for one model (default EfficientNet-B0).
use hhpim_nn::TinyMlModel;

fn main() {
    let model = match std::env::args().nth(1).as_deref() {
        Some("mbv2") => TinyMlModel::MobileNetV2,
        Some("resnet") => TinyMlModel::ResNet18,
        _ => TinyMlModel::EfficientNetB0,
    };
    let samples = if std::env::args().any(|a| a == "--quick") {
        16
    } else {
        40
    };
    println!("{}", hhpim_bench::fig6_text(model, samples));
    println!("{}", hhpim_bench::inference_time_text());
}
