//! Prints the paper's Table2 reproduction.
fn main() {
    println!("{}", hhpim_bench::table2_text());
}
