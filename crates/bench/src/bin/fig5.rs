//! Runs the full Fig. 5 experiment: 6 scenarios x 3 models x 4
//! architectures over 50 time slices each.
//!
//! Flags: --dp-off disables HH-PIM's static amortization in the
//! optimizer (ablation); --quick runs 12 slices.
use hhpim::OptimizerConfig;
use hhpim_workload::ScenarioParams;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut scenario_params = ScenarioParams::default();
    let mut optimizer = OptimizerConfig::default();
    if args.iter().any(|a| a == "--quick") {
        scenario_params.slices = 12;
        optimizer.time_buckets = 500;
    }
    if args.iter().any(|a| a == "--dp-off") {
        optimizer.amortize_static = false;
        println!("(ablation: optimizer ignores leakage — placements stay SRAM-greedy)\n");
    }
    let matrix =
        hhpim_bench::savings(scenario_params, optimizer).expect("all models fit all architectures");
    println!("{}", hhpim_bench::fig5_text(&matrix));
}
