//! Runs the full Fig. 5 experiment: 6 scenarios x 3 models x 4
//! architectures over 50 time slices each.
//!
//! Flags: --no-gating disables HH-PIM's static amortization in the
//! optimizer (ablation); --quick runs 12 slices.
use hhpim::{ExperimentConfig, OptimizerConfig};
use hhpim_workload::ScenarioParams;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut config = ExperimentConfig::default();
    if args.iter().any(|a| a == "--quick") {
        config.scenario_params = ScenarioParams {
            slices: 12,
            ..ScenarioParams::default()
        };
        config.optimizer = OptimizerConfig {
            time_buckets: 500,
            ..OptimizerConfig::default()
        };
    }
    if args.iter().any(|a| a == "--dp-off") {
        config.optimizer = OptimizerConfig {
            amortize_static: false,
            ..config.optimizer
        };
        println!("(ablation: optimizer ignores leakage — placements stay SRAM-greedy)\n");
    }
    let matrix = hhpim_bench::savings(&config).expect("all models fit all architectures");
    println!("{}", hhpim_bench::fig5_text(&matrix));
}
