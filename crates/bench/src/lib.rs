//! # hhpim-bench — the experiment harness
//!
//! Regenerates **every table and figure** of the paper's evaluation as
//! plain text, one binary per artifact:
//!
//! | target | artifact |
//! |--------|----------|
//! | `table1` | Table I — architecture specifications |
//! | `table2` | Table II — FPGA resource utilization |
//! | `table3` | Table III — HP/LP module latencies |
//! | `table4` | Table IV — TinyML model specs |
//! | `table5` | Table V — memory power |
//! | `fig4`   | Fig. 4 — workload scenarios |
//! | `fig5`   | Fig. 5 — energy savings matrix |
//! | `fig6`   | Fig. 6 — placement/energy sweep |
//! | `table6` | Table VI — savings for Cases 3–6 |
//!
//! Each generator returns a `String` so it is testable; the binaries
//! print it. Criterion micro-benchmarks live under `benches/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use hhpim::session::SessionBuilder;
use hhpim::{
    inference_times, placement_sweep, progression_summary, Architecture, CostModel, CostParams,
    OptimizerConfig, WorkloadProfile,
};
use hhpim_fpga::{table_ii_rows, CostFactors};
use hhpim_mem::{hp_mram, hp_pe, hp_sram, lp_mram, lp_pe, lp_sram, ClusterClass};
use hhpim_nn::TinyMlModel;
use hhpim_workload::{LoadTrace, Scenario, ScenarioParams};

/// Renders an aligned text table.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
    }
    let mut out = String::new();
    let line = |out: &mut String, cells: &[String]| {
        for (i, cell) in cells.iter().enumerate() {
            out.push_str(&format!("{:<width$}  ", cell, width = widths[i]));
        }
        out.push('\n');
    };
    line(
        &mut out,
        &headers.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
    );
    line(
        &mut out,
        &widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>(),
    );
    for row in rows {
        line(&mut out, row);
    }
    out
}

/// Table I: developed specifications of the four architectures.
pub fn table1_text() -> String {
    let rows: Vec<Vec<String>> = Architecture::ALL
        .iter()
        .map(|a| {
            let s = a.spec();
            let modules = if s.lp_modules == 0 {
                format!("{} HP-PIM", s.hp_modules)
            } else {
                format!("{} HP-PIM + {} LP-PIM", s.hp_modules, s.lp_modules)
            };
            let memory = if s.mram_per_module == 0 {
                format!("{}kB SRAM", s.sram_per_module / 1024)
            } else {
                format!(
                    "{}kB MRAM + {}kB SRAM",
                    s.mram_per_module / 1024,
                    s.sram_per_module / 1024
                )
            };
            vec![s.name.to_string(), modules, memory]
        })
        .collect();
    format!(
        "Table I: Developed specifications for HH-PIM and other PIM architectures.\n\n{}",
        render_table(
            &[
                "Architecture",
                "PIM Module Configuration",
                "Memory Types (per module)"
            ],
            &rows
        )
    )
}

/// Table II: FPGA prototype resource utilization (regenerated from the
/// structural estimator; non-PIM rows are the published figures).
pub fn table2_text() -> String {
    let rows: Vec<Vec<String>> = table_ii_rows(4, 4, &CostFactors::default())
        .into_iter()
        .map(|r| {
            vec![
                r.name,
                r.resources.luts.to_string(),
                r.resources.ffs.to_string(),
                if r.resources.brams == 0 {
                    "-".into()
                } else {
                    r.resources.brams.to_string()
                },
                if r.resources.dsps == 0 {
                    "-".into()
                } else {
                    r.resources.dsps.to_string()
                },
            ]
        })
        .collect();
    format!(
        "Table II: FPGA prototype resource utilization (PIM rows estimated structurally).\n\n{}",
        render_table(&["IPs", "LUTs", "FFs", "BRAMs", "DSPs"], &rows)
    )
}

/// Table III: latency comparison of HP-PIM and LP-PIM modules.
pub fn table3_text() -> String {
    let row = |class: ClusterClass| -> Vec<String> {
        let (mram, sram, pe) = match class {
            ClusterClass::HighPerformance => (hp_mram(), hp_sram(), hp_pe()),
            ClusterClass::LowPower => (lp_mram(), lp_sram(), lp_pe()),
        };
        vec![
            format!("{}-PIM (Vdd={}V)", class.label(), class.vdd()),
            format!("{:.2}", mram.timing.read.as_ns_f64()),
            format!("{:.2}", mram.timing.write.as_ns_f64()),
            format!("{:.2}", sram.timing.read.as_ns_f64()),
            format!("{:.2}", sram.timing.write.as_ns_f64()),
            format!("{:.2}", pe.mac_latency.as_ns_f64()),
        ]
    };
    format!(
        "Table III: Latency (ns) of HP-PIM and LP-PIM modules.\n\n{}",
        render_table(
            &[
                "",
                "MRAM Read",
                "MRAM Write",
                "SRAM Read",
                "SRAM Write",
                "PE"
            ],
            &[
                row(ClusterClass::HighPerformance),
                row(ClusterClass::LowPower)
            ],
        )
    )
}

/// Table IV: TinyML model specs and PIM operation ratios, published vs
/// the constructed tiny variants.
pub fn table4_text() -> String {
    let rows: Vec<Vec<String>> = TinyMlModel::ALL
        .iter()
        .map(|m| {
            let spec = m.spec();
            let built = m.build();
            vec![
                spec.name.to_string(),
                format!("{}k", spec.params / 1000),
                format!("{:.3}M", spec.macs as f64 / 1e6),
                format!("{:.0}%", spec.pim_op_ratio * 100.0),
                format!("{}", built.total_params()),
                format!("{:.3}M", built.total_macs() as f64 / 1e6),
            ]
        })
        .collect();
    format!(
        "Table IV: TinyML model specs and PIM operation ratios (INT8 quantized & pruned).\n\n{}",
        render_table(
            &[
                "Model",
                "#Param",
                "#MAC",
                "PIM Op",
                "built #Param",
                "built #MAC"
            ],
            &rows
        )
    )
}

/// Table V: power consumption across memory types.
pub fn table5_text() -> String {
    let row = |class: ClusterClass| -> Vec<String> {
        let (mram, sram, pe) = match class {
            ClusterClass::HighPerformance => (hp_mram(), hp_sram(), hp_pe()),
            ClusterClass::LowPower => (lp_mram(), lp_sram(), lp_pe()),
        };
        vec![
            format!("{}-PIM", class.label()),
            format!(
                "{:.2} / {:.2}",
                mram.power.dynamic_read.as_mw(),
                mram.power.dynamic_write.as_mw()
            ),
            format!("{:.2}", mram.power.static_power.as_mw()),
            format!(
                "{:.2} / {:.2}",
                sram.power.dynamic_read.as_mw(),
                sram.power.dynamic_write.as_mw()
            ),
            format!("{:.2}", sram.power.static_power.as_mw()),
            format!("{:.2}", pe.dynamic.as_mw()),
            format!("{:.2}", pe.static_power.as_mw()),
        ]
    };
    format!(
        "Table V: Power (mW) across memory types in HP-PIM (1.2V) and LP-PIM (0.8V).\n\n{}",
        render_table(
            &[
                "",
                "MRAM Dyn (R/W)",
                "MRAM Static",
                "SRAM Dyn (R/W)",
                "SRAM Static",
                "PE Dyn",
                "PE Static"
            ],
            &[
                row(ClusterClass::HighPerformance),
                row(ClusterClass::LowPower)
            ],
        )
    )
}

/// Fig. 4: the six workload scenarios as sparklines.
pub fn fig4_text(params: ScenarioParams) -> String {
    let mut out = String::from("Fig. 4: Workload scenarios of the AI benchmark app.\n\n");
    for s in Scenario::ALL {
        let trace = LoadTrace::generate(s, params);
        out.push_str(&format!(
            "{:<40} {}  (mean load {:.2})\n",
            s.to_string(),
            trace.sparkline(),
            trace.mean_load()
        ));
    }
    out
}

/// Fig. 5 + Table VI source data: the savings matrix, computed by
/// `Session::sweep` over the full scenario × model grid.
///
/// # Errors
///
/// Propagates session construction and cost-model failures.
pub fn savings(
    scenario_params: ScenarioParams,
    optimizer: OptimizerConfig,
) -> Result<hhpim::SavingsMatrix, hhpim::SessionError> {
    SessionBuilder::new()
        .scenario_params(scenario_params)
        .optimizer(optimizer)
        .build()?
        .sweep_all()
}

/// Fig. 5: energy savings of HH-PIM per scenario and model.
pub fn fig5_text(matrix: &hhpim::SavingsMatrix) -> String {
    let mut rows = Vec::new();
    for s in Scenario::ALL {
        for m in TinyMlModel::ALL {
            let c = matrix.cell(s, m).expect("full matrix");
            rows.push(vec![
                format!("Case {}", s.case_number()),
                m.to_string(),
                format!("{:.2}", c.vs_baseline),
                format!("{:.2}", c.vs_heterogeneous),
                format!("{:.2}", c.vs_hybrid),
            ]);
        }
    }
    rows.push(vec![
        "Average".into(),
        "(all)".into(),
        format!("{:.2}", matrix.mean_versus(Architecture::Baseline)),
        format!("{:.2}", matrix.mean_versus(Architecture::Heterogeneous)),
        format!("{:.2}", matrix.mean_versus(Architecture::Hybrid)),
    ]);
    format!(
        "Fig. 5: Energy savings (%) of HH-PIM over Baseline-, Heterogeneous-, and Hybrid-PIM.\n\n{}\nPaper: averages up to 60.43 / 36.3 / 48.58 %; Case 1 up to 86.23 / 78.7 / 66.5 %.\n",
        render_table(&["Scenario", "Model", "vs Baseline", "vs Hetero.", "vs Hybrid"], &rows)
    )
}

/// Table VI: per-scenario mean savings for Cases 3–6.
pub fn table6_text(matrix: &hhpim::SavingsMatrix) -> String {
    let cases = [
        Scenario::PeriodicSpike,
        Scenario::PeriodicSpikeFrequent,
        Scenario::HighLowPulsing,
        Scenario::Random,
    ];
    let rows: Vec<Vec<String>> = cases
        .iter()
        .map(|&s| {
            vec![
                s.to_string(),
                format!("{:.2}", matrix.scenario_mean(s, Architecture::Baseline)),
                format!(
                    "{:.2}",
                    matrix.scenario_mean(s, Architecture::Heterogeneous)
                ),
                format!("{:.2}", matrix.scenario_mean(s, Architecture::Hybrid)),
            ]
        })
        .collect();
    format!(
        "Table VI: Energy savings (%) by HH-PIM for Cases 3-6.\n\n{}\nPaper: Case 3: 72.01/55.78/54.09, Case 4: 61.46/38.38/47.60, Case 5: 48.94/16.89/42.10, Case 6: 59.28/34.14/50.52.\n",
        render_table(&["Case", "vs Baseline-PIM", "vs Hetero.-PIM", "vs H-PIM"], &rows)
    )
}

/// Fig. 6: memory utilization and E_task across `t_constraint` for one
/// model on HH-PIM, plus the green/purple marked points.
pub fn fig6_text(model: TinyMlModel, samples: usize) -> String {
    let cost = CostModel::new(
        Architecture::HhPim.spec(),
        WorkloadProfile::from_spec(&model.spec()),
        CostParams::default(),
    )
    .expect("model fits HH-PIM");
    let times = inference_times(&cost);
    let sweep = placement_sweep(&cost, OptimizerConfig::default(), times.peak * 11, samples);

    let mut rows = Vec::new();
    for p in &sweep.points {
        match &p.placement {
            None => rows.push(vec![
                format!("{}", p.t_constraint),
                "-".into(),
                "(not possible)".into(),
                String::new(),
            ]),
            Some(pl) => rows.push(vec![
                format!("{}", p.t_constraint),
                format!("{:.3}", p.e_task_norm),
                format!(
                    "[{:>5.1} {:>5.1} {:>5.1} {:>5.1}]",
                    p.utilization[0], p.utilization[1], p.utilization[2], p.utilization[3]
                ),
                pl.to_string(),
            ]),
        }
    }
    let mut out = format!(
        "Fig. 6: Memory utilization and E_task across t_constraint ({}).\n\n{}",
        model,
        render_table(
            &[
                "t_constraint",
                "E_task(norm)",
                "util% [HPM HPS LPM LPS]",
                "placement"
            ],
            &rows
        )
    );
    out.push_str(&format!(
        "\nPeak performance point (green): {} — placement {}\n",
        times.peak, sweep.peak_placement
    ));
    out.push_str(&format!(
        "MRAM-only peak (purple, H-PIM style): {}\n",
        times.mram_only
    ));
    out.push_str(&format!(
        "Reduction vs unoptimized allocation at the most relaxed point: {:.2}% (paper: up to 43.17%)\n",
        sweep.relaxed_reduction_vs_unoptimized(&cost, OptimizerConfig::default())
    ));
    out.push_str("\nPlacement progression:\n");
    for (t, p) in progression_summary(&sweep) {
        out.push_str(&format!("  from {:>12}: {}\n", t.to_string(), p));
    }
    out
}

/// §IV-B inference-time summary for all three models.
pub fn inference_time_text() -> String {
    let mut rows = Vec::new();
    for m in TinyMlModel::ALL {
        let cost = CostModel::new(
            Architecture::HhPim.spec(),
            WorkloadProfile::from_spec(&m.spec()),
            CostParams::default(),
        )
        .expect("fits");
        let t = inference_times(&cost);
        rows.push(vec![
            m.to_string(),
            format!("{:.2} ms", t.peak.as_ms_f64()),
            format!("{:.2} ms", t.mram_only.as_ms_f64()),
        ]);
    }
    format!(
        "Peak inference times on HH-PIM (paper: 31.06/25.71/320.87 ms SRAM-mixed; 44.5/36.84/459.74 ms MRAM-only).\n\n{}",
        render_table(&["Model", "peak (green)", "MRAM-only (purple)"], &rows)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_tables_render() {
        let t1 = table1_text();
        assert!(t1.contains("HH-PIM"));
        assert!(t1.contains("64kB MRAM + 64kB SRAM"));
        let t3 = table3_text();
        assert!(t3.contains("2.62"));
        assert!(t3.contains("14.65"));
        let t5 = table5_text();
        assert!(t5.contains("508.93"));
        assert!(t5.contains("0.84"));
    }

    #[test]
    fn table2_contains_cluster_totals() {
        let t2 = table2_text();
        assert!(t2.contains("HP-PIM cluster"));
        assert!(t2.contains("LP-PIM cluster"));
        assert!(t2.contains("RISC-V Rocket Core"));
    }

    #[test]
    fn table4_reports_both_published_and_built() {
        let t4 = table4_text();
        assert!(t4.contains("95k"));
        assert!(t4.contains("29.580M"));
        assert!(t4.contains("built"));
    }

    #[test]
    fn fig4_has_six_cases() {
        let f4 = fig4_text(ScenarioParams::default());
        for i in 1..=6 {
            assert!(f4.contains(&format!("Case {i}")), "missing case {i}");
        }
    }

    #[test]
    fn fig6_renders_quickly_at_low_resolution() {
        let f6 = fig6_text(TinyMlModel::MobileNetV2, 8);
        assert!(f6.contains("not possible"), "gray region shown");
        assert!(f6.contains("Peak performance point"));
        assert!(f6.contains("LP-MRAM"));
    }

    #[test]
    fn render_table_aligns_columns() {
        let s = render_table(
            &["a", "bb"],
            &[
                vec!["xxx".into(), "y".into()],
                vec!["z".into(), "wwww".into()],
            ],
        );
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[1].starts_with("---"));
    }
}
