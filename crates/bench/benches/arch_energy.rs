//! Criterion benches for full trace evaluation — the computation behind
//! Fig. 5 and Table VI, per architecture — plus the movement-overhead
//! ablation (the cost the Data Allocator model charges per transition).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hhpim::{Architecture, Processor};
use hhpim_nn::TinyMlModel;
use hhpim_workload::{LoadTrace, Scenario, ScenarioParams};

fn bench_trace_per_arch(c: &mut Criterion) {
    let trace = LoadTrace::generate(
        Scenario::PeriodicSpike,
        ScenarioParams {
            slices: 50,
            ..ScenarioParams::default()
        },
    );
    let mut group = c.benchmark_group("run_trace_50_slices");
    for arch in Architecture::ALL {
        let proc = Processor::new(arch, TinyMlModel::EfficientNetB0).expect("fits");
        group.bench_with_input(BenchmarkId::from_parameter(arch), &arch, |b, _| {
            b.iter(|| proc.run_trace(std::hint::black_box(&trace)))
        });
    }
    group.finish();
}

fn bench_movement_cost(c: &mut Criterion) {
    let proc = Processor::new(Architecture::HhPim, TinyMlModel::ResNet18).expect("fits");
    let low = proc.placement_for_tasks(1);
    let high = proc.placement_for_tasks(10);
    c.bench_function("movement_cost_full_swing", |b| {
        b.iter(|| proc.movement_cost(std::hint::black_box(&low), std::hint::black_box(&high)))
    });
}

fn bench_processor_init(c: &mut Criterion) {
    // Includes LUT construction — the paper's "application
    // initialization phase".
    c.bench_function("processor_init_hhpim", |b| {
        b.iter(|| Processor::new(Architecture::HhPim, TinyMlModel::MobileNetV2).expect("fits"))
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_secs(1))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_trace_per_arch, bench_movement_cost, bench_processor_init
}
criterion_main!(benches);
