//! Criterion benches for the placement optimizer (Algorithms 1+2):
//! single-point optimization at tight/mid/relaxed deadlines, LUT
//! construction, and scaling with DP resolution. These back Fig. 6 and
//! quantify the paper's "≤1 % of a time slice" initialization claim.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hhpim::{
    AllocationLut, Architecture, CostModel, CostParams, OptimizerConfig, PlacementOptimizer,
    WorkloadProfile,
};
use hhpim_nn::TinyMlModel;

fn cost_model() -> CostModel {
    CostModel::new(
        Architecture::HhPim.spec(),
        WorkloadProfile::from_spec(&TinyMlModel::EfficientNetB0.spec()),
        CostParams::default(),
    )
    .expect("fits")
}

fn bench_optimize_points(c: &mut Criterion) {
    let cost = cost_model();
    let opt = PlacementOptimizer::new(&cost, OptimizerConfig::default());
    let peak = cost.peak_task_time();
    let mut group = c.benchmark_group("dp_optimize");
    for (label, factor) in [("tight", 1.0), ("mid", 3.0), ("relaxed", 10.0)] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &factor, |b, &f| {
            let t = peak.mul_f64(f);
            b.iter(|| opt.optimize(std::hint::black_box(t)))
        });
    }
    group.finish();
}

fn bench_lut_build(c: &mut Criterion) {
    let cost = cost_model();
    let opt = PlacementOptimizer::new(&cost, OptimizerConfig::default());
    let slice = cost.peak_task_time() * 10;
    c.bench_function("lut_build_10_entries", |b| {
        b.iter(|| AllocationLut::build(&opt, std::hint::black_box(slice), 10))
    });
}

fn bench_resolution_scaling(c: &mut Criterion) {
    let cost = cost_model();
    let peak = cost.peak_task_time();
    let mut group = c.benchmark_group("dp_resolution");
    for buckets in [250usize, 1000, 4000] {
        let cfg = OptimizerConfig {
            time_buckets: buckets,
            ..OptimizerConfig::default()
        };
        let opt = PlacementOptimizer::new(&cost, cfg);
        group.bench_with_input(BenchmarkId::from_parameter(buckets), &buckets, |b, _| {
            b.iter(|| opt.optimize(std::hint::black_box(peak.mul_f64(2.0))))
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_secs(1))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_optimize_points, bench_lut_build, bench_resolution_scaling
}
criterion_main!(benches);
