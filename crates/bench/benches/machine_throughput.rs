//! Criterion benches for the cycle-level substrate: PIM machine MAC
//! throughput, ISA encode/decode, and NN task generation.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hhpim_isa::{assemble, decode, encode, MemSelect, ModuleMask, PimInstruction};
use hhpim_nn::{QuantizedModel, Tensor, TinyMlModel};
use hhpim_pim::{MachineConfig, PimMachine};

fn bench_machine_macs(c: &mut Criterion) {
    let mut group = c.benchmark_group("pim_machine");
    group.throughput(Throughput::Elements(8 * 128));
    group.bench_function("mac_burst_8_modules_x128", |b| {
        b.iter_batched(
            || {
                let mut m = PimMachine::new(MachineConfig::default());
                for g in 0..8 {
                    m.preload(g, MemSelect::Mram, 0, &[1u8; 128])
                        .expect("preload");
                    m.preload_activations(g, &[1u8; 128]).expect("preload");
                }
                m
            },
            |mut m| {
                m.execute(PimInstruction::Mac {
                    modules: ModuleMask::all(),
                    mem: MemSelect::Mram,
                    addr: 0,
                    count: 128,
                })
                .expect("mac");
                m.execute(PimInstruction::Barrier).expect("barrier");
                m
            },
            criterion::BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_isa(c: &mut Criterion) {
    let inst = PimInstruction::Mac {
        modules: ModuleMask::range(0, 3),
        mem: MemSelect::Sram,
        addr: 0x100,
        count: 64,
    };
    c.bench_function("isa_encode_decode", |b| {
        b.iter(|| decode(encode(std::hint::black_box(inst))))
    });
    let source = "clr all\nmac m0-3 sram @0x100 x64\nwb all sram @0x0\nbarrier\nhalt";
    c.bench_function("isa_assemble_5_lines", |b| {
        b.iter(|| assemble(std::hint::black_box(source)))
    });
}

fn bench_nn_inference(c: &mut Criterion) {
    let model = TinyMlModel::MobileNetV2.build();
    let (ch, h, w) = model.input_shape();
    let qm = QuantizedModel::random(model, 11);
    let input = Tensor::zeros(ch, h, w);
    c.bench_function("nn_mobilenet_tiny_int8_inference", |b| {
        b.iter(|| qm.infer(std::hint::black_box(&input)))
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_secs(1))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_machine_macs, bench_isa, bench_nn_inference
}
criterion_main!(benches);
