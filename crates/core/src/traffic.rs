//! # Traffic integration: load generation meets the execution stack
//!
//! The generators live in [`hhpim_workload::traffic`] (re-exported
//! here); this module is the glue that lets them drive every entry
//! point in the crate:
//!
//! * [`TrafficSource`] — a [`TraceSource`] over a [`TrafficConfig`],
//!   so sessions and server tenants can be fed synthetic traffic
//!   (`SessionBuilder::trace_source`, `TenantSpec::new`).
//! * [`stream`] — adapts a live [`TrafficEngine`] into the engine's
//!   unbounded [`StreamSource`] for [`Engine::pump`].
//! * [`record_slices`] — taps an [`Engine`] with a [`TraceRecorder`]
//!   so *executed* slices (not just offered ones) can be captured and
//!   replayed through [`ReplayTraffic`].
//! * [`drive_closed_loop`] — runs a [`ClosedLoop`] controller against
//!   live engine feedback (queue depth, deadline misses).
//! * [`run_paced`] / [`serve_paced`] — wall-clock pacing of
//!   [`Engine::step`] and [`Server`] rounds under a [`Pacer`],
//!   yielding a [`LoadReport`].
//!
//! Determinism carries through: pacing and recording never perturb
//! the load sequence, so a paced run produces the same
//! `ExecutionReport` as a free-running one over the same config.

use crate::engine::{Engine, EngineError, EngineEvent, StreamSource};
use crate::server::{ServeReport, Server, ServerError, ServerEvent};
use crate::session::{SessionError, TraceSource};
use hhpim_workload::LoadTrace;

pub use hhpim_workload::traffic::{
    ArrivalProcess, BurstyOnOff, ClosedLoop, ClosedLoopConfig, ConstantRate, Diurnal,
    LoadDistribution, LoadFeedback, LoadReport, Pacer, Poisson, RecordedArrival, RecordedTrace,
    ReplayTraffic, TraceRecorder, TrafficConfig, TrafficEngine, TrafficError, TRACE_FORMAT_VERSION,
};

/// A [`TraceSource`] over a finite horizon of synthetic traffic.
///
/// Each [`TrafficSource::trace`] call runs a *fresh* seeded
/// [`TrafficEngine`] over the config, so repeated pulls (session
/// re-runs, server re-serves, sweep cells) see the identical trace —
/// the same contract every other source in the crate honours.
#[derive(Debug, Clone)]
pub struct TrafficSource {
    config: TrafficConfig,
    slices: usize,
}

impl TrafficSource {
    /// A source generating the first `slices` slices of `config`'s
    /// feed.
    pub fn new(config: TrafficConfig, slices: usize) -> Self {
        TrafficSource { config, slices }
    }

    /// The underlying traffic description.
    pub fn config(&self) -> &TrafficConfig {
        &self.config
    }

    /// The finite horizon, in slices.
    pub fn slices(&self) -> usize {
        self.slices
    }
}

impl TraceSource for TrafficSource {
    fn label(&self) -> String {
        format!("{} × {} slices", self.config.label(), self.slices)
    }

    fn trace(&self) -> Result<LoadTrace, SessionError> {
        Ok(TrafficEngine::new(self.config.clone()).take_trace(self.slices)?)
    }
}

/// Adapts a live [`TrafficEngine`] into the streaming engine's
/// unbounded [`StreamSource`], for [`Engine::pump`]:
///
/// ```
/// use hhpim::session::SessionBuilder;
/// use hhpim::{stream, Engine, TrafficConfig, TrafficEngine};
///
/// let mut engine = Engine::new(SessionBuilder::new().build_analytic().unwrap());
/// let mut source = stream(TrafficEngine::new(TrafficConfig::poisson(3.0)));
/// let executed = engine.pump(&mut source, Some(25)).unwrap();
/// assert_eq!(executed, 25);
/// ```
pub fn stream(mut traffic: TrafficEngine) -> StreamSource<impl FnMut(usize) -> f64> {
    StreamSource::new(move |_slice| traffic.next_load())
}

/// Taps `engine` with `recorder`: every completed slice on the
/// engine's primary (first) backend is captured as an
/// `(arrival time, load)` pair — time is the slice index, load is the
/// executed `n_tasks / max_tasks`. Replaying the capture at warp 1.0
/// re-offers exactly the loads the engine executed (quantization is
/// exact: `n / max` quantizes back to `n` tasks, and idle slices
/// round-trip as zero).
///
/// The observer lives as long as the engine; keep the original
/// recorder handle (clones share the buffer) to read the capture
/// back with [`TraceRecorder::finish`].
pub fn record_slices(engine: &mut Engine, recorder: &TraceRecorder) {
    let primary = engine.backend_kinds().first().copied();
    let max_tasks = engine.max_tasks() as f64;
    let tap = recorder.clone();
    engine.observe(move |event: &EngineEvent| {
        if let EngineEvent::SliceCompleted { backend, record } = event {
            if Some(*backend) == primary {
                tap.record(record.slice as f64, record.n_tasks as f64 / max_tasks);
            }
        }
    });
}

/// What a closed-loop run converged to.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClosedLoopReport {
    /// Slices executed.
    pub slices: usize,
    /// Mean load the controller offered over the run.
    pub mean_offered: f64,
    /// The controller's offered load after the final observation.
    pub final_offered: f64,
    /// Multiplicative back-offs the controller took.
    pub backoffs: u64,
    /// Deadline misses observed on the primary backend.
    pub deadline_misses: u64,
}

/// Runs `slices` slices of closed-loop traffic: each slice offers
/// [`ClosedLoop::next_load`], executes it, and feeds the observed
/// [`LoadFeedback`] (queue depth after the step, primary-backend
/// deadline misses) back into the controller.
///
/// The driver consumes the engine's buffered event stream (that *is*
/// the feedback channel); attach an observer first if you also want
/// the events elsewhere. The run leaves the engine mid-stream —
/// [`Engine::drain`] it for reports.
///
/// # Errors
///
/// See [`Engine::step`].
pub fn drive_closed_loop(
    engine: &mut Engine,
    controller: &mut ClosedLoop,
    slices: usize,
) -> Result<ClosedLoopReport, EngineError> {
    let primary = engine.backend_kinds().first().copied();
    let mut offered_total = 0.0;
    let mut misses_total = 0u64;
    for _ in 0..slices {
        let load = controller.next_load();
        offered_total += load;
        engine.submit_blocking(load)?;
        engine.step()?;
        let mut misses = 0u64;
        for event in engine.events() {
            if let EngineEvent::DeadlineMiss { backend, .. } = event {
                if Some(backend) == primary {
                    misses += 1;
                }
            }
        }
        misses_total += misses;
        controller.observe(LoadFeedback {
            queue_depth: engine.pending(),
            deadline_misses: misses,
        });
    }
    Ok(ClosedLoopReport {
        slices,
        mean_offered: if slices == 0 {
            0.0
        } else {
            offered_total / slices as f64
        },
        final_offered: controller.offered(),
        backoffs: controller.backoffs(),
        deadline_misses: misses_total,
    })
}

/// Paces `slices` slices of `traffic` through `engine` against the
/// wall clock: each round waits for the pacer's next boundary, pulls
/// one slice's load, executes it, and records the slice's latency.
/// Returns the pacer's [`LoadReport`] with offered load (what the
/// traffic asked for) and achieved load (executed
/// `n_tasks / max_tasks` on the primary backend) filled in.
///
/// Pacing never perturbs the load sequence — the report's
/// `ExecutionReport` twin from a free-running run is bit-identical.
/// The driver consumes the engine's buffered events and leaves the
/// engine mid-stream ([`Engine::drain`] it for reports).
///
/// # Errors
///
/// See [`Engine::step`].
pub fn run_paced(
    engine: &mut Engine,
    traffic: &mut TrafficEngine,
    pacer: &mut Pacer,
    slices: usize,
) -> Result<LoadReport, EngineError> {
    let primary = engine.backend_kinds().first().copied();
    let max_tasks = engine.max_tasks() as f64;
    let mut offered = 0.0;
    let mut achieved = 0.0;
    for _ in 0..slices {
        pacer.pace();
        let load = traffic.next_load();
        offered += load;
        engine.submit_blocking(load)?;
        engine.step()?;
        for event in engine.events() {
            if let EngineEvent::SliceCompleted { backend, record } = event {
                if Some(backend) == primary {
                    achieved += record.n_tasks as f64 / max_tasks;
                }
            }
        }
        pacer.complete();
    }
    let denom = slices.max(1) as f64;
    Ok(pacer.finish(offered / denom, achieved / denom))
}

/// Paces a whole [`Server`] run against the wall clock, one scheduling
/// round per pacer tick, then finishes the run and returns both the
/// [`ServeReport`] and the pacer's [`LoadReport`].
///
/// Offered load sums every admitted and shed load (coalesced loads
/// are counted once, when their merged slice is admitted); achieved
/// load sums executed `n_tasks / max_tasks` across all tenant
/// engines. Both are normalized per executed slice, so
/// `LoadReport::load_fidelity` reads as "fraction of offered work the
/// server actually executed". The driver consumes the server's
/// buffered event stream.
///
/// # Errors
///
/// See [`Server::run`] — including [`ServerError::Stalled`] when a
/// round moves nothing while work remains.
pub fn serve_paced(
    server: &mut Server,
    pacer: &mut Pacer,
) -> Result<(ServeReport, LoadReport), ServerError> {
    let max_tasks = server.max_tasks() as f64;
    let mut offered = 0.0;
    let mut achieved = 0.0;
    let mut executed = 0u64;
    while !server.finished() {
        pacer.pace();
        let progressed = server.round()?;
        for event in server.events() {
            match event {
                ServerEvent::Admitted { load, .. } | ServerEvent::Shed { load, .. } => {
                    offered += load;
                }
                ServerEvent::Engine {
                    event: EngineEvent::SliceCompleted { record, .. },
                    ..
                } => {
                    achieved += record.n_tasks as f64 / max_tasks;
                    executed += 1;
                }
                _ => {}
            }
        }
        pacer.complete();
        if !progressed {
            // Let run() diagnose the livelock as ServerError::Stalled.
            break;
        }
    }
    let report = server.run()?;
    let denom = executed.max(1) as f64;
    Ok((report, pacer.finish(offered / denom, achieved / denom)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{QosClass, Server, TenantSpec};
    use crate::session::SessionBuilder;
    use hhpim_nn::TinyMlModel;
    use std::time::Duration;

    fn engine() -> Engine {
        Engine::new(SessionBuilder::new().build_analytic().unwrap())
    }

    #[test]
    fn traffic_source_pulls_identically_per_run() {
        let source = TrafficSource::new(TrafficConfig::poisson(4.0).with_seed(7), 40);
        let a = source.trace().unwrap();
        let b = source.trace().unwrap();
        assert_eq!(a, b, "fresh engine per pull ⇒ identical traces");
        assert_eq!(a.len(), 40);
        assert!(source.label().contains("poisson"));
    }

    #[test]
    fn traffic_source_drives_a_session() {
        let mut session = SessionBuilder::new()
            .trace_source(TrafficSource::new(TrafficConfig::poisson(3.0), 30))
            .build()
            .unwrap();
        let a = session.run().unwrap().primary().clone();
        let b = session.run().unwrap().primary().clone();
        assert_eq!(a, b, "re-runs are bit-identical");
        assert_eq!(a.records.len(), 30);
    }

    #[test]
    fn stream_adapts_traffic_into_pump() {
        let mut engine = engine();
        let mut source = stream(TrafficEngine::new(TrafficConfig::constant(2.0)));
        let executed = engine.pump(&mut source, Some(12)).unwrap();
        assert_eq!(executed, 12);
        assert_eq!(source.position(), 12);
        let reports = engine.drain().unwrap();
        assert_eq!(reports[0].records.len(), 12);
    }

    #[test]
    fn recorded_execution_replays_bit_identically() {
        let config = TrafficConfig::poisson(5.0).with_seed(11);
        let recorder = TraceRecorder::new();
        let mut live = engine();
        record_slices(&mut live, &recorder);
        let mut traffic = TrafficEngine::new(config);
        for _ in 0..50 {
            live.submit_blocking(traffic.next_load()).unwrap();
            live.step().unwrap();
        }
        let original = live.drain().unwrap().remove(0);

        // Replay the *executed* capture through a fresh engine.
        let trace = recorder.finish("capture").unwrap();
        assert_eq!(trace.len(), 50);
        let replay = ReplayTraffic::new(trace).to_loads();
        let mut rerun = engine();
        for load in replay {
            rerun.submit_blocking(load).unwrap();
            rerun.step().unwrap();
        }
        let replayed = rerun.drain().unwrap().remove(0);
        assert_eq!(original, replayed, "warp-1.0 replay is bit-identical");
    }

    #[test]
    fn closed_loop_climbs_on_a_clean_engine() {
        let mut engine = engine();
        let mut controller = ClosedLoop::default();
        let report = drive_closed_loop(&mut engine, &mut controller, 30).unwrap();
        assert_eq!(report.slices, 30);
        // The default config never misses deadlines, so AIMD climbs to
        // the ceiling and stays.
        assert_eq!(report.deadline_misses, 0);
        assert_eq!(report.backoffs, 0);
        assert_eq!(report.final_offered, controller.config().ceil);
        assert!(report.mean_offered > controller.config().initial);
        let reports = engine.drain().unwrap();
        assert_eq!(reports[0].records.len(), 30);
    }

    #[test]
    fn closed_loop_driver_is_deterministic() {
        let run = || {
            let mut engine = engine();
            let mut controller = ClosedLoop::default();
            let report = drive_closed_loop(&mut engine, &mut controller, 25).unwrap();
            (report, engine.drain().unwrap().remove(0))
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn paced_run_matches_free_running_reports() {
        let config = TrafficConfig::bursty(6.0, 0.5, 2.0, 4.0).with_seed(3);
        let mut free = engine();
        let mut traffic = TrafficEngine::new(config.clone());
        for _ in 0..20 {
            free.submit_blocking(traffic.next_load()).unwrap();
            free.step().unwrap();
        }
        let unpaced = free.drain().unwrap().remove(0);

        let mut paced = engine();
        let mut pacer = Pacer::new(Duration::from_micros(100));
        let report =
            run_paced(&mut paced, &mut TrafficEngine::new(config), &mut pacer, 20).unwrap();
        let paced_report = paced.drain().unwrap().remove(0);
        assert_eq!(unpaced, paced_report, "pacing never perturbs execution");
        assert_eq!(report.slices, 20);
        assert!(report.offered_load > 0.0);
        assert!(report.achieved_load > 0.0);
    }

    #[test]
    fn serve_paced_reports_load_and_finishes_the_server() {
        let mut server = Server::builder()
            .tenant(TenantSpec::new(
                "poisson",
                TinyMlModel::MobileNetV2,
                TrafficSource::new(TrafficConfig::poisson(4.0).with_seed(1), 25),
            ))
            .tenant(
                TenantSpec::new(
                    "bursty",
                    TinyMlModel::MobileNetV2,
                    TrafficSource::new(TrafficConfig::bursty(8.0, 0.3, 2.0, 5.0), 25),
                )
                .qos(QosClass::best_effort().with_priority(2)),
            )
            .build()
            .unwrap();
        let mut pacer = Pacer::new(Duration::from_micros(50));
        let (serve, load) = serve_paced(&mut server, &mut pacer).unwrap();
        assert_eq!(serve.tenants.len(), 2);
        assert_eq!(serve.total_executed(), 50);
        assert!(load.slices > 0);
        assert!(load.offered_load > 0.0);
        assert!(load.load_fidelity() > 0.0);
    }
}
