//! The facade error: one enum over every layer's failure modes.
//!
//! Five PRs of growth left each layer with its own error type —
//! [`CostModelError`] from the cost model, [`BackendError`] from
//! execution, [`TraceError`] from workload generation,
//! [`SessionError`] from the batch facade, [`EngineError`] from the
//! streaming engine and [`ServerError`] from the multi-tenant server.
//! Those stay public (library code matching a *specific* layer should
//! keep doing so), but application code threading several layers
//! through one `?` now has a single home: [`enum@Error`] wraps them
//! all, with [`From`] impls in both directions of the layering and
//! [`std::error::Error::source`] chaining down to the root cause.
//!
//! ```
//! use hhpim::{Error, Result};
//! use hhpim::session::SessionBuilder;
//! use hhpim_workload::Scenario;
//!
//! fn serve() -> Result<usize> {
//!     // SessionError and EngineError both convert into Error, so one
//!     // signature covers builder and streaming failures alike.
//!     let mut session = SessionBuilder::new().scenario(Scenario::Random).build()?;
//!     let artifacts = session.run()?;
//!     Ok(artifacts.primary().records.len())
//! }
//! assert_eq!(serve().unwrap(), 50);
//! ```

use crate::artifact::ArtifactError;
use crate::backend::BackendError;
use crate::cost::CostModelError;
use crate::engine::EngineError;
use crate::server::ServerError;
use crate::session::SessionError;
use hhpim_workload::TraceError;
use std::fmt;

/// `Result` with the facade [`enum@Error`] — the signature for
/// application code crossing layer boundaries.
pub type Result<T> = std::result::Result<T, Error>;

/// Any failure the `hhpim` stack can produce, by originating layer.
/// See the [module docs](self) for when to match this versus the
/// per-layer enums it wraps.
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// The model does not fit the architecture, or a placement was
    /// rejected ([`CostModelError`]).
    Cost(CostModelError),
    /// An execution backend failed to build or run ([`BackendError`]).
    Backend(BackendError),
    /// A workload trace could not be generated or replayed
    /// ([`TraceError`]).
    Trace(TraceError),
    /// The batch facade failed to build or drive a session
    /// ([`SessionError`]).
    Session(SessionError),
    /// The streaming engine rejected a load or poisoned its stream
    /// ([`EngineError`]).
    Engine(EngineError),
    /// The multi-tenant server failed to build or serve
    /// ([`ServerError`]).
    Server(ServerError),
    /// A persistent placement artifact failed to save, load or merge
    /// ([`ArtifactError`]).
    Artifact(ArtifactError),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Cost(e) => write!(f, "cost model: {e}"),
            Error::Backend(e) => write!(f, "backend: {e}"),
            Error::Trace(e) => write!(f, "trace: {e}"),
            Error::Session(e) => write!(f, "session: {e}"),
            Error::Engine(e) => write!(f, "engine: {e}"),
            Error::Server(e) => write!(f, "server: {e}"),
            Error::Artifact(e) => write!(f, "artifact: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Cost(e) => Some(e),
            Error::Backend(e) => Some(e),
            Error::Trace(e) => Some(e),
            Error::Session(e) => Some(e),
            Error::Engine(e) => Some(e),
            Error::Server(e) => Some(e),
            Error::Artifact(e) => Some(e),
        }
    }
}

impl From<CostModelError> for Error {
    fn from(e: CostModelError) -> Self {
        Error::Cost(e)
    }
}

impl From<BackendError> for Error {
    fn from(e: BackendError) -> Self {
        Error::Backend(e)
    }
}

impl From<TraceError> for Error {
    fn from(e: TraceError) -> Self {
        Error::Trace(e)
    }
}

impl From<SessionError> for Error {
    fn from(e: SessionError) -> Self {
        Error::Session(e)
    }
}

impl From<EngineError> for Error {
    fn from(e: EngineError) -> Self {
        Error::Engine(e)
    }
}

impl From<ServerError> for Error {
    fn from(e: ServerError) -> Self {
        Error::Server(e)
    }
}

impl From<ArtifactError> for Error {
    fn from(e: ArtifactError) -> Self {
        Error::Artifact(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::BackendKind;
    use std::error::Error as StdError;

    #[test]
    fn every_layer_converts_and_chains_to_its_source() {
        let cases: Vec<Error> = vec![
            CostModelError::ZeroGroupSize.into(),
            BackendError::Cost(CostModelError::ZeroGroupSize).into(),
            TraceError::Empty.into(),
            SessionError::NoTraceSource.into(),
            EngineError::InvalidLoad {
                slice: 0,
                load: 2.0,
            }
            .into(),
            ServerError::NoTenants.into(),
            ArtifactError::Version {
                found: 2,
                supported: 1,
            }
            .into(),
        ];
        for error in &cases {
            assert!(
                error.source().is_some(),
                "{error}: facade errors chain to the layer error"
            );
            assert!(!error.to_string().is_empty());
        }
    }

    #[test]
    fn question_mark_crosses_layers_in_one_signature() {
        fn build_and_stream() -> Result<usize> {
            let backend = crate::session::SessionBuilder::new().build_analytic()?;
            let mut engine = crate::engine::Engine::new(backend);
            engine.submit(0.5)?;
            engine.step()?;
            let reports = engine.drain()?;
            Ok(reports[0].records.len())
        }
        assert_eq!(build_and_stream().unwrap(), 1);
    }

    #[test]
    fn nested_sources_reach_the_root_cause() {
        let root = CostModelError::ZeroGroupSize;
        let error: Error = SessionError::Cost(root).into();
        let layer = error.source().expect("session layer");
        assert!(
            layer.source().is_some(),
            "the chain continues below the session error"
        );
    }

    #[test]
    fn engine_backend_errors_identify_the_backend() {
        let error: Error = EngineError::Backend {
            backend: BackendKind::Analytic,
            error: BackendError::Cost(CostModelError::ZeroGroupSize),
        }
        .into();
        assert!(error.to_string().contains("analytic"));
    }
}
