//! The streaming execution engine: slices in, events out.
//!
//! HH-PIM's core contribution is *online* adaptation — the runtime
//! consults the allocation LUT as queue depth changes and migrates
//! weights between HP-MPIM and LP-FPIM mid-flight — yet until this
//! module the public API was batch-only: a [`crate::TraceSource`] had
//! to hand over a complete finite [`LoadTrace`] and
//! [`crate::Session::run`] blocked until everything had executed.
//! [`Engine`] inverts that shape into an incremental submit/observe
//! loop:
//!
//! ```text
//!   submit(load) ──▶ bounded queue ──step()──▶ every backend's
//!        │                                     step_slice()
//!        ▼                                          │
//!   SubmitOutcome::Accepted | Deferred              ▼
//!                                    EngineEvent stream
//!                                    (iterator + EngineObservers)
//!                                          │
//!                              drain() ──▶ Vec<ExecutionReport>
//! ```
//!
//! Both execution backends implement the resumable
//! [`ExecutionBackend::step_slice`] path, so the engine owns the
//! execution loop that used to be monolithic inside
//! `Processor::run_trace` and `CycleBackend::execute`: the LUT lookup
//! / re-placement decision happens per step behind the engine
//! boundary, surfaced as [`EngineEvent::Replacement`]. The batch
//! facade ([`crate::Session::run`], `execute`) is now a loop over this
//! API and stays bit-identical to the former monolithic runs.
//!
//! Traces no longer need a known length: [`StreamSource`] generates
//! loads forever, and [`Engine::pump`] executes as many slices of it
//! as the caller wants before coming back for more.
//!
//! # Examples
//!
//! Drive the analytic backend slice by slice and watch the events:
//!
//! ```
//! use hhpim::engine::{Engine, EngineEvent, SubmitOutcome};
//! use hhpim::session::SessionBuilder;
//!
//! let backend = SessionBuilder::new().build_analytic().unwrap();
//! let mut engine = Engine::new(backend);
//! for slice in 0..4 {
//!     let load = if slice % 2 == 0 { 1.0 } else { 0.1 };
//!     assert_eq!(engine.submit(load).unwrap(), SubmitOutcome::Accepted);
//!     engine.step().unwrap();
//! }
//! let reports = engine.drain().unwrap();
//! assert_eq!(reports[0].records.len(), 4);
//! let events: Vec<EngineEvent> = engine.events().collect();
//! assert!(events
//!     .iter()
//!     .any(|e| matches!(e, EngineEvent::SliceCompleted { .. })));
//! assert!(events
//!     .iter()
//!     .any(|e| matches!(e, EngineEvent::Replacement { .. })));
//! ```
//!
//! Serve an unbounded load stream in batches of ten slices:
//!
//! ```
//! use hhpim::engine::{Engine, StreamSource};
//! use hhpim::session::SessionBuilder;
//!
//! let mut engine = Engine::new(SessionBuilder::new().build_analytic().unwrap());
//! let mut live = StreamSource::new(|slice| if slice % 7 == 0 { 0.9 } else { 0.2 });
//! engine.pump(&mut live, Some(10)).unwrap();
//! engine.pump(&mut live, Some(10)).unwrap(); // the stream has no end; keep going
//! assert_eq!(engine.slices_executed(), 20);
//! ```

use crate::backend::{
    BackendError, BackendKind, EnergyCat, ExecutionBackend, ExecutionReport, MigrationRecord,
    SliceRecord,
};
use crate::cost::CostParams;
use crate::space::{MovementLeg, Placement};
use hhpim_mem::{Energy, EnergyLedger};
use hhpim_pim::RunReport;
use hhpim_sim::{SimDuration, SimTime};
use hhpim_workload::LoadTrace;
use std::collections::VecDeque;
use std::fmt;

/// Loads a fresh engine will buffer before deferring submissions.
pub const DEFAULT_QUEUE_CAPACITY: usize = 64;

/// Pending [`EngineEvent`]s kept for the iterator before the oldest
/// are dropped (observers always see every event at emission time).
/// Override per engine with [`Engine::with_event_capacity`].
pub const DEFAULT_EVENT_CAPACITY: usize = 8192;

/// Whether [`Engine::submit`] enqueued the load.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum SubmitOutcome {
    /// The load was enqueued and will execute on a later
    /// [`Engine::step`].
    Accepted,
    /// The bounded queue is full — the load was *not* enqueued. Step
    /// the engine (or [`Engine::drain`] it) and resubmit.
    Deferred,
}

impl SubmitOutcome {
    /// Whether the load was enqueued.
    pub fn is_accepted(self) -> bool {
        self == SubmitOutcome::Accepted
    }
}

/// One observation from the streaming run, tagged with the backend
/// that produced it. Per slice and backend, events are emitted in a
/// fixed order: [`EngineEvent::Replacement`] →
/// [`EngineEvent::Migration`] → [`EngineEvent::SliceCompleted`] →
/// [`EngineEvent::DeadlineMiss`] → [`EngineEvent::IdleAccrued`]
/// (absent stages are skipped); backends are visited in engine order.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum EngineEvent {
    /// A slice finished executing on one backend.
    SliceCompleted {
        /// Backend that executed the slice.
        backend: BackendKind,
        /// The slice's full record (index, placement, timing, energy).
        record: SliceRecord,
    },
    /// The placement policy decided to re-place at a slice boundary —
    /// the LUT lookup (or greedy repair) behind the engine boundary.
    Replacement {
        /// Backend that made the move.
        backend: BackendKind,
        /// Slice whose start pays the movement.
        slice: usize,
        /// Placement before the move.
        from: Placement,
        /// Placement after the move.
        to: Placement,
        /// The deterministic movement plan both backends execute.
        legs: Vec<MovementLeg>,
    },
    /// The weight migration traffic realizing a replacement.
    Migration {
        /// Backend that moved the weights.
        backend: BackendKind,
        /// The migration's measured/modelled traffic.
        record: MigrationRecord,
    },
    /// A slice's tasks overran their per-task deadline.
    DeadlineMiss {
        /// Backend that missed.
        backend: BackendKind,
        /// The offending slice.
        slice: usize,
        /// Tasks the slice had to absorb.
        n_tasks: u32,
        /// Per-task latency achieved.
        task_time: SimDuration,
        /// Per-task budget after movement overhead.
        t_constraint: SimDuration,
    },
    /// Idle time accrued in a slice after movement and compute — the
    /// window bank-level gating converts into leakage savings.
    IdleAccrued {
        /// Backend that idled.
        backend: BackendKind,
        /// The slice in question.
        slice: usize,
        /// Idle share of the slice.
        idle: SimDuration,
    },
}

/// A callback receiving every [`EngineEvent`] at emission time,
/// before it enters the iterator buffer.
pub trait EngineObserver {
    /// Called once per event, in emission order.
    fn on_event(&mut self, event: &EngineEvent);
}

impl<F: FnMut(&EngineEvent)> EngineObserver for F {
    fn on_event(&mut self, event: &EngineEvent) {
        self(event)
    }
}

/// Errors surfaced while streaming slices through an [`Engine`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum EngineError {
    /// A submitted load is not a finite value in `[0, 1]`.
    InvalidLoad {
        /// Index the slice would have had.
        slice: usize,
        /// The offending load.
        load: f64,
    },
    /// A backend failed mid-stream; the stream is poisoned — its
    /// queued loads and buffered events are discarded, and the next
    /// `step`/`drain` restarts every backend from slice 0.
    Backend {
        /// The failing backend.
        backend: BackendKind,
        /// Its error.
        error: BackendError,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::InvalidLoad { slice, load } => {
                write!(f, "submitted load {load} for slice {slice} outside [0, 1]")
            }
            EngineError::Backend { backend, error } => {
                write!(f, "backend `{backend}` failed mid-stream: {error}")
            }
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Backend { error, .. } => Some(error),
            _ => None,
        }
    }
}

/// What one [`ExecutionBackend::step_slice`] call yields back to the
/// engine: the slice's record plus the boundary decisions that
/// produced it.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct SliceOutcome {
    /// The completed slice's record (also appended to the backend's
    /// final [`ExecutionReport`]).
    pub record: SliceRecord,
    /// The re-placement decision taken at the slice boundary, if the
    /// policy moved (`None` on the free boot adoption).
    pub replacement: Option<ReplacementDecision>,
    /// The migration traffic realizing the replacement, if any.
    pub migration: Option<MigrationRecord>,
    /// Idle time left in the slice after movement and compute.
    pub idle: SimDuration,
}

impl SliceOutcome {
    /// An outcome with no boundary decisions — the struct is
    /// `#[non_exhaustive]`, so out-of-crate [`ExecutionBackend`]
    /// implementations build outcomes through this constructor and
    /// the `with_*` setters instead of literal syntax.
    pub fn new(record: SliceRecord, idle: SimDuration) -> Self {
        SliceOutcome {
            record,
            replacement: None,
            migration: None,
            idle,
        }
    }

    /// Attaches the boundary re-placement decision.
    pub fn with_replacement(mut self, decision: ReplacementDecision) -> Self {
        self.replacement = Some(decision);
        self
    }

    /// Attaches the migration traffic realizing the replacement.
    pub fn with_migration(mut self, record: MigrationRecord) -> Self {
        self.migration = Some(record);
        self
    }
}

/// A placement change decided at a slice boundary — the output of the
/// LUT lookup (or whatever policy is bound) before any traffic moves.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplacementDecision {
    /// Placement before the move.
    pub from: Placement,
    /// Placement after the move.
    pub to: Placement,
    /// The deterministic leg plan ([`crate::movement_legs`]) both
    /// backends execute for this transition.
    pub legs: Vec<MovementLeg>,
}

/// An unbounded load source: a closure sampled at an ever-advancing
/// slice cursor. Unlike [`crate::TraceSource`], it never produces a
/// finite trace — it demonstrates that the streaming engine does not
/// need to know a workload's length up front. Feed it to
/// [`Engine::pump`], or pull [`StreamSource::next_load`] yourself.
pub struct StreamSource<F> {
    f: F,
    cursor: usize,
}

impl<F: FnMut(usize) -> f64> StreamSource<F> {
    /// A source sampling `f(slice_index)` forever.
    pub fn new(f: F) -> Self {
        StreamSource { f, cursor: 0 }
    }

    /// The next slice index the source will sample.
    pub fn position(&self) -> usize {
        self.cursor
    }

    /// Samples the next load and advances the cursor.
    pub fn next_load(&mut self) -> f64 {
        let load = (self.f)(self.cursor);
        self.cursor += 1;
        load
    }
}

impl<F> fmt::Debug for StreamSource<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StreamSource")
            .field("cursor", &self.cursor)
            .finish_non_exhaustive()
    }
}

impl<F: FnMut(usize) -> f64> Iterator for StreamSource<F> {
    type Item = f64;

    /// Never `None`: the stream is unbounded. Take what you need
    /// (`by_ref().take(n)`) or use [`Engine::pump`].
    fn next(&mut self) -> Option<f64> {
        Some(self.next_load())
    }
}

/// The streaming, event-driven execution engine. See the
/// [module docs](self) for the API shape and examples.
///
/// An engine is reusable: after [`Engine::drain`] returns the reports
/// it resets to slice 0 and the next [`Engine::step`] opens a fresh
/// run on every backend (backends are rerunnable by contract).
pub struct Engine {
    backends: Vec<Box<dyn ExecutionBackend>>,
    max_tasks: u32,
    queue_capacity: usize,
    event_capacity: usize,
    queue: VecDeque<f64>,
    next_slice: usize,
    started: bool,
    events: VecDeque<EngineEvent>,
    events_dropped: u64,
    observers: Vec<Box<dyn EngineObserver>>,
    /// Reused per batch by [`Engine::step_n`] so steady-state stepping
    /// allocates nothing for outcome transport.
    outcome_scratch: Vec<SliceOutcome>,
}

impl fmt::Debug for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Engine")
            .field("backends", &self.backend_kinds())
            .field("queued", &self.queue.len())
            .field("next_slice", &self.next_slice)
            .field("started", &self.started)
            .field("pending_events", &self.events.len())
            .field("observers", &self.observers.len())
            .finish()
    }
}

impl Engine {
    /// An engine over one backend with the default queue capacity.
    pub fn new(backend: impl ExecutionBackend + 'static) -> Self {
        Self::from_backends(vec![Box::new(backend)])
    }

    /// An engine over several backends (every submitted slice executes
    /// on each of them, in order — the streaming analogue of
    /// [`crate::Session::compare`]). The per-slice task cap comes from
    /// the first backend's runtime configuration.
    pub fn from_backends(backends: Vec<Box<dyn ExecutionBackend>>) -> Self {
        let max_tasks = backends
            .first()
            .map(|b| b.runtime_config().max_tasks)
            .unwrap_or(CostParams::default().max_tasks_per_slice);
        Engine {
            backends,
            max_tasks,
            queue_capacity: DEFAULT_QUEUE_CAPACITY,
            event_capacity: DEFAULT_EVENT_CAPACITY,
            queue: VecDeque::new(),
            next_slice: 0,
            started: false,
            events: VecDeque::new(),
            events_dropped: 0,
            observers: Vec::new(),
            outcome_scratch: Vec::new(),
        }
    }

    /// Sets the bounded queue's capacity (clamped to at least 1);
    /// submissions beyond it come back [`SubmitOutcome::Deferred`].
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// Sets the event-iterator buffer's capacity (clamped to at least
    /// 1; default [`DEFAULT_EVENT_CAPACITY`]). When the buffer is
    /// full the oldest pending event is dropped and
    /// [`Engine::events_dropped`] counts it; observers always see
    /// every event regardless.
    pub fn with_event_capacity(mut self, capacity: usize) -> Self {
        self.event_capacity = capacity.max(1);
        self
    }

    /// Registers an observer that receives every future event at
    /// emission time (events also remain iterable via
    /// [`Engine::events`]).
    ///
    /// Observer lifetime is an explicit contract: observers are bound
    /// to the *engine*, not to any one stream. They survive
    /// [`Engine::drain`] and the error poison path unchanged, so a
    /// metrics sink registered once keeps receiving events across
    /// every stream the engine serves. Detach them explicitly with
    /// [`Engine::clear_observers`].
    pub fn observe(&mut self, observer: impl EngineObserver + 'static) {
        self.observers.push(Box::new(observer));
    }

    /// Detaches every registered observer (the other half of the
    /// [`Engine::observe`] lifetime contract: nothing else ever
    /// removes them).
    pub fn clear_observers(&mut self) {
        self.observers.clear();
    }

    /// Number of currently registered observers.
    pub fn observer_count(&self) -> usize {
        self.observers.len()
    }

    /// The configured backends' kinds, in execution order.
    pub fn backend_kinds(&self) -> Vec<BackendKind> {
        self.backends.iter().map(|b| b.kind()).collect()
    }

    /// Consumes the engine, handing the backends back (used by the
    /// batch facade, which borrows its session's backends per run).
    pub fn into_backends(self) -> Vec<Box<dyn ExecutionBackend>> {
        self.backends
    }

    /// The per-slice task cap used to convert loads to task counts.
    pub fn max_tasks(&self) -> u32 {
        self.max_tasks
    }

    /// Loads accepted but not yet executed.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Slices executed in the current stream (resets when
    /// [`Engine::drain`] closes it, or when a backend error poisons
    /// it).
    pub fn slices_executed(&self) -> usize {
        self.next_slice
    }

    /// Events dropped from the iterator buffer because nobody drained
    /// [`Engine::events`] (observers still saw them). The counter is
    /// per stream: [`Engine::drain`] and the error poison path reset
    /// it to zero along with the rest of the stream state, so a reused
    /// engine never reports a previous stream's losses.
    pub fn events_dropped(&self) -> u64 {
        self.events_dropped
    }

    /// Offers one load slice to the bounded queue.
    ///
    /// # Errors
    ///
    /// [`EngineError::InvalidLoad`] when `load` is not a finite value
    /// in `[0, 1]` (the same contract as [`LoadTrace::replay`]).
    pub fn submit(&mut self, load: f64) -> Result<SubmitOutcome, EngineError> {
        if !load.is_finite() || !(0.0..=1.0).contains(&load) {
            return Err(EngineError::InvalidLoad {
                slice: self.next_slice + self.queue.len(),
                load,
            });
        }
        if self.queue.len() >= self.queue_capacity {
            return Ok(SubmitOutcome::Deferred);
        }
        self.queue.push_back(load);
        Ok(SubmitOutcome::Accepted)
    }

    /// [`Engine::submit`] that makes room by stepping the engine when
    /// the queue is full — never returns [`SubmitOutcome::Deferred`].
    ///
    /// # Errors
    ///
    /// See [`Engine::submit`] and [`Engine::step`].
    pub fn submit_blocking(&mut self, load: f64) -> Result<(), EngineError> {
        loop {
            match self.submit(load)? {
                SubmitOutcome::Accepted => return Ok(()),
                SubmitOutcome::Deferred => {
                    // Make room by draining the run at the queue head
                    // in one batched call rather than slice by slice.
                    self.step_n(self.queue.len().max(1))?;
                }
            }
        }
    }

    /// Executes the oldest queued slice on every backend, emitting
    /// events. Returns the executed slice's index, or `None` when the
    /// queue is empty.
    ///
    /// # Errors
    ///
    /// [`EngineError::Backend`] when a backend fails; the stream is
    /// then poisoned and the next `step` restarts every backend.
    pub fn step(&mut self) -> Result<Option<usize>, EngineError> {
        let Some(load) = self.queue.pop_front() else {
            return Ok(None);
        };
        self.ensure_started()?;
        let slice = self.next_slice;
        let n_tasks = LoadTrace::task_count_for(load, self.max_tasks);
        for i in 0..self.backends.len() {
            let kind = self.backends[i].kind();
            let outcome = match self.backends[i].step_slice(n_tasks) {
                Ok(outcome) => outcome,
                Err(error) => {
                    // Poison: discard the aborted stream wholesale —
                    // queued loads and buffered events belong to a run
                    // that will never produce a report, and the next
                    // step restarts every backend at slice 0, so the
                    // engine's counter resets in lockstep.
                    self.started = false;
                    self.next_slice = 0;
                    self.queue.clear();
                    self.events.clear();
                    self.events_dropped = 0;
                    return Err(EngineError::Backend {
                        backend: kind,
                        error,
                    });
                }
            };
            self.emit_outcome(kind, slice, n_tasks, outcome);
        }
        self.next_slice += 1;
        Ok(Some(slice))
    }

    /// Executes up to `max_slices` queued slices in one call, batching
    /// runs of equal-task-count loads into a single
    /// [`ExecutionBackend::step_n`] drain per backend. Returns the
    /// number of slices executed (0 when the queue is empty).
    ///
    /// Semantics are identical to calling [`Engine::step`] in a loop —
    /// same events in the same order, same observer notifications, same
    /// poison behavior on failure — but a single-backend engine pays
    /// the per-call run bookkeeping once per *run* instead of once per
    /// slice, and outcomes travel through a reused scratch buffer
    /// instead of fresh allocations. Engines comparing several backends
    /// fall back to slice-at-a-time stepping to preserve the
    /// interleaved per-backend event order.
    ///
    /// # Errors
    ///
    /// [`EngineError::Backend`] when a backend fails; slices completed
    /// before the failure have already emitted their events, then the
    /// stream is poisoned exactly as by [`Engine::step`].
    pub fn step_n(&mut self, max_slices: usize) -> Result<usize, EngineError> {
        if self.backends.len() != 1 {
            let mut executed = 0usize;
            while executed < max_slices && self.step()?.is_some() {
                executed += 1;
            }
            return Ok(executed);
        }
        let mut executed = 0usize;
        while executed < max_slices {
            let Some(&front) = self.queue.front() else {
                break;
            };
            let n_tasks = LoadTrace::task_count_for(front, self.max_tasks);
            // Length of the equal-task-count run at the queue head.
            let mut run_len = 0usize;
            for &load in self.queue.iter() {
                if run_len >= max_slices - executed
                    || LoadTrace::task_count_for(load, self.max_tasks) != n_tasks
                {
                    break;
                }
                run_len += 1;
            }
            self.ensure_started()?;
            self.queue.drain(..run_len);
            let mut scratch = std::mem::take(&mut self.outcome_scratch);
            scratch.clear();
            let kind = self.backends[0].kind();
            let result = self.backends[0].step_n(n_tasks, run_len as u32, &mut scratch);
            let completed = scratch.len();
            // Slices completed before any failure emit their events,
            // exactly as sequential stepping would have.
            for outcome in scratch.drain(..) {
                let slice = self.next_slice;
                self.emit_outcome(kind, slice, n_tasks, outcome);
                self.next_slice += 1;
            }
            self.outcome_scratch = scratch;
            if let Err(error) = result {
                self.started = false;
                self.next_slice = 0;
                self.queue.clear();
                self.events.clear();
                self.events_dropped = 0;
                return Err(EngineError::Backend {
                    backend: kind,
                    error,
                });
            }
            executed += completed;
        }
        Ok(executed)
    }

    /// Executes every queued slice, closes the stream and returns one
    /// report per backend (builder order). The engine then resets to
    /// slice 0, ready for a fresh stream: the slice counter and the
    /// [`Engine::events_dropped`] counter restart at zero, while
    /// registered observers and any undrained [`Engine::events`]
    /// survive (see [`Engine::observe`] for the lifetime contract).
    ///
    /// # Errors
    ///
    /// See [`Engine::step`]; backend finalization errors surface as
    /// [`EngineError::Backend`].
    pub fn drain(&mut self) -> Result<Vec<ExecutionReport>, EngineError> {
        while self.step_n(usize::MAX)? > 0 {}
        // A zero-slice drain still opens a stream so there is one to
        // close; backends return an empty (but well-formed) report.
        self.ensure_started()?;
        let mut reports = Vec::with_capacity(self.backends.len());
        for backend in &mut self.backends {
            let kind = backend.kind();
            reports.push(
                backend
                    .finish_stream()
                    .map_err(|error| EngineError::Backend {
                        backend: kind,
                        error,
                    })?,
            );
        }
        self.started = false;
        self.next_slice = 0;
        self.events_dropped = 0;
        Ok(reports)
    }

    /// Feeds a complete [`LoadTrace`] into the queue — the adapter
    /// that lets any [`crate::TraceSource`] drive the engine. Slices
    /// beyond the queue capacity are executed on the fly
    /// (backpressure is honored by stepping, not by growing the
    /// queue); call [`Engine::drain`] for the reports.
    ///
    /// # Errors
    ///
    /// See [`Engine::step`] (trace loads are pre-validated, so
    /// [`EngineError::InvalidLoad`] cannot occur here).
    pub fn ingest(&mut self, trace: &LoadTrace) -> Result<(), EngineError> {
        for &load in trace.loads() {
            self.submit_blocking(load)?;
        }
        Ok(())
    }

    /// Serves an unbounded [`StreamSource`]: pulls loads, executes
    /// them, and leaves the queue empty. `max_steps` makes the
    /// unbounded-source semantics explicit at the call site:
    ///
    /// * `Some(n)` — pull and execute exactly `n` slices, then return
    ///   `Ok(n)`. Call repeatedly to keep serving the stream.
    /// * `None` — serve the source *forever*. The source never ends by
    ///   construction, so this only returns on error; it is the
    ///   run-loop form for callers whose process lifetime *is* the
    ///   stream.
    ///
    /// ## Termination contract
    ///
    /// `pump(source, None)` **does not terminate** on success — an
    /// unbounded [`StreamSource`] (a closure, or a live
    /// [`crate::TrafficEngine`] via [`crate::stream`]) has no end, and
    /// the engine will not invent one. The only ways out are an error
    /// (`Err` poisons and returns) or an external budget: pass
    /// `Some(n)` to stop after exactly `n` pulled-and-executed slices.
    /// A budgeted pump is exact and lossless: it pulls exactly `n`
    /// loads (the source's cursor advances by `n`, no read-ahead),
    /// executes all of them before returning, and every per-slice
    /// event is emitted — observers see all `n`, and with an event
    /// buffer of capacity ≥ the emitted count,
    /// [`Engine::events_dropped`] stays 0.
    ///
    /// # Errors
    ///
    /// [`EngineError::InvalidLoad`] when the source produces a load
    /// outside `[0, 1]`; see [`Engine::step`] for backend failures.
    pub fn pump<F: FnMut(usize) -> f64>(
        &mut self,
        source: &mut StreamSource<F>,
        max_steps: Option<usize>,
    ) -> Result<usize, EngineError> {
        let mut executed = 0usize;
        loop {
            if max_steps.is_some_and(|n| executed >= n) {
                break;
            }
            let load = source.next_load();
            self.submit_blocking(load)?;
            executed += 1;
        }
        while self.step_n(usize::MAX)? > 0 {}
        Ok(executed)
    }

    /// The old fixed-count form of [`Engine::pump`].
    ///
    /// # Errors
    ///
    /// See [`Engine::pump`].
    #[deprecated(
        note = "use `pump(source, Some(slices))`; `pump(source, None)` serves the source forever"
    )]
    pub fn pump_slices<F: FnMut(usize) -> f64>(
        &mut self,
        source: &mut StreamSource<F>,
        slices: usize,
    ) -> Result<(), EngineError> {
        self.pump(source, Some(slices)).map(|_| ())
    }

    /// Drains the pending event buffer as an iterator (events already
    /// delivered to observers are not replayed).
    pub fn events(&mut self) -> std::collections::vec_deque::Drain<'_, EngineEvent> {
        self.events.drain(..)
    }

    fn ensure_started(&mut self) -> Result<(), EngineError> {
        if self.started {
            return Ok(());
        }
        for backend in &mut self.backends {
            let kind = backend.kind();
            backend
                .begin_stream()
                .map_err(|error| EngineError::Backend {
                    backend: kind,
                    error,
                })?;
        }
        self.started = true;
        Ok(())
    }

    fn emit_outcome(
        &mut self,
        backend: BackendKind,
        slice: usize,
        n_tasks: u32,
        outcome: SliceOutcome,
    ) {
        if let Some(decision) = outcome.replacement {
            self.emit(EngineEvent::Replacement {
                backend,
                slice,
                from: decision.from,
                to: decision.to,
                legs: decision.legs,
            });
        }
        if let Some(record) = outcome.migration {
            self.emit(EngineEvent::Migration { backend, record });
        }
        let missed = !outcome.record.deadline_met;
        let (task_time, t_constraint) = (outcome.record.task_time, outcome.record.t_constraint);
        self.emit(EngineEvent::SliceCompleted {
            backend,
            record: outcome.record,
        });
        if missed {
            self.emit(EngineEvent::DeadlineMiss {
                backend,
                slice,
                n_tasks,
                task_time,
                t_constraint,
            });
        }
        if outcome.idle > SimDuration::ZERO {
            self.emit(EngineEvent::IdleAccrued {
                backend,
                slice,
                idle: outcome.idle,
            });
        }
    }

    fn emit(&mut self, event: EngineEvent) {
        for observer in &mut self.observers {
            observer.on_event(&event);
        }
        if self.events.len() >= self.event_capacity {
            self.events.pop_front();
            self.events_dropped += 1;
        }
        self.events.push_back(event);
    }
}

// ---------------------------------------------------------------------
// Per-backend incremental run state. These structs hold everything the
// former monolithic run loops kept in local variables, so a run can
// pause between slices: the engine (or the batch facade's loop) owns
// *when* the next slice executes, the backend owns *how*.

/// Incremental state of one analytic streaming run (the locals of the
/// former `Processor::run_trace` loop).
#[derive(Debug, Clone)]
pub(crate) struct AnalyticRun {
    pub(crate) ledger: EnergyLedger<EnergyCat>,
    pub(crate) records: Vec<SliceRecord>,
    pub(crate) migrations: Vec<MigrationRecord>,
    /// Placement of the previous slice; `None` before the first slice
    /// (whose placement is adopted for free, as at boot).
    pub(crate) prev: Option<Placement>,
    pub(crate) task_seconds: SimDuration,
    pub(crate) dynamic: Energy,
    pub(crate) total_tasks: u64,
    pub(crate) slice: usize,
    /// Memoized policy decisions, indexed by task count (policies are
    /// pure in `n_tasks`, so one lookup per count is enough per run).
    pub(crate) placements: Vec<Option<Placement>>,
    /// Memoized slice evaluations keyed by `(from, n_tasks)` — the
    /// whole per-step cost-model computation collapses to replaying a
    /// small cached add-list once a transition has been seen.
    pub(crate) steps: Vec<crate::runtime::StepMemo>,
}

impl Default for AnalyticRun {
    fn default() -> Self {
        AnalyticRun {
            ledger: EnergyLedger::new(),
            records: Vec::new(),
            migrations: Vec::new(),
            prev: None,
            task_seconds: SimDuration::ZERO,
            dynamic: Energy::ZERO,
            total_tasks: 0,
            slice: 0,
            placements: Vec::new(),
            steps: Vec::new(),
        }
    }
}

/// Incremental state of one cycle-level streaming run (the locals and
/// sim-threaded state of the former `CycleBackend::execute`).
#[derive(Debug)]
pub(crate) struct CycleRun {
    pub(crate) records: Vec<SliceRecord>,
    pub(crate) migrations: Vec<MigrationRecord>,
    pub(crate) accs: Vec<LayerAcc>,
    pub(crate) migration_dyn: EnergyLedger<hhpim_pim::EnergyCat>,
    pub(crate) prev_total: Energy,
    pub(crate) start_now: SimTime,
    pub(crate) start_report: RunReport,
    pub(crate) native_slice: SimDuration,
    pub(crate) booted: bool,
    pub(crate) slice: usize,
}

/// Per-layer accumulator (native machine units, scaled at report
/// time).
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct LayerAcc {
    pub(crate) macs: u64,
    pub(crate) time: SimDuration,
    pub(crate) energy_pj: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::SessionBuilder;
    use hhpim_workload::{Scenario, ScenarioParams};

    fn analytic_engine() -> Engine {
        Engine::new(SessionBuilder::new().build_analytic().unwrap())
    }

    #[test]
    fn submit_step_drain_round_trip() {
        let mut engine = analytic_engine();
        for i in 0..5 {
            assert!(engine
                .submit(if i % 2 == 0 { 1.0 } else { 0.1 })
                .unwrap()
                .is_accepted());
        }
        assert_eq!(engine.pending(), 5);
        assert_eq!(engine.step().unwrap(), Some(0));
        assert_eq!(engine.pending(), 4);
        let reports = engine.drain().unwrap();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].records.len(), 5);
        // Drained engines reset and can stream again.
        assert_eq!(engine.slices_executed(), 0);
        engine.submit(0.5).unwrap();
        let again = engine.drain().unwrap();
        assert_eq!(again[0].records.len(), 1);
    }

    #[test]
    fn bounded_queue_defers_and_recovers() {
        let mut engine = analytic_engine().with_queue_capacity(2);
        assert!(engine.submit(0.5).unwrap().is_accepted());
        assert!(engine.submit(0.5).unwrap().is_accepted());
        assert_eq!(engine.submit(0.5).unwrap(), SubmitOutcome::Deferred);
        assert_eq!(engine.pending(), 2, "deferred loads are not enqueued");
        engine.step().unwrap();
        assert!(engine.submit(0.5).unwrap().is_accepted());
        let reports = engine.drain().unwrap();
        assert_eq!(reports[0].records.len(), 3);
    }

    #[test]
    fn invalid_loads_are_typed_errors() {
        let mut engine = analytic_engine();
        for bad in [-0.1, 1.5, f64::NAN, f64::INFINITY] {
            assert!(matches!(
                engine.submit(bad).unwrap_err(),
                EngineError::InvalidLoad { .. }
            ));
        }
        assert_eq!(engine.pending(), 0);
    }

    #[test]
    fn events_follow_the_documented_order() {
        let mut engine = analytic_engine();
        // Low → high forces a replacement (and its migration) at the
        // second slice on HH-PIM's LUT policy.
        engine.submit(0.1).unwrap();
        engine.submit(1.0).unwrap();
        engine.drain().unwrap();
        let events: Vec<EngineEvent> = engine.events().collect();
        let kinds: Vec<&'static str> = events
            .iter()
            .map(|e| match e {
                EngineEvent::SliceCompleted { .. } => "slice",
                EngineEvent::Replacement { .. } => "replace",
                EngineEvent::Migration { .. } => "migrate",
                EngineEvent::DeadlineMiss { .. } => "miss",
                EngineEvent::IdleAccrued { .. } => "idle",
            })
            .collect();
        // Slice 0: boot adoption is free (no replacement), mostly idle.
        // Slice 1: replacement → migration → completion.
        assert_eq!(
            kinds,
            vec!["slice", "idle", "replace", "migrate", "slice", "idle"],
            "{events:#?}"
        );
        // Replacement and migration agree on the transition.
        let (from, to) = events
            .iter()
            .find_map(|e| match e {
                EngineEvent::Replacement { from, to, .. } => Some((*from, *to)),
                _ => None,
            })
            .unwrap();
        let record = events
            .iter()
            .find_map(|e| match e {
                EngineEvent::Migration { record, .. } => Some(record.clone()),
                _ => None,
            })
            .unwrap();
        assert_eq!((record.from, record.to), (from, to));
        assert_eq!(record.slice, 1);
    }

    #[test]
    fn observers_see_every_event_in_order() {
        use std::sync::{Arc, Mutex};
        let seen = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        let mut engine = analytic_engine();
        engine.observe(move |event: &EngineEvent| {
            sink.lock().unwrap().push(event.clone());
        });
        engine.submit(0.3).unwrap();
        engine.submit(0.9).unwrap();
        engine.drain().unwrap();
        let buffered: Vec<EngineEvent> = engine.events().collect();
        assert_eq!(*seen.lock().unwrap(), buffered);
    }

    #[test]
    fn ingest_honors_backpressure_without_losing_slices() {
        let trace = LoadTrace::generate(
            Scenario::PeriodicSpike,
            ScenarioParams {
                slices: 10,
                ..ScenarioParams::default()
            },
        );
        let mut engine = analytic_engine().with_queue_capacity(3);
        engine.ingest(&trace).unwrap();
        let reports = engine.drain().unwrap();
        assert_eq!(reports[0].records.len(), 10);
    }

    #[test]
    fn stream_source_is_unbounded() {
        let mut source = StreamSource::new(|i| (i % 2) as f64);
        assert_eq!(source.position(), 0);
        let first: Vec<f64> = source.by_ref().take(4).collect();
        assert_eq!(first, vec![0.0, 1.0, 0.0, 1.0]);
        assert_eq!(source.position(), 4);
        assert_eq!(source.next_load(), 0.0, "the stream never ends");
    }

    /// A backend that fails on a chosen slice index, for exercising
    /// the engine's poison path.
    #[derive(Debug)]
    struct FailingBackend {
        inner: crate::backend::AnalyticBackend,
        fail_on: usize,
        stepped: usize,
    }

    impl ExecutionBackend for FailingBackend {
        fn kind(&self) -> BackendKind {
            self.inner.kind()
        }

        fn architecture(&self) -> crate::arch::Architecture {
            self.inner.architecture()
        }

        fn runtime_config(&self) -> &crate::runtime::RuntimeConfig {
            self.inner.runtime_config()
        }

        fn begin_stream(&mut self) -> Result<(), BackendError> {
            self.stepped = 0;
            self.inner.begin_stream()
        }

        fn step_slice(&mut self, n_tasks: u32) -> Result<SliceOutcome, BackendError> {
            if self.stepped == self.fail_on {
                return Err(BackendError::NoPimLayer {
                    model: hhpim_nn::TinyMlModel::MobileNetV2,
                });
            }
            self.stepped += 1;
            self.inner.step_slice(n_tasks)
        }

        fn finish_stream(&mut self) -> Result<ExecutionReport, BackendError> {
            self.inner.finish_stream()
        }
    }

    #[test]
    fn poisoned_stream_discards_state_and_restarts_cleanly() {
        let mut engine = Engine::new(FailingBackend {
            inner: SessionBuilder::new().build_analytic().unwrap(),
            fail_on: 2,
            stepped: 0,
        });
        for _ in 0..5 {
            engine.submit(0.5).unwrap();
        }
        assert_eq!(engine.step().unwrap(), Some(0));
        assert_eq!(engine.step().unwrap(), Some(1));
        let err = engine.step().unwrap_err();
        assert!(matches!(err, EngineError::Backend { .. }));
        // The aborted stream's state is gone: no stale loads, no stale
        // events, slice numbering back to zero.
        assert_eq!(engine.pending(), 0);
        assert_eq!(engine.slices_executed(), 0);
        assert_eq!(engine.events().count(), 0);
        // The engine restarts cleanly: a fresh stream runs from slice
        // 0 (the mock resets its own counter in begin_stream).
        engine.submit(0.5).unwrap();
        assert_eq!(engine.step().unwrap(), Some(0));
        let reports = engine.drain().unwrap();
        assert_eq!(reports[0].records.len(), 1);
        assert_eq!(reports[0].records[0].slice, 0);
    }

    #[test]
    fn observers_survive_drain_and_poison_by_contract() {
        use std::sync::{Arc, Mutex};
        let seen = Arc::new(Mutex::new(0usize));
        let sink = Arc::clone(&seen);
        let mut engine = analytic_engine();
        engine.observe(move |_: &EngineEvent| {
            *sink.lock().unwrap() += 1;
        });
        assert_eq!(engine.observer_count(), 1);
        engine.submit(0.5).unwrap();
        engine.drain().unwrap();
        let after_first = *seen.lock().unwrap();
        assert!(after_first > 0);
        // The observer is bound to the engine, not the stream: a
        // second stream keeps feeding it.
        engine.submit(0.5).unwrap();
        engine.drain().unwrap();
        assert!(*seen.lock().unwrap() > after_first);
        assert_eq!(engine.observer_count(), 1);
        engine.clear_observers();
        assert_eq!(engine.observer_count(), 0);
        let final_count = *seen.lock().unwrap();
        engine.submit(0.5).unwrap();
        engine.drain().unwrap();
        assert_eq!(*seen.lock().unwrap(), final_count, "detached");
    }

    #[test]
    fn drop_counter_is_per_stream_and_capacity_is_tunable() {
        let mut engine = analytic_engine().with_event_capacity(1);
        engine.submit(0.1).unwrap();
        engine.submit(1.0).unwrap();
        engine.drain().unwrap();
        // A capacity-1 buffer dropped everything but the last event of
        // the stream — but drain closed the stream, resetting the
        // per-stream counter.
        assert_eq!(engine.events_dropped(), 0);
        // Mid-stream the counter is live.
        engine.submit(0.1).unwrap();
        engine.submit(1.0).unwrap();
        while engine.step().unwrap().is_some() {}
        assert!(engine.events_dropped() > 0);
        assert!(engine.events().count() <= 1);
        engine.drain().unwrap();
        assert_eq!(engine.events_dropped(), 0);
    }

    #[test]
    fn pump_with_a_budget_executes_exactly_that_many() {
        let mut engine = analytic_engine();
        let mut live = StreamSource::new(|i| if i % 2 == 0 { 0.9 } else { 0.2 });
        assert_eq!(engine.pump(&mut live, Some(6)).unwrap(), 6);
        assert_eq!(engine.slices_executed(), 6);
        assert_eq!(engine.pending(), 0, "pump leaves the queue empty");
        assert_eq!(live.position(), 6);
        // The deprecated fixed-count shim delegates to the same path.
        #[allow(deprecated)]
        engine.pump_slices(&mut live, 4).unwrap();
        assert_eq!(engine.slices_executed(), 10);
        let reports = engine.drain().unwrap();
        assert_eq!(reports[0].records.len(), 10);
    }

    #[test]
    fn unbounded_pump_returns_only_on_error() {
        // `pump(source, None)` serves forever; a failing backend is
        // the only way out, and proves the loop was actually running.
        let mut engine = Engine::new(FailingBackend {
            inner: SessionBuilder::new().build_analytic().unwrap(),
            fail_on: 7,
            stepped: 0,
        });
        let mut live = StreamSource::new(|_| 0.5);
        let err = engine.pump(&mut live, None).unwrap_err();
        assert!(matches!(err, EngineError::Backend { .. }));
        assert!(live.position() >= 7, "served until the backend failed");
    }

    #[test]
    fn zero_slice_drain_yields_empty_reports() {
        let mut engine = analytic_engine();
        let reports = engine.drain().unwrap();
        assert_eq!(reports.len(), 1);
        assert!(reports[0].records.is_empty());
        assert_eq!(reports[0].deadline_misses, 0);
    }
}
