//! The multi-tenant serving scheduler: N models, one machine, QoS.
//!
//! [`crate::Session`] runs one workload; [`crate::engine::Engine`]
//! streams one workload. A deployment serves *many* — each user (or
//! app) with its own model, its own load trace and its own latency
//! expectations, all contending for the same PIM clusters. [`Server`]
//! is that step: it multiplexes N *tenants* — each a (model,
//! [`TraceSource`], [`QosClass`]) triple — over per-tenant resumable
//! engines that share one [`PlacementStore`] (so common
//! configurations pay their DP once for the whole fleet):
//!
//! ```text
//!   tenant sources ──AdmissionPolicy──▶ per-tenant Engine queues
//!        │      (admit/defer/shed/merge)        │
//!        ▼                                      ▼
//!   TenantStats                    deficit-round-robin step()
//!   (admitted/shed/deferred,                    │
//!    miss rate, service share,                  ▼
//!    starvation ticks)               ServerEvent stream
//!                                    (iterator + ServerObservers)
//!                                               │
//!                                  run() ──▶ ServeReport
//! ```
//!
//! Three pieces compose per [`Server::round`]:
//!
//! 1. **Admission** — a pluggable [`AdmissionPolicy`] sees every load
//!    a tenant's source offers and decides: admit it, defer it to a
//!    later round, shed it, or coalesce it into a larger merged slice
//!    ([`AlwaysAdmit`], [`ShedOnPressure`], [`BatchCoalesce`]).
//! 2. **Scheduling** — a deficit-round-robin pass grants each backed-up
//!    tenant a quantum proportional to its [`QosClass::priority`] and
//!    steps its engine that many slices; deficits reset when a queue
//!    empties, so no tenant can bank unused credit and no tenant
//!    starves (the bound is tested in `tests/server.rs`).
//! 3. **Observation** — every engine event is re-emitted as a
//!    [`ServerEvent::Engine`] tagged with its [`TenantId`], alongside
//!    admission outcomes and QoS misses, through the same
//!    capped-iterator + observer machinery the engine introduced.
//!
//! **The equivalence contract:** a single-tenant server under
//! [`AlwaysAdmit`] executes its trace through exactly the same
//! resumable `step_slice` path as [`crate::Session::run`], in the same
//! order — its [`ExecutionReport`]s are bit-identical to the plain
//! session's. Multi-tenancy, admission and QoS accounting are layered
//! *around* execution, never inside it.
//!
//! # Examples
//!
//! Serve two tenants with different priorities and watch the stats:
//!
//! ```
//! use hhpim::server::{QosClass, ServerBuilder, TenantSpec};
//! use hhpim::session::ScenarioSource;
//! use hhpim_nn::TinyMlModel;
//! use hhpim_workload::{Scenario, ScenarioParams};
//!
//! let params = ScenarioParams { slices: 6, ..ScenarioParams::default() };
//! let mut server = ServerBuilder::new()
//!     .tenant(
//!         TenantSpec::new(
//!             "camera",
//!             TinyMlModel::MobileNetV2,
//!             ScenarioSource::new(Scenario::PeriodicSpike, params),
//!         )
//!         .qos(QosClass::default().with_priority(3)),
//!     )
//!     .tenant(TenantSpec::new(
//!         "keyword",
//!         TinyMlModel::ResNet18,
//!         ScenarioSource::new(Scenario::LowConstant, params),
//!     ))
//!     .build()
//!     .unwrap();
//! let report = server.run().unwrap();
//! assert_eq!(report.tenants.len(), 2);
//! for tenant in &report.tenants {
//!     assert_eq!(tenant.stats.executed, 6);
//!     assert_eq!(tenant.stats.shed, 0);
//! }
//! ```

use crate::arch::Architecture;
use crate::backend::{BackendKind, ExecutionReport};
use crate::cost::CostParams;
use crate::dp::OptimizerConfig;
use crate::engine::{Engine, EngineError, EngineEvent, SubmitOutcome, DEFAULT_EVENT_CAPACITY};
use crate::policy::PlacementPolicy;
use crate::session::{SessionBuilder, SessionError, TraceSource};
use crate::store::PlacementStore;
use hhpim_nn::TinyMlModel;
use hhpim_sim::SimDuration;
use hhpim_workload::LoadTrace;
use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;

/// Executed-slice outcomes remembered per tenant when computing the
/// *recent* deadline-miss rate admission policies react to. Override
/// with [`ServerBuilder::miss_window`].
pub const DEFAULT_MISS_WINDOW: usize = 16;

/// A tenant's identity: its position in the server's build order.
/// Stable for the server's lifetime; printed as `tenant#<index>`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TenantId(usize);

impl TenantId {
    /// The tenant's index in build (and report) order.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tenant#{}", self.0)
    }
}

/// A tenant's quality-of-service class: the knobs admission and
/// scheduling read. Plain data with struct-update syntax (like
/// [`hhpim_workload::ScenarioParams`]) plus `with_*` conveniences.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QosClass {
    /// Per-task serving deadline (SLO): an executed slice whose
    /// per-task latency exceeds this counts as a QoS miss *in
    /// addition to* the backend's own architectural deadline.
    /// [`SimDuration::MAX`] (the default) disables the SLO so only
    /// architectural misses count — this keeps the single-tenant
    /// equivalence contract exact.
    pub deadline: SimDuration,
    /// Deficit-round-robin quantum: slices granted per scheduling
    /// round relative to other tenants (clamped to at least 1).
    pub priority: u32,
    /// The tenant engine's bounded-queue capacity (clamped to at
    /// least 1); loads beyond it wait in the source and are counted
    /// as deferrals.
    pub queue_cap: usize,
    /// [`ShedOnPressure`]'s threshold: shed new loads while the
    /// tenant's recent miss rate (over the server's miss window)
    /// exceeds this. `1.0` (the default) never sheds.
    pub max_miss_rate: f64,
}

impl Default for QosClass {
    fn default() -> Self {
        QosClass {
            deadline: SimDuration::MAX,
            priority: 1,
            queue_cap: crate::engine::DEFAULT_QUEUE_CAPACITY,
            max_miss_rate: 1.0,
        }
    }
}

impl QosClass {
    /// The default best-effort class: no SLO, priority 1, default
    /// queue, never sheds.
    pub fn best_effort() -> Self {
        Self::default()
    }

    /// Sets the per-task serving deadline (SLO).
    pub fn with_deadline(mut self, deadline: SimDuration) -> Self {
        self.deadline = deadline;
        self
    }

    /// Sets the scheduling priority (DRR quantum).
    pub fn with_priority(mut self, priority: u32) -> Self {
        self.priority = priority;
        self
    }

    /// Sets the tenant queue capacity.
    pub fn with_queue_cap(mut self, queue_cap: usize) -> Self {
        self.queue_cap = queue_cap;
        self
    }

    /// Sets the recent-miss-rate shedding threshold.
    pub fn with_max_miss_rate(mut self, rate: f64) -> Self {
        self.max_miss_rate = rate;
        self
    }

    fn quantum(&self) -> u64 {
        u64::from(self.priority.max(1))
    }
}

/// Per-tenant service counters, surfaced by [`Server::stats`] and in
/// every [`TenantReport`]. All counts are cumulative over the
/// server's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
#[non_exhaustive]
pub struct TenantStats {
    /// Loads resolved from the tenant's source (admitted, coalesced
    /// or shed — deferrals leave the load unresolved).
    pub submitted: u64,
    /// Slices enqueued to the tenant's engine (including merged and
    /// flushed slices produced by a coalescing policy).
    pub admitted: u64,
    /// Loads dropped by the admission policy.
    pub shed: u64,
    /// Deferral decisions: rounds in which the tenant's next load had
    /// to wait (policy [`AdmissionDecision::Defer`] or a full queue).
    /// One load deferred across many rounds counts once per round.
    pub deferred: u64,
    /// Loads absorbed into a coalescing policy's accumulator.
    pub coalesced: u64,
    /// Slices executed on the tenant's engine.
    pub executed: u64,
    /// Executed slices that missed — architecturally
    /// ([`EngineEvent::DeadlineMiss`]) or against the tenant's
    /// [`QosClass::deadline`] SLO.
    pub missed: u64,
    /// Slices other tenants executed while this tenant had queued
    /// work waiting.
    pub starvation_ticks: u64,
    /// Longest run of [`TenantStats::starvation_ticks`] between two
    /// of this tenant's own slices — the fairness bound
    /// deficit-round-robin keeps finite.
    pub max_starvation: u64,
    /// This tenant's share of all executed slices, in `[0, 1]`
    /// (filled at snapshot time; `0.0` before anything executed).
    pub service_share: f64,
}

impl TenantStats {
    /// Lifetime miss rate: missed / executed (`0.0` before any slice
    /// executed). Admission policies react to the *recent* rate over
    /// the server's miss window instead — see
    /// [`TenantSnapshot::recent_miss_rate`].
    pub fn miss_rate(&self) -> f64 {
        if self.executed == 0 {
            0.0
        } else {
            self.missed as f64 / self.executed as f64
        }
    }
}

/// The read-only view of one tenant an [`AdmissionPolicy`] decides
/// from.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct TenantSnapshot {
    /// Which tenant is offering the load.
    pub id: TenantId,
    /// The tenant's QoS class.
    pub qos: QosClass,
    /// Loads currently queued in the tenant's engine.
    pub queue_depth: usize,
    /// Loads still waiting in the tenant's source (backlog behind the
    /// offered one).
    pub pending_source: usize,
    /// Miss rate over the last [`ServerBuilder::miss_window`]
    /// executed slices (`0.0` until anything executed).
    pub recent_miss_rate: f64,
    /// Executed slices currently in the miss window.
    pub window_samples: usize,
    /// The tenant's cumulative counters.
    pub stats: TenantStats,
}

/// What an [`AdmissionPolicy`] decided about one offered load.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum AdmissionDecision {
    /// Enqueue the load as offered.
    Admit,
    /// The offered load was absorbed into the policy's accumulator
    /// and a merged slice of `load` should be enqueued in its place.
    /// Policies must only return this when
    /// [`TenantSnapshot::queue_depth`] is below the queue capacity.
    AdmitMerged {
        /// The merged load to enqueue (in `[0, 1]`).
        load: f64,
    },
    /// The offered load was absorbed into the policy's accumulator;
    /// nothing is enqueued now ([`AdmissionPolicy::flush`] releases
    /// the remainder when the source ends).
    Coalesce,
    /// Leave the load in the source and retry next round.
    Defer,
    /// Drop the load.
    Shed,
}

/// A pluggable admission controller: consulted once per offered load,
/// per tenant, before anything enters an engine queue.
///
/// Implementations must be deterministic (the server replays
/// identically given identical tenants) and may keep per-tenant state
/// keyed by [`TenantSnapshot::id`].
pub trait AdmissionPolicy: fmt::Debug + Send {
    /// Short machine-readable name (used in reports).
    fn name(&self) -> &'static str;

    /// Decides what happens to `load`, the next load `tenant`'s
    /// source offers.
    fn admit(&mut self, tenant: &TenantSnapshot, load: f64) -> AdmissionDecision;

    /// Releases up to one slice of coalesced load once `tenant`'s
    /// source is exhausted; called repeatedly until it returns `None`.
    /// The default has nothing buffered.
    fn flush(&mut self, tenant: &TenantSnapshot) -> Option<f64> {
        let _ = tenant;
        None
    }

    /// Clones the policy into a box (keeps the builder reusable).
    fn clone_box(&self) -> Box<dyn AdmissionPolicy>;
}

impl Clone for Box<dyn AdmissionPolicy> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// Admit everything, always — the identity admission policy and the
/// policy under which a single-tenant server is bit-identical to
/// [`crate::Session::run`].
#[derive(Debug, Clone, Copy, Default)]
pub struct AlwaysAdmit;

impl AdmissionPolicy for AlwaysAdmit {
    fn name(&self) -> &'static str {
        "always-admit"
    }

    fn admit(&mut self, _tenant: &TenantSnapshot, _load: f64) -> AdmissionDecision {
        AdmissionDecision::Admit
    }

    fn clone_box(&self) -> Box<dyn AdmissionPolicy> {
        Box::new(*self)
    }
}

/// Shed or defer under pressure: drop new loads while a tenant's
/// recent miss rate exceeds its [`QosClass::max_miss_rate`], and
/// defer them while its queue is at capacity. Protects each tenant's
/// SLO by refusing work it would miss anyway — the classic
/// load-shedding admission controller.
#[derive(Debug, Clone, Copy)]
pub struct ShedOnPressure {
    min_samples: usize,
}

impl Default for ShedOnPressure {
    fn default() -> Self {
        ShedOnPressure { min_samples: 4 }
    }
}

impl ShedOnPressure {
    /// The default controller: sheds only once at least 4 executed
    /// slices are in the miss window (so one early miss cannot shed).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets how many executed slices the miss window must hold before
    /// the miss-rate test can shed (clamped to at least 1).
    pub fn with_min_samples(mut self, min_samples: usize) -> Self {
        self.min_samples = min_samples.max(1);
        self
    }
}

impl AdmissionPolicy for ShedOnPressure {
    fn name(&self) -> &'static str {
        "shed-on-pressure"
    }

    fn admit(&mut self, tenant: &TenantSnapshot, _load: f64) -> AdmissionDecision {
        if tenant.window_samples >= self.min_samples
            && tenant.recent_miss_rate > tenant.qos.max_miss_rate
        {
            return AdmissionDecision::Shed;
        }
        if tenant.queue_depth >= tenant.qos.queue_cap {
            return AdmissionDecision::Defer;
        }
        AdmissionDecision::Admit
    }

    fn clone_box(&self) -> Box<dyn AdmissionPolicy> {
        Box::new(*self)
    }
}

/// Coalesce under backlog: while a tenant's backlog (queued plus
/// waiting loads) exceeds a pressure threshold, absorb offered loads
/// into an accumulator and emit merged slices of load `1.0` — the
/// point at which [`LoadTrace::task_count_for`] saturates the
/// per-slice task cap, i.e. the LUT's fastest placement. Fewer,
/// fuller slices amortize per-slice overheads; total load is
/// conserved (see [`LoadTrace::saturating_merge`]), with the
/// remainder flushed when the source ends.
#[derive(Debug, Clone, Default)]
pub struct BatchCoalesce {
    pressure: Option<usize>,
    accums: Vec<f64>,
}

impl BatchCoalesce {
    /// Coalesces while a tenant's backlog exceeds its
    /// [`QosClass::queue_cap`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets an explicit backlog threshold above which coalescing
    /// starts (`0` coalesces always).
    pub fn with_pressure(mut self, backlog: usize) -> Self {
        self.pressure = Some(backlog);
        self
    }

    fn accum(&mut self, id: TenantId) -> &mut f64 {
        if id.index() >= self.accums.len() {
            self.accums.resize(id.index() + 1, 0.0);
        }
        &mut self.accums[id.index()]
    }
}

impl AdmissionPolicy for BatchCoalesce {
    fn name(&self) -> &'static str {
        "batch-coalesce"
    }

    fn admit(&mut self, tenant: &TenantSnapshot, load: f64) -> AdmissionDecision {
        let threshold = self.pressure.unwrap_or(tenant.qos.queue_cap);
        let backlog = tenant.queue_depth + tenant.pending_source;
        let accum = self.accum(tenant.id);
        if *accum <= 0.0 && backlog <= threshold {
            return AdmissionDecision::Admit;
        }
        // Absorb unconditionally (absorbing needs no queue space);
        // emit a saturated slice only when the engine can take it.
        *accum += load.max(0.0);
        if *accum >= 1.0 && tenant.queue_depth < tenant.qos.queue_cap {
            *accum -= 1.0;
            AdmissionDecision::AdmitMerged { load: 1.0 }
        } else {
            AdmissionDecision::Coalesce
        }
    }

    fn flush(&mut self, tenant: &TenantSnapshot) -> Option<f64> {
        let accum = self.accum(tenant.id);
        if *accum <= 0.0 {
            return None;
        }
        let (merged, overflow) = LoadTrace::saturating_merge(*accum, 0.0);
        *accum = overflow;
        Some(merged)
    }

    fn clone_box(&self) -> Box<dyn AdmissionPolicy> {
        Box::new(self.clone())
    }
}

/// One observation from the serving loop, tagged with the tenant it
/// concerns. Admission events are emitted as decisions happen;
/// [`ServerEvent::Engine`] re-emits every tenant engine's events in
/// execution order.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ServerEvent {
    /// A load (or merged slice) entered a tenant's engine queue.
    Admitted {
        /// The admitting tenant.
        tenant: TenantId,
        /// The enqueued load.
        load: f64,
    },
    /// A load was absorbed into a coalescing policy's accumulator.
    Coalesced {
        /// The tenant whose load was absorbed.
        tenant: TenantId,
        /// The absorbed load.
        load: f64,
    },
    /// A load was dropped by the admission policy.
    Shed {
        /// The tenant whose load was dropped.
        tenant: TenantId,
        /// The dropped load.
        load: f64,
    },
    /// A load had to wait for a later round (policy deferral or full
    /// queue).
    Deferred {
        /// The tenant whose load waits.
        tenant: TenantId,
        /// The waiting load.
        load: f64,
    },
    /// An executed slice violated the tenant's [`QosClass::deadline`]
    /// SLO (architectural misses surface as the wrapped
    /// [`EngineEvent::DeadlineMiss`] instead).
    QosMiss {
        /// The tenant that missed.
        tenant: TenantId,
        /// The offending slice (tenant-local index).
        slice: usize,
        /// Per-task latency achieved.
        task_time: SimDuration,
        /// The tenant's SLO.
        deadline: SimDuration,
    },
    /// A tenant engine's own event, re-emitted with its tenant tag.
    Engine {
        /// The tenant whose engine emitted it.
        tenant: TenantId,
        /// The wrapped engine event.
        event: EngineEvent,
    },
    /// A full deficit-round-robin round completed.
    RoundCompleted {
        /// The round's number (counting from 0).
        round: u64,
        /// Slices executed across all tenants this round.
        executed: usize,
    },
}

/// A callback receiving every [`ServerEvent`] at emission time,
/// before it enters the iterator buffer — the server-level analogue
/// of [`crate::engine::EngineObserver`], with the same lifetime
/// contract (observers are bound to the server, never auto-removed).
pub trait ServerObserver {
    /// Called once per event, in emission order.
    fn on_event(&mut self, event: &ServerEvent);
}

impl<F: FnMut(&ServerEvent)> ServerObserver for F {
    fn on_event(&mut self, event: &ServerEvent) {
        self(event)
    }
}

/// Errors surfaced while building or serving a [`Server`].
#[derive(Debug)]
#[non_exhaustive]
pub enum ServerError {
    /// The builder had no tenants.
    NoTenants,
    /// Two tenants share a name.
    DuplicateTenant {
        /// The repeated name.
        name: String,
    },
    /// A tenant's QoS class is malformed (e.g. a non-finite or
    /// out-of-range miss-rate threshold).
    InvalidQos {
        /// The offending tenant.
        tenant: String,
        /// The offending field.
        field: &'static str,
        /// Its value.
        value: f64,
    },
    /// A tenant's backend or trace failed to build.
    Build {
        /// The offending tenant.
        tenant: String,
        /// The underlying session-layer error.
        error: SessionError,
    },
    /// A tenant's engine failed mid-serve (its stream is poisoned;
    /// see [`crate::engine::EngineError::Backend`]).
    Tenant {
        /// The failing tenant.
        tenant: TenantId,
        /// The underlying engine error.
        error: EngineError,
    },
    /// A full round made no progress while work remained — a
    /// misbehaving admission policy deferred every tenant forever.
    Stalled {
        /// The round that made no progress.
        round: u64,
    },
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::NoTenants => write!(f, "server has no tenants"),
            ServerError::DuplicateTenant { name } => {
                write!(f, "tenant `{name}` registered twice")
            }
            ServerError::InvalidQos {
                tenant,
                field,
                value,
            } => write!(f, "tenant `{tenant}`: QoS {field} = {value} is invalid"),
            ServerError::Build { tenant, error } => {
                write!(f, "tenant `{tenant}` failed to build: {error}")
            }
            ServerError::Tenant { tenant, error } => {
                write!(f, "{tenant} failed mid-serve: {error}")
            }
            ServerError::Stalled { round } => {
                write!(
                    f,
                    "round {round} made no progress with work remaining (admission livelock)"
                )
            }
        }
    }
}

impl std::error::Error for ServerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServerError::Build { error, .. } => Some(error),
            ServerError::Tenant { error, .. } => Some(error),
            _ => None,
        }
    }
}

/// One tenant's registration: the (model, source, QoS) triple plus an
/// optional per-tenant placement-policy override.
#[derive(Debug)]
pub struct TenantSpec {
    name: String,
    model: TinyMlModel,
    source: Box<dyn TraceSource>,
    qos: QosClass,
    policy: Option<Box<dyn PlacementPolicy>>,
}

impl TenantSpec {
    /// A tenant serving `model` from `source` under the default
    /// best-effort [`QosClass`].
    pub fn new(
        name: impl Into<String>,
        model: TinyMlModel,
        source: impl TraceSource + 'static,
    ) -> Self {
        TenantSpec {
            name: name.into(),
            model,
            source: Box::new(source),
            qos: QosClass::default(),
            policy: None,
        }
    }

    /// Sets the tenant's QoS class.
    pub fn qos(mut self, qos: QosClass) -> Self {
        self.qos = qos;
        self
    }

    /// Overrides the placement policy for this tenant only (default:
    /// the server-wide policy, or the architecture's Table I policy).
    pub fn policy(mut self, policy: impl PlacementPolicy + 'static) -> Self {
        self.policy = Some(Box::new(policy));
        self
    }

    /// The tenant's name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

/// Builder for a [`Server`], mirroring [`SessionBuilder`]: machine-
/// wide knobs here, per-tenant triples via [`ServerBuilder::tenant`].
///
/// Defaults: HH-PIM architecture, the analytic backend, the
/// architecture's Table I placement policy, [`AlwaysAdmit`], the
/// process-global [`PlacementStore`] and a
/// [`DEFAULT_MISS_WINDOW`]-slice miss window.
#[derive(Debug, Default)]
pub struct ServerBuilder {
    arch: Option<Architecture>,
    backend: Option<BackendKind>,
    cost_params: Option<CostParams>,
    opt_config: Option<OptimizerConfig>,
    policy: Option<Box<dyn PlacementPolicy>>,
    store: Option<Arc<PlacementStore>>,
    admission: Option<Box<dyn AdmissionPolicy>>,
    tenants: Vec<TenantSpec>,
    miss_window: Option<usize>,
    event_capacity: Option<usize>,
}

impl ServerBuilder {
    /// A builder with every knob at its default.
    pub fn new() -> Self {
        Self::default()
    }

    /// Selects the Table I architecture every tenant shares (default:
    /// HH-PIM).
    pub fn architecture(mut self, arch: Architecture) -> Self {
        self.arch = Some(arch);
        self
    }

    /// Selects the execution backend every tenant engine runs
    /// (default: analytic).
    pub fn backend(mut self, kind: BackendKind) -> Self {
        self.backend = Some(kind);
        self
    }

    /// Cost-model calibration knobs shared by every tenant.
    pub fn cost_params(mut self, params: CostParams) -> Self {
        self.cost_params = Some(params);
        self
    }

    /// Placement-optimizer settings shared by every tenant.
    pub fn optimizer(mut self, config: OptimizerConfig) -> Self {
        self.opt_config = Some(config);
        self
    }

    /// Server-wide placement policy (default: the architecture's
    /// Table I policy); individual tenants may override via
    /// [`TenantSpec::policy`].
    pub fn policy(mut self, policy: impl PlacementPolicy + 'static) -> Self {
        self.policy = Some(Box::new(policy));
        self
    }

    /// The shared [`PlacementStore`] every tenant draws LUTs from
    /// (default: [`PlacementStore::global`]). Tenants with the same
    /// (architecture, model, parameters) configuration share one DP.
    pub fn store(mut self, store: Arc<PlacementStore>) -> Self {
        self.store = Some(store);
        self
    }

    /// The admission policy (default: [`AlwaysAdmit`]).
    pub fn admission(mut self, policy: impl AdmissionPolicy + 'static) -> Self {
        self.admission = Some(Box::new(policy));
        self
    }

    /// Registers a tenant; call repeatedly. Build order is report
    /// order and DRR visitation order.
    pub fn tenant(mut self, spec: TenantSpec) -> Self {
        self.tenants.push(spec);
        self
    }

    /// Executed slices remembered per tenant for the *recent* miss
    /// rate (default [`DEFAULT_MISS_WINDOW`]; clamped to at least 1).
    pub fn miss_window(mut self, slices: usize) -> Self {
        self.miss_window = Some(slices.max(1));
        self
    }

    /// The server event buffer's capacity (default
    /// [`DEFAULT_EVENT_CAPACITY`]; clamped to at least 1), with the
    /// same drop-oldest semantics as the engine's.
    pub fn event_capacity(mut self, capacity: usize) -> Self {
        self.event_capacity = Some(capacity.max(1));
        self
    }

    /// Builds the server: one engine per tenant (queue capacity from
    /// its QoS class), all drawing placement state from the shared
    /// store.
    ///
    /// # Errors
    ///
    /// [`ServerError::NoTenants`] without tenants,
    /// [`ServerError::DuplicateTenant`] on a repeated name,
    /// [`ServerError::InvalidQos`] on a malformed QoS class, and
    /// [`ServerError::Build`] when a tenant's backend cannot be
    /// built.
    pub fn build(self) -> Result<Server, ServerError> {
        if self.tenants.is_empty() {
            return Err(ServerError::NoTenants);
        }
        for (i, spec) in self.tenants.iter().enumerate() {
            if self.tenants[..i].iter().any(|s| s.name == spec.name) {
                return Err(ServerError::DuplicateTenant {
                    name: spec.name.clone(),
                });
            }
            if !spec.qos.max_miss_rate.is_finite() || !(0.0..=1.0).contains(&spec.qos.max_miss_rate)
            {
                return Err(ServerError::InvalidQos {
                    tenant: spec.name.clone(),
                    field: "max_miss_rate",
                    value: spec.qos.max_miss_rate,
                });
            }
        }
        let store = self.store.clone().unwrap_or_else(PlacementStore::global);
        let kind = self.backend.unwrap_or(BackendKind::Analytic);
        let miss_window = self.miss_window.unwrap_or(DEFAULT_MISS_WINDOW);
        let mut tenants = Vec::with_capacity(self.tenants.len());
        for (index, spec) in self.tenants.into_iter().enumerate() {
            let mut builder = SessionBuilder::new()
                .model(spec.model)
                .store(Arc::clone(&store));
            if let Some(arch) = self.arch {
                builder = builder.architecture(arch);
            }
            if let Some(params) = self.cost_params {
                builder = builder.cost_params(params);
            }
            if let Some(config) = self.opt_config {
                builder = builder.optimizer(config);
            }
            if let Some(policy) = spec.policy.or_else(|| self.policy.clone()) {
                builder = builder.policy(policy);
            }
            let backend = builder
                .build_backend(kind)
                .map_err(|error| ServerError::Build {
                    tenant: spec.name.clone(),
                    error,
                })?;
            let engine =
                Engine::from_backends(vec![backend]).with_queue_capacity(spec.qos.queue_cap.max(1));
            tenants.push(Tenant {
                id: TenantId(index),
                name: spec.name,
                qos: spec.qos,
                source: spec.source,
                pending: VecDeque::new(),
                engine,
                deficit: 0,
                stats: TenantStats::default(),
                window: VecDeque::with_capacity(miss_window),
                window_misses: 0,
                streak: 0,
                primed: false,
                flushed: false,
            });
        }
        Ok(Server {
            tenants,
            admission: self.admission.unwrap_or_else(|| Box::new(AlwaysAdmit)),
            store,
            miss_window,
            round: 0,
            events: VecDeque::new(),
            events_dropped: 0,
            event_capacity: self.event_capacity.unwrap_or(DEFAULT_EVENT_CAPACITY),
            observers: Vec::new(),
            event_scratch: Vec::new(),
        })
    }
}

/// One tenant's live state inside a [`Server`].
struct Tenant {
    id: TenantId,
    name: String,
    qos: QosClass,
    source: Box<dyn TraceSource>,
    pending: VecDeque<f64>,
    engine: Engine,
    deficit: u64,
    stats: TenantStats,
    window: VecDeque<bool>,
    window_misses: usize,
    streak: u64,
    primed: bool,
    flushed: bool,
}

impl Tenant {
    fn recent_miss_rate(&self) -> f64 {
        if self.window.is_empty() {
            0.0
        } else {
            self.window_misses as f64 / self.window.len() as f64
        }
    }

    fn snapshot(&self) -> TenantSnapshot {
        TenantSnapshot {
            id: self.id,
            qos: self.qos,
            queue_depth: self.engine.pending(),
            pending_source: self.pending.len().saturating_sub(1),
            recent_miss_rate: self.recent_miss_rate(),
            window_samples: self.window.len(),
            stats: self.stats,
        }
    }

    fn record_miss_flag(&mut self, missed: bool, miss_window: usize) {
        if self.window.len() >= miss_window && self.window.pop_front() == Some(true) {
            self.window_misses -= 1;
        }
        self.window.push_back(missed);
        if missed {
            self.window_misses += 1;
        }
    }

    /// Whether the tenant still has work the serve loop must move.
    fn has_work(&self) -> bool {
        !self.pending.is_empty() || !self.flushed || self.engine.pending() > 0
    }
}

/// The multi-tenant serving scheduler; see the [module docs](self)
/// for the tenant model and the equivalence contract. Built by
/// [`ServerBuilder`].
pub struct Server {
    tenants: Vec<Tenant>,
    admission: Box<dyn AdmissionPolicy>,
    store: Arc<PlacementStore>,
    miss_window: usize,
    round: u64,
    events: VecDeque<ServerEvent>,
    events_dropped: u64,
    event_capacity: usize,
    observers: Vec<Box<dyn ServerObserver>>,
    /// Reused per quantum to drain tenant-engine events without a
    /// fresh allocation per served slice.
    event_scratch: Vec<EngineEvent>,
}

impl fmt::Debug for Server {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Server")
            .field(
                "tenants",
                &self
                    .tenants
                    .iter()
                    .map(|t| t.name.as_str())
                    .collect::<Vec<_>>(),
            )
            .field("admission", &self.admission.name())
            .field("round", &self.round)
            .field("pending_events", &self.events.len())
            .finish_non_exhaustive()
    }
}

/// The outcome of one [`Server::run`]: per-tenant reports in build
/// order.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct ServeReport {
    /// Scheduling rounds the serve took.
    pub rounds: u64,
    /// One report per tenant, in build order.
    pub tenants: Vec<TenantReport>,
}

impl ServeReport {
    /// The report of the tenant named `name`, if registered.
    pub fn tenant(&self, name: &str) -> Option<&TenantReport> {
        self.tenants.iter().find(|t| t.name == name)
    }

    /// Slices executed across all tenants.
    pub fn total_executed(&self) -> u64 {
        self.tenants.iter().map(|t| t.stats.executed).sum()
    }
}

/// One tenant's share of a [`ServeReport`].
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct TenantReport {
    /// The tenant's identity.
    pub id: TenantId,
    /// The tenant's name.
    pub name: String,
    /// The tenant's QoS class.
    pub qos: QosClass,
    /// The tenant's service counters, with
    /// [`TenantStats::service_share`] filled in.
    pub stats: TenantStats,
    /// The tenant engine's execution reports (one per backend; the
    /// server runs one backend per tenant).
    pub reports: Vec<ExecutionReport>,
}

impl TenantReport {
    /// The tenant's primary (first) execution report.
    pub fn primary(&self) -> &ExecutionReport {
        &self.reports[0]
    }
}

impl Server {
    /// A fresh builder (alias for [`ServerBuilder::new`]).
    pub fn builder() -> ServerBuilder {
        ServerBuilder::new()
    }

    /// The registered tenants' names, in build (and report) order.
    pub fn tenant_names(&self) -> Vec<&str> {
        self.tenants.iter().map(|t| t.name.as_str()).collect()
    }

    /// The admission policy's name.
    pub fn admission_name(&self) -> &'static str {
        self.admission.name()
    }

    /// The shared placement store every tenant draws from.
    pub fn store(&self) -> &Arc<PlacementStore> {
        &self.store
    }

    /// Scheduling rounds completed so far.
    pub fn rounds(&self) -> u64 {
        self.round
    }

    /// The per-slice task cap shared by every tenant engine (tenants
    /// share one architecture and cost model, so the cap is uniform).
    pub fn max_tasks(&self) -> u32 {
        self.tenants
            .first()
            .map(|t| t.engine.max_tasks())
            .unwrap_or(0)
    }

    /// Per-tenant stats snapshots in build order, with
    /// [`TenantStats::service_share`] computed over all executed
    /// slices so far.
    pub fn stats(&self) -> Vec<TenantStats> {
        let total: u64 = self.tenants.iter().map(|t| t.stats.executed).sum();
        self.tenants
            .iter()
            .map(|t| {
                let mut stats = t.stats;
                stats.service_share = if total == 0 {
                    0.0
                } else {
                    stats.executed as f64 / total as f64
                };
                stats
            })
            .collect()
    }

    /// Registers an observer receiving every future [`ServerEvent`]
    /// at emission time, with the engine observer's lifetime
    /// contract: bound to the server, never auto-removed.
    pub fn observe(&mut self, observer: impl ServerObserver + 'static) {
        self.observers.push(Box::new(observer));
    }

    /// Drains the pending event buffer as an iterator (events already
    /// delivered to observers are not replayed).
    pub fn events(&mut self) -> std::collections::vec_deque::Drain<'_, ServerEvent> {
        self.events.drain(..)
    }

    /// Events dropped from the iterator buffer because nobody drained
    /// [`Server::events`] (observers still saw them).
    pub fn events_dropped(&self) -> u64 {
        self.events_dropped
    }

    /// Whether every tenant's source is exhausted, coalesced
    /// remainders flushed, and queues empty.
    pub fn finished(&self) -> bool {
        self.tenants.iter().all(|t| t.primed && !t.has_work())
    }

    /// Serves every tenant to completion: rounds of admission +
    /// deficit-round-robin execution until all sources are exhausted
    /// and all queues drained, then closes every engine stream.
    /// Sources are re-pulled per run (like [`crate::Session::run`]),
    /// so a server can serve repeatedly.
    ///
    /// # Errors
    ///
    /// [`ServerError::Tenant`] when a tenant's engine fails (the
    /// failing tenant's stream is poisoned), [`ServerError::Stalled`]
    /// when a round moves nothing while work remains, and
    /// [`ServerError::Build`] when a trace source fails.
    pub fn run(&mut self) -> Result<ServeReport, ServerError> {
        self.prime()?;
        while !self.finished() {
            let progressed = self.round()?;
            // A round may legitimately move nothing while *finishing*
            // (e.g. its only effect was marking a source flushed);
            // only a no-progress round that leaves work behind is a
            // livelock.
            if !progressed && !self.finished() {
                return Err(ServerError::Stalled { round: self.round });
            }
        }
        let total: u64 = self.tenants.iter().map(|t| t.stats.executed).sum();
        let mut reports = Vec::with_capacity(self.tenants.len());
        for tenant in &mut self.tenants {
            let engine_reports = tenant.engine.drain().map_err(|error| ServerError::Tenant {
                tenant: tenant.id,
                error,
            })?;
            let mut stats = tenant.stats;
            stats.service_share = if total == 0 {
                0.0
            } else {
                stats.executed as f64 / total as f64
            };
            reports.push(TenantReport {
                id: tenant.id,
                name: tenant.name.clone(),
                qos: tenant.qos,
                stats,
                reports: engine_reports,
            });
            // The next run() re-primes from the (deterministic)
            // source, like a fresh Session::run.
            tenant.primed = false;
        }
        Ok(ServeReport {
            rounds: self.round,
            tenants: reports,
        })
    }

    /// Pulls each unprimed tenant's trace into its pending queue.
    fn prime(&mut self) -> Result<(), ServerError> {
        for tenant in &mut self.tenants {
            if tenant.primed {
                continue;
            }
            let trace = tenant.source.trace().map_err(|error| ServerError::Build {
                tenant: tenant.name.clone(),
                error,
            })?;
            tenant.pending = trace.loads().iter().copied().collect();
            tenant.primed = true;
            tenant.flushed = false;
        }
        Ok(())
    }

    /// One scheduling round: an admission pass then a
    /// deficit-round-robin execution pass over every tenant, in build
    /// order. Returns whether the round made progress (admitted,
    /// coalesced, shed or executed anything); a `false` with
    /// [`Server::finished`] still false means the admission policy
    /// has livelocked ([`Server::run`] surfaces that as
    /// [`ServerError::Stalled`]).
    ///
    /// # Errors
    ///
    /// See [`Server::run`]; `round` is the manual-stepping form.
    pub fn round(&mut self) -> Result<bool, ServerError> {
        self.prime()?;
        let mut progressed = false;
        let mut executed_this_round = 0usize;
        for i in 0..self.tenants.len() {
            progressed |= self.feed(i)?;
        }
        for i in 0..self.tenants.len() {
            let steps = self.serve_quantum(i)?;
            executed_this_round += steps;
            progressed |= steps > 0;
        }
        let round = self.round;
        self.emit(ServerEvent::RoundCompleted {
            round,
            executed: executed_this_round,
        });
        self.round += 1;
        Ok(progressed)
    }

    /// Admission pass for one tenant: consult the policy on each
    /// offered load until the tenant defers, runs dry, or fills its
    /// queue; flush coalesced remainders once the source is dry.
    fn feed(&mut self, i: usize) -> Result<bool, ServerError> {
        let mut progressed = false;
        loop {
            let tenant = &self.tenants[i];
            let Some(&load) = tenant.pending.front() else {
                break;
            };
            let snapshot = tenant.snapshot();
            let room = snapshot.queue_depth < snapshot.qos.queue_cap;
            let decision = self.admission.admit(&snapshot, load);
            let tenant = &mut self.tenants[i];
            let id = tenant.id;
            match decision {
                AdmissionDecision::Admit => {
                    if !room {
                        tenant.stats.deferred += 1;
                        self.emit(ServerEvent::Deferred { tenant: id, load });
                        break;
                    }
                    tenant.pending.pop_front();
                    tenant.stats.submitted += 1;
                    Self::enqueue(tenant, load)?;
                    self.emit(ServerEvent::Admitted { tenant: id, load });
                    progressed = true;
                }
                AdmissionDecision::AdmitMerged { load: merged } => {
                    tenant.pending.pop_front();
                    tenant.stats.submitted += 1;
                    tenant.stats.coalesced += 1;
                    Self::enqueue(tenant, merged)?;
                    self.emit(ServerEvent::Coalesced { tenant: id, load });
                    self.emit(ServerEvent::Admitted {
                        tenant: id,
                        load: merged,
                    });
                    progressed = true;
                }
                AdmissionDecision::Coalesce => {
                    tenant.pending.pop_front();
                    tenant.stats.submitted += 1;
                    tenant.stats.coalesced += 1;
                    self.emit(ServerEvent::Coalesced { tenant: id, load });
                    progressed = true;
                }
                AdmissionDecision::Defer => {
                    tenant.stats.deferred += 1;
                    self.emit(ServerEvent::Deferred { tenant: id, load });
                    break;
                }
                AdmissionDecision::Shed => {
                    tenant.pending.pop_front();
                    tenant.stats.submitted += 1;
                    tenant.stats.shed += 1;
                    self.emit(ServerEvent::Shed { tenant: id, load });
                    progressed = true;
                }
            }
        }
        // Source dry: release any coalesced remainder, one slice per
        // free queue slot; mark flushed once the policy is empty.
        while self.tenants[i].pending.is_empty() && !self.tenants[i].flushed {
            let snapshot = self.tenants[i].snapshot();
            if snapshot.queue_depth >= snapshot.qos.queue_cap {
                break;
            }
            match self.admission.flush(&snapshot) {
                Some(load) => {
                    let tenant = &mut self.tenants[i];
                    let id = tenant.id;
                    Self::enqueue(tenant, load.clamp(0.0, 1.0))?;
                    self.emit(ServerEvent::Admitted { tenant: id, load });
                    progressed = true;
                }
                None => self.tenants[i].flushed = true,
            }
        }
        Ok(progressed)
    }

    /// Enqueues one load on a tenant's engine (the feed pass only
    /// calls this with room available, so a deferral here is a policy
    /// contract violation surfaced as a stall later).
    fn enqueue(tenant: &mut Tenant, load: f64) -> Result<(), ServerError> {
        match tenant.engine.submit(load) {
            Ok(SubmitOutcome::Accepted) => {
                tenant.stats.admitted += 1;
                Ok(())
            }
            Ok(_) => Ok(()),
            Err(error) => Err(ServerError::Tenant {
                tenant: tenant.id,
                error,
            }),
        }
    }

    /// Execution pass for one tenant: grant its DRR quantum and step
    /// its engine, charging one deficit unit per slice; the deficit
    /// resets when its queue empties (no banking). Returns slices
    /// executed.
    fn serve_quantum(&mut self, i: usize) -> Result<usize, ServerError> {
        if self.tenants[i].engine.pending() == 0 {
            self.tenants[i].deficit = 0;
            return Ok(0);
        }
        // Who is waiting while this tenant runs (fixed for the whole
        // quantum: only tenant i's engine moves).
        let waiting: Vec<usize> = (0..self.tenants.len())
            .filter(|&j| j != i && self.tenants[j].engine.pending() > 0)
            .collect();
        self.tenants[i].deficit += self.tenants[i].qos.quantum();
        let window = self.miss_window;
        let mut steps = 0usize;
        while self.tenants[i].deficit > 0 && self.tenants[i].engine.pending() > 0 {
            let tenant = &mut self.tenants[i];
            let id = tenant.id;
            let qos = tenant.qos;
            // Grant the remaining deficit in one batched call: the
            // engine drains whole runs of equal-load slices through
            // `ExecutionBackend::step_n` instead of stepping one by
            // one.
            let grant = (tenant.deficit as usize).min(tenant.engine.pending());
            let stepped = match tenant.engine.step_n(grant) {
                Ok(0) => break,
                Ok(n) => n,
                Err(error) => {
                    return Err(ServerError::Tenant { tenant: id, error });
                }
            };
            tenant.deficit -= stepped as u64;
            tenant.stats.executed += stepped as u64;
            tenant.streak = 0;
            steps += stepped;
            // Drain the batch's events through the reusable scratch
            // and process them slice by slice (every slice emits a
            // SliceCompleted, so slice groups are never empty): miss
            // accounting per slice, engine events re-emitted in order,
            // QosMiss appended after its slice's events — the exact
            // sequence per-slice stepping produced.
            let mut events = std::mem::take(&mut self.event_scratch);
            events.clear();
            events.extend(self.tenants[i].engine.events());
            let mut current_slice: Option<usize> = None;
            let mut missed = false;
            let mut qos_miss: Option<(usize, SimDuration)> = None;
            for event in events.drain(..) {
                let slice = match &event {
                    EngineEvent::SliceCompleted { record, .. } => record.slice,
                    EngineEvent::Replacement { slice, .. } => *slice,
                    EngineEvent::Migration { record, .. } => record.slice,
                    EngineEvent::DeadlineMiss { slice, .. } => *slice,
                    EngineEvent::IdleAccrued { slice, .. } => *slice,
                };
                if current_slice.is_some_and(|c| c != slice) {
                    let tenant = &mut self.tenants[i];
                    tenant.stats.missed += u64::from(missed);
                    tenant.record_miss_flag(missed, window);
                    missed = false;
                    if let Some((slice, task_time)) = qos_miss.take() {
                        self.emit(ServerEvent::QosMiss {
                            tenant: id,
                            slice,
                            task_time,
                            deadline: qos.deadline,
                        });
                    }
                }
                current_slice = Some(slice);
                if let EngineEvent::DeadlineMiss { .. } = &event {
                    missed = true;
                }
                if let EngineEvent::SliceCompleted { record, .. } = &event {
                    if record.task_time > qos.deadline {
                        missed = true;
                        qos_miss = Some((record.slice, record.task_time));
                    }
                }
                self.emit(ServerEvent::Engine { tenant: id, event });
            }
            if current_slice.is_some() {
                let tenant = &mut self.tenants[i];
                tenant.stats.missed += u64::from(missed);
                tenant.record_miss_flag(missed, window);
                if let Some((slice, task_time)) = qos_miss.take() {
                    self.emit(ServerEvent::QosMiss {
                        tenant: id,
                        slice,
                        task_time,
                        deadline: qos.deadline,
                    });
                }
            }
            self.event_scratch = events;
        }
        if self.tenants[i].engine.pending() == 0 {
            self.tenants[i].deficit = 0;
        }
        // Everyone who waited through this quantum starved a little.
        if steps > 0 {
            for j in waiting {
                let other = &mut self.tenants[j];
                other.stats.starvation_ticks += steps as u64;
                other.streak += steps as u64;
                other.stats.max_starvation = other.stats.max_starvation.max(other.streak);
            }
        }
        Ok(steps)
    }

    fn emit(&mut self, event: ServerEvent) {
        for observer in &mut self.observers {
            observer.on_event(&event);
        }
        if self.events.len() >= self.event_capacity {
            self.events.pop_front();
            self.events_dropped += 1;
        }
        self.events.push_back(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::ScenarioSource;
    use hhpim_workload::{Scenario, ScenarioParams};

    fn snapshot(queue_depth: usize, pending_source: usize, qos: QosClass) -> TenantSnapshot {
        TenantSnapshot {
            id: TenantId(0),
            qos,
            queue_depth,
            pending_source,
            recent_miss_rate: 0.0,
            window_samples: 0,
            stats: TenantStats::default(),
        }
    }

    fn source(scenario: Scenario, slices: usize, seed: u64) -> ScenarioSource {
        ScenarioSource::new(
            scenario,
            ScenarioParams {
                slices,
                seed,
                ..ScenarioParams::default()
            },
        )
    }

    #[test]
    fn shed_on_pressure_follows_its_decision_table() {
        let mut policy = ShedOnPressure::new().with_min_samples(2);
        let qos = QosClass::default()
            .with_queue_cap(2)
            .with_max_miss_rate(0.25);

        // Healthy tenant with room: admit.
        assert_eq!(
            policy.admit(&snapshot(0, 5, qos), 0.5),
            AdmissionDecision::Admit
        );
        // Full queue: defer, never drop.
        assert_eq!(
            policy.admit(&snapshot(2, 5, qos), 0.5),
            AdmissionDecision::Defer
        );
        // Miss rate above the SLO with enough samples: shed.
        let mut hot = snapshot(0, 5, qos);
        hot.recent_miss_rate = 0.5;
        hot.window_samples = 2;
        assert_eq!(policy.admit(&hot, 0.5), AdmissionDecision::Shed);
        // Same miss rate but too few samples: still admit.
        hot.window_samples = 1;
        assert_eq!(policy.admit(&hot, 0.5), AdmissionDecision::Admit);
    }

    #[test]
    fn batch_coalesce_conserves_total_load() {
        let mut policy = BatchCoalesce::new().with_pressure(0);
        let qos = QosClass::default().with_queue_cap(4);
        let offered = [0.7, 0.6, 0.4, 0.9, 0.2];
        let mut enqueued = 0.0;
        for &load in &offered {
            match policy.admit(&snapshot(0, 3, qos), load) {
                AdmissionDecision::Admit => enqueued += load,
                AdmissionDecision::AdmitMerged { load } => enqueued += load,
                AdmissionDecision::Coalesce => {}
                other => panic!("unexpected decision {other:?}"),
            }
        }
        while let Some(load) = policy.flush(&snapshot(0, 0, qos)) {
            enqueued += load;
        }
        let total: f64 = offered.iter().sum();
        assert!(
            (enqueued - total).abs() < 1e-12,
            "coalescing must conserve load: {enqueued} vs {total}"
        );
    }

    #[test]
    fn batch_coalesce_never_merges_into_a_full_queue() {
        let mut policy = BatchCoalesce::new().with_pressure(0);
        let qos = QosClass::default().with_queue_cap(1);
        // Queue full: absorb, do not emit a merged slice.
        for _ in 0..4 {
            assert_eq!(
                policy.admit(&snapshot(1, 3, qos), 0.9),
                AdmissionDecision::Coalesce
            );
        }
        // Room again: the backlog drains one saturated slice at a time.
        assert_eq!(
            policy.admit(&snapshot(0, 3, qos), 0.9),
            AdmissionDecision::AdmitMerged { load: 1.0 }
        );
    }

    #[test]
    fn builder_rejects_malformed_registrations() {
        assert!(matches!(
            ServerBuilder::new().build(),
            Err(ServerError::NoTenants)
        ));

        let dup = ServerBuilder::new()
            .tenant(TenantSpec::new(
                "cam",
                TinyMlModel::MobileNetV2,
                source(Scenario::LowConstant, 2, 0),
            ))
            .tenant(TenantSpec::new(
                "cam",
                TinyMlModel::ResNet18,
                source(Scenario::LowConstant, 2, 0),
            ))
            .build();
        assert!(matches!(dup, Err(ServerError::DuplicateTenant { name }) if name == "cam"));

        let bad_qos = ServerBuilder::new()
            .tenant(
                TenantSpec::new(
                    "cam",
                    TinyMlModel::MobileNetV2,
                    source(Scenario::LowConstant, 2, 0),
                )
                .qos(QosClass::default().with_max_miss_rate(f64::NAN)),
            )
            .build();
        assert!(matches!(
            bad_qos,
            Err(ServerError::InvalidQos {
                field: "max_miss_rate",
                ..
            })
        ));
    }

    /// A policy that refuses every load without consuming it: the
    /// server must detect the livelock instead of spinning forever.
    #[derive(Debug, Clone, Copy)]
    struct AlwaysDefer;

    impl AdmissionPolicy for AlwaysDefer {
        fn name(&self) -> &'static str {
            "always-defer"
        }

        fn admit(&mut self, _tenant: &TenantSnapshot, _load: f64) -> AdmissionDecision {
            AdmissionDecision::Defer
        }

        fn clone_box(&self) -> Box<dyn AdmissionPolicy> {
            Box::new(*self)
        }
    }

    #[test]
    fn a_livelocked_admission_policy_surfaces_as_stalled() {
        let mut server = ServerBuilder::new()
            .admission(AlwaysDefer)
            .tenant(TenantSpec::new(
                "stuck",
                TinyMlModel::MobileNetV2,
                source(Scenario::LowConstant, 3, 0),
            ))
            .build()
            .unwrap();
        assert!(matches!(server.run(), Err(ServerError::Stalled { .. })));
    }

    #[test]
    fn event_buffer_drops_oldest_but_observers_see_everything() {
        use std::sync::atomic::{AtomicUsize, Ordering};

        let seen = Arc::new(AtomicUsize::new(0));
        let hook = Arc::clone(&seen);
        let mut server = ServerBuilder::new()
            .event_capacity(1)
            .tenant(TenantSpec::new(
                "cam",
                TinyMlModel::MobileNetV2,
                source(Scenario::PeriodicSpike, 4, 1),
            ))
            .build()
            .unwrap();
        server.observe(move |_: &ServerEvent| {
            hook.fetch_add(1, Ordering::SeqCst);
        });
        server.run().unwrap();
        let delivered = seen.load(Ordering::SeqCst);
        assert!(server.events_dropped() > 0, "capacity 1 must shed");
        assert_eq!(server.events().count(), 1, "only the newest survives");
        assert_eq!(
            delivered as u64,
            server.events_dropped() + 1,
            "observers saw every emission, dropped or not"
        );
    }

    #[test]
    fn drr_shares_track_priorities_under_equal_demand() {
        let qos_hi = QosClass::default().with_priority(3).with_queue_cap(1);
        let qos_lo = QosClass::default().with_priority(1).with_queue_cap(1);
        let mut server = ServerBuilder::new()
            .tenant(
                TenantSpec::new(
                    "hi",
                    TinyMlModel::MobileNetV2,
                    source(Scenario::LowConstant, 12, 0),
                )
                .qos(qos_hi),
            )
            .tenant(
                TenantSpec::new(
                    "lo",
                    TinyMlModel::MobileNetV2,
                    source(Scenario::LowConstant, 12, 0),
                )
                .qos(qos_lo),
            )
            .build()
            .unwrap();
        let report = server.run().unwrap();
        // Both finish (work-conserving), so shares equalize at the
        // end; the priority shows up in rounds-to-completion instead:
        // the queue-capped high-priority tenant is never starved
        // longer than the low one.
        assert_eq!(report.total_executed(), 24);
        let hi = report.tenant("hi").unwrap().stats;
        let lo = report.tenant("lo").unwrap().stats;
        assert!(
            hi.max_starvation <= lo.max_starvation,
            "priority 3 must not starve harder than priority 1 \
             ({} vs {})",
            hi.max_starvation,
            lo.max_starvation
        );
    }
}
