//! Layer-to-PIM compilation: maps quantized model layers onto the
//! cycle-level machine, distributing work across PIM modules exactly as
//! the paper distributes "each layer of a neural network across HP-PIM
//! and LP-PIM modules for parallel computation, with the final output
//! obtained by aggregating results from each module" (§III).
//!
//! Two fidelities coexist, per layer kind:
//!
//! * **Bit-exact heads** — a narrow final linear layer (≤ 255 input
//!   features) lowers via [`compile_linear`]/[`HeadPlan`] into real
//!   INT8 MAC bursts whose accumulators are checked against the
//!   software reference, the functional-verification role of the
//!   paper's FPGA prototype.
//! * **Traffic-accurate schedules** — every other PIM layer
//!   (convolutions, wide linears) lowers into a per-layer MAC *schedule*
//!   ([`CompiledProgram`]): the layer's PIM MACs are striped over the
//!   modules that hold its weights, issuing genuine `ClearAcc`/`Mac`
//!   bursts whose timing and energy come from per-access bank/PE
//!   metering. Operand values are irrelevant to timing and energy (the
//!   machine is data-independent), so schedules carry counts, not
//!   weights.
//!
//! [`CycleBackend`](crate::CycleBackend) executes one
//! [`CompiledProgram`] per inference task, splitting each layer across
//! storage spaces according to the placement currently in effect.

use hhpim_isa::{MemSelect, ModuleMask, PimInstruction};
use hhpim_nn::{Layer, QuantizedModel};
use hhpim_pim::{MachineError, PimMachine};
use std::fmt;

/// Where compiled weights are placed inside each module.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WeightHome {
    /// Non-volatile MRAM (the H-PIM default).
    Mram,
    /// SRAM (the peak-performance choice).
    Sram,
}

impl WeightHome {
    pub(crate) fn mem(self) -> MemSelect {
        match self {
            WeightHome::Mram => MemSelect::Mram,
            WeightHome::Sram => MemSelect::Sram,
        }
    }
}

/// Compilation errors.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// The layer at the given index is not a Linear layer.
    NotLinear {
        /// Offending layer index.
        layer: usize,
    },
    /// The layer has no materialized weights.
    NoWeights {
        /// Offending layer index.
        layer: usize,
    },
    /// A row is too long for a single module pass (> activation region).
    RowTooLong {
        /// Input features required.
        in_features: usize,
    },
    /// The underlying machine rejected a preload or instruction.
    Machine(MachineError),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::NotLinear { layer } => write!(f, "layer {layer} is not linear"),
            CompileError::NoWeights { layer } => write!(f, "layer {layer} has no weights"),
            CompileError::RowTooLong { in_features } => {
                write!(f, "{in_features} input features exceed one module pass")
            }
            CompileError::Machine(e) => write!(f, "machine: {e}"),
        }
    }
}

impl std::error::Error for CompileError {}

impl From<MachineError> for CompileError {
    fn from(e: MachineError) -> Self {
        CompileError::Machine(e)
    }
}

/// A linear layer lowered onto a PIM machine.
#[derive(Debug, Clone)]
pub struct CompiledLinear {
    /// Which module computes each output neuron (round-robin).
    assignment: Vec<usize>,
    /// Per-neuron i32 bias, applied host-side at aggregation.
    bias: Vec<i32>,
    /// Input feature count (MACs per neuron).
    in_features: usize,
    home: WeightHome,
}

impl CompiledLinear {
    /// Number of output neurons.
    pub fn out_features(&self) -> usize {
        self.assignment.len()
    }

    /// The module computing neuron `o`.
    ///
    /// # Panics
    ///
    /// Panics if `o` is out of range.
    pub fn module_of(&self, o: usize) -> usize {
        self.assignment[o]
    }
}

/// Lowers linear layer `layer_idx` of `qm` onto `machine`: weight rows
/// stripe round-robin over all modules in `home`, one row per
/// "wave" per module.
///
/// # Errors
///
/// See [`CompileError`].
pub fn compile_linear(
    qm: &QuantizedModel,
    layer_idx: usize,
    machine: &mut PimMachine,
    home: WeightHome,
) -> Result<CompiledLinear, CompileError> {
    let info = qm
        .model()
        .layers()
        .get(layer_idx)
        .ok_or(CompileError::NotLinear { layer: layer_idx });
    let info = info?;
    let Layer::Linear { out_features } = info.layer else {
        return Err(CompileError::NotLinear { layer: layer_idx });
    };
    let lw = qm
        .layer_weights(layer_idx)
        .ok_or(CompileError::NoWeights { layer: layer_idx })?;
    let (c, h, w) = info.input;
    let in_features = c * h * w;
    if in_features > 255 {
        // A MAC burst carries at most 255 operations; multi-burst rows
        // are possible but the activation region must also fit.
        return Err(CompileError::RowTooLong { in_features });
    }
    let modules = machine.module_count();
    let mut assignment = Vec::with_capacity(out_features);
    for o in 0..out_features {
        let module = o % modules;
        assignment.push(module);
        // Each wave stores its row behind the previous one.
        let wave = o / modules;
        let addr = wave * in_features;
        let row: Vec<u8> = lw.weights[o * in_features..(o + 1) * in_features]
            .iter()
            .map(|&v| v as u8)
            .collect();
        machine.preload(module, home.mem(), addr, &row)?;
    }
    Ok(CompiledLinear {
        assignment,
        bias: lw.bias.clone(),
        in_features,
        home,
    })
}

/// Executes a compiled layer on `machine` for one input vector and
/// returns the raw i32 accumulators (bias applied, no requantization).
///
/// # Errors
///
/// Propagates machine errors.
///
/// # Panics
///
/// Panics if `input` length differs from the compiled `in_features`.
pub fn run_linear(
    machine: &mut PimMachine,
    compiled: &CompiledLinear,
    input: &[i8],
) -> Result<Vec<i32>, CompileError> {
    assert_eq!(input.len(), compiled.in_features, "input length mismatch");
    let modules = machine.module_count();
    let acts: Vec<u8> = input.iter().map(|&v| v as u8).collect();
    for m in 0..modules {
        machine.preload_activations(m, &acts)?;
    }
    let mut outputs = vec![0i32; compiled.out_features()];
    let waves = compiled.out_features().div_ceil(modules);
    for wave in 0..waves {
        let lo = wave * modules;
        let hi = (lo + modules).min(compiled.out_features());
        let mut mask = ModuleMask::empty();
        for o in lo..hi {
            mask = mask.union(ModuleMask::single(compiled.assignment[o] as u8));
        }
        let addr = (wave * compiled.in_features) as u16;
        machine.execute(PimInstruction::ClearAcc { modules: mask })?;
        machine.execute(PimInstruction::Mac {
            modules: mask,
            mem: compiled.home.mem(),
            addr,
            count: compiled.in_features as u8,
        })?;
        machine.execute(PimInstruction::Barrier)?;
        // Aggregate: the host reads each module's accumulator (the
        // paper's "final output obtained by aggregating results").
        for o in lo..hi {
            let acc = machine.module(compiled.assignment[o]).pe().accumulator();
            outputs[o] = acc + compiled.bias[o];
        }
    }
    Ok(outputs)
}

/// How one model layer executes on the cycle machine.
#[derive(Debug, Clone)]
pub enum LayerOp {
    /// Traffic-accurate MAC schedule: `macs_per_task` multiply-
    /// accumulates issued as real bursts, striped across the modules of
    /// whichever spaces hold the weights at execution time.
    Schedule {
        /// PIM MACs this layer contributes per inference task.
        macs_per_task: u64,
    },
    /// Bit-exact classifier head executed through [`HeadPlan::run`].
    Head(HeadPlan),
}

/// One lowered layer of a [`CompiledProgram`].
#[derive(Debug, Clone)]
pub struct CompiledLayer {
    /// Index of the layer in the source model.
    pub layer: usize,
    /// Human-readable layer label (e.g. `"conv3x3 -> 16 (s1 p0 g1)"`).
    pub label: String,
    /// How the layer executes.
    pub op: LayerOp,
}

/// A whole quantized model lowered for per-task execution on the cycle
/// machine: one entry per PIM layer (host-side layers — pooling,
/// activations, residual adds — run outside the machine, as in the
/// paper's prototype).
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    layers: Vec<CompiledLayer>,
    scheduled_macs: u64,
}

impl CompiledProgram {
    /// The lowered PIM layers in execution order.
    pub fn layers(&self) -> &[CompiledLayer] {
        &self.layers
    }

    /// Total scheduled (traffic-level) MACs per task, excluding the
    /// bit-exact head.
    pub fn scheduled_macs(&self) -> u64 {
        self.scheduled_macs
    }

    /// The bit-exact head, if the model has one.
    pub fn head(&self) -> Option<&HeadPlan> {
        self.layers.iter().find_map(|l| match &l.op {
            LayerOp::Head(h) => Some(h),
            LayerOp::Schedule { .. } => None,
        })
    }
}

/// Lowers every PIM layer of `qm` into a [`CompiledProgram`].
///
/// `pim_macs_per_task` is the workload profile's per-task PIM MAC count
/// (Table IV `#MAC × PIM-op ratio`); the built model's per-layer MAC
/// counts are scaled so the program's total matches it, keeping cycle
/// and analytic backends on the same MAC basis. The last linear layer
/// with ≤ 255 input features becomes the bit-exact [`HeadPlan`]; all
/// other conv/linear layers become traffic schedules.
///
/// # Errors
///
/// Returns [`CompileError::NotLinear`] if the model has no PIM layer at
/// all.
pub fn compile_model(
    qm: &QuantizedModel,
    pim_macs_per_task: u64,
) -> Result<CompiledProgram, CompileError> {
    let infos = qm.model().layers();
    let pim_layers: Vec<usize> = (0..infos.len())
        .filter(|&i| infos[i].layer.is_pim_layer())
        .collect();
    if pim_layers.is_empty() {
        return Err(CompileError::NotLinear { layer: 0 });
    }
    let head_idx = pim_layers.iter().rev().copied().find(|&i| {
        let (c, h, w) = infos[i].input;
        matches!(infos[i].layer, Layer::Linear { .. }) && (1..=255).contains(&(c * h * w))
    });
    let built_total: u64 = pim_layers.iter().map(|&i| infos[i].macs).sum();
    let scale = pim_macs_per_task as f64 / built_total.max(1) as f64;

    let mut layers = Vec::with_capacity(pim_layers.len());
    let mut scheduled = 0u64;
    for &i in &pim_layers {
        let op = if Some(i) == head_idx {
            LayerOp::Head(lower_head(qm, i)?)
        } else {
            let macs_per_task = (infos[i].macs as f64 * scale).round() as u64;
            scheduled += macs_per_task;
            LayerOp::Schedule { macs_per_task }
        };
        layers.push(CompiledLayer {
            layer: i,
            label: infos[i].layer.to_string(),
            op,
        });
    }
    Ok(CompiledProgram {
        layers,
        scheduled_macs: scheduled,
    })
}

/// A bit-exact classifier head, relocatable between memories: the rows
/// are kept host-side so the head can be re-installed after every
/// re-placement (the runtime's data allocator re-homes the whole
/// network, head included).
#[derive(Debug, Clone)]
pub struct HeadPlan {
    rows: Vec<Vec<u8>>,
    bias: Vec<i32>,
    in_features: usize,
}

impl HeadPlan {
    /// Input feature count (MACs per output neuron).
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output neuron count.
    pub fn out_features(&self) -> usize {
        self.rows.len()
    }

    /// Writes the head's weight rows into `home` of each module in
    /// `modules`, round-robin by neuron (host-side preload, untimed —
    /// the timed bulk movement is the migration traffic itself; the
    /// head is ~1 kB).
    ///
    /// # Errors
    ///
    /// Propagates machine range errors.
    pub fn install(
        &self,
        machine: &mut PimMachine,
        modules: &[usize],
        home: WeightHome,
    ) -> Result<(), CompileError> {
        assert!(!modules.is_empty(), "head needs at least one module");
        for (o, row) in self.rows.iter().enumerate() {
            let module = modules[o % modules.len()];
            let wave = o / modules.len();
            machine.preload(module, home.mem(), wave * self.in_features, row)?;
        }
        Ok(())
    }

    /// Executes the head for one input vector, returning the raw i32
    /// accumulators (bias applied). [`HeadPlan::install`] must have run
    /// for the same `(modules, home)` first.
    ///
    /// # Errors
    ///
    /// Propagates machine errors.
    ///
    /// # Panics
    ///
    /// Panics if `input` length differs from `in_features` or `modules`
    /// is empty.
    pub fn run(
        &self,
        machine: &mut PimMachine,
        modules: &[usize],
        home: WeightHome,
        input: &[i8],
    ) -> Result<Vec<i32>, CompileError> {
        assert_eq!(input.len(), self.in_features, "input length mismatch");
        assert!(!modules.is_empty(), "head needs at least one module");
        let acts: Vec<u8> = input.iter().map(|&v| v as u8).collect();
        for &m in modules {
            machine.preload_activations(m, &acts)?;
        }
        let mut outputs = vec![0i32; self.out_features()];
        let waves = self.out_features().div_ceil(modules.len());
        for wave in 0..waves {
            let lo = wave * modules.len();
            let hi = (lo + modules.len()).min(self.out_features());
            let mut mask = ModuleMask::empty();
            for o in lo..hi {
                mask = mask.union(ModuleMask::single(modules[o % modules.len()] as u8));
            }
            machine.execute(PimInstruction::ClearAcc { modules: mask })?;
            machine.execute(PimInstruction::Mac {
                modules: mask,
                mem: home.mem(),
                addr: (wave * self.in_features) as u16,
                count: self.in_features as u8,
            })?;
            machine.execute(PimInstruction::Barrier)?;
            for o in lo..hi {
                let acc = machine
                    .module(modules[o % modules.len()])
                    .pe()
                    .accumulator();
                outputs[o] = acc + self.bias[o];
            }
        }
        Ok(outputs)
    }
}

/// Lowers linear layer `layer_idx` of `qm` into a relocatable
/// [`HeadPlan`].
///
/// # Errors
///
/// See [`CompileError`].
pub fn lower_head(qm: &QuantizedModel, layer_idx: usize) -> Result<HeadPlan, CompileError> {
    let info = qm
        .model()
        .layers()
        .get(layer_idx)
        .ok_or(CompileError::NotLinear { layer: layer_idx })?;
    let Layer::Linear { out_features } = info.layer else {
        return Err(CompileError::NotLinear { layer: layer_idx });
    };
    let lw = qm
        .layer_weights(layer_idx)
        .ok_or(CompileError::NoWeights { layer: layer_idx })?;
    let (c, h, w) = info.input;
    let in_features = c * h * w;
    if in_features > 255 {
        return Err(CompileError::RowTooLong { in_features });
    }
    let rows = (0..out_features)
        .map(|o| {
            lw.weights[o * in_features..(o + 1) * in_features]
                .iter()
                .map(|&v| v as u8)
                .collect()
        })
        .collect();
    Ok(HeadPlan {
        rows,
        bias: lw.bias.clone(),
        in_features,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hhpim_nn::Model;
    use hhpim_pim::MachineConfig;

    fn fc_model(inf: usize, outf: usize) -> QuantizedModel {
        let model = Model::new(
            "fc",
            (inf, 1, 1),
            vec![Layer::Linear { out_features: outf }],
        )
        .unwrap();
        QuantizedModel::random(model, 77)
    }

    fn reference(qm: &QuantizedModel, input: &[i8]) -> Vec<i32> {
        let lw = qm.layer_weights(0).unwrap();
        let n = input.len();
        (0..lw.bias.len())
            .map(|o| {
                lw.bias[o]
                    + input
                        .iter()
                        .enumerate()
                        .map(|(j, &a)| lw.weights[o * n + j] as i32 * a as i32)
                        .sum::<i32>()
            })
            .collect()
    }

    #[test]
    fn compiled_layer_matches_reference_across_all_modules() {
        let qm = fc_model(32, 20); // 20 neurons over 8 modules: 3 waves
        let mut machine = PimMachine::new(MachineConfig::default());
        let compiled = compile_linear(&qm, 0, &mut machine, WeightHome::Mram).unwrap();
        let input: Vec<i8> = (0..32).map(|i| ((i * 11) % 63) as i8 - 31).collect();
        let got = run_linear(&mut machine, &compiled, &input).unwrap();
        assert_eq!(got, reference(&qm, &input));
    }

    #[test]
    fn sram_home_gives_same_results_faster() {
        let qm = fc_model(24, 8);
        let input: Vec<i8> = (0..24).map(|i| i as i8 - 12).collect();

        let mut m1 = PimMachine::new(MachineConfig::default());
        let c1 = compile_linear(&qm, 0, &mut m1, WeightHome::Mram).unwrap();
        let r1 = run_linear(&mut m1, &c1, &input).unwrap();
        let t_mram = m1.report().finished_at;

        let mut m2 = PimMachine::new(MachineConfig::default());
        let c2 = compile_linear(&qm, 0, &mut m2, WeightHome::Sram).unwrap();
        let r2 = run_linear(&mut m2, &c2, &input).unwrap();
        let t_sram = m2.report().finished_at;

        assert_eq!(r1, r2, "placement must not change results");
        assert!(
            t_sram < t_mram,
            "SRAM weights must be faster: {t_sram} vs {t_mram}"
        );
    }

    #[test]
    fn round_robin_spreads_neurons() {
        let qm = fc_model(8, 10);
        let mut machine = PimMachine::new(MachineConfig::default());
        let compiled = compile_linear(&qm, 0, &mut machine, WeightHome::Sram).unwrap();
        assert_eq!(compiled.module_of(0), 0);
        assert_eq!(compiled.module_of(7), 7);
        assert_eq!(compiled.module_of(8), 0, "wraps to module 0");
        assert_eq!(compiled.out_features(), 10);
    }

    #[test]
    fn rejects_non_linear_and_long_rows() {
        let model = Model::new("r", (4, 1, 1), vec![Layer::Relu]).unwrap();
        let qm = QuantizedModel::random(model, 1);
        let mut machine = PimMachine::new(MachineConfig::default());
        assert!(matches!(
            compile_linear(&qm, 0, &mut machine, WeightHome::Mram),
            Err(CompileError::NotLinear { layer: 0 })
        ));
        let wide = fc_model(300, 2);
        assert!(matches!(
            compile_linear(&wide, 0, &mut machine, WeightHome::Mram),
            Err(CompileError::RowTooLong { in_features: 300 })
        ));
    }

    #[test]
    fn multiple_inputs_reuse_compiled_weights() {
        let qm = fc_model(16, 6);
        let mut machine = PimMachine::new(MachineConfig::default());
        let compiled = compile_linear(&qm, 0, &mut machine, WeightHome::Mram).unwrap();
        for seed in 0..4i8 {
            let input: Vec<i8> = (0..16).map(|i| (i as i8).wrapping_mul(seed + 1)).collect();
            let got = run_linear(&mut machine, &compiled, &input).unwrap();
            assert_eq!(got, reference(&qm, &input), "seed {seed}");
        }
    }

    #[test]
    fn zoo_classifier_head_runs_on_machine() {
        // The real MobileNetV2-tiny classifier head (88 -> 10) executed
        // on the cycle-level machine, cross-checked with the reference.
        let model = hhpim_nn::zoo::mobilenet_v2_tiny();
        let head_idx = model.layers().len() - 1;
        let qm = QuantizedModel::random(model, 3);
        let (c, h, w) = qm.model().layers()[head_idx].input;
        let in_features = c * h * w;
        let mut machine = PimMachine::new(MachineConfig::default());
        let compiled = compile_linear(&qm, head_idx, &mut machine, WeightHome::Mram).unwrap();
        let input: Vec<i8> = (0..in_features)
            .map(|i| ((i * 29) % 100) as i8 - 50)
            .collect();
        let got = run_linear(&mut machine, &compiled, &input).unwrap();
        let lw = qm.layer_weights(head_idx).unwrap();
        let expect: Vec<i32> = (0..10)
            .map(|o| {
                lw.bias[o]
                    + input
                        .iter()
                        .enumerate()
                        .map(|(j, &a)| lw.weights[o * in_features + j] as i32 * a as i32)
                        .sum::<i32>()
            })
            .collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn compile_model_scales_schedule_to_profile_macs() {
        let model = hhpim_nn::TinyMlModel::MobileNetV2;
        let qm = QuantizedModel::random(model.build(), 3);
        let pim_macs = model.spec().pim_macs();
        let program = compile_model(&qm, pim_macs).unwrap();
        assert!(program.head().is_some(), "MobileNet has a narrow head");
        let head_macs = {
            let h = program.head().unwrap();
            (h.in_features() * h.out_features()) as u64
        };
        // Scheduled MACs + (scaled) head MACs land on the profile total
        // within per-layer rounding.
        let total = program.scheduled_macs() + head_macs;
        let rel = (total as f64 - pim_macs as f64).abs() / pim_macs as f64;
        assert!(rel < 0.01, "program {total} vs profile {pim_macs}");
        // Layers come out in model order and are all PIM layers.
        let idxs: Vec<usize> = program.layers().iter().map(|l| l.layer).collect();
        assert!(idxs.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn head_plan_matches_reference_and_relocates() {
        let qm = fc_model(32, 10);
        let head = lower_head(&qm, 0).unwrap();
        let input: Vec<i8> = (0..32).map(|i| ((i * 13) % 64) as i8 - 32).collect();
        let expect = reference(&qm, &input);
        let mut machine = PimMachine::new(MachineConfig::default());
        let modules: Vec<usize> = (0..machine.module_count()).collect();
        head.install(&mut machine, &modules, WeightHome::Mram)
            .unwrap();
        let got = head
            .run(&mut machine, &modules, WeightHome::Mram, &input)
            .unwrap();
        assert_eq!(got, expect);
        // Re-home into SRAM on a subset of modules: same results.
        let subset = [0usize, 1, 2, 3];
        head.install(&mut machine, &subset, WeightHome::Sram)
            .unwrap();
        let got2 = head
            .run(&mut machine, &subset, WeightHome::Sram, &input)
            .unwrap();
        assert_eq!(got2, expect, "placement must not change results");
    }

    #[test]
    fn compile_model_rejects_host_only_stacks() {
        let model = Model::new("r", (4, 1, 1), vec![Layer::Relu]).unwrap();
        let qm = QuantizedModel::random(model, 1);
        assert!(matches!(
            compile_model(&qm, 1000),
            Err(CompileError::NotLinear { layer: 0 })
        ));
    }

    #[test]
    fn error_display() {
        assert_eq!(
            CompileError::RowTooLong { in_features: 300 }.to_string(),
            "300 input features exceed one module pass"
        );
        assert!(CompileError::NotLinear { layer: 2 }
            .to_string()
            .contains("layer 2"));
    }
}
