//! Layer-to-PIM compilation: maps a quantized fully-connected layer
//! onto the cycle-level machine, distributing output neurons across PIM
//! modules exactly as the paper distributes "each layer of a neural
//! network across HP-PIM and LP-PIM modules for parallel computation,
//! with the final output obtained by aggregating results from each
//! module" (§III).
//!
//! This is the bridge between the analytical evaluation (fast sweeps)
//! and the bit-accurate machine: compiled layers execute real INT8 MACs
//! in module PEs and are checked against the software reference — the
//! functional-verification role of the paper's FPGA prototype.

use hhpim_isa::{MemSelect, ModuleMask, PimInstruction};
use hhpim_nn::{Layer, QuantizedModel};
use hhpim_pim::{MachineError, PimMachine};
use std::fmt;

/// Where compiled weights are placed inside each module.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WeightHome {
    /// Non-volatile MRAM (the H-PIM default).
    Mram,
    /// SRAM (the peak-performance choice).
    Sram,
}

impl WeightHome {
    fn mem(self) -> MemSelect {
        match self {
            WeightHome::Mram => MemSelect::Mram,
            WeightHome::Sram => MemSelect::Sram,
        }
    }
}

/// Compilation errors.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// The layer at the given index is not a Linear layer.
    NotLinear {
        /// Offending layer index.
        layer: usize,
    },
    /// The layer has no materialized weights.
    NoWeights {
        /// Offending layer index.
        layer: usize,
    },
    /// A row is too long for a single module pass (> activation region).
    RowTooLong {
        /// Input features required.
        in_features: usize,
    },
    /// The underlying machine rejected a preload or instruction.
    Machine(MachineError),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::NotLinear { layer } => write!(f, "layer {layer} is not linear"),
            CompileError::NoWeights { layer } => write!(f, "layer {layer} has no weights"),
            CompileError::RowTooLong { in_features } => {
                write!(f, "{in_features} input features exceed one module pass")
            }
            CompileError::Machine(e) => write!(f, "machine: {e}"),
        }
    }
}

impl std::error::Error for CompileError {}

impl From<MachineError> for CompileError {
    fn from(e: MachineError) -> Self {
        CompileError::Machine(e)
    }
}

/// A linear layer lowered onto a PIM machine.
#[derive(Debug, Clone)]
pub struct CompiledLinear {
    /// Which module computes each output neuron (round-robin).
    assignment: Vec<usize>,
    /// Per-neuron i32 bias, applied host-side at aggregation.
    bias: Vec<i32>,
    /// Input feature count (MACs per neuron).
    in_features: usize,
    home: WeightHome,
}

impl CompiledLinear {
    /// Number of output neurons.
    pub fn out_features(&self) -> usize {
        self.assignment.len()
    }

    /// The module computing neuron `o`.
    ///
    /// # Panics
    ///
    /// Panics if `o` is out of range.
    pub fn module_of(&self, o: usize) -> usize {
        self.assignment[o]
    }
}

/// Lowers linear layer `layer_idx` of `qm` onto `machine`: weight rows
/// stripe round-robin over all modules in `home`, one row per
/// "wave" per module.
///
/// # Errors
///
/// See [`CompileError`].
pub fn compile_linear(
    qm: &QuantizedModel,
    layer_idx: usize,
    machine: &mut PimMachine,
    home: WeightHome,
) -> Result<CompiledLinear, CompileError> {
    let info = qm
        .model()
        .layers()
        .get(layer_idx)
        .ok_or(CompileError::NotLinear { layer: layer_idx });
    let info = info?;
    let Layer::Linear { out_features } = info.layer else {
        return Err(CompileError::NotLinear { layer: layer_idx });
    };
    let lw = qm
        .layer_weights(layer_idx)
        .ok_or(CompileError::NoWeights { layer: layer_idx })?;
    let (c, h, w) = info.input;
    let in_features = c * h * w;
    if in_features > 255 {
        // A MAC burst carries at most 255 operations; multi-burst rows
        // are possible but the activation region must also fit.
        return Err(CompileError::RowTooLong { in_features });
    }
    let modules = machine.module_count();
    let mut assignment = Vec::with_capacity(out_features);
    for o in 0..out_features {
        let module = o % modules;
        assignment.push(module);
        // Each wave stores its row behind the previous one.
        let wave = o / modules;
        let addr = wave * in_features;
        let row: Vec<u8> = lw.weights[o * in_features..(o + 1) * in_features]
            .iter()
            .map(|&v| v as u8)
            .collect();
        machine.preload(module, home.mem(), addr, &row)?;
    }
    Ok(CompiledLinear {
        assignment,
        bias: lw.bias.clone(),
        in_features,
        home,
    })
}

/// Executes a compiled layer on `machine` for one input vector and
/// returns the raw i32 accumulators (bias applied, no requantization).
///
/// # Errors
///
/// Propagates machine errors.
///
/// # Panics
///
/// Panics if `input` length differs from the compiled `in_features`.
pub fn run_linear(
    machine: &mut PimMachine,
    compiled: &CompiledLinear,
    input: &[i8],
) -> Result<Vec<i32>, CompileError> {
    assert_eq!(input.len(), compiled.in_features, "input length mismatch");
    let modules = machine.module_count();
    let acts: Vec<u8> = input.iter().map(|&v| v as u8).collect();
    for m in 0..modules {
        machine.preload_activations(m, &acts)?;
    }
    let mut outputs = vec![0i32; compiled.out_features()];
    let waves = compiled.out_features().div_ceil(modules);
    for wave in 0..waves {
        let lo = wave * modules;
        let hi = (lo + modules).min(compiled.out_features());
        let mut mask = ModuleMask::empty();
        for o in lo..hi {
            mask = mask.union(ModuleMask::single(compiled.assignment[o] as u8));
        }
        let addr = (wave * compiled.in_features) as u16;
        machine.execute(PimInstruction::ClearAcc { modules: mask })?;
        machine.execute(PimInstruction::Mac {
            modules: mask,
            mem: compiled.home.mem(),
            addr,
            count: compiled.in_features as u8,
        })?;
        machine.execute(PimInstruction::Barrier)?;
        // Aggregate: the host reads each module's accumulator (the
        // paper's "final output obtained by aggregating results").
        for o in lo..hi {
            let acc = machine.module(compiled.assignment[o]).pe().accumulator();
            outputs[o] = acc + compiled.bias[o];
        }
    }
    Ok(outputs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hhpim_nn::Model;
    use hhpim_pim::MachineConfig;

    fn fc_model(inf: usize, outf: usize) -> QuantizedModel {
        let model = Model::new(
            "fc",
            (inf, 1, 1),
            vec![Layer::Linear { out_features: outf }],
        )
        .unwrap();
        QuantizedModel::random(model, 77)
    }

    fn reference(qm: &QuantizedModel, input: &[i8]) -> Vec<i32> {
        let lw = qm.layer_weights(0).unwrap();
        let n = input.len();
        (0..lw.bias.len())
            .map(|o| {
                lw.bias[o]
                    + input
                        .iter()
                        .enumerate()
                        .map(|(j, &a)| lw.weights[o * n + j] as i32 * a as i32)
                        .sum::<i32>()
            })
            .collect()
    }

    #[test]
    fn compiled_layer_matches_reference_across_all_modules() {
        let qm = fc_model(32, 20); // 20 neurons over 8 modules: 3 waves
        let mut machine = PimMachine::new(MachineConfig::default());
        let compiled = compile_linear(&qm, 0, &mut machine, WeightHome::Mram).unwrap();
        let input: Vec<i8> = (0..32).map(|i| ((i * 11) % 63) as i8 - 31).collect();
        let got = run_linear(&mut machine, &compiled, &input).unwrap();
        assert_eq!(got, reference(&qm, &input));
    }

    #[test]
    fn sram_home_gives_same_results_faster() {
        let qm = fc_model(24, 8);
        let input: Vec<i8> = (0..24).map(|i| i as i8 - 12).collect();

        let mut m1 = PimMachine::new(MachineConfig::default());
        let c1 = compile_linear(&qm, 0, &mut m1, WeightHome::Mram).unwrap();
        let r1 = run_linear(&mut m1, &c1, &input).unwrap();
        let t_mram = m1.report().finished_at;

        let mut m2 = PimMachine::new(MachineConfig::default());
        let c2 = compile_linear(&qm, 0, &mut m2, WeightHome::Sram).unwrap();
        let r2 = run_linear(&mut m2, &c2, &input).unwrap();
        let t_sram = m2.report().finished_at;

        assert_eq!(r1, r2, "placement must not change results");
        assert!(
            t_sram < t_mram,
            "SRAM weights must be faster: {t_sram} vs {t_mram}"
        );
    }

    #[test]
    fn round_robin_spreads_neurons() {
        let qm = fc_model(8, 10);
        let mut machine = PimMachine::new(MachineConfig::default());
        let compiled = compile_linear(&qm, 0, &mut machine, WeightHome::Sram).unwrap();
        assert_eq!(compiled.module_of(0), 0);
        assert_eq!(compiled.module_of(7), 7);
        assert_eq!(compiled.module_of(8), 0, "wraps to module 0");
        assert_eq!(compiled.out_features(), 10);
    }

    #[test]
    fn rejects_non_linear_and_long_rows() {
        let model = Model::new("r", (4, 1, 1), vec![Layer::Relu]).unwrap();
        let qm = QuantizedModel::random(model, 1);
        let mut machine = PimMachine::new(MachineConfig::default());
        assert!(matches!(
            compile_linear(&qm, 0, &mut machine, WeightHome::Mram),
            Err(CompileError::NotLinear { layer: 0 })
        ));
        let wide = fc_model(300, 2);
        assert!(matches!(
            compile_linear(&wide, 0, &mut machine, WeightHome::Mram),
            Err(CompileError::RowTooLong { in_features: 300 })
        ));
    }

    #[test]
    fn multiple_inputs_reuse_compiled_weights() {
        let qm = fc_model(16, 6);
        let mut machine = PimMachine::new(MachineConfig::default());
        let compiled = compile_linear(&qm, 0, &mut machine, WeightHome::Mram).unwrap();
        for seed in 0..4i8 {
            let input: Vec<i8> = (0..16).map(|i| (i as i8).wrapping_mul(seed + 1)).collect();
            let got = run_linear(&mut machine, &compiled, &input).unwrap();
            assert_eq!(got, reference(&qm, &input), "seed {seed}");
        }
    }

    #[test]
    fn zoo_classifier_head_runs_on_machine() {
        // The real MobileNetV2-tiny classifier head (88 -> 10) executed
        // on the cycle-level machine, cross-checked with the reference.
        let model = hhpim_nn::zoo::mobilenet_v2_tiny();
        let head_idx = model.layers().len() - 1;
        let qm = QuantizedModel::random(model, 3);
        let (c, h, w) = qm.model().layers()[head_idx].input;
        let in_features = c * h * w;
        let mut machine = PimMachine::new(MachineConfig::default());
        let compiled = compile_linear(&qm, head_idx, &mut machine, WeightHome::Mram).unwrap();
        let input: Vec<i8> = (0..in_features)
            .map(|i| ((i * 29) % 100) as i8 - 50)
            .collect();
        let got = run_linear(&mut machine, &compiled, &input).unwrap();
        let lw = qm.layer_weights(head_idx).unwrap();
        let expect: Vec<i32> = (0..10)
            .map(|o| {
                lw.bias[o]
                    + input
                        .iter()
                        .enumerate()
                        .map(|(j, &a)| lw.weights[o * in_features + j] as i32 * a as i32)
                        .sum::<i32>()
            })
            .collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn error_display() {
        assert_eq!(
            CompileError::RowTooLong { in_features: 300 }.to_string(),
            "300 input features exceed one module pass"
        );
        assert!(CompileError::NotLinear { layer: 2 }
            .to_string()
            .contains("layer 2"));
    }
}
