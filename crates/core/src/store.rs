//! The placement store: a thread-safe, memoized cache of prepared
//! placement state shared across the DP → policy → session layers.
//!
//! The §III-B allocation LUT is precomputed once per (architecture,
//! model, latency-constraint) configuration in the paper — but before
//! this module every [`crate::Processor`] construction re-ran the DP,
//! so a dual-backend session, a deprecated shim and every cell of a
//! [`crate::session::Session::sweep`] each paid the full Algorithm 1+2
//! cost again. A [`PlacementStore`] memoizes the built
//! [`AllocationLut`]s (and the cheaper [`crate::FixedHome`] resolved
//! homes) behind a hashable [`PlacementKey`], so the DP runs **once
//! per distinct configuration per process**:
//!
//! ```text
//!            SessionBuilder ──.store(..)──┐
//!                 │                       ▼
//!            Processor ──prepare──▶ PlacementPolicy
//!                 │                       │
//!                 ▼                       ▼
//!           CycleBackend          PlacementStore ── PlacementKey ──▶ Arc<AllocationLut>
//!           AnalyticBackend         (hits / misses / build time)
//! ```
//!
//! Sharing is by [`Arc`]: a hit clones a pointer, never the table.
//! Distinct configurations (different architecture geometry, model
//! footprint, calibration, optimizer resolution or deadline budget)
//! hash to distinct keys and never alias. [`CacheStats`] reports
//! hits, misses, LUT DP builds and total build wall time — surfaced
//! per run in [`crate::session::RunArtifacts::cache`].
//!
//! With a persistent [`crate::artifact`] tier attached
//! ([`PlacementStore::set_artifact_store`], or
//! [`crate::session::SessionBuilder::artifact_dir`] from the facade),
//! the lookup ladder becomes **memory hit → disk hit →
//! build-and-write-back**: the DP survives the process, so a second
//! process pointed at a populated artifact dir performs zero LUT
//! builds for cached keys. [`PlacementKey::canonical`] supplies the
//! process-stable on-disk identity.
//!
//! The multi-tenant [`crate::server::Server`] leans on the same
//! mechanism: every tenant engine draws from one shared store
//! ([`crate::server::ServerBuilder::store`], defaulting to
//! [`PlacementStore::global`]), so tenants serving the same model on
//! the same architecture share a single DP build.
//!
//! # Examples
//!
//! ```
//! use hhpim::{PlacementStore, Architecture, CostModel, CostParams, WorkloadProfile};
//! use hhpim::{OptimizerConfig, RuntimeConfig};
//! use hhpim_nn::TinyMlModel;
//!
//! let store = PlacementStore::new();
//! let cost = CostModel::new(
//!     Architecture::HhPim.spec(),
//!     WorkloadProfile::from_spec(&TinyMlModel::MobileNetV2.spec()),
//!     CostParams::default(),
//! )
//! .unwrap();
//! let runtime = RuntimeConfig::reference(TinyMlModel::MobileNetV2, CostParams::default()).unwrap();
//! let opt = OptimizerConfig { time_buckets: 300, ..OptimizerConfig::default() };
//!
//! let first = store.lut(&cost, &runtime, &opt);   // cold: runs the DP
//! let second = store.lut(&cost, &runtime, &opt);  // warm: pointer clone
//! assert!(std::sync::Arc::ptr_eq(&first, &second));
//! let stats = store.stats();
//! assert_eq!((stats.lut_builds, stats.hits), (1, 1));
//! ```

use crate::artifact::ArtifactStore;
use crate::cost::{CostModel, CostModelError};
use crate::dp::{AllocationLut, OptimizerConfig, PlacementOptimizer};
use crate::runtime::RuntimeConfig;
use crate::space::Placement;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// What a [`PlacementKey`] identifies inside the store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum KeyVariant {
    /// A DP-built allocation LUT.
    Lut,
    /// A resolved fixed home (architecture default or a caller pin).
    FixedHome(Option<Placement>),
}

/// Canonical, hashable identity of one prepared-placement
/// configuration: the architecture's Table I geometry, the model's
/// weight/MAC footprint, the cost-model calibration, the optimizer
/// resolution and the deadline budget the LUT was sized against.
///
/// Two cost models that agree on every field produce bit-identical
/// LUTs, so the store may serve one build to both; any divergence in
/// any field yields a distinct key and a distinct entry. Floating
/// calibration knobs are keyed by their exact bit patterns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlacementKey {
    // Architecture geometry (determines capacities and parallelism).
    arch: crate::arch::Architecture,
    hp_modules: usize,
    lp_modules: usize,
    mram_per_module: usize,
    sram_per_module: usize,
    // Model identity as the cost model sees it.
    weight_bytes: usize,
    pim_macs: u64,
    // Cost-model calibration.
    group_size: usize,
    act_reserve_per_module: usize,
    include_input_reads: bool,
    time_scale_bits: u64,
    // Optimizer resolution.
    time_buckets: usize,
    amortize_static: bool,
    retention_factor_bits: u64,
    // Deadline budget the LUT covers.
    usable_slice_ps: u64,
    max_tasks: u32,
    variant: KeyVariant,
}

impl PlacementKey {
    fn base(cost: &CostModel, variant: KeyVariant) -> Self {
        let arch = cost.arch();
        let params = cost.params();
        let profile = cost.profile();
        PlacementKey {
            arch: arch.arch,
            hp_modules: arch.hp_modules,
            lp_modules: arch.lp_modules,
            mram_per_module: arch.mram_per_module,
            sram_per_module: arch.sram_per_module,
            weight_bytes: profile.weight_bytes,
            pim_macs: profile.pim_macs,
            group_size: params.group_size,
            act_reserve_per_module: params.act_reserve_per_module,
            include_input_reads: params.include_input_reads,
            time_scale_bits: params.time_scale.to_bits(),
            time_buckets: 0,
            amortize_static: false,
            retention_factor_bits: 0,
            usable_slice_ps: 0,
            max_tasks: 0,
            variant,
        }
    }

    /// The key of the allocation LUT built for `cost` under `runtime`
    /// deadlines at `opt` resolution.
    pub fn for_lut(cost: &CostModel, runtime: &RuntimeConfig, opt: &OptimizerConfig) -> Self {
        let (time_buckets, amortize_static, retention_factor_bits) = opt.canonical_bits();
        PlacementKey {
            time_buckets,
            amortize_static,
            retention_factor_bits,
            usable_slice_ps: runtime.usable_slice().as_ps(),
            max_tasks: runtime.max_tasks,
            ..Self::base(cost, KeyVariant::Lut)
        }
    }

    /// The key of a resolved fixed home for `cost` (`pinned` when the
    /// caller supplied one, otherwise the architecture's default).
    pub fn for_fixed_home(cost: &CostModel, pinned: Option<Placement>) -> Self {
        Self::base(cost, KeyVariant::FixedHome(pinned))
    }

    /// Whether this key identifies a DP-built allocation LUT (the only
    /// variant the [`crate::artifact`] disk tier persists — fixed-home
    /// resolutions cost microseconds and are always rebuilt).
    pub fn is_lut(&self) -> bool {
        self.variant == KeyVariant::Lut
    }

    /// The key's canonical, **process-stable** encoding.
    ///
    /// The in-process `Hash` impl hashes machine bit patterns through
    /// `HashMap`'s randomly seeded hasher, so it cannot name an
    /// on-disk artifact. This method renders every field into a
    /// versioned, deterministic `field=value` string instead —
    /// architecture geometry, model footprint, cost-model calibration
    /// (floats by their exact bit patterns), optimizer resolution and
    /// the deadline budget — identical across runs, processes and
    /// machines for identical configurations. The `hhpim-key-v1`
    /// prefix versions the encoding itself: any change to the field
    /// set must bump it, retiring stale artifacts by key mismatch.
    ///
    /// [`crate::artifact::ArtifactStore`] derives artifact file names
    /// from a hash of this string and embeds the full string in the
    /// file, so a loaded artifact is served only when the embedded key
    /// matches the requested one byte for byte.
    pub fn canonical(&self) -> String {
        let arch = match self.arch {
            crate::arch::Architecture::Baseline => "baseline",
            crate::arch::Architecture::Heterogeneous => "heterogeneous",
            crate::arch::Architecture::Hybrid => "hybrid",
            crate::arch::Architecture::HhPim => "hh-pim",
        };
        let variant = match self.variant {
            KeyVariant::Lut => "lut".to_string(),
            KeyVariant::FixedHome(None) => "fixed".to_string(),
            KeyVariant::FixedHome(Some(p)) => {
                let c = crate::space::StorageSpace::ALL.map(|s| p.get(s));
                format!("fixed:{},{},{},{}", c[0], c[1], c[2], c[3])
            }
        };
        format!(
            "hhpim-key-v1;arch={arch};hp={};lp={};mram={};sram={};\
             wb={};macs={};gs={};act={};inp={};ts={};\
             tb={};amort={};rf={};slice={};maxt={};variant={variant}",
            self.hp_modules,
            self.lp_modules,
            self.mram_per_module,
            self.sram_per_module,
            self.weight_bytes,
            self.pim_macs,
            self.group_size,
            self.act_reserve_per_module,
            u8::from(self.include_input_reads),
            self.time_scale_bits,
            self.time_buckets,
            u8::from(self.amortize_static),
            self.retention_factor_bits,
            self.usable_slice_ps,
            self.max_tasks,
        )
    }
}

/// A snapshot of one store's cache behavior.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups served from the cache (pointer clones, no DP).
    pub hits: u64,
    /// Lookups that had to build a new entry.
    pub misses: u64,
    /// LUT DP builds — the expensive subset of `misses` (fixed-home
    /// resolutions also miss but cost microseconds).
    pub lut_builds: u64,
    /// Memory misses served by the [`crate::artifact`] disk tier
    /// instead of a DP build (always 0 without an attached artifact
    /// dir). Disk hits count in `misses` but never in `lut_builds`.
    pub disk_hits: u64,
    /// Freshly built LUTs written back to the artifact dir.
    pub disk_writes: u64,
    /// Total wall time spent building entries.
    pub build_time: Duration,
    /// Entries evicted by the bounded-capacity LRU mode (always 0 on
    /// the default unbounded store).
    pub evictions: u64,
}

/// One LUT slot: a `OnceLock` so concurrent misses on the *same* key
/// serialize on the slot (exactly one build) while distinct keys build
/// in parallel.
type LutCell = Arc<OnceLock<Arc<AllocationLut>>>;

/// A thread-safe, memoized cache of prepared placement state. See the
/// [module docs](self).
///
/// By default a store never evicts — the right trade for batch
/// processes whose configuration population is bounded by the
/// experiment grid. Long-lived streaming processes loading many
/// models should bound it with [`PlacementStore::with_capacity`]:
/// each map (LUTs, fixed homes) then keeps at most that many entries,
/// evicting the least-recently-used one past the cap and counting the
/// eviction in [`CacheStats::evictions`]. An evicted entry is rebuilt
/// on its next request; in-flight builds are unaffected (the builder
/// holds the slot alive).
#[derive(Debug, Default)]
pub struct PlacementStore {
    luts: Mutex<HashMap<PlacementKey, (LutCell, u64)>>,
    homes: Mutex<HashMap<PlacementKey, (Placement, u64)>>,
    /// Per-map entry cap; `None` = unbounded (the default).
    capacity: Option<usize>,
    /// Optional persistent disk tier consulted between a memory miss
    /// and the DP build; see [`PlacementStore::set_artifact_store`].
    artifacts: Mutex<Option<ArtifactStore>>,
    /// Monotone LRU clock; bumped on every lookup.
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    lut_builds: AtomicU64,
    disk_hits: AtomicU64,
    disk_writes: AtomicU64,
    build_ns: AtomicU64,
    evictions: AtomicU64,
}

/// Evicts the least-recently-used entry other than `keep` when `map`
/// exceeds `capacity`, returning whether an entry was dropped.
fn evict_lru<V>(
    map: &mut HashMap<PlacementKey, (V, u64)>,
    capacity: usize,
    keep: PlacementKey,
) -> bool {
    if map.len() <= capacity {
        return false;
    }
    let victim = map
        .iter()
        .filter(|(k, _)| **k != keep)
        .min_by_key(|(_, (_, stamp))| *stamp)
        .map(|(k, _)| *k);
    match victim {
        Some(key) => map.remove(&key).is_some(),
        None => false,
    }
}

static GLOBAL: OnceLock<Arc<PlacementStore>> = OnceLock::new();

impl PlacementStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty store, ready to share (`Arc::new(Self::new())`).
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::new())
    }

    /// An empty store that keeps at most `capacity` entries per map
    /// (LUTs and fixed homes each), evicting least-recently-used
    /// entries past the cap. `capacity` is clamped to at least 1.
    /// Intended for long-lived engine processes that stream many
    /// model/architecture configurations; the default stores stay
    /// unbounded.
    pub fn with_capacity(capacity: usize) -> Self {
        PlacementStore {
            capacity: Some(capacity.max(1)),
            ..Default::default()
        }
    }

    /// The per-map entry cap, if this store is bounded.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// An empty store with a persistent [`crate::artifact`] disk tier
    /// rooted at `dir` — shorthand for [`PlacementStore::new`] plus
    /// [`PlacementStore::set_artifact_store`].
    pub fn with_artifact_dir(dir: impl Into<std::path::PathBuf>) -> Self {
        let store = Self::new();
        store.set_artifact_store(Some(ArtifactStore::new(dir)));
        store
    }

    /// Attaches (`Some`), replaces or detaches (`None`) the persistent
    /// disk tier. With a tier attached, a memory miss in
    /// [`PlacementStore::lut`] first tries to load the keyed artifact
    /// from disk (counted in [`CacheStats::disk_hits`]) and only then
    /// runs the DP, writing the fresh build back (counted in
    /// [`CacheStats::disk_writes`]). A missing, corrupt or
    /// key-mismatched artifact file silently falls through to a
    /// rebuild whose write-back replaces it — the tier can change
    /// *whether* the DP runs, never what a lookup returns.
    pub fn set_artifact_store(&self, artifacts: Option<ArtifactStore>) {
        *self.artifacts.lock().expect("placement store poisoned") = artifacts;
    }

    /// The attached disk tier, if any (a cheap handle clone).
    pub fn artifact_store(&self) -> Option<ArtifactStore> {
        self.artifacts
            .lock()
            .expect("placement store poisoned")
            .clone()
    }

    /// The process-local store: the default for every
    /// [`crate::session::SessionBuilder`], [`crate::Processor`]
    /// constructor and deprecated shim, so independently built
    /// sessions in one process still share one DP run per distinct
    /// configuration. Use [`crate::session::SessionBuilder::store`]
    /// with a private store when isolated [`CacheStats`] matter (e.g.
    /// in tests).
    pub fn global() -> Arc<PlacementStore> {
        GLOBAL
            .get_or_init(|| Arc::new(PlacementStore::new()))
            .clone()
    }

    /// The allocation LUT for `(cost, runtime, opt)`: built by the DP
    /// on the first request for its [`PlacementKey`], served as an
    /// [`Arc`] clone afterwards. Concurrent first requests for the
    /// same key block on one build; distinct keys build concurrently.
    pub fn lut(
        &self,
        cost: &CostModel,
        runtime: &RuntimeConfig,
        opt: &OptimizerConfig,
    ) -> Arc<AllocationLut> {
        let key = PlacementKey::for_lut(cost, runtime, opt);
        let cell: LutCell = {
            let mut luts = self.luts.lock().expect("placement store poisoned");
            let stamp = self.tick.fetch_add(1, Ordering::Relaxed);
            let entry = luts.entry(key).or_default();
            entry.1 = stamp;
            let cell = entry.0.clone();
            if let Some(cap) = self.capacity {
                if evict_lru(&mut luts, cap, key) {
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
            }
            cell
        };
        let mut built_here = false;
        let mut disk_hit = false;
        let artifacts = self.artifact_store();
        let lut = cell
            .get_or_init(|| {
                // Memory miss: consult the persistent disk tier before
                // paying the DP. A load failure of any kind (absent,
                // truncated, version-bumped, checksum- or
                // key-mismatched file) falls through to a rebuild
                // whose write-back replaces the bad file — stale or
                // torn artifacts are never served.
                if let Some(art) = &artifacts {
                    if let Ok(Some(lut)) = art.try_load_lut(&key) {
                        disk_hit = true;
                        return Arc::new(lut);
                    }
                }
                built_here = true;
                let start = Instant::now();
                let optimizer = PlacementOptimizer::new(cost, *opt);
                let lut =
                    AllocationLut::build(&optimizer, runtime.usable_slice(), runtime.max_tasks);
                self.build_ns
                    .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
                if let Some(art) = &artifacts {
                    if art.save_lut(&key, &lut).is_ok() {
                        self.disk_writes.fetch_add(1, Ordering::Relaxed);
                    }
                }
                Arc::new(lut)
            })
            .clone();
        if built_here {
            self.misses.fetch_add(1, Ordering::Relaxed);
            self.lut_builds.fetch_add(1, Ordering::Relaxed);
        } else if disk_hit {
            self.misses.fetch_add(1, Ordering::Relaxed);
            self.disk_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        lut
    }

    /// The resolved fixed home for `cost` (the architecture's Table I
    /// default, or `pinned` when supplied), validated once per key.
    /// Resolution costs microseconds, so it runs under the map lock —
    /// concurrent misses on one key serialize into exactly one
    /// recorded build, matching the LUT path's guarantee.
    ///
    /// # Errors
    ///
    /// [`CostModelError::InvalidPlacement`] when a pinned placement
    /// violates capacities or does not place all weight groups —
    /// invalid pins are *not* cached.
    pub fn fixed_home(
        &self,
        cost: &CostModel,
        pinned: Option<Placement>,
    ) -> Result<Placement, CostModelError> {
        let key = PlacementKey::for_fixed_home(cost, pinned);
        let mut homes = self.homes.lock().expect("placement store poisoned");
        let stamp = self.tick.fetch_add(1, Ordering::Relaxed);
        if let Some(entry) = homes.get_mut(&key) {
            entry.1 = stamp;
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(entry.0);
        }
        let start = Instant::now();
        let home = pinned.unwrap_or_else(|| crate::policy::arch_fixed_home(cost.arch().arch, cost));
        if !cost.is_valid(&home) {
            return Err(CostModelError::InvalidPlacement { placement: home });
        }
        self.build_ns
            .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        self.misses.fetch_add(1, Ordering::Relaxed);
        homes.insert(key, (home, stamp));
        if let Some(cap) = self.capacity {
            if evict_lru(&mut homes, cap, key) {
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        Ok(home)
    }

    /// Whether a built LUT for `(cost, runtime, opt)` is already
    /// cached (without touching the hit/miss counters).
    pub fn contains_lut(
        &self,
        cost: &CostModel,
        runtime: &RuntimeConfig,
        opt: &OptimizerConfig,
    ) -> bool {
        let key = PlacementKey::for_lut(cost, runtime, opt);
        self.luts
            .lock()
            .expect("placement store poisoned")
            .get(&key)
            .is_some_and(|(cell, _)| cell.get().is_some())
    }

    /// A snapshot of this store's hit/miss/build counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            lut_builds: self.lut_builds.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            disk_writes: self.disk_writes.load(Ordering::Relaxed),
            build_time: Duration::from_nanos(self.build_ns.load(Ordering::Relaxed)),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// Number of cached entries (LUTs + resolved homes).
    pub fn len(&self) -> usize {
        self.luts.lock().expect("placement store poisoned").len()
            + self.homes.lock().expect("placement store poisoned").len()
    }

    /// Whether the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every cached entry (counters are kept — stats describe
    /// the store's lifetime, not its current contents).
    pub fn clear(&self) {
        self.luts.lock().expect("placement store poisoned").clear();
        self.homes.lock().expect("placement store poisoned").clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::Architecture;
    use crate::cost::{CostParams, WorkloadProfile};
    use hhpim_nn::TinyMlModel;

    fn fixture(
        arch: Architecture,
        model: TinyMlModel,
        buckets: usize,
    ) -> (CostModel, RuntimeConfig, OptimizerConfig) {
        let params = CostParams::default();
        let cost = CostModel::new(
            arch.spec(),
            WorkloadProfile::from_spec(&model.spec()),
            params,
        )
        .unwrap();
        let runtime = RuntimeConfig::reference(model, params).unwrap();
        let opt = OptimizerConfig {
            time_buckets: buckets,
            ..OptimizerConfig::default()
        };
        (cost, runtime, opt)
    }

    #[test]
    fn same_key_serves_one_build() {
        let store = PlacementStore::new();
        let (cost, runtime, opt) = fixture(Architecture::HhPim, TinyMlModel::MobileNetV2, 250);
        let a = store.lut(&cost, &runtime, &opt);
        let b = store.lut(&cost, &runtime, &opt);
        assert!(Arc::ptr_eq(&a, &b), "hit must be a pointer clone");
        assert_eq!(*a, *b);
        let stats = store.stats();
        assert_eq!(stats.lut_builds, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 1);
        assert!(stats.build_time > Duration::ZERO);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn distinct_configurations_get_distinct_entries() {
        let store = PlacementStore::new();
        let (cost, runtime, opt) = fixture(Architecture::HhPim, TinyMlModel::MobileNetV2, 250);
        store.lut(&cost, &runtime, &opt);
        // Different optimizer resolution.
        let coarser = OptimizerConfig {
            time_buckets: 120,
            ..opt
        };
        store.lut(&cost, &runtime, &coarser);
        // Different model.
        let (cost2, runtime2, opt2) =
            fixture(Architecture::HhPim, TinyMlModel::EfficientNetB0, 250);
        store.lut(&cost2, &runtime2, &opt2);
        // Different architecture geometry.
        let (cost3, runtime3, opt3) = fixture(Architecture::Hybrid, TinyMlModel::MobileNetV2, 250);
        store.lut(&cost3, &runtime3, &opt3);
        let stats = store.stats();
        assert_eq!(stats.lut_builds, 4, "four distinct keys, four builds");
        assert_eq!(stats.hits, 0);
        assert_eq!(store.len(), 4);
    }

    #[test]
    fn fixed_homes_cache_and_reject_invalid_pins() {
        let store = PlacementStore::new();
        let (cost, ..) = fixture(Architecture::Hybrid, TinyMlModel::MobileNetV2, 250);
        let a = store.fixed_home(&cost, None).unwrap();
        let b = store.fixed_home(&cost, None).unwrap();
        assert_eq!(a, b);
        let stats = store.stats();
        assert_eq!((stats.misses, stats.hits, stats.lut_builds), (1, 1, 0));

        let bogus = Placement::all_in(crate::space::StorageSpace::HpSram, 1);
        let err = store.fixed_home(&cost, Some(bogus)).unwrap_err();
        assert!(matches!(err, CostModelError::InvalidPlacement { .. }));
        // Invalid pins are not cached.
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn clear_drops_entries_but_keeps_lifetime_stats() {
        let store = PlacementStore::new();
        let (cost, runtime, opt) = fixture(Architecture::HhPim, TinyMlModel::MobileNetV2, 200);
        store.lut(&cost, &runtime, &opt);
        store.clear();
        assert!(store.is_empty());
        assert_eq!(store.stats().lut_builds, 1);
        // A fresh request rebuilds.
        store.lut(&cost, &runtime, &opt);
        assert_eq!(store.stats().lut_builds, 2);
    }

    #[test]
    fn bounded_store_evicts_least_recently_used() {
        let store = PlacementStore::with_capacity(2);
        assert_eq!(store.capacity(), Some(2));
        let a = fixture(Architecture::HhPim, TinyMlModel::MobileNetV2, 120);
        let b = fixture(Architecture::HhPim, TinyMlModel::MobileNetV2, 130);
        let c = fixture(Architecture::HhPim, TinyMlModel::MobileNetV2, 140);
        store.lut(&a.0, &a.1, &a.2);
        store.lut(&b.0, &b.1, &b.2);
        // Touch `a` so `b` is the least recently used, then overflow.
        store.lut(&a.0, &a.1, &a.2);
        store.lut(&c.0, &c.1, &c.2);
        assert_eq!(store.len(), 2, "capacity 2 must hold after overflow");
        assert_eq!(store.stats().evictions, 1);
        assert!(store.contains_lut(&a.0, &a.1, &a.2), "recently used stays");
        assert!(store.contains_lut(&c.0, &c.1, &c.2), "newest stays");
        assert!(!store.contains_lut(&b.0, &b.1, &b.2), "LRU entry evicted");
        // The evicted key rebuilds on its next request.
        let builds_before = store.stats().lut_builds;
        store.lut(&b.0, &b.1, &b.2);
        assert_eq!(store.stats().lut_builds, builds_before + 1);
    }

    #[test]
    fn bounded_store_caps_fixed_homes_too() {
        let store = PlacementStore::with_capacity(1);
        let (cost_a, ..) = fixture(Architecture::Hybrid, TinyMlModel::MobileNetV2, 120);
        let (cost_b, ..) = fixture(Architecture::Baseline, TinyMlModel::MobileNetV2, 120);
        store.fixed_home(&cost_a, None).unwrap();
        store.fixed_home(&cost_b, None).unwrap();
        assert_eq!(store.len(), 1);
        assert_eq!(store.stats().evictions, 1);
        // Re-resolving the evicted home is a fresh miss, not a hit.
        let misses_before = store.stats().misses;
        store.fixed_home(&cost_a, None).unwrap();
        assert_eq!(store.stats().misses, misses_before + 1);
    }

    #[test]
    fn unbounded_store_never_evicts() {
        let store = PlacementStore::new();
        assert_eq!(store.capacity(), None);
        for buckets in [110, 115, 125, 135] {
            let (cost, runtime, opt) =
                fixture(Architecture::HhPim, TinyMlModel::MobileNetV2, buckets);
            store.lut(&cost, &runtime, &opt);
        }
        assert_eq!(store.len(), 4);
        assert_eq!(store.stats().evictions, 0);
    }

    #[test]
    fn concurrent_requests_for_one_key_build_once() {
        let store = Arc::new(PlacementStore::new());
        let (cost, runtime, opt) = fixture(Architecture::HhPim, TinyMlModel::MobileNetV2, 200);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let store = Arc::clone(&store);
                let (cost, runtime, opt) = (&cost, &runtime, &opt);
                s.spawn(move || store.lut(cost, runtime, opt));
            }
        });
        let stats = store.stats();
        assert_eq!(stats.lut_builds, 1, "one build despite concurrent misses");
        assert_eq!(stats.hits + stats.misses, 4);
    }
}
