//! The four weight storage spaces of HH-PIM and placements over them.
//!
//! HH-PIM exposes HP-MRAM, HP-SRAM, LP-MRAM and LP-SRAM as distinct
//! storage spaces with different latency/energy trade-offs (paper §III).
//! A [`Placement`] assigns every *weight group* to one space; the
//! optimizer in [`crate::dp`] chooses placements, and the runtime in
//! [`crate::runtime`] evaluates them.

use core::fmt;
use hhpim_mem::{ClusterClass, MemKind};

/// One of the four weight storage spaces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum StorageSpace {
    /// High-performance cluster MRAM.
    HpMram,
    /// High-performance cluster SRAM.
    HpSram,
    /// Low-power cluster MRAM.
    LpMram,
    /// Low-power cluster SRAM.
    LpSram,
}

impl StorageSpace {
    /// All four spaces; per-cluster order is MRAM then SRAM, matching
    /// the paper's DP iteration over `i = 1..n/2` per cluster.
    pub const ALL: [StorageSpace; 4] = [
        StorageSpace::HpMram,
        StorageSpace::HpSram,
        StorageSpace::LpMram,
        StorageSpace::LpSram,
    ];

    /// The cluster this space belongs to.
    pub fn cluster(self) -> ClusterClass {
        match self {
            StorageSpace::HpMram | StorageSpace::HpSram => ClusterClass::HighPerformance,
            StorageSpace::LpMram | StorageSpace::LpSram => ClusterClass::LowPower,
        }
    }

    /// The memory technology of this space.
    pub fn kind(self) -> MemKind {
        match self {
            StorageSpace::HpMram | StorageSpace::LpMram => MemKind::Mram,
            StorageSpace::HpSram | StorageSpace::LpSram => MemKind::Sram,
        }
    }

    /// The two spaces of `cluster` in `[Mram, Sram]` order.
    pub fn of_cluster(cluster: ClusterClass) -> [StorageSpace; 2] {
        match cluster {
            ClusterClass::HighPerformance => [StorageSpace::HpMram, StorageSpace::HpSram],
            ClusterClass::LowPower => [StorageSpace::LpMram, StorageSpace::LpSram],
        }
    }

    /// Index into `[0, 4)` used by fixed-size per-space arrays.
    pub fn index(self) -> usize {
        match self {
            StorageSpace::HpMram => 0,
            StorageSpace::HpSram => 1,
            StorageSpace::LpMram => 2,
            StorageSpace::LpSram => 3,
        }
    }

    /// Display name matching the paper ("HP-MRAM" etc.).
    pub fn name(self) -> &'static str {
        match self {
            StorageSpace::HpMram => "HP-MRAM",
            StorageSpace::HpSram => "HP-SRAM",
            StorageSpace::LpMram => "LP-MRAM",
            StorageSpace::LpSram => "LP-SRAM",
        }
    }
}

impl fmt::Display for StorageSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// A weight placement: how many weight groups live in each space.
///
/// # Examples
///
/// ```
/// use hhpim::{Placement, StorageSpace};
/// let mut p = Placement::empty();
/// p.set(StorageSpace::HpSram, 16);
/// p.set(StorageSpace::LpSram, 9);
/// assert_eq!(p.total(), 25);
/// assert_eq!(p.cluster_total(hhpim_mem::ClusterClass::HighPerformance), 16);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Placement {
    counts: [usize; 4],
}

impl Placement {
    /// A placement with nothing assigned.
    pub fn empty() -> Self {
        Self::default()
    }

    /// A placement with all `k` groups in a single space.
    pub fn all_in(space: StorageSpace, k: usize) -> Self {
        let mut p = Self::default();
        p.counts[space.index()] = k;
        p
    }

    /// Builds from `[HpMram, HpSram, LpMram, LpSram]` counts.
    pub fn from_counts(counts: [usize; 4]) -> Self {
        Placement { counts }
    }

    /// Groups assigned to `space`.
    pub fn get(&self, space: StorageSpace) -> usize {
        self.counts[space.index()]
    }

    /// Sets the group count of `space`.
    pub fn set(&mut self, space: StorageSpace, groups: usize) {
        self.counts[space.index()] = groups;
    }

    /// Total groups placed.
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Groups placed in `cluster`.
    pub fn cluster_total(&self, cluster: ClusterClass) -> usize {
        StorageSpace::of_cluster(cluster)
            .iter()
            .map(|&s| self.get(s))
            .sum()
    }

    /// Iterates `(space, groups)` for all four spaces.
    pub fn iter(&self) -> impl Iterator<Item = (StorageSpace, usize)> + '_ {
        StorageSpace::ALL.iter().map(move |&s| (s, self.get(s)))
    }

    /// Iterates only occupied spaces.
    pub fn occupied(&self) -> impl Iterator<Item = (StorageSpace, usize)> + '_ {
        self.iter().filter(|&(_, n)| n > 0)
    }

    /// Total groups that differ from `other` (one-directional: groups
    /// that must *move* to reach `other`; symmetric by construction
    /// because totals match).
    pub fn groups_moved_to(&self, other: &Placement) -> usize {
        StorageSpace::ALL
            .iter()
            .map(|&s| other.get(s).saturating_sub(self.get(s)))
            .sum()
    }

    /// Fraction of groups per space, as percentages (for Fig. 6's
    /// memory-utilization axis).
    pub fn utilization_pct(&self) -> [f64; 4] {
        let total = self.total().max(1) as f64;
        let mut out = [0.0; 4];
        for (s, n) in self.iter() {
            out[s.index()] = n as f64 / total * 100.0;
        }
        out
    }
}

/// One leg of a placement transition: `groups` weight groups that must
/// travel from `src` to `dst`.
///
/// Legs are produced by [`movement_legs`] with a greedy pairing in
/// [`StorageSpace::ALL`] order — the deterministic plan both the
/// analytic movement-cost model and the cycle machine's migration
/// engine execute, so their traffic is directly comparable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MovementLeg {
    /// Space the groups leave.
    pub src: StorageSpace,
    /// Space the groups arrive in.
    pub dst: StorageSpace,
    /// Number of weight groups moved.
    pub groups: usize,
}

/// Plans the weight movement needed to transition `from` into `to`:
/// outflows and inflows are paired greedily in space order. Returns an
/// empty plan when the placements are equal.
pub fn movement_legs(from: &Placement, to: &Placement) -> Vec<MovementLeg> {
    if from == to {
        return Vec::new();
    }
    let mut out: Vec<(StorageSpace, usize)> = Vec::new();
    let mut inn: Vec<(StorageSpace, usize)> = Vec::new();
    for s in StorageSpace::ALL {
        let (f, t) = (from.get(s), to.get(s));
        if f > t {
            out.push((s, f - t));
        } else if t > f {
            inn.push((s, t - f));
        }
    }
    let mut legs = Vec::new();
    let (mut oi, mut ii) = (0usize, 0usize);
    let (mut orem, mut irem) = (
        out.first().map(|x| x.1).unwrap_or(0),
        inn.first().map(|x| x.1).unwrap_or(0),
    );
    while oi < out.len() && ii < inn.len() {
        let n = orem.min(irem);
        legs.push(MovementLeg {
            src: out[oi].0,
            dst: inn[ii].0,
            groups: n,
        });
        orem -= n;
        irem -= n;
        if orem == 0 {
            oi += 1;
            orem = out.get(oi).map(|x| x.1).unwrap_or(0);
        }
        if irem == 0 {
            ii += 1;
            irem = inn.get(ii).map(|x| x.1).unwrap_or(0);
        }
    }
    legs
}

impl fmt::Display for Placement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (s, n) in self.occupied() {
            if !first {
                write!(f, " + ")?;
            }
            write!(f, "{n}@{s}")?;
            first = false;
        }
        if first {
            write!(f, "(empty)")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ClusterClass::*;

    #[test]
    fn space_metadata() {
        assert_eq!(StorageSpace::HpMram.cluster(), HighPerformance);
        assert_eq!(StorageSpace::LpSram.cluster(), LowPower);
        assert_eq!(StorageSpace::HpSram.kind(), MemKind::Sram);
        assert_eq!(StorageSpace::LpMram.kind(), MemKind::Mram);
        assert_eq!(
            StorageSpace::of_cluster(LowPower),
            [StorageSpace::LpMram, StorageSpace::LpSram]
        );
        for (i, s) in StorageSpace::ALL.iter().enumerate() {
            assert_eq!(s.index(), i);
        }
    }

    #[test]
    fn placement_accounting() {
        let p = Placement::from_counts([1, 2, 3, 4]);
        assert_eq!(p.total(), 10);
        assert_eq!(p.cluster_total(HighPerformance), 3);
        assert_eq!(p.cluster_total(LowPower), 7);
        assert_eq!(p.get(StorageSpace::LpMram), 3);
    }

    #[test]
    fn movement_counts_new_arrivals() {
        let a = Placement::from_counts([10, 0, 0, 0]);
        let b = Placement::from_counts([4, 6, 0, 0]);
        assert_eq!(a.groups_moved_to(&b), 6);
        assert_eq!(b.groups_moved_to(&a), 6);
        assert_eq!(a.groups_moved_to(&a), 0);
    }

    #[test]
    fn utilization_percentages() {
        let p = Placement::from_counts([0, 16, 0, 9]);
        let u = p.utilization_pct();
        assert_eq!(u[0], 0.0);
        assert!((u[1] - 64.0).abs() < 1e-9);
        assert!((u[3] - 36.0).abs() < 1e-9);
    }

    #[test]
    fn movement_legs_pair_outflows_with_inflows() {
        let a = Placement::from_counts([10, 0, 4, 0]);
        let b = Placement::from_counts([2, 6, 0, 6]);
        let legs = movement_legs(&a, &b);
        let moved: usize = legs.iter().map(|l| l.groups).sum();
        assert_eq!(moved, a.groups_moved_to(&b));
        // Every leg leaves a shrinking space and enters a growing one.
        for leg in &legs {
            assert!(a.get(leg.src) > b.get(leg.src), "{leg:?}");
            assert!(b.get(leg.dst) > a.get(leg.dst), "{leg:?}");
        }
        assert!(movement_legs(&a, &a).is_empty());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Placement::empty().to_string(), "(empty)");
        assert_eq!(
            Placement::from_counts([0, 2, 3, 0]).to_string(),
            "2@HP-SRAM + 3@LP-MRAM"
        );
        assert_eq!(
            Placement::all_in(StorageSpace::LpMram, 5).to_string(),
            "5@LP-MRAM"
        );
    }
}
