//! The analytical cost model: per-group time and energy for each
//! storage space, under a given architecture and workload.
//!
//! This is the quantitative backbone of the reproduction. For a weight
//! group stored in space *i* the model provides:
//!
//! * `t_i` — cluster time to execute one task's MACs over that group
//!   (weight read + activation read + PE, divided by the cluster's
//!   module-level parallelism) — the knapsack *weight* of §III-A,
//! * `e_i` — dynamic energy of the same work — the knapsack *value*,
//! * leakage powers for weights at rest, activation buffers and PEs.
//!
//! Modelling choices (see DESIGN.md §4): the LOAD→EXECUTE sequence per
//! operand gives HP:LP per-op times whose ratio reproduces the paper's
//! 16:9 peak split; `time_scale` calibrates absolute wall time to the
//! paper's FPGA measurements (EfficientNet-B0 peak ≈ 31.06 ms).

use crate::arch::ArchSpec;
use crate::space::{Placement, StorageSpace};
use hhpim_mem::{pe_for, tech_for, ClusterClass, Energy, MemKind, Power};
use hhpim_nn::ModelSpec;
use hhpim_sim::SimDuration;

/// Tunable parameters of the cost model (calibration knobs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostParams {
    /// Weights per placement group (the optimizer's unit, limiting DP
    /// resolution as §III-B prescribes).
    pub group_size: usize,
    /// SRAM bytes per module reserved for activations/IO (not available
    /// for weight placement; powered only while computing).
    pub act_reserve_per_module: usize,
    /// Whether each MAC also reads its activation from cluster SRAM.
    pub include_input_reads: bool,
    /// Wall-time calibration factor mapping ns-scale model time to the
    /// paper's measured FPGA-era inference times.
    pub time_scale: f64,
    /// Maximum inferences per time slice (paper: 10).
    pub max_tasks_per_slice: u32,
}

impl Default for CostParams {
    fn default() -> Self {
        CostParams {
            group_size: 512,
            act_reserve_per_module: 16 * 1024,
            include_input_reads: true,
            time_scale: 9.14,
            max_tasks_per_slice: 10,
        }
    }
}

/// Workload characteristics the cost model consumes (derived from
/// Table IV's [`ModelSpec`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadProfile {
    /// Total weight footprint in bytes (INT8: #params).
    pub weight_bytes: usize,
    /// PIM MACs per inference task.
    pub pim_macs: u64,
}

impl WorkloadProfile {
    /// Builds the profile from a published model spec.
    pub fn from_spec(spec: &ModelSpec) -> Self {
        WorkloadProfile {
            weight_bytes: spec.weight_bytes(),
            pim_macs: spec.pim_macs(),
        }
    }

    /// MACs per weight per task.
    pub fn reuse(&self) -> f64 {
        self.pim_macs as f64 / self.weight_bytes as f64
    }
}

/// Errors from cost-model construction and placement validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum CostModelError {
    /// The weights do not fit the architecture's weight-capable memory.
    InsufficientCapacity {
        /// Bytes needed.
        needed: usize,
        /// Bytes available for weights.
        available: usize,
    },
    /// Group size of zero.
    ZeroGroupSize,
    /// A caller-supplied placement violates the architecture's
    /// capacities or does not place all weight groups.
    InvalidPlacement {
        /// The offending placement.
        placement: crate::space::Placement,
    },
}

impl core::fmt::Display for CostModelError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CostModelError::InsufficientCapacity { needed, available } => {
                write!(
                    f,
                    "weights need {needed} B but only {available} B are placeable"
                )
            }
            CostModelError::ZeroGroupSize => write!(f, "group size must be non-zero"),
            CostModelError::InvalidPlacement { placement } => {
                write!(f, "placement {placement} is invalid for this architecture")
            }
        }
    }
}

impl std::error::Error for CostModelError {}

/// The resolved cost model (see module docs).
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    arch: ArchSpec,
    params: CostParams,
    profile: WorkloadProfile,
    k_groups: usize,
    time_per_group: [SimDuration; 4],
    energy_per_group: [Energy; 4],
    static_power_per_group: [Power; 4],
    cap_groups: [usize; 4],
}

impl CostModel {
    /// Builds the cost model for `arch` running `profile`.
    ///
    /// # Errors
    ///
    /// Fails if the weights cannot fit in the architecture's placeable
    /// memory, or the group size is zero.
    pub fn new(
        arch: ArchSpec,
        profile: WorkloadProfile,
        params: CostParams,
    ) -> Result<Self, CostModelError> {
        if params.group_size == 0 {
            return Err(CostModelError::ZeroGroupSize);
        }
        let k_groups = profile.weight_bytes.div_ceil(params.group_size);
        let reuse = profile.reuse();

        let mut time_per_group = [SimDuration::ZERO; 4];
        let mut energy_per_group = [Energy::ZERO; 4];
        let mut static_power_per_group = [Power::ZERO; 4];
        let mut cap_groups = [0usize; 4];
        let mut placeable_bytes = 0usize;

        for space in StorageSpace::ALL {
            let idx = space.index();
            let cluster = space.cluster();
            let modules = arch.modules_in(cluster);
            let cap_bytes = arch.capacity_bytes(space);
            if modules == 0 || cap_bytes == 0 {
                continue;
            }
            let reserve = if space.kind() == MemKind::Sram {
                params.act_reserve_per_module * modules
            } else {
                0
            };
            let placeable = cap_bytes.saturating_sub(reserve);
            cap_groups[idx] = placeable / params.group_size;
            placeable_bytes += placeable;

            let mem = tech_for(cluster, space.kind());
            let sram = tech_for(cluster, MemKind::Sram);
            let pe = pe_for(cluster);

            // Per MAC: weight read + (optional) activation read + PE.
            let mut op_ns = mem.timing.read.as_ns_f64() + pe.mac_latency.as_ns_f64();
            let mut op_pj = mem.read_energy().as_pj() + pe.mac_energy().as_pj();
            if params.include_input_reads {
                op_ns += sram.timing.read.as_ns_f64();
                op_pj += sram.read_energy().as_pj();
            }
            let macs_per_group_task = reuse * params.group_size as f64;
            time_per_group[idx] = SimDuration::from_ns_f64(
                macs_per_group_task * op_ns / modules as f64 * params.time_scale,
            );
            // Dynamic energy scales with time_scale too: the calibrated
            // (FPGA-era) access occupies `time_scale×` the ASIC latency
            // at the same dynamic power, keeping the dynamic-vs-static
            // balance invariant under calibration.
            energy_per_group[idx] =
                Energy::from_pj(macs_per_group_task * op_pj * params.time_scale);
            // Marginal leakage per group for the optimizer: weights
            // stripe across all module banks of the space (powering all
            // of them), so the linear surrogate amortizes the full
            // striped-bank leakage over the K groups. Exact bank-granular
            // accounting happens in the runtime.
            let bank_bytes = match space.kind() {
                MemKind::Mram => arch.mram_per_module,
                MemKind::Sram => arch.sram_per_module,
            };
            static_power_per_group[idx] =
                mem.static_power_for(bank_bytes * modules) * (1.0 / k_groups.max(1) as f64);
        }

        if k_groups * params.group_size > placeable_bytes {
            return Err(CostModelError::InsufficientCapacity {
                needed: k_groups * params.group_size,
                available: placeable_bytes,
            });
        }
        Ok(CostModel {
            arch,
            params,
            profile,
            k_groups,
            time_per_group,
            energy_per_group,
            static_power_per_group,
            cap_groups,
        })
    }

    /// The architecture this model describes.
    pub fn arch(&self) -> &ArchSpec {
        &self.arch
    }

    /// Calibration parameters.
    pub fn params(&self) -> &CostParams {
        &self.params
    }

    /// The workload profile.
    pub fn profile(&self) -> &WorkloadProfile {
        &self.profile
    }

    /// Number of weight groups to place (the paper's `K`).
    pub fn k_groups(&self) -> usize {
        self.k_groups
    }

    /// Per-task processing time of one group in `space`
    /// (the knapsack weight `t_i`).
    pub fn time_per_group(&self, space: StorageSpace) -> SimDuration {
        self.time_per_group[space.index()]
    }

    /// Per-task dynamic energy of one group in `space`
    /// (the knapsack value `e_i`).
    pub fn energy_per_group(&self, space: StorageSpace) -> Energy {
        self.energy_per_group[space.index()]
    }

    /// Marginal leakage power of one resident group in `space`: the
    /// space's full striped-bank leakage amortized over the K groups
    /// (the optimizer's linear surrogate for bank-granular gating).
    pub fn static_power_per_group(&self, space: StorageSpace) -> Power {
        self.static_power_per_group[space.index()]
    }

    /// Capacity of `space` in groups (0 when absent in this design).
    pub fn capacity_groups(&self, space: StorageSpace) -> usize {
        self.cap_groups[space.index()]
    }

    /// Per-task compute time of `cluster` under `placement` (spaces in a
    /// cluster serialize; clusters run in parallel).
    pub fn cluster_time(&self, placement: &Placement, cluster: ClusterClass) -> SimDuration {
        StorageSpace::of_cluster(cluster)
            .iter()
            .map(|&s| self.time_per_group(s) * placement.get(s) as u64)
            .sum()
    }

    /// Per-task latency of `placement`: the slower of the two clusters.
    pub fn task_time(&self, placement: &Placement) -> SimDuration {
        ClusterClass::ALL
            .iter()
            .map(|&c| self.cluster_time(placement, c))
            .max()
            .unwrap_or(SimDuration::ZERO)
    }

    /// Per-task dynamic energy of `placement`.
    pub fn dynamic_energy_per_task(&self, placement: &Placement) -> Energy {
        placement
            .iter()
            .map(|(s, n)| self.energy_per_group(s) * n as u64)
            .sum()
    }

    /// Number of whole module banks of `space` that must stay powered to
    /// retain `placement`'s weights. Weights in a space are *striped*
    /// across the cluster's modules (each module's PE computes over its
    /// own partition — that is where the cluster's parallelism comes
    /// from), so `g` groups power `min(g, modules)` whole banks.
    pub fn powered_banks(&self, placement: &Placement, space: StorageSpace) -> usize {
        let groups = placement.get(space);
        groups.min(self.arch.modules_in(space.cluster()))
    }

    /// Leakage power of the weights at rest under `placement`:
    /// bank-granular — every powered bank leaks its full capacity
    /// (including its activation region for SRAM banks).
    pub fn weight_static_power(&self, placement: &Placement, space: StorageSpace) -> Power {
        let banks = self.powered_banks(placement, space);
        let bank_bytes = match space.kind() {
            MemKind::Mram => self.arch.mram_per_module,
            MemKind::Sram => self.arch.sram_per_module,
        };
        tech_for(space.cluster(), space.kind()).static_power_for(banks * bank_bytes)
    }

    /// Leakage power of the activation/IO SRAM buffers of `cluster`.
    pub fn act_buffer_static_power(&self, cluster: ClusterClass) -> Power {
        self.act_buffer_static_power_per_module(cluster) * self.arch.modules_in(cluster) as f64
    }

    /// Leakage power of one module's activation/IO SRAM region.
    pub fn act_buffer_static_power_per_module(&self, cluster: ClusterClass) -> Power {
        if self.arch.modules_in(cluster) == 0 || self.arch.sram_per_module == 0 {
            return Power::ZERO;
        }
        tech_for(cluster, MemKind::Sram).static_power_for(self.params.act_reserve_per_module)
    }

    /// Leakage power of `cluster`'s PEs.
    pub fn pe_static_power(&self, cluster: ClusterClass) -> Power {
        pe_for(cluster).static_power * self.arch.modules_in(cluster) as f64
    }

    /// Full-capacity leakage of `space` (for the never-gating Baseline).
    pub fn full_static_power(&self, space: StorageSpace) -> Power {
        tech_for(space.cluster(), space.kind()).static_power_for(self.arch.capacity_bytes(space))
    }

    /// Whether `placement` respects per-space capacities and places
    /// exactly all `k_groups`.
    pub fn is_valid(&self, placement: &Placement) -> bool {
        placement.total() == self.k_groups
            && StorageSpace::ALL
                .iter()
                .all(|&s| placement.get(s) <= self.capacity_groups(s))
    }

    /// The fastest valid placement: each cluster uses its fastest
    /// available space, with the group split balancing cluster finish
    /// times (spilling into the second space on capacity overflow).
    pub fn fastest_placement(&self) -> Placement {
        // Fastest space per cluster (the one with the smaller t_i).
        let fastest = |cluster: ClusterClass| -> Option<(StorageSpace, StorageSpace)> {
            let [m, s] = StorageSpace::of_cluster(cluster);
            let mut spaces: Vec<StorageSpace> = [m, s]
                .into_iter()
                .filter(|&sp| self.capacity_groups(sp) > 0)
                .collect();
            spaces.sort_by_key(|&sp| self.time_per_group(sp));
            match spaces.len() {
                0 => None,
                1 => Some((spaces[0], spaces[0])),
                _ => Some((spaces[0], spaces[1])),
            }
        };
        let hp = fastest(ClusterClass::HighPerformance);
        let lp = fastest(ClusterClass::LowPower);
        let k = self.k_groups;
        let mut placement = Placement::empty();
        match (hp, lp) {
            (Some((hp1, hp2)), Some((lp1, lp2))) => {
                // Balance finish times: k_hp / k_lp = (1/t_hp) / (1/t_lp).
                let t_hp = self.time_per_group(hp1).as_ns_f64().max(1e-9);
                let t_lp = self.time_per_group(lp1).as_ns_f64().max(1e-9);
                let k_hp = ((k as f64) * (1.0 / t_hp) / (1.0 / t_hp + 1.0 / t_lp)).round() as usize;
                let k_hp = k_hp.min(k);
                self.fill_cluster(&mut placement, hp1, hp2, k_hp);
                self.fill_cluster(&mut placement, lp1, lp2, k - k_hp);
            }
            (Some((p1, p2)), None) | (None, Some((p1, p2))) => {
                self.fill_cluster(&mut placement, p1, p2, k);
            }
            (None, None) => {}
        }
        placement
    }

    fn fill_cluster(
        &self,
        placement: &mut Placement,
        first: StorageSpace,
        second: StorageSpace,
        k: usize,
    ) {
        let in_first = k.min(self.capacity_groups(first));
        placement.set(first, placement.get(first) + in_first);
        let spill = k - in_first;
        if spill > 0 {
            placement.set(second, placement.get(second) + spill);
        }
    }

    /// Task latency of the fastest placement (the green-dot peak of
    /// Fig. 6 for HH-PIM).
    pub fn peak_task_time(&self) -> SimDuration {
        self.task_time(&self.fastest_placement())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::Architecture;
    use hhpim_nn::TinyMlModel;

    fn hh_model() -> CostModel {
        CostModel::new(
            Architecture::HhPim.spec(),
            WorkloadProfile::from_spec(&TinyMlModel::EfficientNetB0.spec()),
            CostParams::default(),
        )
        .unwrap()
    }

    #[test]
    fn group_counts() {
        let m = hh_model();
        assert_eq!(m.k_groups(), 95_000usize.div_ceil(512));
        // HH-PIM: 4 modules × (64-16) kB SRAM per cluster.
        assert_eq!(m.capacity_groups(StorageSpace::HpSram), 4 * 48 * 1024 / 512);
        assert_eq!(m.capacity_groups(StorageSpace::HpMram), 4 * 64 * 1024 / 512);
    }

    #[test]
    fn per_op_times_follow_table_iii() {
        let m = hh_model();
        // SRAM spaces are faster than MRAM spaces within a cluster.
        assert!(m.time_per_group(StorageSpace::HpSram) < m.time_per_group(StorageSpace::HpMram));
        assert!(m.time_per_group(StorageSpace::LpSram) < m.time_per_group(StorageSpace::LpMram));
        // HP spaces beat their LP counterparts.
        assert!(m.time_per_group(StorageSpace::HpSram) < m.time_per_group(StorageSpace::LpSram));
        // The HP:LP SRAM per-op ratio is ≈ 16:9 (the paper's peak split).
        let ratio = m.time_per_group(StorageSpace::LpSram).as_ns_f64()
            / m.time_per_group(StorageSpace::HpSram).as_ns_f64();
        assert!((ratio - 16.0 / 9.0).abs() < 0.08, "ratio {ratio}");
    }

    #[test]
    fn dynamic_energy_ordering() {
        let m = hh_model();
        // LP accesses are cheaper than HP accesses for the same kind.
        assert!(
            m.energy_per_group(StorageSpace::LpSram) < m.energy_per_group(StorageSpace::HpSram)
        );
        assert!(
            m.energy_per_group(StorageSpace::LpMram) < m.energy_per_group(StorageSpace::HpMram)
        );
        // Static: MRAM is far cheaper at rest.
        assert!(
            m.static_power_per_group(StorageSpace::LpMram).as_mw()
                < m.static_power_per_group(StorageSpace::LpSram).as_mw()
        );
    }

    #[test]
    fn fastest_placement_matches_paper_16_9_split() {
        let m = hh_model();
        let p = m.fastest_placement();
        assert!(m.is_valid(&p));
        // All weights in SRAM, split ≈ 16:9 between HP and LP.
        assert_eq!(p.get(StorageSpace::HpMram), 0);
        assert_eq!(p.get(StorageSpace::LpMram), 0);
        let hp = p.get(StorageSpace::HpSram) as f64;
        let lp = p.get(StorageSpace::LpSram) as f64;
        let ratio = hp / lp;
        assert!(
            (ratio - 16.0 / 9.0).abs() < 0.15,
            "split {hp}:{lp} ratio {ratio}"
        );
    }

    #[test]
    fn peak_time_calibrated_to_paper() {
        // With the default time_scale the EfficientNet-B0 peak inference
        // time should land near the paper's 31.06 ms.
        let m = hh_model();
        let t = m.peak_task_time().as_ms_f64();
        assert!((t - 31.06).abs() / 31.06 < 0.05, "peak {t} ms");
    }

    #[test]
    fn cluster_times_serialize_within_parallel_across() {
        let m = hh_model();
        let mut p = Placement::empty();
        p.set(StorageSpace::HpMram, 10);
        p.set(StorageSpace::HpSram, 10);
        p.set(StorageSpace::LpSram, 5);
        let hp = m.cluster_time(&p, ClusterClass::HighPerformance);
        let expect = m.time_per_group(StorageSpace::HpMram) * 10
            + m.time_per_group(StorageSpace::HpSram) * 10;
        assert_eq!(hp, expect);
        assert_eq!(
            m.task_time(&p),
            hp.max(m.cluster_time(&p, ClusterClass::LowPower))
        );
    }

    #[test]
    fn baseline_has_only_hp_sram() {
        let m = CostModel::new(
            Architecture::Baseline.spec(),
            WorkloadProfile::from_spec(&TinyMlModel::MobileNetV2.spec()),
            CostParams::default(),
        )
        .unwrap();
        assert_eq!(m.capacity_groups(StorageSpace::HpMram), 0);
        assert_eq!(m.capacity_groups(StorageSpace::LpSram), 0);
        let p = m.fastest_placement();
        assert_eq!(p.get(StorageSpace::HpSram), m.k_groups());
        assert!(m.is_valid(&p));
    }

    #[test]
    fn resnet_fits_all_architectures() {
        for arch in Architecture::ALL {
            let m = CostModel::new(
                arch.spec(),
                WorkloadProfile::from_spec(&TinyMlModel::ResNet18.spec()),
                CostParams::default(),
            );
            assert!(m.is_ok(), "{arch}: {:?}", m.err());
        }
    }

    #[test]
    fn capacity_error_when_weights_too_large() {
        let err = CostModel::new(
            Architecture::HhPim.spec(),
            WorkloadProfile {
                weight_bytes: 2 * 1024 * 1024,
                pim_macs: 1_000_000,
            },
            CostParams::default(),
        )
        .unwrap_err();
        assert!(matches!(err, CostModelError::InsufficientCapacity { .. }));
        assert!(err.to_string().contains("placeable"));
    }

    #[test]
    fn validity_checks() {
        let m = hh_model();
        let mut p = Placement::all_in(StorageSpace::LpMram, m.k_groups());
        assert!(m.is_valid(&p));
        p.set(StorageSpace::HpSram, 1); // now one group too many
        assert!(!m.is_valid(&p));
        let short = Placement::all_in(StorageSpace::LpMram, 1);
        assert!(!m.is_valid(&short));
    }
}
