//! One builder-driven entry point for the whole stack: compose an
//! architecture, a model, a trace source, a placement policy and one or
//! more execution backends, then run, compare or sweep.
//!
//! Before this module every scenario needed its own constructor
//! (`AnalyticBackend::with_params`, `CycleBackend::with_weight_home`,
//! `experiment::run_case`, …). [`SessionBuilder`] replaces that
//! combinatorial surface with one typed pipeline:
//!
//! ```text
//! SessionBuilder ──build()──▶ Session ──run()────▶ RunArtifacts
//!        │                        ├────compare()─▶ Comparison
//!        │                        └────sweep()───▶ SavingsMatrix
//!        ├─ architecture / model           (Table I / Table IV)
//!        ├─ trace source                   (TraceSource: scenario, replay, closure)
//!        ├─ placement policy               (PlacementPolicy: LUT, fixed, greedy)
//!        └─ backends                       (BackendKind: analytic, cycle)
//! ```
//!
//! # Examples
//!
//! Run one scenario analytically:
//!
//! ```
//! use hhpim::session::SessionBuilder;
//! use hhpim_nn::TinyMlModel;
//! use hhpim_workload::{Scenario, ScenarioParams};
//!
//! let mut session = SessionBuilder::new()
//!     .model(TinyMlModel::MobileNetV2)
//!     .scenario(Scenario::PeriodicSpike)
//!     .scenario_params(ScenarioParams {
//!         slices: 4,
//!         ..ScenarioParams::default()
//!     })
//!     .build()
//!     .unwrap();
//! let artifacts = session.run().unwrap();
//! assert_eq!(artifacts.primary().records.len(), 4);
//! assert_eq!(artifacts.policy, "lut-adaptive");
//! ```
//!
//! Cross-check the closed-form model against the cycle-level machine
//! (the parity harness in one call):
//!
//! ```
//! use hhpim::session::SessionBuilder;
//! use hhpim::BackendKind;
//! use hhpim_nn::TinyMlModel;
//! use hhpim_workload::{Scenario, ScenarioParams};
//!
//! let comparison = SessionBuilder::new()
//!     .model(TinyMlModel::MobileNetV2)
//!     .scenario(Scenario::PeriodicSpike)
//!     .scenario_params(ScenarioParams {
//!         slices: 4,
//!         ..ScenarioParams::default()
//!     })
//!     .backend(BackendKind::Analytic)
//!     .backend(BackendKind::Cycle)
//!     .build()
//!     .unwrap()
//!     .compare()
//!     .unwrap();
//! assert!(comparison.deadline_misses_agree());
//! assert!(comparison.max_total_energy_rel() < 0.10);
//! ```
//!
//! Replay recorded loads through a non-default policy:
//!
//! ```
//! use hhpim::session::SessionBuilder;
//! use hhpim::GreedyBaseline;
//!
//! let mut session = SessionBuilder::new()
//!     .replay_loads(vec![0.1, 0.9, 0.2, 1.0])
//!     .policy(GreedyBaseline::new())
//!     .build()
//!     .unwrap();
//! let artifacts = session.run().unwrap();
//! assert_eq!(artifacts.policy, "greedy");
//! assert_eq!(artifacts.primary().records.len(), 4);
//! ```

use crate::arch::Architecture;
use crate::backend::{
    AnalyticBackend, BackendError, BackendKind, CycleBackend, ExecutionBackend, ExecutionReport,
};
use crate::compile::WeightHome;
use crate::cost::{CostModelError, CostParams};
use crate::dp::OptimizerConfig;
use crate::engine::EngineError;
use crate::experiment::{SavingsCell, SavingsMatrix};
use crate::policy::{default_policy, PlacementPolicy};
use crate::runtime::Processor;
use crate::store::{CacheStats, PlacementStore};
use hhpim_nn::TinyMlModel;
use hhpim_workload::{LoadTrace, Scenario, ScenarioParams, TraceError};
use std::fmt;
use std::sync::Arc;

/// Errors surfaced while building or driving a [`Session`].
#[derive(Debug)]
#[non_exhaustive]
pub enum SessionError {
    /// The model does not fit the architecture, or the placement
    /// policy rejected its configuration.
    Cost(CostModelError),
    /// A backend failed to build or execute.
    Backend(BackendError),
    /// The trace source produced an invalid trace.
    Trace(TraceError),
    /// `run`/`compare` was called on a session built without a trace
    /// source (`scenario`, `trace_source` or `replay_loads`).
    NoTraceSource,
    /// `compare` needs at least two backends.
    NotComparable {
        /// Backends the session was built with.
        backends: usize,
    },
    /// The same backend kind was requested twice.
    DuplicateBackend {
        /// The duplicated kind.
        kind: BackendKind,
    },
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::Cost(e) => write!(f, "cost model: {e}"),
            SessionError::Backend(e) => write!(f, "backend: {e}"),
            SessionError::Trace(e) => write!(f, "trace source: {e}"),
            SessionError::NoTraceSource => {
                write!(f, "session has no trace source (use scenario/trace_source)")
            }
            SessionError::NotComparable { backends } => {
                write!(
                    f,
                    "compare needs at least two backends, session has {backends}"
                )
            }
            SessionError::DuplicateBackend { kind } => {
                write!(f, "backend `{kind}` requested twice")
            }
        }
    }
}

impl std::error::Error for SessionError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SessionError::Cost(e) => Some(e),
            SessionError::Backend(e) => Some(e),
            SessionError::Trace(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CostModelError> for SessionError {
    fn from(e: CostModelError) -> Self {
        SessionError::Cost(e)
    }
}

impl From<BackendError> for SessionError {
    fn from(e: BackendError) -> Self {
        SessionError::Backend(e)
    }
}

impl From<TraceError> for SessionError {
    fn from(e: TraceError) -> Self {
        SessionError::Trace(e)
    }
}

impl From<EngineError> for SessionError {
    fn from(e: EngineError) -> Self {
        match e {
            EngineError::Backend { error, .. } => SessionError::Backend(error),
            EngineError::InvalidLoad { slice, load } => {
                SessionError::Trace(TraceError::LoadOutOfRange { index: slice, load })
            }
        }
    }
}

impl SessionError {
    /// Collapses into the backend-layer error the deprecated
    /// constructors used to return.
    ///
    /// # Panics
    ///
    /// Panics on variants without a backend equivalent (none are
    /// reachable from the single-backend build paths the shims use).
    pub fn into_backend(self) -> BackendError {
        match self {
            SessionError::Backend(e) => e,
            SessionError::Cost(e) => e.into(),
            other => panic!("session error without backend equivalent: {other}"),
        }
    }

    /// Collapses into the cost-model error the deprecated experiment
    /// helpers used to return.
    ///
    /// # Panics
    ///
    /// Panics on variants without a cost-model equivalent (none are
    /// reachable from the sweep paths the shims use).
    pub fn into_cost(self) -> CostModelError {
        match self {
            SessionError::Cost(e) => e,
            SessionError::Backend(BackendError::Cost(e)) => e,
            other => panic!("session error without cost-model equivalent: {other}"),
        }
    }
}

/// A source of [`LoadTrace`]s: canned scenarios, recorded loads, or
/// programmatic generators. Sessions pull a fresh trace per run, so a
/// source must be deterministic for a session's runs to be.
pub trait TraceSource: fmt::Debug {
    /// Human-readable description of the source.
    fn label(&self) -> String;

    /// Produces the trace to execute.
    ///
    /// # Errors
    ///
    /// Propagates [`TraceError`] for invalid parameters or samples.
    fn trace(&self) -> Result<LoadTrace, SessionError>;
}

/// A [`TraceSource`] generating one of the paper's Fig. 4 scenarios.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScenarioSource {
    /// The scenario to generate.
    pub scenario: Scenario,
    /// Shape parameters.
    pub params: ScenarioParams,
}

impl ScenarioSource {
    /// A scenario source with explicit parameters.
    pub fn new(scenario: Scenario, params: ScenarioParams) -> Self {
        ScenarioSource { scenario, params }
    }
}

impl TraceSource for ScenarioSource {
    fn label(&self) -> String {
        self.scenario.to_string()
    }

    fn trace(&self) -> Result<LoadTrace, SessionError> {
        Ok(LoadTrace::try_generate(self.scenario, self.params)?)
    }
}

/// A [`TraceSource`] replaying recorded per-slice loads (e.g. a
/// measured object-count stream).
#[derive(Debug, Clone, PartialEq)]
pub struct ReplaySource {
    loads: Vec<f64>,
}

impl ReplaySource {
    /// Wraps recorded loads; validation happens when the session pulls
    /// the trace.
    pub fn new(loads: Vec<f64>) -> Self {
        ReplaySource { loads }
    }
}

impl TraceSource for ReplaySource {
    fn label(&self) -> String {
        format!("replay of {} recorded slices", self.loads.len())
    }

    fn trace(&self) -> Result<LoadTrace, SessionError> {
        Ok(LoadTrace::replay(self.loads.clone())?)
    }
}

/// A [`TraceSource`] sampling a closure per slice index — the escape
/// hatch for synthetic load shapes the [`Scenario`] enum does not
/// cover.
pub struct ClosureSource<F> {
    slices: usize,
    f: F,
}

impl<F: Fn(usize) -> f64> ClosureSource<F> {
    /// A source producing `slices` samples of `f(slice_index)`.
    pub fn new(slices: usize, f: F) -> Self {
        ClosureSource { slices, f }
    }
}

impl<F> fmt::Debug for ClosureSource<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ClosureSource")
            .field("slices", &self.slices)
            .finish_non_exhaustive()
    }
}

impl<F: Fn(usize) -> f64> TraceSource for ClosureSource<F> {
    fn label(&self) -> String {
        format!("closure over {} slices", self.slices)
    }

    fn trace(&self) -> Result<LoadTrace, SessionError> {
        // A zero-slice closure describes no run at all; reject it up
        // front with the same typed error `LoadTrace::try_generate`
        // returns for `slices == 0` instead of building a degenerate
        // empty replay.
        if self.slices == 0 {
            return Err(SessionError::Trace(TraceError::Empty));
        }
        Ok(LoadTrace::replay((0..self.slices).map(&self.f).collect())?)
    }
}

/// Builder for a [`Session`]; see the [module docs](self) for the
/// composition surface and examples.
///
/// Defaults: HH-PIM architecture, MobileNetV2, the analytic backend,
/// the architecture's Table I placement policy, paper-default scenario
/// and calibration parameters, and *no* trace source (`run`/`compare`
/// need one; `sweep` does not).
#[derive(Debug, Default)]
pub struct SessionBuilder {
    arch: Option<Architecture>,
    model: Option<TinyMlModel>,
    backends: Vec<BackendKind>,
    source: Option<Box<dyn TraceSource>>,
    pending_scenario: Option<Scenario>,
    scenario_params: Option<ScenarioParams>,
    cost_params: Option<CostParams>,
    opt_config: Option<OptimizerConfig>,
    policy: Option<Box<dyn PlacementPolicy>>,
    head_home: Option<WeightHome>,
    store: Option<Arc<PlacementStore>>,
    artifact_dir: Option<std::path::PathBuf>,
    threads: Option<usize>,
}

impl SessionBuilder {
    /// A builder with every knob at its default.
    pub fn new() -> Self {
        Self::default()
    }

    /// Selects the Table I architecture (default: HH-PIM).
    pub fn architecture(mut self, arch: Architecture) -> Self {
        self.arch = Some(arch);
        self
    }

    /// Selects the Table IV model (default: MobileNetV2).
    pub fn model(mut self, model: TinyMlModel) -> Self {
        self.model = Some(model);
        self
    }

    /// Adds an execution backend; call repeatedly to compare several.
    /// A session built without any backend gets the analytic one.
    pub fn backend(mut self, kind: BackendKind) -> Self {
        self.backends.push(kind);
        self
    }

    /// Sources traces from a canned scenario, shaped by
    /// [`SessionBuilder::scenario_params`] (order-independent).
    pub fn scenario(mut self, scenario: Scenario) -> Self {
        self.pending_scenario = Some(scenario);
        self.source = None;
        self
    }

    /// Scenario shape parameters, for [`SessionBuilder::scenario`] and
    /// [`Session::sweep`].
    pub fn scenario_params(mut self, params: ScenarioParams) -> Self {
        self.scenario_params = Some(params);
        self
    }

    /// Sources traces from an arbitrary [`TraceSource`].
    pub fn trace_source(mut self, source: impl TraceSource + 'static) -> Self {
        self.source = Some(Box::new(source));
        self.pending_scenario = None;
        self
    }

    /// Sources traces by replaying recorded per-slice loads.
    pub fn replay_loads(self, loads: Vec<f64>) -> Self {
        self.trace_source(ReplaySource::new(loads))
    }

    /// Selects the placement policy every backend consults (default:
    /// the architecture's Table I policy — the DP LUT on HH-PIM, the
    /// fixed home elsewhere).
    pub fn policy(mut self, policy: impl PlacementPolicy + 'static) -> Self {
        self.policy = Some(Box::new(policy));
        self
    }

    /// Cost-model calibration knobs.
    pub fn cost_params(mut self, params: CostParams) -> Self {
        self.cost_params = Some(params);
        self
    }

    /// Placement-optimizer settings (LUT resolution etc.).
    pub fn optimizer(mut self, config: OptimizerConfig) -> Self {
        self.opt_config = Some(config);
        self
    }

    /// Pins the cycle backend's bit-exact classifier head to one
    /// memory technology (default: it follows the placement).
    pub fn head_home(mut self, home: WeightHome) -> Self {
        self.head_home = Some(home);
        self
    }

    /// The [`PlacementStore`] supplying memoized LUTs and prepared
    /// placement state (default: [`PlacementStore::global`], the
    /// process-local cache). Pass a private store to isolate
    /// [`CacheStats`], or share one store across many sessions
    /// explicitly.
    pub fn store(mut self, store: Arc<PlacementStore>) -> Self {
        self.store = Some(store);
        self
    }

    /// Attaches a persistent [`crate::artifact`] directory to the
    /// session's store: memory misses then try the keyed on-disk LUT
    /// before running the DP, and fresh builds are written back
    /// atomically — so a second process pointed at a populated dir
    /// performs zero LUT DP builds for cached keys
    /// ([`CacheStats::disk_hits`] / [`CacheStats::disk_writes`] count
    /// the traffic). The tier never changes what a lookup returns,
    /// only whether the DP runs; corrupt or stale files fall through
    /// to a rebuild.
    ///
    /// The tier is attached to whichever store the session resolves —
    /// the process-global [`PlacementStore::global`] by default — and
    /// stays attached until replaced
    /// ([`PlacementStore::set_artifact_store`]). Pair it with
    /// [`SessionBuilder::store`] and a private store to scope the
    /// tier (and its [`CacheStats`]) to one session.
    pub fn artifact_dir(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.artifact_dir = Some(dir.into());
        self
    }

    /// Worker threads for [`Session::sweep`]/[`Session::sweep_all`]
    /// and [`Session::compare`] (default 1 = serial). The parallel
    /// executor fans sweep cells — and, on `compare`, whole backends —
    /// across scoped threads sharing the session's warm store; results
    /// are ordered deterministically and bit-identical to the serial
    /// run. Values are clamped to at least 1.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    fn resolved(&self) -> (Architecture, TinyMlModel, CostParams, OptimizerConfig) {
        (
            self.arch.unwrap_or(Architecture::HhPim),
            self.model.unwrap_or(TinyMlModel::MobileNetV2),
            self.cost_params.unwrap_or_default(),
            self.opt_config.unwrap_or_default(),
        )
    }

    fn resolved_store(&self) -> Arc<PlacementStore> {
        let store = self
            .store
            .as_ref()
            .cloned()
            .unwrap_or_else(PlacementStore::global);
        if let Some(dir) = &self.artifact_dir {
            store.set_artifact_store(Some(crate::artifact::ArtifactStore::new(dir.clone())));
        }
        store
    }

    fn make_policy(&self, arch: Architecture) -> Box<dyn PlacementPolicy> {
        self.policy
            .as_ref()
            .map(|p| p.clone_box())
            .unwrap_or_else(|| default_policy(arch))
    }

    fn make_processor(&self) -> Result<Processor, SessionError> {
        let (arch, model, cost_params, opt_config) = self.resolved();
        Ok(Processor::with_policy_in(
            arch,
            model,
            cost_params,
            opt_config,
            self.make_policy(arch),
            &self.resolved_store(),
        )?)
    }

    /// Builds just the analytic backend — the escape hatch for code
    /// that owns a single backend directly (and the delegation target
    /// of the deprecated `AnalyticBackend::with_params`).
    ///
    /// # Errors
    ///
    /// See [`SessionBuilder::build`].
    pub fn build_analytic(&self) -> Result<AnalyticBackend, SessionError> {
        Ok(AnalyticBackend::from_processor(self.make_processor()?))
    }

    /// Builds just the cycle backend — the escape hatch for code that
    /// owns a single backend directly (and the delegation target of
    /// the deprecated `CycleBackend::with_weight_home` /
    /// `with_fixed_placement`).
    ///
    /// # Errors
    ///
    /// See [`SessionBuilder::build`].
    pub fn build_cycle(&self) -> Result<CycleBackend, SessionError> {
        let (_, model, _, _) = self.resolved();
        Ok(CycleBackend::from_processor(
            self.make_processor()?,
            model,
            self.head_home,
        )?)
    }

    /// Builds one backend of the requested kind as a trait object —
    /// the dispatch point for callers that pick backends at runtime
    /// (the [`crate::server::ServerBuilder`] builds every tenant's
    /// engine through this) without matching on [`BackendKind`]
    /// themselves.
    ///
    /// # Errors
    ///
    /// See [`SessionBuilder::build`].
    pub fn build_backend(
        &self,
        kind: BackendKind,
    ) -> Result<Box<dyn ExecutionBackend>, SessionError> {
        Ok(match kind {
            BackendKind::Analytic => Box::new(self.build_analytic()?),
            BackendKind::Cycle => Box::new(self.build_cycle()?),
        })
    }

    /// Builds the session: prepares the policy, instantiates every
    /// requested backend and binds the trace source. A session with a
    /// source but no explicit backend gets the analytic one; a
    /// *sourceless* session with no explicit backend builds none —
    /// it cannot `run` anyway, and [`Session::sweep`] constructs its
    /// own processors, so sweep-only sessions skip the backend (and
    /// its LUT DP) cost entirely.
    ///
    /// # Errors
    ///
    /// [`SessionError::Cost`]/[`SessionError::Backend`] when the model
    /// does not fit, the policy rejects its configuration or a backend
    /// cannot be built; [`SessionError::DuplicateBackend`] when a kind
    /// was requested twice.
    pub fn build(self) -> Result<Session, SessionError> {
        let (arch, model, cost_params, opt_config) = self.resolved();
        let has_source = self.source.is_some() || self.pending_scenario.is_some();
        let kinds = if self.backends.is_empty() && has_source {
            vec![BackendKind::Analytic]
        } else {
            self.backends.clone()
        };
        for (i, &kind) in kinds.iter().enumerate() {
            if kinds[..i].contains(&kind) {
                return Err(SessionError::DuplicateBackend { kind });
            }
        }
        // One prepared processor (cost model + policy, LUT via the
        // shared store) serves every backend via Clone — a
        // dual-backend session pays at most one DP, and none at all
        // when the store is already warm for this configuration.
        let store = self.resolved_store();
        let mut backends: Vec<Box<dyn ExecutionBackend>> = Vec::with_capacity(kinds.len());
        if !kinds.is_empty() {
            let processor = self.make_processor()?;
            for &kind in &kinds {
                match kind {
                    BackendKind::Analytic => {
                        backends.push(Box::new(AnalyticBackend::from_processor(processor.clone())))
                    }
                    BackendKind::Cycle => backends.push(Box::new(CycleBackend::from_processor(
                        processor.clone(),
                        model,
                        self.head_home,
                    )?)),
                }
            }
        }
        let policy_name = self.make_policy(arch).name();
        let source = match (self.source, self.pending_scenario) {
            (Some(source), _) => Some(source),
            (None, Some(scenario)) => Some(Box::new(ScenarioSource::new(
                scenario,
                self.scenario_params.unwrap_or_default(),
            )) as Box<dyn TraceSource>),
            (None, None) => None,
        };
        Ok(Session {
            arch,
            model,
            scenario_params: self.scenario_params.unwrap_or_default(),
            cost_params,
            opt_config,
            policy_name,
            source,
            backends,
            store,
            threads: self.threads.unwrap_or(1),
        })
    }
}

/// The typed artifacts of one [`Session::run`]: the executed trace and
/// one [`ExecutionReport`] per configured backend, in builder order.
#[derive(Debug, Clone)]
pub struct RunArtifacts {
    /// The trace every backend executed.
    pub trace: LoadTrace,
    /// Name of the placement policy in effect.
    pub policy: &'static str,
    /// One report per backend, in the order they were configured.
    pub reports: Vec<ExecutionReport>,
    /// Snapshot of the session's [`PlacementStore`] counters at the
    /// end of the run: how often prepared placement state (the LUT DP
    /// above all) was reused versus rebuilt.
    pub cache: CacheStats,
}

impl RunArtifacts {
    /// The first (primary) backend's report.
    pub fn primary(&self) -> &ExecutionReport {
        &self.reports[0]
    }

    /// The report of a specific backend, if the session ran one.
    pub fn report(&self, kind: BackendKind) -> Option<&ExecutionReport> {
        self.reports.iter().find(|r| r.backend == kind)
    }
}

/// The outcome of [`Session::compare`]: every backend's report on the
/// same trace, with agreement checks over the first (reference)
/// backend.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// The underlying run.
    pub artifacts: RunArtifacts,
}

/// Wraps artifacts you already hold in the agreement checks, without
/// re-executing the backends (unlike [`Session::compare`], this does
/// not enforce a minimum backend count — a single-report comparison
/// trivially agrees with itself).
impl From<RunArtifacts> for Comparison {
    fn from(artifacts: RunArtifacts) -> Self {
        Comparison { artifacts }
    }
}

impl Comparison {
    /// The reference report (the first configured backend).
    pub fn reference(&self) -> &ExecutionReport {
        self.artifacts.primary()
    }

    /// Largest relative total-energy deviation of any backend from the
    /// reference.
    pub fn max_total_energy_rel(&self) -> f64 {
        let e_ref = self.reference().total_energy().as_pj();
        self.artifacts.reports[1..]
            .iter()
            .map(|r| (r.total_energy().as_pj() - e_ref).abs() / e_ref.abs().max(f64::MIN_POSITIVE))
            .fold(0.0, f64::max)
    }

    /// Whether every backend reports the same deadline-miss count.
    pub fn deadline_misses_agree(&self) -> bool {
        let misses = self.reference().deadline_misses;
        self.artifacts
            .reports
            .iter()
            .all(|r| r.deadline_misses == misses)
    }

    /// Whether every backend agrees on every slice's schedulability,
    /// not just the total.
    pub fn schedulability_agrees(&self) -> bool {
        let reference: Vec<bool> = self
            .reference()
            .records
            .iter()
            .map(|r| r.deadline_met)
            .collect();
        self.artifacts.reports.iter().all(|r| {
            r.records.len() == reference.len()
                && r.records
                    .iter()
                    .zip(&reference)
                    .all(|(rec, &expected)| rec.deadline_met == expected)
        })
    }
}

/// A built session: bound backends, policy and trace source. See the
/// [module docs](self).
pub struct Session {
    arch: Architecture,
    model: TinyMlModel,
    scenario_params: ScenarioParams,
    cost_params: CostParams,
    opt_config: OptimizerConfig,
    policy_name: &'static str,
    source: Option<Box<dyn TraceSource>>,
    backends: Vec<Box<dyn ExecutionBackend>>,
    store: Arc<PlacementStore>,
    threads: usize,
}

impl fmt::Debug for Session {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Session")
            .field("arch", &self.arch)
            .field("model", &self.model)
            .field("policy", &self.policy_name)
            .field("backends", &self.backend_kinds())
            .field("source", &self.source)
            .finish_non_exhaustive()
    }
}

impl Session {
    /// A fresh builder (alias for [`SessionBuilder::new`]).
    pub fn builder() -> SessionBuilder {
        SessionBuilder::new()
    }

    /// The architecture the session executes.
    pub fn architecture(&self) -> Architecture {
        self.arch
    }

    /// The model the session executes.
    pub fn model(&self) -> TinyMlModel {
        self.model
    }

    /// Name of the placement policy in effect.
    pub fn policy_name(&self) -> &'static str {
        self.policy_name
    }

    /// The configured backends, in run order.
    pub fn backend_kinds(&self) -> Vec<BackendKind> {
        self.backends.iter().map(|b| b.kind()).collect()
    }

    /// The bound trace source's label, if any.
    pub fn source_label(&self) -> Option<String> {
        self.source.as_ref().map(|s| s.label())
    }

    /// The placement store backing this session (shared with every
    /// session built without an explicit [`SessionBuilder::store`]).
    pub fn store(&self) -> &Arc<PlacementStore> {
        &self.store
    }

    /// A snapshot of the session store's hit/miss/build counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.store.stats()
    }

    /// Worker threads [`Session::sweep`] and [`Session::compare`] fan
    /// out across.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Pulls one trace from the source and executes it on every
    /// configured backend.
    ///
    /// The batch facade is a wrapper over the streaming path: each
    /// backend executes the trace slice by slice through its resumable
    /// `step_slice`, bit-identical to the former monolithic loops. For
    /// online (unbounded) workloads, events or backpressure, drive a
    /// [`crate::engine::Engine`] directly — see [`crate::engine`].
    ///
    /// # Errors
    ///
    /// [`SessionError::NoTraceSource`] without a source,
    /// [`SessionError::Trace`] when the source rejects its parameters,
    /// [`SessionError::Backend`] when execution fails.
    pub fn run(&mut self) -> Result<RunArtifacts, SessionError> {
        let trace = self
            .source
            .as_ref()
            .ok_or(SessionError::NoTraceSource)?
            .trace()?;
        let reports = self.execute_trace(&trace)?;
        Ok(RunArtifacts {
            trace,
            policy: self.policy_name,
            reports,
            cache: self.store.stats(),
        })
    }

    /// Runs `trace` on every backend (builder order) via the provided
    /// streaming loop — `execute` is `begin_stream` → `step_slice` per
    /// slice → `finish_stream`, the same resumable path a
    /// [`crate::engine::Engine`] drives online, without the engine's
    /// queue/event machinery that a batch run would only discard.
    fn execute_trace(&mut self, trace: &LoadTrace) -> Result<Vec<ExecutionReport>, SessionError> {
        let mut reports = Vec::with_capacity(self.backends.len());
        for backend in &mut self.backends {
            reports.push(backend.execute(trace).map_err(SessionError::Backend)?);
        }
        Ok(reports)
    }

    /// Runs every backend on the same trace and wraps the reports in
    /// agreement checks — the parity harness as a method.
    ///
    /// With [`SessionBuilder::threads`] above 1 the backends fan out
    /// across scoped worker threads, one per backend (each thread
    /// loops the streaming API over its own backend); reports are
    /// ordered by builder order and bit-identical to the serial run.
    ///
    /// # Errors
    ///
    /// [`SessionError::NotComparable`] with fewer than two backends,
    /// plus everything [`Session::run`] can raise.
    pub fn compare(&mut self) -> Result<Comparison, SessionError> {
        if self.backends.len() < 2 {
            return Err(SessionError::NotComparable {
                backends: self.backends.len(),
            });
        }
        if self.threads <= 1 {
            return Ok(Comparison {
                artifacts: self.run()?,
            });
        }
        let trace = self
            .source
            .as_ref()
            .ok_or(SessionError::NoTraceSource)?
            .trace()?;
        // One slot per backend, filled in place so report order never
        // depends on thread timing; backends are independent, so the
        // fan-out cannot change any report's arithmetic.
        let mut slots: Vec<Option<Result<ExecutionReport, BackendError>>> = Vec::new();
        slots.resize_with(self.backends.len(), || None);
        let trace_ref = &trace;
        std::thread::scope(|scope| {
            for (backend, slot) in self.backends.iter_mut().zip(slots.iter_mut()) {
                scope.spawn(move || {
                    *slot = Some(backend.execute(trace_ref));
                });
            }
        });
        let reports = slots
            .into_iter()
            .map(|slot| slot.expect("every compare slot is filled"))
            .collect::<Result<Vec<_>, _>>()
            .map_err(SessionError::Backend)?;
        Ok(Comparison {
            artifacts: RunArtifacts {
                trace,
                policy: self.policy_name,
                reports,
                cache: self.store.stats(),
            },
        })
    }

    /// Computes the paper's Fig. 5 energy-savings matrix over a
    /// `scenarios × models` grid: for every cell, HH-PIM's total trace
    /// energy against the three comparison architectures, each under
    /// its Table I placement mode (the session's policy selection
    /// applies to `run`/`compare`, not to this canonical comparison).
    ///
    /// Uses the session's scenario, cost and optimizer parameters, so
    /// it reproduces `experiment::savings_matrix` bit-for-bit when
    /// given the full grid. Every cell draws its LUTs from the
    /// session's [`PlacementStore`], so the DP runs once per distinct
    /// `(architecture, model)` configuration for the whole sweep.
    ///
    /// With [`SessionBuilder::threads`] above 1 the cells fan out
    /// across that many scoped worker threads sharing the warm store;
    /// cell order and every value are bit-identical to the serial run.
    ///
    /// # Errors
    ///
    /// [`SessionError::Cost`] when a model does not fit an
    /// architecture, [`SessionError::Trace`] on invalid scenario
    /// parameters.
    pub fn sweep(
        &self,
        scenarios: &[Scenario],
        models: &[TinyMlModel],
    ) -> Result<SavingsMatrix, SessionError> {
        // Model-major cell order, as `experiment::savings_matrix`
        // always produced.
        let pairs: Vec<(Scenario, TinyMlModel)> = models
            .iter()
            .flat_map(|&model| scenarios.iter().map(move |&scenario| (scenario, model)))
            .collect();
        let threads = self.threads.min(pairs.len()).max(1);
        let mut slots: Vec<Option<Result<SavingsCell, SessionError>>> = Vec::new();
        slots.resize_with(pairs.len(), || None);
        let (scenario_params, cost_params, opt_config) =
            (self.scenario_params, self.cost_params, self.opt_config);
        let store = &self.store;
        if threads == 1 {
            Self::sweep_chunk(
                &pairs,
                &mut slots,
                scenario_params,
                cost_params,
                opt_config,
                store,
            );
        } else {
            let chunk = pairs.len().div_ceil(threads);
            std::thread::scope(|scope| {
                for (pair_chunk, slot_chunk) in pairs.chunks(chunk).zip(slots.chunks_mut(chunk)) {
                    scope.spawn(move || {
                        Self::sweep_chunk(
                            pair_chunk,
                            slot_chunk,
                            scenario_params,
                            cost_params,
                            opt_config,
                            store,
                        );
                    });
                }
            });
        }
        // Slots were filled chunk-by-chunk in pair order, so the
        // result ordering is deterministic regardless of thread
        // timing; the first error in pair order wins, as in the
        // serial path.
        let cells = slots
            .into_iter()
            .map(|cell| cell.expect("every sweep slot is filled"))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(SavingsMatrix { cells })
    }

    /// Computes a contiguous run of cells in pair order, hoisting the
    /// four prepared processors per model (cells are model-major, so a
    /// chunk re-prepares only at model boundaries). The serial path
    /// and every parallel worker share this walker, and a cell's
    /// arithmetic never depends on which chunk computed it — matrices
    /// are bit-identical regardless of thread count.
    fn sweep_chunk(
        pairs: &[(Scenario, TinyMlModel)],
        slots: &mut [Option<Result<SavingsCell, SessionError>>],
        scenario_params: ScenarioParams,
        cost_params: CostParams,
        opt_config: OptimizerConfig,
        store: &PlacementStore,
    ) {
        let mut procs: Option<(TinyMlModel, Vec<(Architecture, Processor)>)> = None;
        for (&(scenario, model), slot) in pairs.iter().zip(slots.iter_mut()) {
            *slot = Some(Self::sweep_cell(
                scenario,
                model,
                &mut procs,
                scenario_params,
                cost_params,
                opt_config,
                store,
            ));
        }
    }

    /// One sweep cell, reusing (or refreshing) the walker's per-model
    /// processor set.
    fn sweep_cell(
        scenario: Scenario,
        model: TinyMlModel,
        procs: &mut Option<(TinyMlModel, Vec<(Architecture, Processor)>)>,
        scenario_params: ScenarioParams,
        cost_params: CostParams,
        opt_config: OptimizerConfig,
        store: &PlacementStore,
    ) -> Result<SavingsCell, SessionError> {
        if procs.as_ref().is_none_or(|(m, _)| *m != model) {
            let built = Architecture::ALL
                .iter()
                .map(|&arch| {
                    Processor::with_policy_in(
                        arch,
                        model,
                        cost_params,
                        opt_config,
                        default_policy(arch),
                        store,
                    )
                    .map(|p| (arch, p))
                })
                .collect::<Result<Vec<_>, CostModelError>>()?;
            *procs = Some((model, built));
        }
        let (_, procs) = procs.as_ref().expect("processors prepared above");
        let trace = LoadTrace::try_generate(scenario, scenario_params)?;
        let energy = |arch: Architecture| {
            procs
                .iter()
                .find(|(a, _)| *a == arch)
                .expect("all architectures built")
                .1
                .run_trace(&trace)
                .total_energy()
        };
        let e_hh = energy(Architecture::HhPim);
        let pct = |e_other: hhpim_mem::Energy| (1.0 - e_hh / e_other) * 100.0;
        Ok(SavingsCell {
            scenario,
            model,
            vs_baseline: pct(energy(Architecture::Baseline)),
            vs_heterogeneous: pct(energy(Architecture::Heterogeneous)),
            vs_hybrid: pct(energy(Architecture::Hybrid)),
        })
    }

    /// [`Session::sweep`] over the full paper grid (6 scenarios × 3
    /// models).
    ///
    /// # Errors
    ///
    /// See [`Session::sweep`].
    pub fn sweep_all(&self) -> Result<SavingsMatrix, SessionError> {
        self.sweep(&Scenario::ALL, &TinyMlModel::ALL)
    }

    /// Computes shard `index` of a deterministic `count`-way partition
    /// of the full-grid sweep ([`Session::sweep_all`]'s 18 model-major
    /// `(scenario, model)` pairs, cut into contiguous chunks of
    /// `ceil(18 / count)` — the same rule the in-process parallel
    /// executor uses, so a chunk re-prepares processors only at model
    /// boundaries). The partition covers every pair exactly once for
    /// any `count`; shards past the end of the pair list are empty
    /// matrices.
    ///
    /// Concatenating the shard outputs in index order
    /// ([`SavingsMatrix::merge_shards`], or the cover-validating
    /// [`crate::artifact::SweepArtifact::merge`]) reproduces the
    /// serial [`Session::sweep_all`] **bit for bit**: a cell's
    /// arithmetic never depends on which shard computed it, and the
    /// shared [`PlacementStore`] (plus its optional
    /// [`SessionBuilder::artifact_dir`] disk tier) only decides
    /// whether the DP re-runs, never what it returns. This is the
    /// unit of work one `sweep_farm` worker process executes.
    ///
    /// Each shard runs serially within itself — the intended
    /// parallelism is across worker processes, not threads.
    ///
    /// # Panics
    ///
    /// Panics when `count == 0` or `index >= count` — a shard outside
    /// its partition is a driver bug, not a recoverable state.
    ///
    /// # Errors
    ///
    /// See [`Session::sweep`].
    pub fn sweep_shard(&self, index: usize, count: usize) -> Result<SavingsMatrix, SessionError> {
        assert!(count >= 1, "shard count must be at least 1");
        assert!(
            index < count,
            "shard index {index} outside partition of {count}"
        );
        let pairs: Vec<(Scenario, TinyMlModel)> = TinyMlModel::ALL
            .iter()
            .flat_map(|&model| Scenario::ALL.iter().map(move |&scenario| (scenario, model)))
            .collect();
        let chunk = pairs.len().div_ceil(count);
        let start = (index * chunk).min(pairs.len());
        let end = ((index + 1) * chunk).min(pairs.len());
        let shard = &pairs[start..end];
        let mut slots: Vec<Option<Result<SavingsCell, SessionError>>> = Vec::new();
        slots.resize_with(shard.len(), || None);
        Self::sweep_chunk(
            shard,
            &mut slots,
            self.scenario_params,
            self.cost_params,
            self.opt_config,
            &self.store,
        );
        let cells = slots
            .into_iter()
            .map(|cell| cell.expect("every shard slot is filled"))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(SavingsMatrix { cells })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{FixedHome, GreedyBaseline, LutAdaptive};
    use crate::space::{Placement, StorageSpace};

    fn small_params() -> ScenarioParams {
        ScenarioParams {
            slices: 5,
            ..ScenarioParams::default()
        }
    }

    #[test]
    fn builder_defaults_run_the_analytic_backend() {
        let mut session = SessionBuilder::new()
            .scenario(Scenario::PeriodicSpike)
            .scenario_params(small_params())
            .build()
            .unwrap();
        assert_eq!(session.architecture(), Architecture::HhPim);
        assert_eq!(session.model(), TinyMlModel::MobileNetV2);
        assert_eq!(session.backend_kinds(), vec![BackendKind::Analytic]);
        assert_eq!(session.policy_name(), "lut-adaptive");
        let artifacts = session.run().unwrap();
        assert_eq!(artifacts.reports.len(), 1);
        assert_eq!(artifacts.primary().records.len(), 5);
        assert!(artifacts.report(BackendKind::Cycle).is_none());
    }

    #[test]
    fn run_without_source_is_a_typed_error() {
        let mut session = SessionBuilder::new().build().unwrap();
        assert!(matches!(
            session.run().unwrap_err(),
            SessionError::NoTraceSource
        ));
    }

    #[test]
    fn sourceless_sessions_build_no_backends_for_sweep_only_use() {
        // A sweep-only session (no trace source, no explicit backend)
        // must not pay for backend construction — sweep builds its own
        // processors.
        let session = SessionBuilder::new().build().unwrap();
        assert!(session.backend_kinds().is_empty());
        // Explicitly requested backends are still honored.
        let session = SessionBuilder::new()
            .backend(BackendKind::Analytic)
            .build()
            .unwrap();
        assert_eq!(session.backend_kinds(), vec![BackendKind::Analytic]);
    }

    #[test]
    fn comparison_wraps_held_artifacts_without_rerunning() {
        let mut session = SessionBuilder::new()
            .scenario(Scenario::PeriodicSpike)
            .scenario_params(small_params())
            .build()
            .unwrap();
        let artifacts = session.run().unwrap();
        let comparison = Comparison::from(artifacts);
        assert!(comparison.deadline_misses_agree());
        assert_eq!(comparison.max_total_energy_rel(), 0.0);
    }

    #[test]
    fn compare_needs_two_backends() {
        let mut session = SessionBuilder::new()
            .scenario(Scenario::LowConstant)
            .scenario_params(small_params())
            .build()
            .unwrap();
        assert!(matches!(
            session.compare().unwrap_err(),
            SessionError::NotComparable { backends: 1 }
        ));
    }

    #[test]
    fn duplicate_backends_are_rejected() {
        let err = SessionBuilder::new()
            .backend(BackendKind::Analytic)
            .backend(BackendKind::Analytic)
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            SessionError::DuplicateBackend {
                kind: BackendKind::Analytic
            }
        ));
    }

    #[test]
    fn invalid_scenario_params_surface_as_trace_errors() {
        let mut session = SessionBuilder::new()
            .scenario(Scenario::Random)
            .scenario_params(ScenarioParams {
                slices: 0,
                ..ScenarioParams::default()
            })
            .build()
            .unwrap();
        assert!(matches!(
            session.run().unwrap_err(),
            SessionError::Trace(TraceError::Empty)
        ));
    }

    #[test]
    fn closure_source_feeds_the_run() {
        let mut session = SessionBuilder::new()
            .trace_source(ClosureSource::new(
                6,
                |i| if i % 2 == 0 { 1.0 } else { 0.1 },
            ))
            .build()
            .unwrap();
        let artifacts = session.run().unwrap();
        assert_eq!(artifacts.primary().records.len(), 6);
        let tasks: Vec<u32> = artifacts
            .primary()
            .records
            .iter()
            .map(|r| r.n_tasks)
            .collect();
        assert_eq!(tasks, vec![10, 1, 10, 1, 10, 1]);
    }

    #[test]
    fn all_three_policies_are_selectable_and_disagree_where_expected() {
        fn run(policy: impl PlacementPolicy + 'static) -> RunArtifacts {
            SessionBuilder::new()
                .scenario(Scenario::PeriodicSpike)
                .scenario_params(ScenarioParams {
                    slices: 5,
                    ..ScenarioParams::default()
                })
                .policy(policy)
                .build()
                .unwrap()
                .run()
                .unwrap()
        }
        let lut = run(LutAdaptive::new());
        let fixed = run(FixedHome::arch_default());
        let greedy = run(GreedyBaseline::new());
        assert_eq!(lut.policy, "lut-adaptive");
        assert_eq!(fixed.policy, "fixed-home");
        assert_eq!(greedy.policy, "greedy");
        // The fixed home never migrates; the adaptive policies do on a
        // spiky trace.
        assert!(fixed.primary().migrations.is_empty());
        assert!(!lut.primary().migrations.is_empty());
        assert!(!greedy.primary().migrations.is_empty());
        // The DP LUT's leakage-aware objective beats the fixed home on
        // total energy for a mostly-idle trace.
        assert!(
            lut.primary().total_energy() < fixed.primary().total_energy(),
            "lut {} vs fixed {}",
            lut.primary().total_energy(),
            fixed.primary().total_energy()
        );
    }

    #[test]
    fn pinned_policy_flows_through_both_backends() {
        // A valid all-groups pin: fill spaces in declaration order.
        let cost = Processor::new(Architecture::HhPim, TinyMlModel::MobileNetV2)
            .unwrap()
            .cost()
            .clone();
        let mut pin = Placement::empty();
        let mut remaining = cost.k_groups();
        for space in StorageSpace::ALL {
            let take = remaining.min(cost.capacity_groups(space));
            pin.set(space, take);
            remaining -= take;
        }
        assert!(cost.is_valid(&pin));
        let mut session = SessionBuilder::new()
            .scenario(Scenario::HighLowPulsing)
            .scenario_params(small_params())
            .policy(FixedHome::pinned(pin))
            .backend(BackendKind::Analytic)
            .backend(BackendKind::Cycle)
            .build()
            .unwrap();
        let artifacts = session.run().unwrap();
        for report in &artifacts.reports {
            assert!(report.migrations.is_empty(), "{}", report.backend);
            for rec in &report.records {
                assert_eq!(rec.placement, Some(pin), "{}", report.backend);
            }
        }
    }

    #[test]
    fn sweep_matches_grid_dimensions_and_subsets() {
        let session = SessionBuilder::new()
            .scenario_params(ScenarioParams {
                slices: 8,
                ..ScenarioParams::default()
            })
            .optimizer(OptimizerConfig {
                time_buckets: 300,
                ..OptimizerConfig::default()
            })
            .build()
            .unwrap();
        let sub = session
            .sweep(
                &[Scenario::LowConstant, Scenario::HighConstant],
                &[TinyMlModel::MobileNetV2],
            )
            .unwrap();
        assert_eq!(sub.cells.len(), 2);
        assert!(sub
            .cell(Scenario::LowConstant, TinyMlModel::MobileNetV2)
            .is_some());
        // Subset cells match the same cells of the full grid exactly.
        let full = session.sweep_all().unwrap();
        for cell in &sub.cells {
            let full_cell = full.cell(cell.scenario, cell.model).unwrap();
            assert_eq!(cell.vs_baseline.to_bits(), full_cell.vs_baseline.to_bits());
            assert_eq!(cell.vs_hybrid.to_bits(), full_cell.vs_hybrid.to_bits());
        }
    }
}
