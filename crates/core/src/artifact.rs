//! Persistent placement artifacts: the on-disk tier under the
//! [`crate::PlacementStore`] and the interchange format of the sharded
//! sweep executor.
//!
//! The §III-B allocation LUT is the expensive, reusable product of
//! Algorithms 1+2 — but the store's memoization (PR 4) dies with the
//! process, so every worker, CI run and sweep shard used to recompute
//! the same tables. This module makes the DP survive the process:
//!
//! ```text
//!  PlacementStore::lut(key)
//!        │ memory hit ──────────────▶ Arc clone          (hits)
//!        │ memory miss
//!        ▼
//!  ArtifactStore::try_load_lut(key)
//!        │ disk hit ────────────────▶ parse + verify     (disk_hits)
//!        │ absent / corrupt / stale
//!        ▼
//!  AllocationLut::build ──▶ save_lut (atomic write-back) (disk_writes)
//! ```
//!
//! Three guarantees shape the format:
//!
//! * **Process-stable identity.** Artifact files are named by an
//!   FNV-1a hash of [`PlacementKey::canonical`] — a versioned,
//!   deterministic rendering of every key field — and embed the full
//!   canonical string. A file is served only when its embedded key
//!   matches the requested one byte for byte, so a hash collision or
//!   a renamed file can never smuggle in a stale table.
//! * **Versioned, checksummed JSON.** The hand-rolled schema (the
//!   `bench_gate` / [`hhpim_workload::RecordedTrace`] idiom — no new
//!   dependencies) leads with a `version` field and carries an FNV-1a
//!   checksum over the payload's exact bit patterns. Floats are
//!   written with `{:?}` shortest round-trip formatting, so a load is
//!   bit-identical to the build that was saved; any torn, truncated
//!   or bit-flipped file surfaces as a typed [`ArtifactError`] and
//!   the store falls through to a rebuild.
//! * **Atomic writes.** [`ArtifactStore::save_lut`] and
//!   [`SweepArtifact::save`] write to a unique temp file in the target
//!   directory and `rename` into place, so concurrent writers (the
//!   `sweep_farm` worker processes) never tear a file — the last
//!   complete write wins, and every complete write of one key has
//!   identical contents.
//!
//! [`SweepArtifact`] is the shard interchange format of the sharded
//! sweep executor: `sweep_farm` workers persist
//! [`crate::session::Session::sweep_shard`] outputs, and
//! [`SweepArtifact::merge`] recombines them — validating the shard
//! cover — into one report bit-identical to the serial
//! [`crate::session::Session::sweep_all`].
//!
//! # Examples
//!
//! ```
//! use hhpim::{ArtifactStore, PlacementStore, PlacementKey};
//! use hhpim::{Architecture, CostModel, CostParams, WorkloadProfile};
//! use hhpim::{OptimizerConfig, RuntimeConfig};
//! use hhpim_nn::TinyMlModel;
//!
//! let dir = std::env::temp_dir().join(format!("hhpim-artifact-doc-{}", std::process::id()));
//! let params = CostParams::default();
//! let cost = CostModel::new(
//!     Architecture::HhPim.spec(),
//!     WorkloadProfile::from_spec(&TinyMlModel::MobileNetV2.spec()),
//!     params,
//! )
//! .unwrap();
//! let runtime = RuntimeConfig::reference(TinyMlModel::MobileNetV2, params).unwrap();
//! let opt = OptimizerConfig { time_buckets: 120, ..OptimizerConfig::default() };
//!
//! // First process: builds the DP once and writes it back.
//! let store = PlacementStore::with_artifact_dir(&dir);
//! let built = store.lut(&cost, &runtime, &opt);
//! assert_eq!(store.stats().disk_writes, 1);
//!
//! // "Second process": a fresh store over the same dir loads instead
//! // of building — zero LUT DP builds for cached keys.
//! let warm = PlacementStore::with_artifact_dir(&dir);
//! let loaded = warm.lut(&cost, &runtime, &opt);
//! assert_eq!(*built, *loaded);
//! assert_eq!(warm.stats().lut_builds, 0);
//! assert_eq!(warm.stats().disk_hits, 1);
//! # std::fs::remove_dir_all(&dir).ok();
//! ```

use crate::dp::{AllocationLut, OptimalPlacement};
use crate::experiment::{SavingsCell, SavingsMatrix};
use crate::space::{Placement, StorageSpace};
use crate::store::PlacementKey;
use hhpim_mem::Energy;
use hhpim_nn::TinyMlModel;
use hhpim_sim::SimDuration;
use hhpim_workload::Scenario;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Version of the on-disk artifact schema. Bumped on any incompatible
/// change; files recording a different version load as
/// [`ArtifactError::Version`] and are rebuilt, never reinterpreted.
pub const ARTIFACT_FORMAT_VERSION: u32 = 1;

/// Format tag of a persisted allocation LUT.
const LUT_FORMAT: &str = "hhpim-lut-artifact";
/// Format tag of a persisted sweep shard / merged sweep report.
const SWEEP_FORMAT: &str = "hhpim-sweep-artifact";

/// Why an artifact could not be saved, loaded or merged. Every load
/// failure is typed so the [`crate::PlacementStore`] disk tier can
/// fall through to a rebuild — corruption is never a panic and never
/// serves stale data.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ArtifactError {
    /// The file records an incompatible schema version.
    Version {
        /// Version recorded in the file.
        found: u32,
        /// Version this build understands.
        supported: u32,
    },
    /// The file is not well-formed (truncated, torn or hand-edited
    /// past recognition). `offset` is the byte position the parser
    /// stopped at.
    Parse {
        /// What the parser expected or found.
        message: String,
        /// Byte offset of the failure.
        offset: usize,
    },
    /// The payload parsed but its recomputed checksum disagrees with
    /// the recorded one — a value-level bit flip.
    Checksum {
        /// Checksum recorded in the file.
        expected: u64,
        /// Checksum recomputed from the parsed payload.
        found: u64,
    },
    /// The file's embedded canonical key is not the requested one (a
    /// renamed file or a filename-hash collision).
    KeyMismatch {
        /// The requested key's canonical form.
        expected: String,
        /// The canonical form embedded in the file.
        found: String,
    },
    /// The filesystem said no.
    Io {
        /// Path involved.
        path: String,
        /// The OS error, stringified.
        message: String,
    },
    /// Shard outputs do not form a complete, non-overlapping cover
    /// (merge-time validation).
    Shard {
        /// What was wrong with the shard set.
        message: String,
    },
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactError::Version { found, supported } => write!(
                f,
                "artifact format version {found} is not supported (this build reads {supported})"
            ),
            ArtifactError::Parse { message, offset } => {
                write!(f, "artifact parse error at byte {offset}: {message}")
            }
            ArtifactError::Checksum { expected, found } => write!(
                f,
                "artifact checksum mismatch: file records {expected}, payload hashes to {found}"
            ),
            ArtifactError::KeyMismatch { expected, found } => write!(
                f,
                "artifact key mismatch: requested `{expected}`, file contains `{found}`"
            ),
            ArtifactError::Io { path, message } => write!(f, "artifact io on {path}: {message}"),
            ArtifactError::Shard { message } => write!(f, "sweep shard merge: {message}"),
        }
    }
}

impl std::error::Error for ArtifactError {}

// --------------------------------------------------------------------
// FNV-1a: the no-dependency hash behind file names and checksums.
// --------------------------------------------------------------------

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over raw bytes — deterministic across runs and machines,
/// unlike `HashMap`'s seeded hasher.
fn fnv1a(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= u64::from(b);
        *hash = hash.wrapping_mul(FNV_PRIME);
    }
}

fn fnv_u64(hash: &mut u64, value: u64) {
    fnv1a(hash, &value.to_le_bytes());
}

/// FNV-1a of one string, from the standard offset basis.
fn fnv_str(s: &str) -> u64 {
    let mut hash = FNV_OFFSET;
    fnv1a(&mut hash, s.as_bytes());
    hash
}

/// Checksum of a LUT payload: the canonical key plus the exact bit
/// patterns of every entry. Recomputed from *parsed* values on load,
/// so any digit-level corruption that still parses is caught.
fn lut_digest(key: &str, lut: &AllocationLut) -> u64 {
    let mut hash = fnv_str(key);
    for t in lut.t_constraints() {
        fnv_u64(&mut hash, t.as_ps());
    }
    for entry in lut.entries() {
        match entry {
            None => fnv_u64(&mut hash, 0),
            Some(p) => {
                fnv_u64(&mut hash, 1);
                for space in StorageSpace::ALL {
                    fnv_u64(&mut hash, p.placement.get(space) as u64);
                }
                fnv_u64(&mut hash, p.energy_per_task.as_pj().to_bits());
                fnv_u64(&mut hash, p.task_time.as_ps());
            }
        }
    }
    hash
}

/// Checksum of a sweep payload: shard coordinates plus every cell's
/// identity and exact savings bit patterns (stats are informational
/// and excluded, so warm and cold runs of the same grid produce
/// byte-identical merged reports).
fn sweep_digest(shard_index: usize, shard_count: usize, cells: &[SavingsCell]) -> u64 {
    let mut hash = FNV_OFFSET;
    fnv_u64(&mut hash, shard_index as u64);
    fnv_u64(&mut hash, shard_count as u64);
    for cell in cells {
        fnv_u64(&mut hash, cell.scenario.case_number() as u64);
        fnv1a(&mut hash, cell.model.to_string().as_bytes());
        fnv_u64(&mut hash, cell.vs_baseline.to_bits());
        fnv_u64(&mut hash, cell.vs_heterogeneous.to_bits());
        fnv_u64(&mut hash, cell.vs_hybrid.to_bits());
    }
    hash
}

// --------------------------------------------------------------------
// Serialization: hand-rolled JSON, floats via shortest round-trip.
// --------------------------------------------------------------------

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders `key`'s LUT into the versioned on-disk JSON form. Floats
/// use `{:?}` (shortest round-trip), so parsing the text back yields
/// bit-identical values; see [`lut_from_json`].
pub fn lut_to_json(key: &PlacementKey, lut: &AllocationLut) -> String {
    let canonical = key.canonical();
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"format\": \"{LUT_FORMAT}\",\n"));
    out.push_str(&format!("  \"version\": {ARTIFACT_FORMAT_VERSION},\n"));
    out.push_str(&format!("  \"key\": {},\n", escape_json(&canonical)));
    out.push_str(&format!(
        "  \"checksum\": {},\n",
        lut_digest(&canonical, lut)
    ));
    out.push_str("  \"t_constraints_ps\": [");
    for (i, t) in lut.t_constraints().iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&t.as_ps().to_string());
    }
    out.push_str("],\n");
    out.push_str("  \"entries\": [\n");
    for (i, entry) in lut.entries().iter().enumerate() {
        match entry {
            None => out.push_str("    null"),
            Some(p) => {
                let c = StorageSpace::ALL.map(|s| p.placement.get(s));
                out.push_str(&format!(
                    "    [{}, {}, {}, {}, {:?}, {}]",
                    c[0],
                    c[1],
                    c[2],
                    c[3],
                    p.energy_per_task.as_pj(),
                    p.task_time.as_ps()
                ));
            }
        }
        if i + 1 < lut.entries().len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}

/// Parses a LUT artifact back, verifying in order: well-formedness
/// ([`ArtifactError::Parse`] with a byte offset), schema version
/// ([`ArtifactError::Version`]), the embedded canonical key against
/// `expected_key` ([`ArtifactError::KeyMismatch`]) and the payload
/// checksum ([`ArtifactError::Checksum`]).
///
/// # Errors
///
/// The typed [`ArtifactError`] for each verification stage above —
/// never a panic, whatever the file contains.
pub fn lut_from_json(
    expected_key: &PlacementKey,
    text: &str,
) -> Result<AllocationLut, ArtifactError> {
    let mut p = Parser::new(text);
    let mut format: Option<String> = None;
    let mut version: Option<u32> = None;
    let mut key: Option<String> = None;
    let mut checksum: Option<u64> = None;
    let mut t_constraints: Option<Vec<SimDuration>> = None;
    let mut entries: Option<Vec<Option<OptimalPlacement>>> = None;

    p.expect(b'{')?;
    loop {
        let field = p.parse_string()?;
        p.expect(b':')?;
        match field.as_str() {
            "format" => format = Some(p.parse_string()?),
            "version" => version = Some(p.parse_u64()? as u32),
            "key" => key = Some(p.parse_string()?),
            "checksum" => checksum = Some(p.parse_u64()?),
            "t_constraints_ps" => {
                let mut out = Vec::new();
                p.parse_array(|p| {
                    out.push(SimDuration::from_ps(p.parse_u64()?));
                    Ok(())
                })?;
                t_constraints = Some(out);
            }
            "entries" => {
                let mut out = Vec::new();
                p.parse_array(|p| {
                    out.push(p.parse_lut_entry()?);
                    Ok(())
                })?;
                entries = Some(out);
            }
            other => return Err(p.fail(format!("unknown field `{other}`"))),
        }
        match p.peek() {
            Some(b',') => {
                p.pos += 1;
            }
            Some(b'}') => {
                p.pos += 1;
                break;
            }
            _ => return Err(p.fail("expected `,` or `}`")),
        }
    }
    p.expect_end()?;

    if format.as_deref() != Some(LUT_FORMAT) {
        return Err(p.fail(format!("not a `{LUT_FORMAT}` file")));
    }
    let found = version.ok_or_else(|| p.fail("missing `version`"))?;
    if found != ARTIFACT_FORMAT_VERSION {
        return Err(ArtifactError::Version {
            found,
            supported: ARTIFACT_FORMAT_VERSION,
        });
    }
    let key = key.ok_or_else(|| p.fail("missing `key`"))?;
    let expected = expected_key.canonical();
    if key != expected {
        return Err(ArtifactError::KeyMismatch {
            expected,
            found: key,
        });
    }
    let recorded = checksum.ok_or_else(|| p.fail("missing `checksum`"))?;
    let t_constraints = t_constraints.ok_or_else(|| p.fail("missing `t_constraints_ps`"))?;
    let entries = entries.ok_or_else(|| p.fail("missing `entries`"))?;
    if entries.len() != t_constraints.len() {
        return Err(p.fail(format!(
            "{} entries but {} t_constraints",
            entries.len(),
            t_constraints.len()
        )));
    }
    let lut = AllocationLut::from_parts(entries, t_constraints);
    let computed = lut_digest(&key, &lut);
    if computed != recorded {
        return Err(ArtifactError::Checksum {
            expected: recorded,
            found: computed,
        });
    }
    Ok(lut)
}

/// Process-unique suffix counter for atomic-write temp files (two
/// threads of one process writing the same key must not share a temp
/// path).
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

fn io_err(path: &Path, e: std::io::Error) -> ArtifactError {
    ArtifactError::Io {
        path: path.display().to_string(),
        message: e.to_string(),
    }
}

/// Writes `contents` to `path` atomically: create the parent dir,
/// write a process-and-sequence-unique temp file next to the target,
/// then `rename` into place. Readers see either the old complete file
/// or the new complete file, never a torn prefix — the contract the
/// `sweep_farm` worker processes rely on.
fn write_atomic(path: &Path, contents: &str) -> Result<(), ArtifactError> {
    let dir = path
        .parent()
        .filter(|d| !d.as_os_str().is_empty())
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."));
    std::fs::create_dir_all(&dir).map_err(|e| io_err(&dir, e))?;
    let file_name = path
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or("artifact");
    let tmp = dir.join(format!(
        ".{file_name}.{}.{}.tmp",
        std::process::id(),
        TMP_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::write(&tmp, contents).map_err(|e| io_err(&tmp, e))?;
    std::fs::rename(&tmp, path).map_err(|e| {
        std::fs::remove_file(&tmp).ok();
        io_err(path, e)
    })
}

// --------------------------------------------------------------------
// The disk tier.
// --------------------------------------------------------------------

/// A directory of persisted placement artifacts: the disk tier a
/// [`crate::PlacementStore`] consults between a memory miss and the
/// DP ([`crate::PlacementStore::set_artifact_store`] /
/// [`crate::session::SessionBuilder::artifact_dir`]). Cloning clones
/// the handle (a path), not the artifacts.
///
/// File layout: one `lut-<fnv1a-of-canonical-key>.json` per persisted
/// LUT. The directory is created lazily on the first save; loads from
/// a missing directory are plain misses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArtifactStore {
    dir: PathBuf,
}

impl ArtifactStore {
    /// A handle on `dir` (not touched until the first save).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        ArtifactStore { dir: dir.into() }
    }

    /// The directory artifacts live in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The file path `key`'s LUT artifact is stored at — named by the
    /// FNV-1a hash of [`PlacementKey::canonical`], stable across
    /// processes and machines.
    pub fn lut_path(&self, key: &PlacementKey) -> PathBuf {
        self.dir
            .join(format!("lut-{:016x}.json", fnv_str(&key.canonical())))
    }

    /// Persists `lut` under `key` with an atomic write-rename,
    /// returning the artifact's path. Concurrent writers of the same
    /// key race benignly: every complete write has identical contents.
    ///
    /// # Errors
    ///
    /// [`ArtifactError::Io`] when the directory or file cannot be
    /// written.
    pub fn save_lut(
        &self,
        key: &PlacementKey,
        lut: &AllocationLut,
    ) -> Result<PathBuf, ArtifactError> {
        let path = self.lut_path(key);
        write_atomic(&path, &lut_to_json(key, lut))?;
        Ok(path)
    }

    /// Loads and fully verifies `key`'s LUT artifact.
    ///
    /// # Errors
    ///
    /// [`ArtifactError::Io`] when the file is absent or unreadable;
    /// the [`lut_from_json`] verification errors otherwise.
    pub fn load_lut(&self, key: &PlacementKey) -> Result<AllocationLut, ArtifactError> {
        let path = self.lut_path(key);
        let text = std::fs::read_to_string(&path).map_err(|e| io_err(&path, e))?;
        lut_from_json(key, &text)
    }

    /// [`ArtifactStore::load_lut`] with "file not found" folded into
    /// `Ok(None)` — the shape the store's lookup ladder wants: a
    /// plain disk miss is not an error, while a *corrupt* file still
    /// surfaces as `Err` (and falls through to a rebuild).
    ///
    /// # Errors
    ///
    /// Every [`ArtifactError`] except not-found `Io`.
    pub fn try_load_lut(&self, key: &PlacementKey) -> Result<Option<AllocationLut>, ArtifactError> {
        let path = self.lut_path(key);
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(io_err(&path, e)),
        };
        lut_from_json(key, &text).map(Some)
    }
}

// --------------------------------------------------------------------
// Sweep shard interchange.
// --------------------------------------------------------------------

/// Cache-counter summary a `sweep_farm` worker attaches to its shard
/// output ([`crate::CacheStats`], reduced to the disk-tier facts the
/// farm driver asserts on).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SweepStats {
    /// LUT DP builds the worker performed (0 on a warm artifact dir).
    pub lut_builds: u64,
    /// Memory misses the worker served from the artifact dir.
    pub disk_hits: u64,
    /// Fresh builds the worker wrote back.
    pub disk_writes: u64,
}

/// One sweep shard's output (or a merged full report) in the
/// versioned on-disk form: which slice `[shard_index, shard_count]`
/// of the deterministic sweep partition these cells are, the cells
/// themselves, and optionally the worker's [`SweepStats`].
///
/// Stats are excluded from the checksum and from merged reports, so
/// two runs of the same grid — cold or warm — produce byte-identical
/// merged files.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepArtifact {
    /// Which shard of the partition this is (0-based).
    pub shard_index: usize,
    /// How many shards the partition has (a merged report is `0` of
    /// `1`).
    pub shard_count: usize,
    /// The shard's cells, in [`crate::session::Session::sweep_shard`]
    /// pair order.
    pub matrix: SavingsMatrix,
    /// The producing worker's cache counters, if recorded.
    pub stats: Option<SweepStats>,
}

impl SweepArtifact {
    /// Wraps shard `index` of `count`'s matrix (no stats).
    pub fn new(shard_index: usize, shard_count: usize, matrix: SavingsMatrix) -> Self {
        SweepArtifact {
            shard_index,
            shard_count,
            matrix,
            stats: None,
        }
    }

    /// Renders the versioned on-disk JSON form (savings via `{:?}`
    /// shortest round-trip, so a reload is bit-identical).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"format\": \"{SWEEP_FORMAT}\",\n"));
        out.push_str(&format!("  \"version\": {ARTIFACT_FORMAT_VERSION},\n"));
        out.push_str(&format!(
            "  \"shard\": [{}, {}],\n",
            self.shard_index, self.shard_count
        ));
        out.push_str(&format!(
            "  \"checksum\": {},\n",
            sweep_digest(self.shard_index, self.shard_count, &self.matrix.cells)
        ));
        out.push_str("  \"cells\": [\n");
        for (i, cell) in self.matrix.cells.iter().enumerate() {
            out.push_str(&format!(
                "    [{}, {}, {:?}, {:?}, {:?}]",
                cell.scenario.case_number(),
                escape_json(&cell.model.to_string()),
                cell.vs_baseline,
                cell.vs_heterogeneous,
                cell.vs_hybrid
            ));
            if i + 1 < self.matrix.cells.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]");
        if let Some(stats) = self.stats {
            out.push_str(&format!(
                ",\n  \"stats\": [{}, {}, {}]",
                stats.lut_builds, stats.disk_hits, stats.disk_writes
            ));
        }
        out.push_str("\n}\n");
        out
    }

    /// Parses a sweep artifact, verifying well-formedness, schema
    /// version and payload checksum (same ladder as
    /// [`lut_from_json`], minus the key check — shard identity is in
    /// the payload).
    ///
    /// # Errors
    ///
    /// [`ArtifactError::Parse`] / [`ArtifactError::Version`] /
    /// [`ArtifactError::Checksum`].
    pub fn from_json(text: &str) -> Result<Self, ArtifactError> {
        let mut p = Parser::new(text);
        let mut format: Option<String> = None;
        let mut version: Option<u32> = None;
        let mut shard: Option<(usize, usize)> = None;
        let mut checksum: Option<u64> = None;
        let mut cells: Option<Vec<SavingsCell>> = None;
        let mut stats: Option<SweepStats> = None;

        p.expect(b'{')?;
        loop {
            let field = p.parse_string()?;
            p.expect(b':')?;
            match field.as_str() {
                "format" => format = Some(p.parse_string()?),
                "version" => version = Some(p.parse_u64()? as u32),
                "shard" => {
                    p.expect(b'[')?;
                    let index = p.parse_u64()? as usize;
                    p.expect(b',')?;
                    let count = p.parse_u64()? as usize;
                    p.expect(b']')?;
                    shard = Some((index, count));
                }
                "checksum" => checksum = Some(p.parse_u64()?),
                "cells" => {
                    let mut out = Vec::new();
                    p.parse_array(|p| {
                        out.push(p.parse_sweep_cell()?);
                        Ok(())
                    })?;
                    cells = Some(out);
                }
                "stats" => {
                    p.expect(b'[')?;
                    let lut_builds = p.parse_u64()?;
                    p.expect(b',')?;
                    let disk_hits = p.parse_u64()?;
                    p.expect(b',')?;
                    let disk_writes = p.parse_u64()?;
                    p.expect(b']')?;
                    stats = Some(SweepStats {
                        lut_builds,
                        disk_hits,
                        disk_writes,
                    });
                }
                other => return Err(p.fail(format!("unknown field `{other}`"))),
            }
            match p.peek() {
                Some(b',') => {
                    p.pos += 1;
                }
                Some(b'}') => {
                    p.pos += 1;
                    break;
                }
                _ => return Err(p.fail("expected `,` or `}`")),
            }
        }
        p.expect_end()?;

        if format.as_deref() != Some(SWEEP_FORMAT) {
            return Err(p.fail(format!("not a `{SWEEP_FORMAT}` file")));
        }
        let found = version.ok_or_else(|| p.fail("missing `version`"))?;
        if found != ARTIFACT_FORMAT_VERSION {
            return Err(ArtifactError::Version {
                found,
                supported: ARTIFACT_FORMAT_VERSION,
            });
        }
        let (shard_index, shard_count) = shard.ok_or_else(|| p.fail("missing `shard`"))?;
        let recorded = checksum.ok_or_else(|| p.fail("missing `checksum`"))?;
        let cells = cells.ok_or_else(|| p.fail("missing `cells`"))?;
        let computed = sweep_digest(shard_index, shard_count, &cells);
        if computed != recorded {
            return Err(ArtifactError::Checksum {
                expected: recorded,
                found: computed,
            });
        }
        Ok(SweepArtifact {
            shard_index,
            shard_count,
            matrix: SavingsMatrix { cells },
            stats,
        })
    }

    /// Saves with the same atomic write-rename contract as
    /// [`ArtifactStore::save_lut`].
    ///
    /// # Errors
    ///
    /// [`ArtifactError::Io`].
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), ArtifactError> {
        write_atomic(path.as_ref(), &self.to_json())
    }

    /// Loads and verifies one artifact file.
    ///
    /// # Errors
    ///
    /// [`ArtifactError::Io`] plus the [`SweepArtifact::from_json`]
    /// verification errors.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, ArtifactError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path).map_err(|e| io_err(path, e))?;
        Self::from_json(&text)
    }

    /// Recombines shard outputs into one merged report, in shard
    /// order — bit-identical to the serial sweep that the partition
    /// was cut from. Validates the cover first: every shard must
    /// agree on `shard_count`, and the indices must be exactly
    /// `0..shard_count`, each once (any order in `shards` is fine).
    /// Stats sum when every shard carries them, else drop.
    ///
    /// # Errors
    ///
    /// [`ArtifactError::Shard`] naming the missing, duplicate or
    /// disagreeing shard.
    pub fn merge(shards: &[SweepArtifact]) -> Result<SweepArtifact, ArtifactError> {
        let shard_err = |message: String| ArtifactError::Shard { message };
        let first = shards
            .first()
            .ok_or_else(|| shard_err("no shards to merge".into()))?;
        let count = first.shard_count;
        if shards.len() != count {
            return Err(shard_err(format!(
                "partition declares {count} shards but {} were provided",
                shards.len()
            )));
        }
        let mut ordered: Vec<&SweepArtifact> = shards.iter().collect();
        ordered.sort_by_key(|s| s.shard_index);
        for (i, s) in ordered.iter().enumerate() {
            if s.shard_count != count {
                return Err(shard_err(format!(
                    "shard {} declares {} shards, expected {count}",
                    s.shard_index, s.shard_count
                )));
            }
            if s.shard_index != i {
                return Err(shard_err(format!(
                    "shard index {i} is missing or duplicated (found {})",
                    s.shard_index
                )));
            }
        }
        let cells: Vec<SavingsCell> = ordered
            .iter()
            .flat_map(|s| s.matrix.cells.iter().copied())
            .collect();
        let stats = ordered
            .iter()
            .map(|s| s.stats)
            .collect::<Option<Vec<_>>>()
            .map(|all| {
                all.iter().fold(SweepStats::default(), |acc, s| SweepStats {
                    lut_builds: acc.lut_builds + s.lut_builds,
                    disk_hits: acc.disk_hits + s.disk_hits,
                    disk_writes: acc.disk_writes + s.disk_writes,
                })
            });
        Ok(SweepArtifact {
            shard_index: 0,
            shard_count: 1,
            matrix: SavingsMatrix { cells },
            stats,
        })
    }
}

// --------------------------------------------------------------------
// The minimal JSON reader (the `RecordedTrace` / `bench_gate` idiom).
// --------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn fail(&self, message: impl Into<String>) -> ArtifactError {
        ArtifactError::Parse {
            message: message.into(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), ArtifactError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.fail(format!("expected `{}`", byte as char)))
        }
    }

    fn expect_end(&mut self) -> Result<(), ArtifactError> {
        if self.peek().is_some() {
            return Err(self.fail("trailing content after artifact"));
        }
        Ok(())
    }

    fn parse_string(&mut self) -> Result<String, ArtifactError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos).copied() {
                None => return Err(self.fail("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos).copied() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .and_then(char::from_u32);
                            match hex {
                                Some(c) => {
                                    out.push(c);
                                    self.pos += 4;
                                }
                                None => return Err(self.fail("bad \\u escape")),
                            }
                        }
                        _ => return Err(self.fail("unknown escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 sequences pass through intact.
                    let start = self.pos;
                    self.pos += 1;
                    while self.bytes.get(self.pos).is_some_and(|b| b & 0xC0 == 0x80) {
                        self.pos += 1;
                    }
                    match std::str::from_utf8(&self.bytes[start..self.pos]) {
                        Ok(s) => out.push_str(s),
                        Err(_) => return Err(self.fail("invalid UTF-8 in string")),
                    }
                }
            }
        }
    }

    /// The raw text of the next number token.
    fn number_token(&mut self) -> Result<&'a str, ArtifactError> {
        self.skip_ws();
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b"+-0123456789.eE".contains(b))
        {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(self.fail("expected a number"));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.fail("invalid number bytes"))
    }

    fn parse_u64(&mut self) -> Result<u64, ArtifactError> {
        let token = self.number_token()?;
        token
            .parse::<u64>()
            .map_err(|_| self.fail(format!("`{token}` is not an unsigned integer")))
    }

    fn parse_usize(&mut self) -> Result<usize, ArtifactError> {
        let token = self.number_token()?;
        token
            .parse::<usize>()
            .map_err(|_| self.fail(format!("`{token}` is not an unsigned integer")))
    }

    fn parse_f64(&mut self) -> Result<f64, ArtifactError> {
        let token = self.number_token()?;
        token
            .parse::<f64>()
            .map_err(|_| self.fail(format!("`{token}` is not a number")))
    }

    /// `[elem, elem, ...]` with `elem` delegated to `item` (which must
    /// consume exactly one element).
    fn parse_array(
        &mut self,
        mut item: impl FnMut(&mut Self) -> Result<(), ArtifactError>,
    ) -> Result<(), ArtifactError> {
        self.expect(b'[')?;
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            item(self)?;
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(self.fail("expected `,` or `]`")),
            }
        }
    }

    /// `null` or `[hp_mram, hp_sram, lp_mram, lp_sram, energy_pj,
    /// task_time_ps]`.
    fn parse_lut_entry(&mut self) -> Result<Option<OptimalPlacement>, ArtifactError> {
        if self.peek() == Some(b'n') {
            let lit = self.bytes.get(self.pos..self.pos + 4);
            if lit != Some(b"null") {
                return Err(self.fail("expected `null` or `[`"));
            }
            self.pos += 4;
            return Ok(None);
        }
        self.expect(b'[')?;
        let mut counts = [0usize; 4];
        for slot in &mut counts {
            *slot = self.parse_usize()?;
            self.expect(b',')?;
        }
        let energy_pj = self.parse_f64()?;
        self.expect(b',')?;
        let task_time_ps = self.parse_u64()?;
        self.expect(b']')?;
        Ok(Some(OptimalPlacement {
            placement: Placement::from_counts(counts),
            energy_per_task: Energy::from_pj(energy_pj),
            task_time: SimDuration::from_ps(task_time_ps),
        }))
    }

    /// `[case_number, "model", vs_baseline, vs_heterogeneous,
    /// vs_hybrid]`.
    fn parse_sweep_cell(&mut self) -> Result<SavingsCell, ArtifactError> {
        self.expect(b'[')?;
        let case = self.parse_usize()?;
        let scenario = *Scenario::ALL
            .get(case.wrapping_sub(1))
            .ok_or_else(|| self.fail(format!("case {case} is out of range 1..=6")))?;
        self.expect(b',')?;
        let name = self.parse_string()?;
        let model = *TinyMlModel::ALL
            .iter()
            .find(|m| m.to_string() == name)
            .ok_or_else(|| self.fail(format!("unknown model `{name}`")))?;
        self.expect(b',')?;
        let vs_baseline = self.parse_f64()?;
        self.expect(b',')?;
        let vs_heterogeneous = self.parse_f64()?;
        self.expect(b',')?;
        let vs_hybrid = self.parse_f64()?;
        self.expect(b']')?;
        Ok(SavingsCell {
            scenario,
            model,
            vs_baseline,
            vs_heterogeneous,
            vs_hybrid,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::Architecture;
    use crate::cost::{CostModel, CostParams, WorkloadProfile};
    use crate::dp::{OptimizerConfig, PlacementOptimizer};
    use crate::runtime::RuntimeConfig;

    fn fixture(buckets: usize) -> (PlacementKey, AllocationLut) {
        let params = CostParams::default();
        let cost = CostModel::new(
            Architecture::HhPim.spec(),
            WorkloadProfile::from_spec(&TinyMlModel::MobileNetV2.spec()),
            params,
        )
        .unwrap();
        let runtime = RuntimeConfig::reference(TinyMlModel::MobileNetV2, params).unwrap();
        let opt = OptimizerConfig {
            time_buckets: buckets,
            ..OptimizerConfig::default()
        };
        let key = PlacementKey::for_lut(&cost, &runtime, &opt);
        let optimizer = PlacementOptimizer::new(&cost, opt);
        let lut = AllocationLut::build(&optimizer, runtime.usable_slice(), runtime.max_tasks);
        (key, lut)
    }

    #[test]
    fn lut_json_round_trips_bit_identical() {
        let (key, lut) = fixture(150);
        let text = lut_to_json(&key, &lut);
        let loaded = lut_from_json(&key, &text).unwrap();
        assert_eq!(lut, loaded);
        // Idempotent: re-serializing the loaded table is byte-stable.
        assert_eq!(text, lut_to_json(&key, &loaded));
    }

    #[test]
    fn version_bump_is_typed() {
        let (key, lut) = fixture(120);
        let text = lut_to_json(&key, &lut).replace("\"version\": 1", "\"version\": 99");
        let err = lut_from_json(&key, &text).unwrap_err();
        assert_eq!(
            err,
            ArtifactError::Version {
                found: 99,
                supported: ARTIFACT_FORMAT_VERSION
            }
        );
    }

    #[test]
    fn truncation_is_a_parse_error_with_offset() {
        let (key, lut) = fixture(120);
        let text = lut_to_json(&key, &lut);
        let cut = &text[..text.len() / 2];
        match lut_from_json(&key, cut).unwrap_err() {
            ArtifactError::Parse { offset, .. } => assert!(offset <= cut.len()),
            other => panic!("expected Parse, got {other:?}"),
        }
    }

    #[test]
    fn value_corruption_is_a_checksum_error() {
        let (key, lut) = fixture(120);
        let text = lut_to_json(&key, &lut);
        // Flip one digit of the first t_constraint — still parses,
        // but the payload no longer hashes to the recorded checksum.
        let marker = "\"t_constraints_ps\": [";
        let at = text.find(marker).unwrap() + marker.len();
        let mut doctored = text.clone();
        let original = doctored.as_bytes()[at];
        let flipped = if original == b'9' { b'8' } else { original + 1 };
        // SAFETY-free byte swap via String rebuild.
        doctored.replace_range(at..at + 1, std::str::from_utf8(&[flipped]).unwrap());
        assert!(matches!(
            lut_from_json(&key, &doctored).unwrap_err(),
            ArtifactError::Checksum { .. }
        ));
    }

    #[test]
    fn foreign_key_is_a_key_mismatch() {
        let (key, lut) = fixture(120);
        let (other_key, _) = fixture(130);
        let text = lut_to_json(&key, &lut);
        assert!(matches!(
            lut_from_json(&other_key, &text).unwrap_err(),
            ArtifactError::KeyMismatch { .. }
        ));
    }

    #[test]
    fn sweep_artifact_round_trips_and_merges() {
        let cell = |case: usize, b: f64| SavingsCell {
            scenario: Scenario::ALL[case - 1],
            model: TinyMlModel::MobileNetV2,
            vs_baseline: b,
            vs_heterogeneous: b / 2.0,
            vs_hybrid: b / 3.0,
        };
        let a = SweepArtifact::new(
            0,
            2,
            SavingsMatrix {
                cells: vec![cell(1, 10.0)],
            },
        );
        let b = SweepArtifact::new(
            1,
            2,
            SavingsMatrix {
                cells: vec![cell(2, 20.0)],
            },
        );
        let reloaded = SweepArtifact::from_json(&a.to_json()).unwrap();
        assert_eq!(a, reloaded);
        // Merge accepts any order and reassembles shard order.
        let merged = SweepArtifact::merge(&[b.clone(), a.clone()]).unwrap();
        assert_eq!(merged.matrix.cells.len(), 2);
        assert_eq!(merged.matrix.cells[0], cell(1, 10.0));
        assert_eq!((merged.shard_index, merged.shard_count), (0, 1));
        // Incomplete and duplicated covers are typed errors.
        assert!(matches!(
            SweepArtifact::merge(std::slice::from_ref(&a)).unwrap_err(),
            ArtifactError::Shard { .. }
        ));
        assert!(matches!(
            SweepArtifact::merge(&[a.clone(), a]).unwrap_err(),
            ArtifactError::Shard { .. }
        ));
    }

    #[test]
    fn store_paths_are_stable_and_keyed() {
        let (key, _) = fixture(120);
        let store = ArtifactStore::new("/tmp/somewhere");
        let path = store.lut_path(&key);
        assert_eq!(path, store.lut_path(&key), "same key, same path");
        let (other, _) = fixture(130);
        assert_ne!(
            path,
            store.lut_path(&other),
            "distinct keys, distinct files"
        );
        assert!(path.to_string_lossy().ends_with(".json"));
    }

    #[test]
    fn errors_display_their_facts() {
        let cases: Vec<ArtifactError> = vec![
            ArtifactError::Version {
                found: 9,
                supported: 1,
            },
            ArtifactError::Parse {
                message: "boom".into(),
                offset: 42,
            },
            ArtifactError::Checksum {
                expected: 1,
                found: 2,
            },
            ArtifactError::KeyMismatch {
                expected: "a".into(),
                found: "b".into(),
            },
            ArtifactError::Io {
                path: "p".into(),
                message: "m".into(),
            },
            ArtifactError::Shard {
                message: "gap".into(),
            },
        ];
        for e in cases {
            assert!(!e.to_string().is_empty());
        }
    }
}
