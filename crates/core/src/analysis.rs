//! Fig. 6 analysis: placement and energy across `t_constraint`.
//!
//! Sweeps the per-task deadline over a time slice, recording the
//! optimizer's placement, normalized task energy and memory-utilization
//! split — the data behind Fig. 6 — plus the paper's two marked points:
//! the **peak-performance point** (green; SRAM 16:9 split) and the
//! **MRAM-only peak** (purple; how fast the machine runs when weights
//! may only live in MRAM, as in prior H-PIMs).

use crate::cost::CostModel;
use crate::dp::{OptimizerConfig, PlacementOptimizer};
use crate::space::{Placement, StorageSpace};
use hhpim_mem::Energy;
use hhpim_sim::SimDuration;

/// One sweep sample.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// The deadline swept.
    pub t_constraint: SimDuration,
    /// The optimal placement, or `None` in the infeasible gray region.
    pub placement: Option<Placement>,
    /// Per-task energy (objective), normalized to the peak point.
    pub e_task_norm: f64,
    /// Memory utilization split in percent `[HpMram, HpSram, LpMram, LpSram]`.
    pub utilization: [f64; 4],
}

/// The full Fig. 6 dataset.
#[derive(Debug, Clone)]
pub struct PlacementSweep {
    /// Sweep samples in increasing `t_constraint` order.
    pub points: Vec<SweepPoint>,
    /// Peak-performance deadline (green dot).
    pub peak_time: SimDuration,
    /// Peak-point placement (the 16:9 SRAM split).
    pub peak_placement: Placement,
    /// Per-task energy at the peak (the normalization reference).
    pub peak_energy: Energy,
    /// MRAM-only peak deadline (purple dot).
    pub mram_only_peak_time: SimDuration,
}

/// The MRAM-only fastest placement (prior H-PIM behaviour): weights
/// balanced across HP-MRAM and LP-MRAM only.
pub fn mram_only_fastest(cost: &CostModel) -> Option<Placement> {
    let k = cost.k_groups();
    let hp_cap = cost.capacity_groups(StorageSpace::HpMram);
    let lp_cap = cost.capacity_groups(StorageSpace::LpMram);
    if hp_cap + lp_cap < k {
        return None;
    }
    let t_hp = cost.time_per_group(StorageSpace::HpMram).as_ns_f64();
    let t_lp = cost.time_per_group(StorageSpace::LpMram).as_ns_f64();
    let mut placement = Placement::empty();
    if lp_cap == 0 || t_lp <= 0.0 {
        placement.set(StorageSpace::HpMram, k);
        return Some(placement);
    }
    let k_hp = ((k as f64) * (1.0 / t_hp) / (1.0 / t_hp + 1.0 / t_lp)).round() as usize;
    let k_hp = k_hp.min(k).min(hp_cap);
    placement.set(StorageSpace::HpMram, k_hp);
    placement.set(StorageSpace::LpMram, (k - k_hp).min(lp_cap));
    if placement.total() < k {
        // Spill the remainder into whichever MRAM still has room.
        let spill = k - placement.total();
        let hp_room = hp_cap - placement.get(StorageSpace::HpMram);
        let to_hp = spill.min(hp_room);
        placement.set(
            StorageSpace::HpMram,
            placement.get(StorageSpace::HpMram) + to_hp,
        );
        placement.set(
            StorageSpace::LpMram,
            placement.get(StorageSpace::LpMram) + spill - to_hp,
        );
    }
    Some(placement)
}

/// Sweeps `t_constraint` from below the feasibility edge to `max_t`,
/// producing the Fig. 6 dataset.
///
/// # Panics
///
/// Panics if `samples < 2`.
pub fn placement_sweep(
    cost: &CostModel,
    opt_config: OptimizerConfig,
    max_t: SimDuration,
    samples: usize,
) -> PlacementSweep {
    assert!(samples >= 2, "sweep needs at least two samples");
    let optimizer = PlacementOptimizer::new(cost, opt_config);
    let peak_placement = cost.fastest_placement();
    let peak_time = cost.task_time(&peak_placement);
    let peak_energy = optimizer.objective(&peak_placement, peak_time);
    let mram_only_peak_time = mram_only_fastest(cost)
        .map(|p| cost.task_time(&p))
        .unwrap_or(peak_time);

    // Start the sweep below the peak so the gray region is visible.
    let start = peak_time.mul_f64(0.7);
    let span = max_t.saturating_sub(start);
    let points = (0..samples)
        .map(|i| {
            let t = start + span.mul_f64(i as f64 / (samples - 1) as f64);
            match optimizer.optimize(t) {
                Some(opt) => SweepPoint {
                    t_constraint: t,
                    utilization: opt.placement.utilization_pct(),
                    e_task_norm: opt.energy_per_task.as_pj() / peak_energy.as_pj(),
                    placement: Some(opt.placement),
                },
                None => SweepPoint {
                    t_constraint: t,
                    placement: None,
                    e_task_norm: f64::NAN,
                    utilization: [0.0; 4],
                },
            }
        })
        .collect();
    PlacementSweep {
        points,
        peak_time,
        peak_placement,
        peak_energy,
        mram_only_peak_time,
    }
}

impl PlacementSweep {
    /// Feasible points only.
    pub fn feasible(&self) -> impl Iterator<Item = &SweepPoint> {
        self.points.iter().filter(|p| p.placement.is_some())
    }

    /// The energy reduction (in percent) of the optimizer's placement
    /// versus *unoptimized* allocation (holding the peak placement) at
    /// the most relaxed deadline — the paper's 43.17 % claim.
    pub fn relaxed_reduction_vs_unoptimized(
        &self,
        cost: &CostModel,
        opt_config: OptimizerConfig,
    ) -> f64 {
        let optimizer = PlacementOptimizer::new(cost, opt_config);
        let Some(last) = self.feasible().last() else {
            return 0.0;
        };
        let t = last.t_constraint;
        let optimized = optimizer
            .optimize(t)
            .map(|o| o.energy_per_task.as_pj())
            .unwrap_or(f64::NAN);
        let unoptimized = optimizer.objective(&self.peak_placement, t).as_pj();
        (1.0 - optimized / unoptimized) * 100.0
    }
}

/// Inference-time summary for one model (§IV-B's measured latencies).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InferenceTimes {
    /// Peak-performance inference time (green dot; SRAM-mixed weights).
    pub peak: SimDuration,
    /// MRAM-only inference time (purple dot; H-PIM-style weights).
    pub mram_only: SimDuration,
}

/// Computes both marked inference times for a cost model.
pub fn inference_times(cost: &CostModel) -> InferenceTimes {
    let peak = cost.peak_task_time();
    let mram_only = mram_only_fastest(cost)
        .map(|p| cost.task_time(&p))
        .unwrap_or(peak);
    InferenceTimes { peak, mram_only }
}

/// Utilization of each cluster at the peak: the paper highlights the
/// 16:9 HP-SRAM : LP-SRAM split.
pub fn peak_sram_split(cost: &CostModel) -> (usize, usize) {
    let p = cost.fastest_placement();
    (p.get(StorageSpace::HpSram), p.get(StorageSpace::LpSram))
}

/// Checks whether the placement progression over the sweep follows the
/// paper's narrative: SRAM-heavy at tight deadlines, ending in LP-MRAM
/// (with the HP cluster idle) at relaxed deadlines.
pub fn progression_summary(sweep: &PlacementSweep) -> Vec<(SimDuration, Placement)> {
    let mut out: Vec<(SimDuration, Placement)> = Vec::new();
    for p in sweep.feasible() {
        let placement = p.placement.expect("feasible point has placement");
        if out
            .last()
            .map(|(_, prev)| *prev != placement)
            .unwrap_or(true)
        {
            out.push((p.t_constraint, placement));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::Architecture;
    use crate::cost::{CostParams, WorkloadProfile};
    use hhpim_nn::TinyMlModel;

    fn cost() -> CostModel {
        CostModel::new(
            Architecture::HhPim.spec(),
            WorkloadProfile::from_spec(&TinyMlModel::EfficientNetB0.spec()),
            CostParams::default(),
        )
        .unwrap()
    }

    fn sweep() -> (CostModel, PlacementSweep) {
        let c = cost();
        let cfg = OptimizerConfig {
            time_buckets: 600,
            ..OptimizerConfig::default()
        };
        let s = placement_sweep(&c, cfg, SimDuration::from_ms(340), 40);
        (c, s)
    }

    #[test]
    fn gray_region_exists_below_peak() {
        let (_, s) = sweep();
        assert!(
            s.points.first().unwrap().placement.is_none(),
            "sweep starts infeasible"
        );
        assert!(s.feasible().count() > 20, "most of the sweep is feasible");
    }

    #[test]
    fn energy_normalized_to_peak_and_decreasing() {
        let (_, s) = sweep();
        let feasible: Vec<&SweepPoint> = s.feasible().collect();
        let first = feasible.first().unwrap();
        assert!(
            (first.e_task_norm - 1.0).abs() < 0.1,
            "first feasible ≈ peak: {}",
            first.e_task_norm
        );
        let last = feasible.last().unwrap();
        assert!(
            last.e_task_norm < 0.85,
            "relaxed deadline must be cheaper: {}",
            last.e_task_norm
        );
        // Macro-shape: overall decline with plateaus. Between placement
        // switches the per-window SRAM retention term may rise locally
        // (see EXPERIMENTS.md), but never dramatically.
        for w in feasible.windows(2) {
            assert!(
                w[1].e_task_norm <= w[0].e_task_norm * 1.25,
                "energy must not jump along the sweep: {} -> {}",
                w[0].e_task_norm,
                w[1].e_task_norm
            );
        }
        // The relaxed LP-MRAM plateau undercuts the peak by a wide
        // margin (the paper's most-efficient region), even though the
        // envelope passes through an LP-SRAM valley at mid deadlines
        // (documented model deviation — see EXPERIMENTS.md).
        let max_last = feasible[3 * feasible.len() / 4..]
            .iter()
            .map(|p| p.e_task_norm)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(
            max_last < 0.85,
            "relaxed plateau must stay below peak: {max_last}"
        );
    }

    #[test]
    fn endpoints_match_paper_narrative() {
        let (c, s) = sweep();
        // Peak: SRAM split ≈ 16:9.
        let (hp, lp) = peak_sram_split(&c);
        assert!(hp > lp);
        // Most relaxed: everything in LP-MRAM.
        let last = s.feasible().last().unwrap().placement.unwrap();
        assert_eq!(
            last.get(StorageSpace::LpMram),
            c.k_groups(),
            "last point {last}"
        );
    }

    #[test]
    fn mram_only_peak_slower_than_sram_peak() {
        let (c, s) = sweep();
        assert!(s.mram_only_peak_time > s.peak_time);
        let times = inference_times(&c);
        // Paper: 31.06 ms vs 44.5 ms for EfficientNet-B0 — we match the
        // green dot by calibration and the purple must be >10 % slower.
        assert!((times.peak.as_ms_f64() - 31.06).abs() < 2.0);
        assert!(times.mram_only.as_ms_f64() / times.peak.as_ms_f64() > 1.1);
    }

    #[test]
    fn relaxed_reduction_is_substantial() {
        let (c, s) = sweep();
        let cfg = OptimizerConfig {
            time_buckets: 600,
            ..OptimizerConfig::default()
        };
        let red = s.relaxed_reduction_vs_unoptimized(&c, cfg);
        // Paper reports up to 43.17 %; the shape requirement is a large
        // double-digit reduction.
        assert!(red > 20.0, "reduction {red:.2}% too small");
        assert!(red < 90.0, "reduction {red:.2}% implausibly large");
    }

    #[test]
    fn progression_moves_toward_lp_mram() {
        let (c, s) = sweep();
        let prog = progression_summary(&s);
        assert!(
            prog.len() >= 3,
            "expect several distinct placements, got {}",
            prog.len()
        );
        let first = prog.first().unwrap().1;
        let last = prog.last().unwrap().1;
        let sram = |p: &Placement| p.get(StorageSpace::HpSram) + p.get(StorageSpace::LpSram);
        assert!(sram(&first) > sram(&last));
        assert_eq!(last.get(StorageSpace::LpMram), c.k_groups());
    }

    #[test]
    fn mram_only_respects_capacity() {
        let c = CostModel::new(
            Architecture::HhPim.spec(),
            WorkloadProfile::from_spec(&TinyMlModel::ResNet18.spec()),
            CostParams::default(),
        )
        .unwrap();
        let p = mram_only_fastest(&c).expect("resnet fits in MRAM");
        assert_eq!(p.total(), c.k_groups());
        assert!(p.get(StorageSpace::HpSram) == 0 && p.get(StorageSpace::LpSram) == 0);
        assert!(c.is_valid(&p));
        // Baseline has no MRAM at all.
        let b = CostModel::new(
            Architecture::Baseline.spec(),
            WorkloadProfile::from_spec(&TinyMlModel::ResNet18.spec()),
            CostParams::default(),
        )
        .unwrap();
        assert!(mram_only_fastest(&b).is_none());
    }
}
