//! The time-slice runtime: per-slice placement decisions, movement
//! overhead, and slice-level energy accounting under each
//! architecture's gating policy.
//!
//! Semantics follow §III of the paper: tasks buffered during slice
//! `s` are processed in slice `s+1`; the task count fixes
//! `t_constraint`; HH-PIM consults its allocation LUT and pays the data
//! movement needed to transition placements; leakage accrues according
//! to what can(not) be power-gated.

use crate::arch::{ArchSpec, Architecture, GatingPolicy};
use crate::backend::{
    BackendKind, EnergyCat, ExecutionReport, LayerRecord, MigrationRecord, SliceRecord,
};
use crate::cost::{CostModel, CostModelError, CostParams, WorkloadProfile};
use crate::dp::OptimizerConfig;
use crate::engine::{AnalyticRun, ReplacementDecision, SliceOutcome};
use crate::policy::{default_policy, FixedHome, PlacementPolicy};
use crate::space::{movement_legs, MovementLeg, Placement, StorageSpace};
use crate::store::PlacementStore;
use hhpim_mem::{ClusterClass, Energy, MemKind, Power};
use hhpim_nn::TinyMlModel;
use hhpim_sim::{SimDuration, SimTime};
use hhpim_workload::LoadTrace;

/// One memoized slice evaluation, keyed by `(from, n_tasks)`: the
/// target placement (pure in `n_tasks`), the movement plan and its
/// cost, the record template (per-slice `slice` patched on replay),
/// the slice's ledger additions in emission order, and the per-task
/// dynamic energy — everything a steady-state [`Processor::step_run`]
/// needs without re-deriving the cost model.
#[derive(Debug, Clone)]
pub(crate) struct StepMemo {
    pub(crate) from: Placement,
    pub(crate) n_tasks: u32,
    pub(crate) to: Placement,
    pub(crate) movement_time: SimDuration,
    pub(crate) movement_energy: Energy,
    pub(crate) groups_moved: usize,
    pub(crate) bytes_moved: usize,
    pub(crate) legs: Vec<MovementLeg>,
    pub(crate) adds: Vec<(EnergyCat, Energy)>,
    /// Ledger slot per `adds` entry, valid while `ledger_len` matches
    /// the run ledger's length (categories are insert-only, so an
    /// unchanged length means no slot has shifted).
    pub(crate) slots: Vec<usize>,
    /// Ledger length `slots` was resolved against (`usize::MAX` until
    /// first resolved).
    pub(crate) ledger_len: usize,
    pub(crate) record: SliceRecord,
    pub(crate) idle: SimDuration,
    pub(crate) dynamic_per_task: Energy,
}

/// Runtime configuration shared by all architectures in a comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RuntimeConfig {
    /// Time-slice duration `T`.
    pub slice_duration: SimDuration,
    /// Maximum inferences per slice (paper: 10).
    pub max_tasks: u32,
    /// Total controller leakage (both controllers).
    pub controller_static: Power,
    /// Fraction of the slice reserved for movement when sizing the LUT.
    pub movement_margin: f64,
}

impl RuntimeConfig {
    /// The shared runtime configuration for `model` under `params`.
    ///
    /// Slice timing always derives from the *HH-PIM* peak for the same
    /// model (`T = 1.08 × max_tasks × peak`), so all four architectures
    /// — and all execution backends — share identical slices, as in the
    /// paper. The headroom factor covers re-placement movement and DP
    /// discretization so the peak load remains schedulable.
    ///
    /// # Errors
    ///
    /// Fails if the model's weights do not fit HH-PIM.
    pub fn reference(model: TinyMlModel, params: CostParams) -> Result<Self, CostModelError> {
        let profile = WorkloadProfile::from_spec(&model.spec());
        let reference = CostModel::new(Architecture::HhPim.spec(), profile, params)?;
        let slice_duration =
            (reference.peak_task_time() * params.max_tasks_per_slice as u64).mul_f64(1.08);
        Ok(RuntimeConfig {
            slice_duration,
            max_tasks: params.max_tasks_per_slice,
            controller_static: Power::from_mw(0.7),
            movement_margin: 0.05,
        })
    }

    /// The slice share available to tasks after the movement margin —
    /// the budget every placement policy (and the allocation LUT) is
    /// sized against.
    pub fn usable_slice(&self) -> SimDuration {
        self.slice_duration.mul_f64(1.0 - self.movement_margin)
    }
}

/// A PIM processor model: one of the Table I architectures bound to a
/// Table IV workload, ready to execute load traces.
///
/// # Examples
///
/// ```
/// use hhpim::{Architecture, Processor};
/// use hhpim_nn::TinyMlModel;
/// use hhpim_workload::{LoadTrace, Scenario, ScenarioParams};
///
/// let hh = Processor::new(Architecture::HhPim, TinyMlModel::EfficientNetB0).unwrap();
/// let base = Processor::new(Architecture::Baseline, TinyMlModel::EfficientNetB0).unwrap();
/// let trace = LoadTrace::generate(Scenario::LowConstant, ScenarioParams::default());
/// let e_hh = hh.run_trace(&trace).total_energy();
/// let e_base = base.run_trace(&trace).total_energy();
/// assert!(e_hh < e_base, "HH-PIM saves energy at low load");
/// ```
#[derive(Debug, Clone)]
pub struct Processor {
    arch: ArchSpec,
    cost: CostModel,
    runtime: RuntimeConfig,
    opt_config: OptimizerConfig,
    policy: Box<dyn PlacementPolicy>,
    /// Per-PIM-layer `(model index, label, MAC share)` of the built
    /// model, used to apportion the closed-form report layer-by-layer.
    layer_shares: Vec<(usize, String, f64)>,
}

impl Processor {
    /// Builds a processor with default calibration.
    ///
    /// # Errors
    ///
    /// Fails if the model's weights do not fit the architecture.
    pub fn new(arch: Architecture, model: TinyMlModel) -> Result<Self, CostModelError> {
        Self::with_params(
            arch,
            model,
            CostParams::default(),
            OptimizerConfig::default(),
        )
    }

    /// Builds a processor with explicit calibration knobs.
    ///
    /// The slice duration is always derived from the *HH-PIM* peak for
    /// the same model (`T = max_tasks × peak`), so all four
    /// architectures share identical slices, as in the paper.
    ///
    /// # Errors
    ///
    /// Fails if the model's weights do not fit the architecture.
    pub fn with_params(
        arch: Architecture,
        model: TinyMlModel,
        params: CostParams,
        opt_config: OptimizerConfig,
    ) -> Result<Self, CostModelError> {
        Self::with_policy(arch, model, params, opt_config, default_policy(arch))
    }

    /// Builds a processor that never re-places: the allocation LUT is
    /// skipped entirely (its DP solves are the expensive part of
    /// construction) and [`Processor::placement_for_tasks`] always
    /// answers the architecture's fixed placement. For pinned-placement
    /// comparison points such as
    /// [`crate::CycleBackend::with_fixed_placement`].
    ///
    /// # Errors
    ///
    /// Fails if the model's weights do not fit the architecture.
    pub fn new_static(arch: Architecture, model: TinyMlModel) -> Result<Self, CostModelError> {
        Self::with_policy(
            arch,
            model,
            CostParams::default(),
            OptimizerConfig::default(),
            Box::new(FixedHome::arch_default()),
        )
    }

    /// Builds a processor with an explicit [`PlacementPolicy`]: the
    /// policy is prepared against this processor's cost model and then
    /// answers every per-slice placement query.
    ///
    /// Prepared state (the allocation LUT above all) comes from the
    /// process-local [`PlacementStore`], so repeated constructions of
    /// the same configuration pay the DP once; use
    /// [`Processor::with_policy_in`] to share (or isolate) an explicit
    /// store instead.
    ///
    /// # Errors
    ///
    /// Fails if the model's weights do not fit the architecture or the
    /// policy rejects its configuration (e.g. an invalid pinned
    /// placement).
    pub fn with_policy(
        arch: Architecture,
        model: TinyMlModel,
        params: CostParams,
        opt_config: OptimizerConfig,
        policy: Box<dyn PlacementPolicy>,
    ) -> Result<Self, CostModelError> {
        Self::with_policy_in(
            arch,
            model,
            params,
            opt_config,
            policy,
            &PlacementStore::global(),
        )
    }

    /// [`Processor::with_policy`] with an explicit [`PlacementStore`]
    /// supplying (and memoizing) the policy's prepared state — the
    /// constructor [`crate::session::SessionBuilder`] and
    /// [`crate::session::Session::sweep`] thread their shared store
    /// through.
    ///
    /// # Errors
    ///
    /// See [`Processor::with_policy`].
    pub fn with_policy_in(
        arch: Architecture,
        model: TinyMlModel,
        params: CostParams,
        opt_config: OptimizerConfig,
        mut policy: Box<dyn PlacementPolicy>,
        store: &PlacementStore,
    ) -> Result<Self, CostModelError> {
        let profile = WorkloadProfile::from_spec(&model.spec());
        let spec = arch.spec();
        let cost = CostModel::new(spec, profile, params)?;
        let runtime = RuntimeConfig::reference(model, params)?;
        policy.prepare(&cost, &runtime, &opt_config, store)?;
        let built = model.build();
        let total_macs: u64 = built
            .layers()
            .iter()
            .filter(|i| i.layer.is_pim_layer())
            .map(|i| i.macs)
            .sum();
        let layer_shares = built
            .layers()
            .iter()
            .enumerate()
            .filter(|(_, i)| i.layer.is_pim_layer())
            .map(|(idx, i)| {
                (
                    idx,
                    i.layer.to_string(),
                    i.macs as f64 / total_macs.max(1) as f64,
                )
            })
            .collect();
        Ok(Processor {
            arch: spec,
            cost,
            runtime,
            opt_config,
            policy,
            layer_shares,
        })
    }

    /// The architecture specification.
    pub fn arch(&self) -> &ArchSpec {
        &self.arch
    }

    /// The underlying cost model.
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// The runtime configuration (slice duration etc.).
    pub fn runtime(&self) -> &RuntimeConfig {
        &self.runtime
    }

    /// The optimizer configuration in use.
    pub fn optimizer_config(&self) -> &OptimizerConfig {
        &self.opt_config
    }

    /// The placement policy answering per-slice queries.
    pub fn policy(&self) -> &dyn PlacementPolicy {
        self.policy.as_ref()
    }

    /// Placement the processor would use for an `n_tasks` slice
    /// (delegated to the bound [`PlacementPolicy`]).
    pub fn placement_for_tasks(&self, n_tasks: u32) -> Placement {
        self.policy.placement_for(&self.cost, n_tasks)
    }

    /// The placement adopted at boot, before the first slice is known.
    pub fn boot_placement(&self) -> Placement {
        self.policy.boot_placement(&self.cost)
    }

    /// Movement cost to transition between placements: groups leaving a
    /// space are read there and written at their destination; the lanes
    /// of the MEM interface move one group per module pair in parallel.
    /// The leg plan is shared with the cycle machine's migration engine
    /// via [`movement_legs`], so both backends move the same traffic.
    pub fn movement_cost(&self, from: &Placement, to: &Placement) -> (SimDuration, Energy, usize) {
        let group = self.cost.params().group_size as f64;
        let scale = self.cost.params().time_scale;
        let lanes = (self.arch.hp_modules + self.arch.lp_modules).max(1) as f64 / 2.0;
        let mut time_ns = 0.0;
        let mut energy_pj = 0.0;
        let mut moved = 0usize;
        for leg in movement_legs(from, to) {
            let src = hhpim_mem::tech_for(leg.src.cluster(), leg.src.kind());
            let dst = hhpim_mem::tech_for(leg.dst.cluster(), leg.dst.kind());
            let per_byte_ns = src.timing.read.as_ns_f64() + dst.timing.write.as_ns_f64();
            let per_byte_pj = src.read_energy().as_pj() + dst.write_energy().as_pj();
            time_ns += leg.groups as f64 * group * per_byte_ns / lanes * scale;
            energy_pj += leg.groups as f64 * group * per_byte_pj * scale;
            moved += leg.groups;
        }
        (
            SimDuration::from_ns_f64(time_ns),
            Energy::from_pj(energy_pj),
            moved,
        )
    }

    /// Evaluates one slice under `placement` with `n_tasks` tasks,
    /// charging `movement` at the boundary. Returns the record and
    /// pushes the slice's energy contributions onto `adds` in ledger
    /// order (the caller replays them into its ledger — and may cache
    /// the list, since the evaluation is a pure function of placement,
    /// task count and movement).
    #[allow(clippy::too_many_arguments)]
    fn evaluate_slice(
        &self,
        slice: usize,
        placement: Placement,
        n_tasks: u32,
        movement_time: SimDuration,
        movement_energy: Energy,
        groups_moved: usize,
        adds: &mut Vec<(EnergyCat, Energy)>,
    ) -> SliceRecord {
        let t = self.runtime.slice_duration;
        let usable = t.saturating_sub(movement_time);
        let t_constraint = if n_tasks > 0 {
            usable / n_tasks as u64
        } else {
            usable
        };
        let task_time = self.cost.task_time(&placement);
        let deadline_met = task_time <= t_constraint;
        let mut slice_energy = Energy::ZERO;
        let mut add = |cat: EnergyCat, e: Energy| {
            adds.push((cat, e));
            slice_energy += e;
        };
        // Weight leakage and traffic report under the space's
        // (cluster, technology) pair of the shared backend vocabulary.
        let mem_dynamic = |s: StorageSpace| EnergyCat::MemDynamic(s.cluster(), s.kind());
        let mem_static = |s: StorageSpace| EnergyCat::MemStatic(s.cluster(), s.kind());

        // Dynamic traffic.
        for (s, n) in placement.occupied() {
            add(
                mem_dynamic(s),
                self.cost.energy_per_group(s) * (n as u64 * n_tasks as u64),
            );
        }
        add(EnergyCat::Movement, movement_energy);

        // Busy time per cluster, capped at the slice.
        let busy = |c: ClusterClass| -> SimDuration {
            let b = self.cost.cluster_time(&placement, c) * n_tasks as u64 + movement_time;
            b.min(t)
        };

        match self.arch.gating {
            GatingPolicy::AlwaysOn => {
                for s in StorageSpace::ALL {
                    if self.arch.has_space(s) {
                        add(mem_static(s), self.cost.full_static_power(s) * t);
                    }
                }
                for c in ClusterClass::ALL {
                    if self.arch.modules_in(c) > 0 {
                        add(EnergyCat::PeStatic(c), self.cost.pe_static_power(c) * t);
                    }
                }
            }
            GatingPolicy::BankLevel => {
                for (s, _) in placement.occupied() {
                    let p = self.cost.weight_static_power(&placement, s);
                    let residency = match s.kind() {
                        // Volatile weights leak for the whole slice.
                        MemKind::Sram => t,
                        // Non-volatile banks gate whenever idle.
                        MemKind::Mram => busy(s.cluster()),
                    };
                    add(mem_static(s), p * residency);
                }
                for c in ClusterClass::ALL {
                    if self.arch.modules_in(c) > 0 {
                        let b = busy(c);
                        // Modules whose SRAM bank is already powered for
                        // weights have their activation region's leakage
                        // accounted there; only the remaining modules'
                        // buffers power up while computing.
                        let sram_space = StorageSpace::of_cluster(c)[1];
                        let weight_banks = self.cost.powered_banks(&placement, sram_space);
                        let free_modules =
                            self.arch.modules_in(c).saturating_sub(weight_banks) as f64;
                        add(
                            EnergyCat::MemStatic(c, MemKind::Sram),
                            (self.cost.act_buffer_static_power_per_module(c) * free_modules) * b,
                        );
                        add(EnergyCat::PeStatic(c), self.cost.pe_static_power(c) * b);
                    }
                }
            }
        }
        add(EnergyCat::Controller, self.runtime.controller_static * t);

        SliceRecord {
            slice,
            n_tasks,
            placement: Some(placement),
            t_constraint,
            task_time,
            movement_time,
            groups_moved,
            deadline_met,
            energy: slice_energy,
        }
    }

    /// Opens a resumable streaming run: the returned state is fed one
    /// slice at a time through [`Processor::step_run`] and closed by
    /// [`Processor::finish_run`]. [`Processor::run_trace`] (and with
    /// it the whole batch facade) is a loop over exactly this path.
    pub(crate) fn begin_run(&self) -> AnalyticRun {
        AnalyticRun::default()
    }

    /// Executes one slice of `n_tasks` incrementally: consults the
    /// placement policy (the LUT lookup on HH-PIM), charges any
    /// movement at the boundary, accounts the slice's energy and
    /// returns the decisions for the engine's event stream. The first
    /// slice's placement is adopted for free, as at boot.
    ///
    /// Policies are pure in `n_tasks` and the whole slice evaluation is
    /// a pure function of `(from, n_tasks)` given `&self`, so both are
    /// memoized on the run: steady-state streaming replays a cached
    /// energy add-list and patches a cached record instead of
    /// re-deriving the cost model — bit-identically, because the cached
    /// values came from the very same computation and the ledger
    /// receives the same additions in the same order.
    pub(crate) fn step_run(&self, run: &mut AnalyticRun, n_tasks: u32) -> SliceOutcome {
        let placement = {
            let idx = n_tasks as usize;
            if idx >= run.placements.len() {
                run.placements.resize(idx + 1, None);
            }
            match run.placements[idx] {
                Some(p) => p,
                None => {
                    let p = self.placement_for_tasks(n_tasks);
                    run.placements[idx] = Some(p);
                    p
                }
            }
        };
        let from = run.prev.unwrap_or(placement);
        let memo_idx = match run
            .steps
            .iter()
            .position(|s| s.from == from && s.n_tasks == n_tasks)
        {
            Some(i) => i,
            None => {
                let (mt, me, moved) = self.movement_cost(&from, &placement);
                let legs = movement_legs(&from, &placement);
                let mut adds = Vec::new();
                let record = self.evaluate_slice(0, placement, n_tasks, mt, me, moved, &mut adds);
                let idle = self
                    .runtime
                    .slice_duration
                    .saturating_sub(mt + record.task_time * n_tasks as u64);
                run.steps.push(StepMemo {
                    from,
                    n_tasks,
                    to: placement,
                    movement_time: mt,
                    movement_energy: me,
                    groups_moved: moved,
                    bytes_moved: moved * self.cost.params().group_size,
                    legs,
                    adds,
                    slots: Vec::new(),
                    ledger_len: usize::MAX,
                    record,
                    idle,
                    dynamic_per_task: self.cost.dynamic_energy_per_task(&placement),
                });
                run.steps.len() - 1
            }
        };
        // Replay the memo's energy additions. The slot fast path skips
        // the per-add category search once every category exists in the
        // ledger; `add_at` performs the identical `+=`, so the fold is
        // bit-for-bit the same either way.
        let memo = &mut run.steps[memo_idx];
        if memo.ledger_len == run.ledger.len() {
            for (&slot, &(_, e)) in memo.slots.iter().zip(&memo.adds) {
                run.ledger.add_at(slot, e);
            }
        } else {
            for &(cat, e) in &memo.adds {
                run.ledger.add(cat, e);
            }
            memo.slots = memo
                .adds
                .iter()
                .map(|(cat, _)| {
                    run.ledger
                        .slot_of(cat)
                        .expect("category inserted by the replay above")
                })
                .collect();
            memo.ledger_len = run.ledger.len();
        }
        let memo = &run.steps[memo_idx];
        let mut record = memo.record.clone();
        record.slice = run.slice;
        let migration = (memo.groups_moved > 0).then_some(MigrationRecord {
            slice: run.slice,
            from,
            to: memo.to,
            groups: memo.groups_moved,
            bytes: memo.bytes_moved,
            time: memo.movement_time,
            energy: memo.movement_energy,
        });
        if let Some(m) = &migration {
            run.migrations.push(m.clone());
        }
        run.task_seconds += record.task_time * n_tasks as u64;
        run.dynamic += memo.dynamic_per_task * n_tasks as u64;
        run.total_tasks += n_tasks as u64;
        run.records.push(record.clone());
        run.prev = Some(memo.to);
        run.slice += 1;
        let replacement = (memo.groups_moved > 0).then(|| ReplacementDecision {
            from,
            to: memo.to,
            legs: memo.legs.clone(),
        });
        let idle = memo.idle;
        SliceOutcome {
            record,
            replacement,
            migration,
            idle,
        }
    }

    /// Closes a streaming run into the unified [`ExecutionReport`].
    pub(crate) fn finish_run(&self, run: AnalyticRun) -> ExecutionReport {
        let layers = self
            .layer_shares
            .iter()
            .map(|(idx, label, share)| LayerRecord {
                layer: *idx,
                label: label.clone(),
                macs: (self.cost.profile().pim_macs as f64 * share * run.total_tasks as f64).round()
                    as u64,
                time: run.task_seconds.mul_f64(*share),
                energy: run.dynamic * *share,
            })
            .collect();
        let deadline_misses = run.records.iter().filter(|r| !r.deadline_met).count();
        ExecutionReport {
            backend: BackendKind::Analytic,
            arch: self.arch.arch,
            elapsed: SimTime::ZERO + self.runtime.slice_duration * run.records.len() as u64,
            records: run.records,
            layers,
            migrations: run.migrations,
            energy: run.ledger,
            deadline_misses,
            instructions: 0,
            macs: self.cost.profile().pim_macs * run.total_tasks,
        }
    }

    /// Runs a full load trace, returning per-slice records and the
    /// energy breakdown as a unified [`ExecutionReport`] — a batch
    /// loop over the resumable `begin_run → step_run → finish_run`
    /// streaming path (bit-identical to the former monolithic loop).
    ///
    /// The closed-form model has no native layer notion; its
    /// [`LayerRecord`]s apportion the per-task latency and dynamic
    /// energy across the model's PIM layers by MAC share, so they
    /// compare layer-by-layer with the cycle backend's measured records.
    pub fn run_trace(&self, trace: &LoadTrace) -> ExecutionReport {
        let mut run = self.begin_run();
        for &n in &trace.task_counts(self.runtime.max_tasks) {
            self.step_run(&mut run, n);
        }
        self.finish_run(run)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hhpim_workload::{Scenario, ScenarioParams};

    fn proc(arch: Architecture) -> Processor {
        Processor::new(arch, TinyMlModel::EfficientNetB0).unwrap()
    }

    fn trace(s: Scenario) -> LoadTrace {
        LoadTrace::generate(s, ScenarioParams::default())
    }

    #[test]
    fn slice_duration_shared_across_architectures() {
        let t: Vec<SimDuration> = Architecture::ALL
            .iter()
            .map(|&a| proc(a).runtime().slice_duration)
            .collect();
        assert!(t.windows(2).all(|w| w[0] == w[1]), "{t:?}");
        // T = 1.08 × 10 × HH peak ≈ 335 ms for EfficientNet-B0.
        assert!((300.0..=360.0).contains(&t[0].as_ms_f64()), "{}", t[0]);
    }

    #[test]
    fn hh_adapts_placement_to_load() {
        let p = proc(Architecture::HhPim);
        let low = p.placement_for_tasks(1);
        let high = p.placement_for_tasks(10);
        assert_ne!(low, high);
        assert!(
            low.get(StorageSpace::LpMram) > 0,
            "low load should use LP-MRAM: {low}"
        );
        let sram = high.get(StorageSpace::HpSram) + high.get(StorageSpace::LpSram);
        assert!(
            sram > high.total() / 2,
            "high load should be SRAM-heavy: {high}"
        );
    }

    #[test]
    fn fixed_architectures_never_move() {
        for arch in [
            Architecture::Baseline,
            Architecture::Heterogeneous,
            Architecture::Hybrid,
        ] {
            let p = proc(arch);
            let report = p.run_trace(&trace(Scenario::Random));
            assert!(report.records.iter().all(|r| r.groups_moved == 0), "{arch}");
            assert_eq!(report.energy.get(EnergyCat::Movement), Energy::ZERO);
        }
    }

    #[test]
    fn hh_moves_on_load_changes() {
        let p = proc(Architecture::HhPim);
        let report = p.run_trace(&trace(Scenario::PeriodicSpike));
        let moved: usize = report.records.iter().map(|r| r.groups_moved).sum();
        assert!(moved > 0, "spiky load must trigger re-placement");
        assert!(report.energy.get(EnergyCat::Movement).as_pj() > 0.0);
    }

    #[test]
    fn deadlines_met_across_scenarios() {
        for scenario in Scenario::ALL {
            let p = proc(Architecture::HhPim);
            let report = p.run_trace(&trace(scenario));
            assert_eq!(report.deadline_misses, 0, "{scenario}");
        }
    }

    #[test]
    fn hh_beats_every_fixed_architecture_on_every_scenario() {
        // The paper's headline: HH-PIM saves energy in all six cases
        // against all three comparison architectures.
        let hh = proc(Architecture::HhPim);
        for scenario in Scenario::ALL {
            let tr = trace(scenario);
            let e_hh = hh.run_trace(&tr).total_energy();
            for other in [
                Architecture::Baseline,
                Architecture::Heterogeneous,
                Architecture::Hybrid,
            ] {
                let e = proc(other).run_trace(&tr).total_energy();
                assert!(e_hh < e, "{scenario}: HH {} not below {other} {}", e_hh, e);
            }
        }
    }

    #[test]
    fn savings_larger_at_low_load_than_high_load() {
        let hh = proc(Architecture::HhPim);
        let base = proc(Architecture::Baseline);
        let saving = |s: Scenario| {
            let tr = trace(s);
            let e_hh = hh.run_trace(&tr).total_energy();
            let e_b = base.run_trace(&tr).total_energy();
            1.0 - e_hh / e_b
        };
        let low = saving(Scenario::LowConstant);
        let high = saving(Scenario::HighConstant);
        assert!(
            low > high,
            "low-load saving {low:.3} should exceed high-load {high:.3}"
        );
        assert!(
            low > 0.5,
            "low-load saving should be substantial, got {low:.3}"
        );
    }

    #[test]
    fn hetero_close_to_hh_at_constant_high_load() {
        // Paper: only 3.72 % savings vs Heterogeneous-PIM in Case 2.
        let hh = proc(Architecture::HhPim);
        let het = proc(Architecture::Heterogeneous);
        let tr = trace(Scenario::HighConstant);
        let e_hh = hh.run_trace(&tr).total_energy();
        let e_het = het.run_trace(&tr).total_energy();
        let saving = 1.0 - e_hh / e_het;
        assert!(
            saving < 0.25,
            "case 2 vs hetero should be small, got {saving:.3}"
        );
        assert!(saving >= 0.0);
    }

    #[test]
    fn movement_cost_symmetry_and_zero() {
        let p = proc(Architecture::HhPim);
        let a = p.placement_for_tasks(1);
        let b = p.placement_for_tasks(10);
        let (t_ab, e_ab, m_ab) = p.movement_cost(&a, &b);
        let (t_zero, e_zero, m_zero) = p.movement_cost(&a, &a);
        assert_eq!(
            (t_zero, e_zero, m_zero),
            (SimDuration::ZERO, Energy::ZERO, 0)
        );
        assert!(m_ab > 0);
        assert!(t_ab > SimDuration::ZERO && e_ab.as_pj() > 0.0);
        // Movement stays well under the slice (the paper requires no
        // inference delay from movement overhead).
        assert!(
            t_ab < p.runtime().slice_duration.mul_f64(0.2),
            "movement {t_ab}"
        );
    }

    #[test]
    fn ledger_records_expected_categories() {
        let p = proc(Architecture::HhPim);
        let report = p.run_trace(&trace(Scenario::HighConstant));
        use hhpim_mem::MemKind::Sram;
        use ClusterClass::HighPerformance;
        assert!(
            report
                .energy
                .get(EnergyCat::MemDynamic(HighPerformance, Sram))
                .as_pj()
                > 0.0
        );
        assert!(report.energy.get(EnergyCat::Controller).as_pj() > 0.0);
        assert!(
            report
                .energy
                .get(EnergyCat::PeStatic(HighPerformance))
                .as_pj()
                > 0.0
        );
        // Baseline never gates: full static including unused spaces it has.
        let b = proc(Architecture::Baseline).run_trace(&trace(Scenario::LowConstant));
        assert!(
            b.energy
                .get(EnergyCat::MemStatic(HighPerformance, Sram))
                .as_pj()
                > 0.0
        );
    }
}
