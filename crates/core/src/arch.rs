//! Architecture presets: the four PIM processors of Table I.
//!
//! | Architecture      | Modules          | Memory per module        |
//! |-------------------|------------------|--------------------------|
//! | Baseline-PIM      | 8 HP             | 128 kB SRAM              |
//! | Heterogeneous-PIM | 4 HP + 4 LP      | 128 kB SRAM              |
//! | Hybrid-PIM        | 8 HP             | 64 kB MRAM + 64 kB SRAM  |
//! | HH-PIM            | 4 HP + 4 LP      | 64 kB MRAM + 64 kB SRAM  |
//!
//! Each preset also fixes the *power-gating* and *placement* policies
//! that distinguish the designs: the conventional Baseline never gates,
//! the others gate idle/empty banks; only HH-PIM re-places weights
//! dynamically.

use crate::space::StorageSpace;
use core::fmt;
use hhpim_mem::ClusterClass;

/// Power-gating capability of an architecture.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[non_exhaustive]
pub enum GatingPolicy {
    /// Conventional PIM: every memory and PE stays powered for the whole
    /// run (the "continuous power demands" the paper's intro attributes
    /// to traditional designs).
    AlwaysOn,
    /// Banks with no live data may be gated at any time; non-volatile
    /// (MRAM) banks are additionally gated whenever idle; PEs gate when
    /// their cluster has no work. SRAM holding weights must stay on.
    BankLevel,
}

/// How an architecture places weights across storage spaces — the
/// Table I default that [`crate::session::SessionBuilder`] maps onto a
/// concrete [`crate::PlacementPolicy`] implementation unless the caller
/// selects one explicitly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[non_exhaustive]
pub enum PlacementMode {
    /// A placement fixed at initialization (conventional designs).
    Static,
    /// The paper's dynamic programming LUT, consulted every time slice.
    DynamicDp,
}

/// One of the four evaluated architectures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Architecture {
    /// Baseline-PIM: 8 HP modules, SRAM only, no gating.
    Baseline,
    /// Heterogeneous-PIM: 4 HP + 4 LP modules, SRAM only.
    Heterogeneous,
    /// Hybrid-PIM (H-PIM): 8 HP modules, MRAM weights + SRAM buffer.
    Hybrid,
    /// The paper's HH-PIM: 4 HP + 4 LP, hybrid memory, DP placement.
    HhPim,
}

impl Architecture {
    /// All four architectures in Table I order.
    pub const ALL: [Architecture; 4] = [
        Architecture::Baseline,
        Architecture::Heterogeneous,
        Architecture::Hybrid,
        Architecture::HhPim,
    ];

    /// The specification of this architecture (Table I row).
    pub fn spec(self) -> ArchSpec {
        match self {
            Architecture::Baseline => ArchSpec {
                arch: self,
                name: "Baseline-PIM",
                hp_modules: 8,
                lp_modules: 0,
                mram_per_module: 0,
                sram_per_module: 128 * 1024,
                gating: GatingPolicy::AlwaysOn,
                placement: PlacementMode::Static,
            },
            Architecture::Heterogeneous => ArchSpec {
                arch: self,
                name: "Heterogeneous-PIM",
                hp_modules: 4,
                lp_modules: 4,
                mram_per_module: 0,
                sram_per_module: 128 * 1024,
                gating: GatingPolicy::BankLevel,
                placement: PlacementMode::Static,
            },
            Architecture::Hybrid => ArchSpec {
                arch: self,
                name: "Hybrid-PIM",
                hp_modules: 8,
                lp_modules: 0,
                mram_per_module: 64 * 1024,
                sram_per_module: 64 * 1024,
                gating: GatingPolicy::BankLevel,
                placement: PlacementMode::Static,
            },
            Architecture::HhPim => ArchSpec {
                arch: self,
                name: "HH-PIM",
                hp_modules: 4,
                lp_modules: 4,
                mram_per_module: 64 * 1024,
                sram_per_module: 64 * 1024,
                gating: GatingPolicy::BankLevel,
                placement: PlacementMode::DynamicDp,
            },
        }
    }
}

impl fmt::Display for Architecture {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.spec().name)
    }
}

/// A fully resolved architecture description (Table I row + policies).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArchSpec {
    /// Which architecture this describes.
    pub arch: Architecture,
    /// Paper name.
    pub name: &'static str,
    /// HP-PIM module count.
    pub hp_modules: usize,
    /// LP-PIM module count.
    pub lp_modules: usize,
    /// MRAM bytes per module (0 = no MRAM).
    pub mram_per_module: usize,
    /// SRAM bytes per module.
    pub sram_per_module: usize,
    /// Gating capability.
    pub gating: GatingPolicy,
    /// Placement policy.
    pub placement: PlacementMode,
}

impl ArchSpec {
    /// Modules in `cluster`.
    pub fn modules_in(&self, cluster: ClusterClass) -> usize {
        match cluster {
            ClusterClass::HighPerformance => self.hp_modules,
            ClusterClass::LowPower => self.lp_modules,
        }
    }

    /// Total capacity of a storage space in bytes, across all modules of
    /// its cluster (0 when the space does not exist in this design).
    pub fn capacity_bytes(&self, space: StorageSpace) -> usize {
        let modules = self.modules_in(space.cluster());
        let per_module = match space.kind() {
            hhpim_mem::MemKind::Mram => self.mram_per_module,
            hhpim_mem::MemKind::Sram => self.sram_per_module,
        };
        modules * per_module
    }

    /// Whether the space exists (non-zero capacity).
    pub fn has_space(&self, space: StorageSpace) -> bool {
        self.capacity_bytes(space) > 0
    }

    /// Total weight-capable memory in bytes.
    pub fn total_capacity(&self) -> usize {
        StorageSpace::ALL
            .iter()
            .map(|&s| self.capacity_bytes(s))
            .sum()
    }
}

impl fmt::Display for ArchSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} HP + {} LP, {} kB MRAM + {} kB SRAM per module",
            self.name,
            self.hp_modules,
            self.lp_modules,
            self.mram_per_module / 1024,
            self.sram_per_module / 1024
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_i_shapes() {
        let b = Architecture::Baseline.spec();
        assert_eq!((b.hp_modules, b.lp_modules), (8, 0));
        assert_eq!(b.sram_per_module, 128 * 1024);
        assert_eq!(b.mram_per_module, 0);

        let het = Architecture::Heterogeneous.spec();
        assert_eq!((het.hp_modules, het.lp_modules), (4, 4));
        assert_eq!(het.sram_per_module, 128 * 1024);

        let hy = Architecture::Hybrid.spec();
        assert_eq!((hy.hp_modules, hy.lp_modules), (8, 0));
        assert_eq!(hy.mram_per_module, 64 * 1024);
        assert_eq!(hy.sram_per_module, 64 * 1024);

        let hh = Architecture::HhPim.spec();
        assert_eq!((hh.hp_modules, hh.lp_modules), (4, 4));
        assert_eq!(hh.mram_per_module, 64 * 1024);
    }

    #[test]
    fn every_arch_has_one_megabyte_total() {
        // All four designs carry the same 1 MB of total memory — the
        // comparison is iso-capacity (Table I).
        for a in Architecture::ALL {
            assert_eq!(a.spec().total_capacity(), 1024 * 1024, "{a}");
        }
    }

    #[test]
    fn capacity_by_space() {
        let hh = Architecture::HhPim.spec();
        assert_eq!(hh.capacity_bytes(StorageSpace::HpMram), 4 * 64 * 1024);
        assert_eq!(hh.capacity_bytes(StorageSpace::LpSram), 4 * 64 * 1024);
        let b = Architecture::Baseline.spec();
        assert_eq!(b.capacity_bytes(StorageSpace::HpSram), 8 * 128 * 1024);
        assert!(!b.has_space(StorageSpace::HpMram));
        assert!(!b.has_space(StorageSpace::LpSram));
    }

    #[test]
    fn policies_distinguish_designs() {
        assert_eq!(Architecture::Baseline.spec().gating, GatingPolicy::AlwaysOn);
        assert_eq!(Architecture::Hybrid.spec().gating, GatingPolicy::BankLevel);
        assert_eq!(
            Architecture::HhPim.spec().placement,
            PlacementMode::DynamicDp
        );
        assert_eq!(Architecture::Hybrid.spec().placement, PlacementMode::Static);
    }

    #[test]
    fn display() {
        assert_eq!(Architecture::HhPim.to_string(), "HH-PIM");
        assert!(Architecture::Baseline
            .spec()
            .to_string()
            .contains("8 HP + 0 LP"));
    }
}
