//! Fig. 5 / Table VI experiment *artifacts*: the savings matrix HH-PIM
//! achieves over the comparison architectures across workload
//! scenarios and models.
//!
//! The matrix is produced by [`crate::session::Session::sweep`]; the
//! free functions in this module are deprecated shims kept for the old
//! call sites. The shims delegate to the builder, which draws its LUTs
//! from the process-local [`crate::PlacementStore`] — repeated shim
//! calls with the same configuration pay the placement DP once per
//! process, yet stay bit-identical to the builder path (regression
//! tested).

use crate::arch::Architecture;
use crate::backend::ExecutionReport;
use crate::cost::{CostModelError, CostParams};
use crate::dp::OptimizerConfig;
use crate::session::SessionBuilder;
use hhpim_nn::TinyMlModel;
use hhpim_workload::{Scenario, ScenarioParams};
use std::fmt;

/// Energy savings of HH-PIM for one `(scenario, model)` cell of Fig. 5.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SavingsCell {
    /// The workload scenario.
    pub scenario: Scenario,
    /// The benchmark model.
    pub model: TinyMlModel,
    /// Savings versus Baseline-PIM, in percent.
    pub vs_baseline: f64,
    /// Savings versus Heterogeneous-PIM, in percent.
    pub vs_heterogeneous: f64,
    /// Savings versus Hybrid-PIM, in percent.
    pub vs_hybrid: f64,
}

impl SavingsCell {
    /// Savings against a specific architecture.
    ///
    /// # Panics
    ///
    /// Panics when asked for savings versus HH-PIM itself.
    pub fn versus(&self, arch: Architecture) -> f64 {
        match arch {
            Architecture::Baseline => self.vs_baseline,
            Architecture::Heterogeneous => self.vs_heterogeneous,
            Architecture::Hybrid => self.vs_hybrid,
            Architecture::HhPim => panic!("savings are measured against the comparison group"),
        }
    }
}

impl fmt::Display for SavingsCell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} / {}: {:.2}% vs Baseline, {:.2}% vs Hetero, {:.2}% vs Hybrid",
            self.scenario.label(),
            self.model,
            self.vs_baseline,
            self.vs_heterogeneous,
            self.vs_hybrid
        )
    }
}

/// The full Fig. 5 matrix plus the reports behind it.
#[derive(Debug, Clone, PartialEq)]
pub struct SavingsMatrix {
    /// One cell per `(scenario, model)` pair, scenario-major order.
    pub cells: Vec<SavingsCell>,
}

impl SavingsMatrix {
    /// The cell for a `(scenario, model)` pair.
    pub fn cell(&self, scenario: Scenario, model: TinyMlModel) -> Option<&SavingsCell> {
        self.cells
            .iter()
            .find(|c| c.scenario == scenario && c.model == model)
    }

    /// Concatenates shard outputs back into one matrix, in the order
    /// given — with shards in `sweep_shard(0, n) ..
    /// sweep_shard(n-1, n)` order, the result is bit-identical to the
    /// serial [`crate::session::Session::sweep_all`] that the
    /// partition was cut from. For merge-time *validation* of a shard
    /// cover (no overlap, no omission), use
    /// [`crate::artifact::SweepArtifact::merge`].
    pub fn merge_shards(shards: impl IntoIterator<Item = SavingsMatrix>) -> SavingsMatrix {
        SavingsMatrix {
            cells: shards.into_iter().flat_map(|m| m.cells).collect(),
        }
    }

    /// Mean savings versus `arch` across every cell (the paper's
    /// "average energy savings" headline).
    pub fn mean_versus(&self, arch: Architecture) -> f64 {
        if self.cells.is_empty() {
            return 0.0;
        }
        self.cells.iter().map(|c| c.versus(arch)).sum::<f64>() / self.cells.len() as f64
    }

    /// Maximum savings versus `arch` across cells.
    pub fn max_versus(&self, arch: Architecture) -> f64 {
        self.cells
            .iter()
            .map(|c| c.versus(arch))
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Mean savings for one scenario across models (Table VI rows).
    pub fn scenario_mean(&self, scenario: Scenario, arch: Architecture) -> f64 {
        let vals: Vec<f64> = self
            .cells
            .iter()
            .filter(|c| c.scenario == scenario)
            .map(|c| c.versus(arch))
            .collect();
        if vals.is_empty() {
            0.0
        } else {
            vals.iter().sum::<f64>() / vals.len() as f64
        }
    }
}

/// Experiment configuration for the savings matrix.
#[deprecated(note = "set the equivalent `SessionBuilder` knobs instead: \
            `scenario_params`, `cost_params`, `optimizer`")]
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ExperimentConfig {
    /// Workload scenario shaping parameters.
    pub scenario_params: ScenarioParams,
    /// Cost-model calibration.
    pub cost_params: CostParams,
    /// Optimizer settings.
    pub optimizer: OptimizerConfig,
}

#[allow(deprecated)]
fn session_for(config: &ExperimentConfig) -> SessionBuilder {
    SessionBuilder::new()
        .scenario_params(config.scenario_params)
        .cost_params(config.cost_params)
        .optimizer(config.optimizer)
}

/// Runs one `(arch, model, scenario)` case and returns its trace report.
///
/// # Errors
///
/// Fails if the model does not fit the architecture.
///
/// # Panics
///
/// Panics on invalid scenario parameters, as the old API did.
#[deprecated(
    note = "compose a session instead: `SessionBuilder::new().architecture(..).model(..)\
            .scenario(..).build()?.run()`"
)]
#[allow(deprecated)]
pub fn run_case(
    arch: Architecture,
    model: TinyMlModel,
    scenario: Scenario,
    config: &ExperimentConfig,
) -> Result<ExecutionReport, CostModelError> {
    let mut session = session_for(config)
        .architecture(arch)
        .model(model)
        .scenario(scenario)
        .build()
        .map_err(crate::session::SessionError::into_cost)?;
    let mut artifacts = session.run().unwrap_or_else(|e| match e {
        crate::session::SessionError::Trace(t) => panic!("invalid scenario params: {t}"),
        other => panic!("analytic run cannot fail: {other}"),
    });
    Ok(artifacts.reports.remove(0))
}

/// Computes the full Fig. 5 savings matrix (6 scenarios × 3 models).
///
/// # Errors
///
/// Fails if any model does not fit any architecture.
///
/// # Panics
///
/// Panics on invalid scenario parameters, as the old API did.
#[deprecated(note = "compose a session instead: `SessionBuilder::new()… .build()?.sweep_all()`")]
#[allow(deprecated)]
pub fn savings_matrix(config: &ExperimentConfig) -> Result<SavingsMatrix, CostModelError> {
    let session = session_for(config)
        .build()
        .map_err(crate::session::SessionError::into_cost)?;
    session.sweep_all().map_err(|e| match e {
        crate::session::SessionError::Trace(t) => panic!("invalid scenario params: {t}"),
        other => other.into_cost(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_session() -> crate::session::Session {
        // Fewer slices + coarser DP keep the test fast while preserving
        // every qualitative property.
        SessionBuilder::new()
            .scenario_params(ScenarioParams {
                slices: 12,
                ..ScenarioParams::default()
            })
            .optimizer(OptimizerConfig {
                time_buckets: 400,
                ..OptimizerConfig::default()
            })
            .build()
            .unwrap()
    }

    fn savings_matrix_quick() -> SavingsMatrix {
        quick_session().sweep_all().unwrap()
    }

    #[test]
    fn matrix_covers_all_cells() {
        let m = savings_matrix_quick();
        assert_eq!(m.cells.len(), 18);
        for scenario in Scenario::ALL {
            for model in TinyMlModel::ALL {
                assert!(m.cell(scenario, model).is_some(), "{scenario} {model}");
            }
        }
    }

    #[test]
    fn hh_always_saves_energy() {
        let m = savings_matrix_quick();
        for c in &m.cells {
            assert!(c.vs_baseline > 0.0, "{c}");
            assert!(c.vs_heterogeneous >= -0.5, "{c}");
            assert!(c.vs_hybrid > 0.0, "{c}");
        }
    }

    #[test]
    fn case_orderings_match_paper() {
        let m = savings_matrix_quick();
        for model in TinyMlModel::ALL {
            let low = m.cell(Scenario::LowConstant, model).unwrap();
            let high = m.cell(Scenario::HighConstant, model).unwrap();
            // Case 1 beats Case 2 against every comparison group.
            assert!(low.vs_baseline > high.vs_baseline, "{model}");
            assert!(low.vs_heterogeneous > high.vs_heterogeneous, "{model}");
            // Case 2 vs Heterogeneous is the paper's smallest gap.
            assert!(
                high.vs_heterogeneous < 20.0,
                "{model}: case 2 vs hetero should be small, got {:.2}",
                high.vs_heterogeneous
            );
        }
    }

    #[test]
    fn average_savings_land_in_paper_band() {
        let m = savings_matrix_quick();
        // Paper: up to 60.43 % average vs Baseline, 36.3 % vs Hetero,
        // 48.58 % vs Hybrid. Shape requirement: baseline > hybrid > hetero
        // and all averages substantial.
        let base = m.mean_versus(Architecture::Baseline);
        let het = m.mean_versus(Architecture::Heterogeneous);
        let hyb = m.mean_versus(Architecture::Hybrid);
        assert!(
            base > hyb && hyb > het,
            "base {base:.1} hyb {hyb:.1} het {het:.1}"
        );
        assert!(base > 30.0, "vs baseline average {base:.1}% too small");
    }

    #[test]
    fn run_case_produces_full_trace() {
        let mut session = SessionBuilder::new()
            .scenario(Scenario::Random)
            .scenario_params(ScenarioParams {
                slices: 12,
                ..ScenarioParams::default()
            })
            .optimizer(OptimizerConfig {
                time_buckets: 400,
                ..OptimizerConfig::default()
            })
            .build()
            .unwrap();
        let r = session.run().unwrap();
        assert_eq!(r.primary().records.len(), 12);
        assert!(r.primary().total_energy().as_mj() > 0.0);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_reproduce_the_builder_numbers_bit_for_bit() {
        let config = ExperimentConfig {
            scenario_params: ScenarioParams {
                slices: 8,
                ..ScenarioParams::default()
            },
            optimizer: OptimizerConfig {
                time_buckets: 300,
                ..OptimizerConfig::default()
            },
            ..ExperimentConfig::default()
        };
        let via_shim = savings_matrix(&config).unwrap();
        let via_session = SessionBuilder::new()
            .scenario_params(config.scenario_params)
            .optimizer(config.optimizer)
            .build()
            .unwrap()
            .sweep_all()
            .unwrap();
        assert_eq!(via_shim.cells.len(), via_session.cells.len());
        for (a, b) in via_shim.cells.iter().zip(&via_session.cells) {
            assert_eq!((a.scenario, a.model), (b.scenario, b.model));
            assert_eq!(a.vs_baseline.to_bits(), b.vs_baseline.to_bits());
            assert_eq!(a.vs_heterogeneous.to_bits(), b.vs_heterogeneous.to_bits());
            assert_eq!(a.vs_hybrid.to_bits(), b.vs_hybrid.to_bits());
        }

        let shim_case = run_case(
            Architecture::HhPim,
            TinyMlModel::MobileNetV2,
            Scenario::Random,
            &config,
        )
        .unwrap();
        let mut session = SessionBuilder::new()
            .scenario(Scenario::Random)
            .scenario_params(config.scenario_params)
            .optimizer(config.optimizer)
            .build()
            .unwrap();
        let case = session.run().unwrap();
        assert_eq!(shim_case.records, case.primary().records);
        assert_eq!(
            shim_case.total_energy().as_pj().to_bits(),
            case.primary().total_energy().as_pj().to_bits()
        );
    }

    #[test]
    #[should_panic(expected = "comparison group")]
    fn versus_hh_panics() {
        let cell = SavingsCell {
            scenario: Scenario::Random,
            model: TinyMlModel::MobileNetV2,
            vs_baseline: 1.0,
            vs_heterogeneous: 1.0,
            vs_hybrid: 1.0,
        };
        cell.versus(Architecture::HhPim);
    }
}
