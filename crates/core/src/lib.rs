//! # hhpim — the HH-PIM architecture model and placement optimizer
//!
//! Reproduction of *HH-PIM: Dynamic Optimization of Power and
//! Performance with Heterogeneous-Hybrid PIM for Edge AI Devices*
//! (DAC 2025). This crate is the paper's primary contribution:
//!
//! * [`Architecture`] / [`ArchSpec`] — the four Table I processors
//!   (Baseline-, Heterogeneous-, Hybrid- and HH-PIM) with their gating
//!   and placement policies,
//! * [`CostModel`] — per-space time/energy costs `t_i`, `e_i` derived
//!   from Tables III/V,
//! * [`PlacementOptimizer`] — Algorithms 1 & 2: per-cluster bottom-up
//!   DP plus cross-cluster combination, building an [`AllocationLut`],
//! * [`Processor`] — the time-slice runtime with task buffering,
//!   movement-aware re-placement and per-category energy accounting.
//!
//! # Examples
//!
//! ```
//! use hhpim::{Architecture, Processor};
//! use hhpim_nn::TinyMlModel;
//! use hhpim_workload::{LoadTrace, Scenario, ScenarioParams};
//!
//! let hh = Processor::new(Architecture::HhPim, TinyMlModel::MobileNetV2).unwrap();
//! let trace = LoadTrace::generate(Scenario::PeriodicSpike, ScenarioParams::default());
//! let report = hh.run_trace(&trace);
//! assert_eq!(report.records.len(), 50);
//! assert_eq!(report.deadline_misses, 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod arch;
pub mod backend;
pub mod compile;
pub mod cost;
pub mod dp;
pub mod experiment;
pub mod runtime;
pub mod space;

pub use analysis::{
    inference_times, mram_only_fastest, peak_sram_split, placement_sweep, progression_summary,
    InferenceTimes, PlacementSweep, SweepPoint,
};
pub use arch::{ArchSpec, Architecture, GatingPolicy, PlacementPolicy};
pub use backend::{
    AnalyticBackend, BackendError, BackendKind, CycleBackend, EnergyCat, ExecutionBackend,
    ExecutionReport, LayerRecord, MigrationRecord, SliceRecord,
};
pub use compile::{
    compile_linear, compile_model, lower_head, run_linear, CompileError, CompiledLayer,
    CompiledLinear, CompiledProgram, HeadPlan, LayerOp, WeightHome,
};
pub use cost::{CostModel, CostModelError, CostParams, WorkloadProfile};
pub use dp::{AllocationLut, OptimalPlacement, OptimizerConfig, PlacementOptimizer};
pub use experiment::{run_case, savings_matrix, ExperimentConfig, SavingsCell, SavingsMatrix};
pub use runtime::{Processor, RuntimeConfig};
pub use space::{movement_legs, MovementLeg, Placement, StorageSpace};
