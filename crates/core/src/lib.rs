//! # hhpim — the HH-PIM architecture model and placement optimizer
//!
//! Reproduction of *HH-PIM: Dynamic Optimization of Power and
//! Performance with Heterogeneous-Hybrid PIM for Edge AI Devices*
//! (DAC 2025). This crate is the paper's primary contribution:
//!
//! * [`session`] — **the batch entry point**: [`SessionBuilder`]
//!   composes an architecture, model, trace source, placement policy
//!   and backends into a [`Session`] that runs, compares, or sweeps,
//! * [`engine`] — **the streaming entry point**: [`Engine`] accepts
//!   load slices online (`submit`/`step`/`drain`), emits a typed
//!   [`EngineEvent`] stream and backpressures through a bounded
//!   queue; the batch facade is a wrapper over it,
//! * [`server`] — **the serving entry point**: [`Server`] multiplexes
//!   N tenants (model + trace + [`QosClass`]) over per-tenant engines
//!   with pluggable [`AdmissionPolicy`] admission control and a
//!   deficit-round-robin scheduler,
//! * [`traffic`] — **load generation**: seeded stochastic
//!   [`ArrivalProcess`]es ([`Poisson`], [`BurstyOnOff`], [`Diurnal`],
//!   [`ConstantRate`]) driving sessions, engines and servers;
//!   record/replay with time warp ([`ReplayTraffic`]); [`ClosedLoop`]
//!   AIMD load control; and a wall-clock [`Pacer`] producing
//!   [`LoadReport`]s of sustained slices/sec and latency tails,
//! * [`timegraph`] — **the cycle backend's hot path**: [`TimeGraph`]
//!   lowers a compiled program + placement into a flat arena of
//!   pre-resolved nodes replayed bit-identically to the object walk
//!   (which stays on as the oracle behind
//!   [`backend::ExecMode::ObjectWalk`]),
//! * [`error`] — the facade [`enum@Error`]: one enum over every
//!   layer's failure modes, with `From` impls and source chaining,
//! * [`Architecture`] / [`ArchSpec`] — the four Table I processors
//!   (Baseline-, Heterogeneous-, Hybrid- and HH-PIM) with their gating
//!   and placement modes,
//! * [`policy`] — first-class [`PlacementPolicy`] objects:
//!   [`LutAdaptive`], [`FixedHome`], [`GreedyBaseline`],
//! * [`CostModel`] — per-space time/energy costs `t_i`, `e_i` derived
//!   from Tables III/V,
//! * [`PlacementOptimizer`] — Algorithms 1 & 2: per-cluster bottom-up
//!   DP plus cross-cluster combination, building an [`AllocationLut`],
//! * [`store`] — the [`PlacementStore`]: a thread-safe, memoized cache
//!   of built LUTs shared across sessions, backends and sweep cells,
//!   so each distinct configuration pays the DP once per process,
//! * [`artifact`] — **persistence**: [`ArtifactStore`] adds a
//!   versioned, checksummed on-disk tier under the store (memory hit →
//!   disk hit → build-and-write-back, opt-in via
//!   [`SessionBuilder::artifact_dir`](session::SessionBuilder::artifact_dir)),
//!   and [`SweepArtifact`] shards/merges the Fig. 5 sweep across
//!   worker processes bit-identically to the serial run,
//! * [`Processor`] — the time-slice runtime with task buffering,
//!   movement-aware re-placement and per-category energy accounting.
//!
//! # Examples
//!
//! ```
//! use hhpim::session::SessionBuilder;
//! use hhpim::{Architecture, BackendKind};
//! use hhpim_nn::TinyMlModel;
//! use hhpim_workload::Scenario;
//!
//! let mut session = SessionBuilder::new()
//!     .architecture(Architecture::HhPim)
//!     .model(TinyMlModel::MobileNetV2)
//!     .scenario(Scenario::PeriodicSpike)
//!     .backend(BackendKind::Analytic)
//!     .build()
//!     .unwrap();
//! let artifacts = session.run().unwrap();
//! assert_eq!(artifacts.primary().records.len(), 50);
//! assert_eq!(artifacts.primary().deadline_misses, 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod arch;
pub mod artifact;
pub mod backend;
pub mod compile;
pub mod cost;
pub mod dp;
pub mod engine;
pub mod error;
pub mod experiment;
pub mod policy;
pub mod runtime;
pub mod server;
pub mod session;
pub mod space;
pub mod store;
pub mod timegraph;
pub mod traffic;

pub use analysis::{
    inference_times, mram_only_fastest, peak_sram_split, placement_sweep, progression_summary,
    InferenceTimes, PlacementSweep, SweepPoint,
};
pub use arch::{ArchSpec, Architecture, GatingPolicy, PlacementMode};
pub use artifact::{
    lut_from_json, lut_to_json, ArtifactError, ArtifactStore, SweepArtifact, SweepStats,
    ARTIFACT_FORMAT_VERSION,
};
pub use backend::{
    AnalyticBackend, BackendError, BackendKind, CycleBackend, EnergyCat, ExecMode,
    ExecutionBackend, ExecutionReport, LayerRecord, MigrationRecord, SliceRecord,
};
pub use compile::{
    compile_linear, compile_model, lower_head, run_linear, CompileError, CompiledLayer,
    CompiledLinear, CompiledProgram, HeadPlan, LayerOp, WeightHome,
};
pub use cost::{CostModel, CostModelError, CostParams, WorkloadProfile};
pub use dp::{AllocationLut, OptimalPlacement, OptimizerConfig, PlacementOptimizer};
pub use engine::{
    Engine, EngineError, EngineEvent, EngineObserver, ReplacementDecision, SliceOutcome,
    StreamSource, SubmitOutcome,
};
pub use error::{Error, Result};
#[allow(deprecated)]
pub use experiment::{run_case, savings_matrix, ExperimentConfig};
pub use experiment::{SavingsCell, SavingsMatrix};
pub use policy::{default_policy, FixedHome, GreedyBaseline, LutAdaptive, PlacementPolicy};
pub use runtime::{Processor, RuntimeConfig};
pub use server::{
    AdmissionDecision, AdmissionPolicy, AlwaysAdmit, BatchCoalesce, QosClass, ServeReport, Server,
    ServerBuilder, ServerError, ServerEvent, ServerObserver, ShedOnPressure, TenantId,
    TenantReport, TenantSnapshot, TenantSpec, TenantStats,
};
pub use session::{
    ClosureSource, Comparison, ReplaySource, RunArtifacts, ScenarioSource, Session, SessionBuilder,
    SessionError, TraceSource,
};
pub use space::{movement_legs, MovementLeg, Placement, StorageSpace};
pub use store::{CacheStats, PlacementKey, PlacementStore};
pub use timegraph::TimeGraph;
pub use traffic::{
    drive_closed_loop, record_slices, run_paced, serve_paced, stream, ArrivalProcess, BurstyOnOff,
    ClosedLoop, ClosedLoopConfig, ClosedLoopReport, ConstantRate, Diurnal, LoadDistribution,
    LoadFeedback, LoadReport, Pacer, Poisson, RecordedArrival, RecordedTrace, ReplayTraffic,
    TraceRecorder, TrafficConfig, TrafficEngine, TrafficError, TrafficSource, TRACE_FORMAT_VERSION,
};
