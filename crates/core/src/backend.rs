//! Unified execution backends: one workload in, one report out.
//!
//! The repo models the paper's machine twice — analytically
//! ([`crate::CostModel`] + [`crate::Processor`], fast enough for DP
//! sweeps) and structurally ([`hhpim_pim::PimMachine`] driven by the
//! `hhpim_sim` event kernel, bit-accurate but slower). Before this
//! module each path produced its own report type with its own energy
//! vocabulary, so results could not be compared apples-to-apples.
//!
//! [`ExecutionBackend`] closes that gap: both backends consume a
//! [`hhpim_workload::LoadTrace`] and produce the same
//! [`ExecutionReport`] — energy broken down in one [`EnergyCat`]
//! vocabulary via [`hhpim_mem::EnergyLedger`], latency as
//! [`hhpim_sim::SimTime`], per-slice [`SliceRecord`]s and deadline
//! misses. Every future scaling layer (sharding, batching, new
//! backends) plugs in here.
//!
//! | backend              | wraps                              | fidelity |
//! |----------------------|------------------------------------|----------|
//! | [`AnalyticBackend`]  | `Processor` + `CostModel`          | closed-form slice accounting |
//! | [`CycleBackend`]     | `PimMachine` + `sim::Simulation`   | per-access timing/energy of the PIM-resident work |
//!
//! Energy breakdowns, per-slice records and deadline misses compare
//! directly; the `instructions`/`macs` counters keep each backend's
//! native basis (modelled full-network MACs vs physically retired
//! head MACs — see [`ExecutionReport::macs`]).
//!
//! # Examples
//!
//! ```
//! use hhpim::{AnalyticBackend, Architecture, CycleBackend, ExecutionBackend};
//! use hhpim_nn::TinyMlModel;
//! use hhpim_workload::{LoadTrace, Scenario, ScenarioParams};
//!
//! let trace = LoadTrace::generate(
//!     Scenario::PeriodicSpike,
//!     ScenarioParams { slices: 4, ..ScenarioParams::default() },
//! );
//! let mut analytic = AnalyticBackend::new(Architecture::HhPim, TinyMlModel::MobileNetV2).unwrap();
//! let mut cycle = CycleBackend::new(Architecture::HhPim, TinyMlModel::MobileNetV2).unwrap();
//! let a = analytic.execute(&trace).unwrap();
//! let c = cycle.execute(&trace).unwrap();
//! assert_eq!(a.records.len(), c.records.len());
//! assert_eq!(a.deadline_misses, c.deadline_misses);
//! ```

use crate::arch::Architecture;
use crate::compile::{compile_linear, run_linear, CompileError, CompiledLinear, WeightHome};
use crate::cost::{CostModelError, CostParams};
use crate::dp::OptimizerConfig;
use crate::runtime::{Processor, RuntimeConfig};
use crate::space::Placement;
use hhpim_mem::{ClusterClass, Energy, EnergyLedger, MemKind};
use hhpim_nn::{Layer, QuantizedModel, TinyMlModel};
use hhpim_pim::{MachineConfig, MachineError, ModuleConfig, PimMachine};
use hhpim_sim::{Control, SimDuration, SimTime, Simulation};
use hhpim_workload::LoadTrace;
use std::fmt;

/// Which execution backend produced a report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BackendKind {
    /// Closed-form slice accounting over the cost model.
    Analytic,
    /// Transaction-level execution on the structural PIM machine.
    Cycle,
}

impl BackendKind {
    /// Human-readable backend name.
    pub fn label(self) -> &'static str {
        match self {
            BackendKind::Analytic => "analytic",
            BackendKind::Cycle => "cycle",
        }
    }
}

impl fmt::Display for BackendKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// The shared energy vocabulary of every backend's report.
///
/// The analytic runtime folds PE compute into its per-space dynamic
/// cost, so analytic reports carry it under [`EnergyCat::MemDynamic`];
/// the cycle backend meters PEs separately ([`EnergyCat::PeDynamic`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EnergyCat {
    /// Dynamic access energy of one memory technology in one cluster
    /// (weight + activation traffic; analytic reports include PE
    /// compute here).
    MemDynamic(ClusterClass, MemKind),
    /// Leakage of one memory technology in one cluster.
    MemStatic(ClusterClass, MemKind),
    /// Power-gating wake-up charges of one memory technology.
    MemWake(ClusterClass, MemKind),
    /// PE compute energy (cycle backend only).
    PeDynamic(ClusterClass),
    /// PE leakage.
    PeStatic(ClusterClass),
    /// Controller issue energy and leakage.
    Controller,
    /// Inter-space weight movement (re-placement) energy.
    Movement,
}

/// One time slice's outcome, shared by all backends.
#[derive(Debug, Clone, PartialEq)]
pub struct SliceRecord {
    /// Slice index.
    pub slice: usize,
    /// Tasks processed this slice.
    pub n_tasks: u32,
    /// Placement in effect (`None` for backends without a placement
    /// notion, e.g. the cycle machine's fixed weight home).
    pub placement: Option<Placement>,
    /// Per-task deadline after movement overhead.
    pub t_constraint: SimDuration,
    /// Per-task latency under this slice's configuration.
    pub task_time: SimDuration,
    /// Re-placement movement time paid at the slice boundary.
    pub movement_time: SimDuration,
    /// Groups moved at the boundary.
    pub groups_moved: usize,
    /// Whether every task met `t_constraint`.
    pub deadline_met: bool,
    /// Slice energy (all categories).
    pub energy: Energy,
}

/// The unified outcome of running one [`LoadTrace`] on any backend.
#[derive(Debug, Clone)]
pub struct ExecutionReport {
    /// Backend that produced the report.
    pub backend: BackendKind,
    /// Architecture that was executed.
    pub arch: Architecture,
    /// Per-slice records.
    pub records: Vec<SliceRecord>,
    /// Energy breakdown over the whole trace.
    pub energy: EnergyLedger<EnergyCat>,
    /// Instant the trace finished (nominal end of the last slice, or
    /// later if work overran it).
    pub elapsed: SimTime,
    /// Slices whose deadline was missed.
    pub deadline_misses: usize,
    /// PIM instructions executed (0 for backends that do not count).
    pub instructions: u64,
    /// MAC operations accounted for. The basis differs by fidelity
    /// and is **not comparable across backends**: the analytic
    /// backend counts the full model's PIM MACs per task from its
    /// workload profile, while the cycle backend counts only the MACs
    /// it physically retired (the compiled classifier layer).
    pub macs: u64,
}

impl ExecutionReport {
    /// Total energy over the trace.
    pub fn total_energy(&self) -> Energy {
        self.energy.total()
    }

    /// Mean energy per slice.
    pub fn mean_slice_energy(&self) -> Energy {
        if self.records.is_empty() {
            Energy::ZERO
        } else {
            self.total_energy() / self.records.len() as f64
        }
    }
}

impl fmt::Display for ExecutionReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}]: {} slices, {} total, {} misses",
            self.arch,
            self.backend,
            self.records.len(),
            self.total_energy(),
            self.deadline_misses
        )
    }
}

/// Errors surfaced while building or running a backend.
#[derive(Debug, Clone, PartialEq)]
pub enum BackendError {
    /// The model does not fit the architecture's cost model.
    Cost(CostModelError),
    /// Lowering the model onto the cycle machine failed.
    Compile(CompileError),
    /// The cycle machine rejected an operation mid-trace.
    Machine(MachineError),
    /// The model has no layer the cycle machine can execute.
    NoPimLayer {
        /// The model that could not be lowered.
        model: TinyMlModel,
    },
}

impl fmt::Display for BackendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackendError::Cost(e) => write!(f, "cost model: {e}"),
            BackendError::Compile(e) => write!(f, "compile: {e}"),
            BackendError::Machine(e) => write!(f, "machine: {e}"),
            BackendError::NoPimLayer { model } => {
                write!(f, "{model} has no linear layer the PIM machine can execute")
            }
        }
    }
}

impl std::error::Error for BackendError {}

impl From<CostModelError> for BackendError {
    fn from(e: CostModelError) -> Self {
        BackendError::Cost(e)
    }
}

impl From<CompileError> for BackendError {
    fn from(e: CompileError) -> Self {
        BackendError::Compile(e)
    }
}

impl From<MachineError> for BackendError {
    fn from(e: MachineError) -> Self {
        BackendError::Machine(e)
    }
}

/// A machine model that can execute load traces.
///
/// Implementations must be rerunnable: `execute` may be called with
/// several traces in sequence, each producing an independent report.
pub trait ExecutionBackend {
    /// Which backend this is.
    fn kind(&self) -> BackendKind;

    /// The architecture being executed.
    fn architecture(&self) -> Architecture;

    /// Runs `trace`, producing the unified report.
    ///
    /// # Errors
    ///
    /// Backend-specific; see [`BackendError`].
    fn execute(&mut self, trace: &LoadTrace) -> Result<ExecutionReport, BackendError>;
}

/// The closed-form backend: wraps [`Processor`] (and through it the
/// [`crate::CostModel`] and placement optimizer).
#[derive(Debug, Clone)]
pub struct AnalyticBackend {
    processor: Processor,
}

impl AnalyticBackend {
    /// Builds the backend with default calibration.
    ///
    /// # Errors
    ///
    /// Fails if the model's weights do not fit the architecture.
    pub fn new(arch: Architecture, model: TinyMlModel) -> Result<Self, BackendError> {
        Ok(AnalyticBackend {
            processor: Processor::new(arch, model)?,
        })
    }

    /// Builds the backend with explicit calibration knobs.
    ///
    /// # Errors
    ///
    /// Fails if the model's weights do not fit the architecture.
    pub fn with_params(
        arch: Architecture,
        model: TinyMlModel,
        params: CostParams,
        opt_config: OptimizerConfig,
    ) -> Result<Self, BackendError> {
        Ok(AnalyticBackend {
            processor: Processor::with_params(arch, model, params, opt_config)?,
        })
    }

    /// Wraps an already-built processor.
    pub fn from_processor(processor: Processor) -> Self {
        AnalyticBackend { processor }
    }

    /// The wrapped processor.
    pub fn processor(&self) -> &Processor {
        &self.processor
    }
}

impl ExecutionBackend for AnalyticBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Analytic
    }

    fn architecture(&self) -> Architecture {
        self.processor.arch().arch
    }

    fn execute(&mut self, trace: &LoadTrace) -> Result<ExecutionReport, BackendError> {
        Ok(self.processor.run_trace(trace))
    }
}

/// The structural backend: wraps [`PimMachine`] and drives slice
/// execution through the `hhpim_sim` event engine.
///
/// Each inference task executes the model's PIM-resident classifier
/// layer as real INT8 MAC bursts on the machine (host-side layers are
/// outside the machine, exactly as in the paper's prototype), so
/// timing and energy come from per-access bank/PE metering rather than
/// closed-form costs. Weights live in one fixed [`WeightHome`] — the
/// cycle machine does not model dynamic re-placement.
#[derive(Debug)]
pub struct CycleBackend {
    arch: Architecture,
    machine: PimMachine,
    compiled: CompiledLinear,
    input: Vec<i8>,
    slice_duration: SimDuration,
    max_tasks: u32,
    home: WeightHome,
}

/// A slice's worth of work scheduled on the event engine.
#[derive(Debug, Clone, Copy)]
struct SliceJob {
    slice: usize,
    n_tasks: u32,
}

impl CycleBackend {
    /// Builds the backend: shapes the machine after the architecture's
    /// Table I row, lowers the model's classifier layer onto it, and
    /// adopts the analytic runtime's slice timing so deadlines are
    /// comparable across backends.
    ///
    /// Weights default to the home of the analytic runtime's fixed
    /// placement: MRAM for Hybrid-PIM (whose weights live in MRAM by
    /// design), SRAM for everything else (the peak-performance
    /// choice). Override with [`CycleBackend::with_weight_home`].
    ///
    /// # Errors
    ///
    /// Fails if the model does not fit the architecture or has no
    /// machine-executable linear layer.
    pub fn new(arch: Architecture, model: TinyMlModel) -> Result<Self, BackendError> {
        let home = if arch == Architecture::Hybrid {
            WeightHome::Mram
        } else {
            WeightHome::Sram
        };
        Self::with_weight_home(arch, model, home)
    }

    /// Builds the backend with an explicit weight home.
    ///
    /// # Errors
    ///
    /// Fails if the model does not fit the architecture or has no
    /// machine-executable linear layer.
    pub fn with_weight_home(
        arch: Architecture,
        model: TinyMlModel,
        home: WeightHome,
    ) -> Result<Self, BackendError> {
        // Slice timing comes from the shared runtime reference so
        // t_constraint means the same thing on both backends (without
        // paying for a Processor's allocation LUT).
        let params = CostParams::default();
        let runtime = RuntimeConfig::reference(model, params)?;

        let spec = arch.spec();
        // Reserve the same per-module SRAM activation region the
        // analytic cost model assumes.
        let act_base = spec
            .sram_per_module
            .saturating_sub(params.act_reserve_per_module);
        let mut machine = PimMachine::new(MachineConfig {
            hp_modules: spec.hp_modules,
            lp_modules: spec.lp_modules,
            module: ModuleConfig {
                mram_bytes: spec.mram_per_module,
                sram_bytes: spec.sram_per_module,
                act_base,
            },
            ..MachineConfig::default()
        });

        let qm = QuantizedModel::random(model.build(), 0xDAC);
        let layer_idx = pim_layer_index(&qm).ok_or(BackendError::NoPimLayer { model })?;
        let compiled = compile_linear(&qm, layer_idx, &mut machine, home)?;
        let (c, h, w) = qm.model().layers()[layer_idx].input;
        let in_features = c * h * w;
        // A fixed, value-diverse activation vector; the machine's
        // timing/energy is data-independent, so any input serves.
        let input: Vec<i8> = (0..in_features)
            .map(|i| ((i * 37 + 11) % 256) as u8 as i8)
            .collect();

        Ok(CycleBackend {
            arch,
            machine,
            compiled,
            input,
            slice_duration: runtime.slice_duration,
            max_tasks: runtime.max_tasks,
            home,
        })
    }

    /// The wrapped machine.
    pub fn machine(&self) -> &PimMachine {
        &self.machine
    }

    /// Where the compiled weights live.
    pub fn weight_home(&self) -> WeightHome {
        self.home
    }

    /// The slice duration adopted from the analytic runtime.
    pub fn slice_duration(&self) -> SimDuration {
        self.slice_duration
    }
}

/// Finds the last linear layer a single MAC burst can execute.
fn pim_layer_index(qm: &QuantizedModel) -> Option<usize> {
    qm.model()
        .layers()
        .iter()
        .enumerate()
        .rev()
        .find_map(|(i, info)| {
            let Layer::Linear { .. } = info.layer else {
                return None;
            };
            let (c, h, w) = info.input;
            let in_features = c * h * w;
            (1..=255).contains(&in_features).then_some(i)
        })
}

impl ExecutionBackend for CycleBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Cycle
    }

    fn architecture(&self) -> Architecture {
        self.arch
    }

    fn execute(&mut self, trace: &LoadTrace) -> Result<ExecutionReport, BackendError> {
        let tasks = trace.task_counts(self.max_tasks);
        let start_now = self.machine.now();
        let start_report = self.machine.report();
        let start_total = start_report.total_energy();

        // Slice boundaries are events on the shared discrete-event
        // kernel; the handler executes each slice's tasks on the
        // machine and closes the slice at its nominal end.
        let mut sim: Simulation<(), SliceJob> = Simulation::new(());
        for (i, &n) in tasks.iter().enumerate() {
            sim.schedule(
                start_now + self.slice_duration * i as u64,
                SliceJob {
                    slice: i,
                    n_tasks: n,
                },
            )
            .expect("slice starts are monotone");
        }

        let machine = &mut self.machine;
        let compiled = &self.compiled;
        let input = &self.input;
        let slice_duration = self.slice_duration;
        let mut records: Vec<SliceRecord> = Vec::with_capacity(tasks.len());
        let mut prev_total = start_total;
        let mut failure: Option<BackendError> = None;

        sim.run(|_, ctx, job| {
            // Work may overrun a slice; the backlog then delays the
            // next slice's start, exactly like a busy port.
            let slice_start = ctx.now().max(machine.now());
            machine.idle_until(slice_start);
            for _ in 0..job.n_tasks {
                if let Err(e) = run_linear(machine, compiled, input) {
                    failure = Some(e.into());
                    return Control::Stop;
                }
            }
            let busy = machine.now().saturating_since(slice_start);
            // Statics accrue across the idle remainder of the slice.
            machine.idle_until(ctx.now() + slice_duration);

            let t_constraint = if job.n_tasks > 0 {
                slice_duration / job.n_tasks as u64
            } else {
                slice_duration
            };
            let task_time = if job.n_tasks > 0 {
                busy / job.n_tasks as u64
            } else {
                SimDuration::ZERO
            };
            let total = machine.report().total_energy();
            records.push(SliceRecord {
                slice: job.slice,
                n_tasks: job.n_tasks,
                placement: None,
                t_constraint,
                task_time,
                movement_time: SimDuration::ZERO,
                groups_moved: 0,
                deadline_met: task_time <= t_constraint,
                energy: total.saturating_sub(prev_total),
            });
            prev_total = total;
            Control::Continue
        });
        if let Some(e) = failure {
            return Err(e);
        }

        // Report only this trace's share: previous execute() calls on
        // the same machine already accounted for their energy.
        let run_report = self.machine.report();
        let mut energy = EnergyLedger::new();
        for (&cat, e) in run_report.energy.iter() {
            let delta = e.saturating_sub(start_report.energy.get(cat));
            if delta.as_pj() > 0.0 {
                energy.add(unify_machine_cat(cat), delta);
            }
        }
        let deadline_misses = records.iter().filter(|r| !r.deadline_met).count();
        Ok(ExecutionReport {
            backend: BackendKind::Cycle,
            arch: self.arch,
            records,
            energy,
            // Trace-local, like the analytic backend's elapsed, so
            // reruns on the same machine stay comparable.
            elapsed: SimTime::ZERO + (self.machine.now() - start_now),
            deadline_misses,
            instructions: run_report.instructions - start_report.instructions,
            macs: run_report.macs - start_report.macs,
        })
    }
}

/// Maps the machine's native categories into the shared vocabulary.
fn unify_machine_cat(cat: hhpim_pim::EnergyCat) -> EnergyCat {
    use hhpim_pim::EnergyCat as M;
    match cat {
        M::MemDynamic(c, k) => EnergyCat::MemDynamic(c, k),
        M::MemStatic(c, k) => EnergyCat::MemStatic(c, k),
        M::MemWake(c, k) => EnergyCat::MemWake(c, k),
        M::PeDynamic(c) => EnergyCat::PeDynamic(c),
        M::PeStatic(c) => EnergyCat::PeStatic(c),
        M::Controller(_) => EnergyCat::Controller,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hhpim_workload::{Scenario, ScenarioParams};

    fn small(scenario: Scenario) -> LoadTrace {
        LoadTrace::generate(
            scenario,
            ScenarioParams {
                slices: 5,
                ..ScenarioParams::default()
            },
        )
    }

    #[test]
    fn both_backends_share_report_shape() {
        let trace = small(Scenario::PeriodicSpike);
        let mut analytic =
            AnalyticBackend::new(Architecture::HhPim, TinyMlModel::MobileNetV2).unwrap();
        let mut cycle = CycleBackend::new(Architecture::HhPim, TinyMlModel::MobileNetV2).unwrap();
        let reports = [
            analytic.execute(&trace).unwrap(),
            cycle.execute(&trace).unwrap(),
        ];
        for r in &reports {
            assert_eq!(r.records.len(), 5);
            assert!(r.total_energy().as_pj() > 0.0);
            assert!(r.elapsed > SimTime::ZERO);
            for (i, rec) in r.records.iter().enumerate() {
                assert_eq!(rec.slice, i);
                assert!(rec.energy.as_pj() >= 0.0);
            }
        }
        assert_eq!(reports[0].backend, BackendKind::Analytic);
        assert_eq!(reports[1].backend, BackendKind::Cycle);
        assert_eq!(reports[0].deadline_misses, reports[1].deadline_misses);
    }

    #[test]
    fn cycle_backend_counts_real_work() {
        let trace = small(Scenario::HighConstant);
        let mut cycle = CycleBackend::new(Architecture::HhPim, TinyMlModel::MobileNetV2).unwrap();
        let r = cycle.execute(&trace).unwrap();
        let tasks: u64 = r.records.iter().map(|rec| rec.n_tasks as u64).sum();
        assert!(
            r.macs >= tasks * 88,
            "88-feature head: {} macs for {tasks} tasks",
            r.macs
        );
        assert!(r.instructions > 0);
        assert!(
            r.energy
                .get(EnergyCat::PeDynamic(ClusterClass::HighPerformance))
                .as_pj()
                > 0.0
        );
    }

    #[test]
    fn cycle_backend_is_rerunnable_with_independent_reports() {
        let trace = small(Scenario::LowConstant);
        let mut cycle = CycleBackend::new(Architecture::HhPim, TinyMlModel::MobileNetV2).unwrap();
        let a = cycle.execute(&trace).unwrap();
        let b = cycle.execute(&trace).unwrap();
        assert_eq!(a.records.len(), b.records.len());
        let (ea, eb) = (a.total_energy().as_pj(), b.total_energy().as_pj());
        assert!(
            (ea - eb).abs() / ea < 0.05,
            "re-run energy drifted: {ea} vs {eb}"
        );
        assert_eq!(a.macs, b.macs);
        // Elapsed is trace-local, not cumulative machine time.
        assert_eq!(a.elapsed, b.elapsed);
    }

    #[test]
    fn all_architectures_run_on_the_cycle_machine() {
        let trace = small(Scenario::PeriodicSpike);
        for arch in Architecture::ALL {
            let mut cycle = CycleBackend::new(arch, TinyMlModel::MobileNetV2).unwrap();
            let r = cycle.execute(&trace).unwrap();
            assert_eq!(r.arch, arch);
            assert_eq!(r.deadline_misses, 0, "{arch}");
        }
    }

    #[test]
    fn hybrid_defaults_to_mram_home() {
        let cycle = CycleBackend::new(Architecture::Hybrid, TinyMlModel::MobileNetV2).unwrap();
        assert_eq!(cycle.weight_home(), WeightHome::Mram);
        let hh = CycleBackend::new(Architecture::HhPim, TinyMlModel::MobileNetV2).unwrap();
        assert_eq!(hh.weight_home(), WeightHome::Sram);
    }

    #[test]
    fn trait_objects_run_both_backends() {
        let trace = small(Scenario::PeriodicSpike);
        let mut backends: Vec<Box<dyn ExecutionBackend>> = vec![
            Box::new(AnalyticBackend::new(Architecture::HhPim, TinyMlModel::MobileNetV2).unwrap()),
            Box::new(CycleBackend::new(Architecture::HhPim, TinyMlModel::MobileNetV2).unwrap()),
        ];
        let mut kinds = Vec::new();
        for b in &mut backends {
            let r = b.execute(&trace).unwrap();
            assert_eq!(r.arch, Architecture::HhPim);
            kinds.push(r.backend);
        }
        assert_eq!(kinds, [BackendKind::Analytic, BackendKind::Cycle]);
    }
}
