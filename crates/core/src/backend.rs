//! Unified execution backends: one workload in, one report out.
//!
//! The repo models the paper's machine twice — analytically
//! ([`crate::CostModel`] + [`crate::Processor`], fast enough for DP
//! sweeps) and structurally ([`hhpim_pim::PimMachine`] driven by the
//! `hhpim_sim` event kernel, bit-accurate but slower). Before this
//! module each path produced its own report type with its own energy
//! vocabulary, so results could not be compared apples-to-apples.
//!
//! [`ExecutionBackend`] closes that gap: both backends consume a
//! [`hhpim_workload::LoadTrace`] and produce the same
//! [`ExecutionReport`] — energy broken down in one [`EnergyCat`]
//! vocabulary via [`hhpim_mem::EnergyLedger`], latency as
//! [`hhpim_sim::SimTime`], per-slice [`SliceRecord`]s and deadline
//! misses. Every future scaling layer (sharding, batching, new
//! backends) plugs in here.
//!
//! | backend              | wraps                              | fidelity |
//! |----------------------|------------------------------------|----------|
//! | [`AnalyticBackend`]  | `Processor` + `CostModel`          | closed-form slice accounting |
//! | [`CycleBackend`]     | `PimMachine` + `sim::Simulation`   | per-access timing/energy of the full multi-layer program |
//!
//! Energy breakdowns, per-slice records, per-layer records, migration
//! ledgers and deadline misses all compare directly: both backends
//! account the same per-task PIM MACs (the cycle backend physically
//! retires them — see [`ExecutionReport::macs`]), consult the same
//! allocation LUT, and move the same re-placement traffic.
//!
//! Every driving layer selects its backend through the same
//! [`BackendKind`] switch: [`crate::session::SessionBuilder::backend`]
//! for batch runs, [`crate::engine::Engine::from_backends`] for
//! streaming, and [`crate::server::ServerBuilder::backend`] for every
//! tenant engine of the multi-tenant server.
//!
//! # Examples
//!
//! ```
//! use hhpim::{AnalyticBackend, Architecture, CycleBackend, ExecutionBackend};
//! use hhpim_nn::TinyMlModel;
//! use hhpim_workload::{LoadTrace, Scenario, ScenarioParams};
//!
//! let trace = LoadTrace::generate(
//!     Scenario::PeriodicSpike,
//!     ScenarioParams { slices: 4, ..ScenarioParams::default() },
//! );
//! let mut analytic = AnalyticBackend::new(Architecture::HhPim, TinyMlModel::MobileNetV2).unwrap();
//! let mut cycle = CycleBackend::new(Architecture::HhPim, TinyMlModel::MobileNetV2).unwrap();
//! let a = analytic.execute(&trace).unwrap();
//! let c = cycle.execute(&trace).unwrap();
//! assert_eq!(a.records.len(), c.records.len());
//! assert_eq!(a.deadline_misses, c.deadline_misses);
//! ```

use crate::arch::{Architecture, GatingPolicy};
use crate::compile::{compile_model, CompileError, CompiledProgram, LayerOp, WeightHome};
use crate::cost::{CostModelError, CostParams};
use crate::dp::OptimizerConfig;
use crate::engine::{AnalyticRun, CycleRun, LayerAcc, ReplacementDecision, SliceOutcome};
use crate::policy::{FixedHome, PlacementPolicy};
use crate::runtime::{Processor, RuntimeConfig};
use crate::space::{movement_legs, MovementLeg, Placement, StorageSpace};
use crate::timegraph::TimeGraph;
use hhpim_isa::{MemSelect, ModuleMask, PimInstruction};
use hhpim_mem::{ClusterClass, Energy, EnergyLedger, MemKind};
use hhpim_nn::{QuantizedModel, TinyMlModel};
use hhpim_pim::{MachineConfig, MachineError, ModuleConfig, PimMachine};
use hhpim_sim::{SimDuration, SimTime};
use hhpim_workload::LoadTrace;
use std::fmt;
use std::ops::Range;

/// Which execution backend produced a report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[non_exhaustive]
pub enum BackendKind {
    /// Closed-form slice accounting over the cost model.
    Analytic,
    /// Transaction-level execution on the structural PIM machine.
    Cycle,
}

impl BackendKind {
    /// Human-readable backend name.
    pub fn label(self) -> &'static str {
        match self {
            BackendKind::Analytic => "analytic",
            BackendKind::Cycle => "cycle",
        }
    }
}

impl fmt::Display for BackendKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// The shared energy vocabulary of every backend's report.
///
/// The analytic runtime folds PE compute into its per-space dynamic
/// cost, so analytic reports carry it under [`EnergyCat::MemDynamic`];
/// the cycle backend meters PEs separately ([`EnergyCat::PeDynamic`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EnergyCat {
    /// Dynamic access energy of one memory technology in one cluster
    /// (weight + activation traffic; analytic reports include PE
    /// compute here).
    MemDynamic(ClusterClass, MemKind),
    /// Leakage of one memory technology in one cluster.
    MemStatic(ClusterClass, MemKind),
    /// Power-gating wake-up charges of one memory technology.
    MemWake(ClusterClass, MemKind),
    /// PE compute energy (cycle backend only).
    PeDynamic(ClusterClass),
    /// PE leakage.
    PeStatic(ClusterClass),
    /// Controller issue energy and leakage.
    Controller,
    /// Inter-space weight movement (re-placement) energy.
    Movement,
}

/// One time slice's outcome, shared by all backends.
#[derive(Debug, Clone, PartialEq)]
pub struct SliceRecord {
    /// Slice index.
    pub slice: usize,
    /// Tasks processed this slice.
    pub n_tasks: u32,
    /// Placement in effect (`None` for backends without a placement
    /// notion).
    pub placement: Option<Placement>,
    /// Per-task deadline after movement overhead.
    pub t_constraint: SimDuration,
    /// Per-task latency under this slice's configuration.
    pub task_time: SimDuration,
    /// Re-placement movement time paid at the slice boundary.
    pub movement_time: SimDuration,
    /// Groups moved at the boundary.
    pub groups_moved: usize,
    /// Whether every task met `t_constraint`.
    pub deadline_met: bool,
    /// Slice energy (all categories).
    pub energy: Energy,
}

/// Per-model-layer accounting aggregated over a whole trace, so the
/// analytic and cycle backends compare layer-by-layer.
///
/// Semantics differ by fidelity: the cycle backend *measures* each
/// layer's execution window and the energy spent inside it, while the
/// analytic backend *apportions* its per-task latency and dynamic
/// energy across PIM layers by MAC share.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerRecord {
    /// Index of the layer in the source model.
    pub layer: usize,
    /// Human-readable layer label.
    pub label: String,
    /// MAC operations attributed to the layer over the trace.
    pub macs: u64,
    /// Execution time attributed to the layer over the trace.
    pub time: SimDuration,
    /// Energy attributed to the layer over the trace.
    pub energy: Energy,
}

/// One re-placement event: the weight migration paid at a slice
/// boundary when the task-queue length changed.
#[derive(Debug, Clone, PartialEq)]
pub struct MigrationRecord {
    /// Slice whose start paid the migration.
    pub slice: usize,
    /// Placement before the move.
    pub from: Placement,
    /// Placement after the move.
    pub to: Placement,
    /// Weight groups moved.
    pub groups: usize,
    /// Bytes moved (`groups × group_size`).
    pub bytes: usize,
    /// Wall time of the migration.
    pub time: SimDuration,
    /// Energy of the migration traffic (reported under
    /// [`EnergyCat::Movement`]).
    pub energy: Energy,
}

/// The unified outcome of running one [`LoadTrace`] on any backend.
///
/// `PartialEq` compares every field bit for bit — the determinism
/// contracts ("same seed ⇒ bit-identical report") are stated, and
/// tested, as report equality.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionReport {
    /// Backend that produced the report.
    pub backend: BackendKind,
    /// Architecture that was executed.
    pub arch: Architecture,
    /// Per-slice records.
    pub records: Vec<SliceRecord>,
    /// Per-layer accounting over the whole trace (PIM layers only, in
    /// model order).
    pub layers: Vec<LayerRecord>,
    /// Re-placement events, in slice order (empty for architectures
    /// with a static placement).
    pub migrations: Vec<MigrationRecord>,
    /// Energy breakdown over the whole trace.
    pub energy: EnergyLedger<EnergyCat>,
    /// Instant the trace finished (nominal end of the last slice, or
    /// later if work overran it).
    pub elapsed: SimTime,
    /// Slices whose deadline was missed.
    pub deadline_misses: usize,
    /// PIM instructions executed (0 for backends that do not count).
    pub instructions: u64,
    /// MAC operations accounted for. Both backends now share one basis
    /// — the workload profile's PIM MACs per task: the analytic backend
    /// counts them from the profile, the cycle backend physically
    /// retires them (per-layer schedules plus the bit-exact head), so
    /// the counts agree to within per-layer rounding.
    pub macs: u64,
}

impl ExecutionReport {
    /// Total energy over the trace.
    pub fn total_energy(&self) -> Energy {
        self.energy.total()
    }

    /// Mean energy per slice.
    pub fn mean_slice_energy(&self) -> Energy {
        if self.records.is_empty() {
            Energy::ZERO
        } else {
            self.total_energy() / self.records.len() as f64
        }
    }
}

impl fmt::Display for ExecutionReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}]: {} slices, {} total, {} misses",
            self.arch,
            self.backend,
            self.records.len(),
            self.total_energy(),
            self.deadline_misses
        )
    }
}

/// Errors surfaced while building or running a backend.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum BackendError {
    /// The model does not fit the architecture's cost model.
    Cost(CostModelError),
    /// Lowering the model onto the cycle machine failed.
    Compile(CompileError),
    /// The cycle machine rejected an operation mid-trace.
    Machine(MachineError),
    /// The model has no layer the cycle machine can execute.
    NoPimLayer {
        /// The model that could not be lowered.
        model: TinyMlModel,
    },
    /// A caller-supplied placement violates the architecture's
    /// capacities or does not place all weight groups.
    InvalidPlacement {
        /// The offending placement.
        placement: Placement,
    },
}

impl fmt::Display for BackendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackendError::Cost(e) => write!(f, "cost model: {e}"),
            BackendError::Compile(e) => write!(f, "compile: {e}"),
            BackendError::Machine(e) => write!(f, "machine: {e}"),
            BackendError::NoPimLayer { model } => {
                write!(f, "{model} has no linear layer the PIM machine can execute")
            }
            BackendError::InvalidPlacement { placement } => {
                write!(f, "placement {placement} is invalid for this architecture")
            }
        }
    }
}

impl std::error::Error for BackendError {}

impl From<CostModelError> for BackendError {
    fn from(e: CostModelError) -> Self {
        match e {
            // A policy rejecting its pinned placement surfaces as the
            // backend's own placement error, as the old constructors did.
            CostModelError::InvalidPlacement { placement } => {
                BackendError::InvalidPlacement { placement }
            }
            other => BackendError::Cost(other),
        }
    }
}

impl From<CompileError> for BackendError {
    fn from(e: CompileError) -> Self {
        BackendError::Compile(e)
    }
}

impl From<MachineError> for BackendError {
    fn from(e: MachineError) -> Self {
        BackendError::Machine(e)
    }
}

/// A machine model that can execute load slices.
///
/// The primary interface is *streaming*: a run is opened with
/// [`ExecutionBackend::begin_stream`], fed one slice at a time through
/// the resumable [`ExecutionBackend::step_slice`] (where the placement
/// policy is consulted and any re-placement traffic moves), and closed
/// into a report by [`ExecutionBackend::finish_stream`]. The
/// [`crate::engine::Engine`] drives this path online; the batch
/// [`ExecutionBackend::execute`] is a provided loop over it and stays
/// bit-identical to the former monolithic runs.
///
/// Implementations must be rerunnable: streams (and `execute` calls)
/// may be opened in sequence, each producing an independent report.
/// `Send` is required so comparison harnesses can fan backends out
/// across threads.
pub trait ExecutionBackend: Send {
    /// Which backend this is.
    fn kind(&self) -> BackendKind;

    /// The architecture being executed.
    fn architecture(&self) -> Architecture;

    /// The runtime configuration shared with the analytic twin (slice
    /// duration, per-slice task cap) — what the engine needs to
    /// convert loads into task counts.
    fn runtime_config(&self) -> &RuntimeConfig;

    /// Opens a fresh streaming run, discarding any run in progress.
    ///
    /// # Errors
    ///
    /// Backend-specific; see [`BackendError`].
    fn begin_stream(&mut self) -> Result<(), BackendError>;

    /// Executes the next slice of the open stream (opening one if
    /// necessary): decides the slice's placement, pays any migration,
    /// runs `n_tasks` tasks and accounts the energy. The returned
    /// [`SliceOutcome`] carries the record and boundary decisions for
    /// the engine's event stream.
    ///
    /// # Errors
    ///
    /// Backend-specific; after an error the stream is poisoned and
    /// must be reopened with [`ExecutionBackend::begin_stream`].
    fn step_slice(&mut self, n_tasks: u32) -> Result<SliceOutcome, BackendError>;

    /// Executes the next `n_slices` slices of the open stream, each
    /// with the same `n_tasks`, appending one [`SliceOutcome`] per
    /// completed slice to `out` (`out` is not cleared). The batch twin
    /// of [`ExecutionBackend::step_slice`] — engines use it to amortize
    /// per-call overhead across runs of equal-load slices.
    ///
    /// # Errors
    ///
    /// On a failing slice the outcomes of the slices completed before
    /// it remain in `out`, the error is returned, and the stream is
    /// poisoned exactly as by a failing `step_slice`.
    fn step_n(
        &mut self,
        n_tasks: u32,
        n_slices: u32,
        out: &mut Vec<SliceOutcome>,
    ) -> Result<(), BackendError> {
        for _ in 0..n_slices {
            out.push(self.step_slice(n_tasks)?);
        }
        Ok(())
    }

    /// Closes the open stream into the unified report (an empty report
    /// if no slice was stepped).
    ///
    /// # Errors
    ///
    /// Backend-specific; see [`BackendError`].
    fn finish_stream(&mut self) -> Result<ExecutionReport, BackendError>;

    /// Runs a complete `trace`, producing the unified report — a batch
    /// loop over the streaming path above.
    ///
    /// # Errors
    ///
    /// Backend-specific; see [`BackendError`].
    fn execute(&mut self, trace: &LoadTrace) -> Result<ExecutionReport, BackendError> {
        self.begin_stream()?;
        for &n in &trace.task_counts(self.runtime_config().max_tasks) {
            self.step_slice(n)?;
        }
        self.finish_stream()
    }
}

/// The closed-form backend: wraps [`Processor`] (and through it the
/// [`crate::CostModel`] and placement optimizer).
#[derive(Debug, Clone)]
pub struct AnalyticBackend {
    processor: Processor,
    /// The open streaming run, if any.
    run: Option<AnalyticRun>,
}

impl AnalyticBackend {
    /// Builds the backend with default calibration.
    ///
    /// # Errors
    ///
    /// Fails if the model's weights do not fit the architecture.
    pub fn new(arch: Architecture, model: TinyMlModel) -> Result<Self, BackendError> {
        Ok(AnalyticBackend {
            processor: Processor::new(arch, model)?,
            run: None,
        })
    }

    /// Builds the backend with explicit calibration knobs.
    ///
    /// # Errors
    ///
    /// Fails if the model's weights do not fit the architecture.
    #[deprecated(
        note = "compose a session instead: `SessionBuilder::new().architecture(..).model(..)\
                .cost_params(..).optimizer(..).build_analytic()`"
    )]
    pub fn with_params(
        arch: Architecture,
        model: TinyMlModel,
        params: CostParams,
        opt_config: OptimizerConfig,
    ) -> Result<Self, BackendError> {
        crate::session::SessionBuilder::new()
            .architecture(arch)
            .model(model)
            .cost_params(params)
            .optimizer(opt_config)
            .build_analytic()
            .map_err(crate::session::SessionError::into_backend)
    }

    /// Builds the backend with an explicit [`PlacementPolicy`].
    ///
    /// # Errors
    ///
    /// Fails if the model's weights do not fit the architecture or the
    /// policy rejects its configuration.
    pub fn with_policy(
        arch: Architecture,
        model: TinyMlModel,
        policy: Box<dyn PlacementPolicy>,
    ) -> Result<Self, BackendError> {
        Ok(AnalyticBackend {
            processor: Processor::with_policy(
                arch,
                model,
                CostParams::default(),
                OptimizerConfig::default(),
                policy,
            )?,
            run: None,
        })
    }

    /// Wraps an already-built processor.
    pub fn from_processor(processor: Processor) -> Self {
        AnalyticBackend {
            processor,
            run: None,
        }
    }

    /// The wrapped processor.
    pub fn processor(&self) -> &Processor {
        &self.processor
    }
}

impl ExecutionBackend for AnalyticBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Analytic
    }

    fn architecture(&self) -> Architecture {
        self.processor.arch().arch
    }

    fn runtime_config(&self) -> &RuntimeConfig {
        self.processor.runtime()
    }

    fn begin_stream(&mut self) -> Result<(), BackendError> {
        self.run = Some(self.processor.begin_run());
        Ok(())
    }

    fn step_slice(&mut self, n_tasks: u32) -> Result<SliceOutcome, BackendError> {
        if self.run.is_none() {
            self.run = Some(self.processor.begin_run());
        }
        let run = self.run.as_mut().expect("stream opened above");
        Ok(self.processor.step_run(run, n_tasks))
    }

    fn finish_stream(&mut self) -> Result<ExecutionReport, BackendError> {
        let run = self
            .run
            .take()
            .unwrap_or_else(|| self.processor.begin_run());
        Ok(self.processor.finish_run(run))
    }
}

/// The structural backend: executes whole multi-layer programs on the
/// [`PimMachine`], driven slice-by-slice through the `hhpim_sim` event
/// engine.
///
/// Every inference task runs the model's complete PIM layer stack
/// (lowered once into a [`CompiledProgram`]): convolutions and wide
/// linears as traffic-accurate MAC streams split across storage spaces
/// according to the placement in effect, and the narrow classifier
/// head as bit-exact INT8 MAC bursts. On architectures with the
/// paper's dynamic placement policy the backend replays the runtime's
/// re-placement step at every queue-length change — it consults the
/// same [`crate::AllocationLut`] the analytic runtime built, issues the
/// actual weight-migration traffic between HP/LP modules and MRAM/SRAM
/// banks on the machine, and reports that traffic under
/// [`EnergyCat::Movement`] with one [`MigrationRecord`] per event.
///
/// Bank gating mirrors the architecture's [`GatingPolicy`]: under
/// `BankLevel`, MRAM banks and idle PEs power down between the busy
/// window and the next slice, SRAM banks holding weights stay on, and
/// weight-free SRAM act buffers are only powered while computing —
/// the same accounting the analytic runtime applies in closed form.
///
/// All reported times and energies are calibrated by the cost model's
/// `time_scale` (the knob that maps ASIC-scale access latencies onto
/// the paper's measured FPGA wall clock), so reports compare directly
/// against [`AnalyticBackend`] — including total energy, which the
/// parity suite bounds within a stated relative error.
#[derive(Debug)]
pub struct CycleBackend {
    arch: Architecture,
    machine: PimMachine,
    processor: Processor,
    program: CompiledProgram,
    input: Vec<i8>,
    placement: Placement,
    head_home: WeightHome,
    head_override: Option<WeightHome>,
    head_modules: Vec<usize>,
    time_scale: f64,
    /// The open streaming run, if any.
    run: Option<CycleRun>,
    mode: ExecMode,
    graph: TimeGraph,
}

/// How [`CycleBackend`] executes the per-task instruction stream.
///
/// Both modes drive the same [`PimMachine`] through arithmetically
/// identical operations and produce **bit-identical**
/// [`ExecutionReport`]s; the equivalence suite in
/// [`crate::timegraph`] keeps the object walk alive as the oracle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Replay the flat, arena-allocated [`TimeGraph`] (the fast path;
    /// programs are lowered once per placement and reused).
    #[default]
    TimingGraph,
    /// Interpret the object hierarchy per task (the original path;
    /// kept as the property-test oracle).
    ObjectWalk,
}

fn mem_select(kind: MemKind) -> MemSelect {
    match kind {
        MemKind::Mram => MemSelect::Mram,
        MemKind::Sram => MemSelect::Sram,
    }
}

impl CycleBackend {
    /// Builds the backend: shapes the machine after the architecture's
    /// Table I row, lowers the whole model into a [`CompiledProgram`],
    /// and adopts the analytic runtime's slice timing and allocation
    /// LUT so deadlines and placements mean the same thing on both
    /// backends.
    ///
    /// # Errors
    ///
    /// Fails if the model does not fit the architecture or has no
    /// machine-executable layer.
    pub fn new(arch: Architecture, model: TinyMlModel) -> Result<Self, BackendError> {
        let processor = Processor::new(arch, model)?;
        Self::build(processor, model, None)
    }

    /// Builds the backend with an explicit home for the bit-exact head
    /// (schedule layers still follow the placement).
    ///
    /// # Errors
    ///
    /// Fails if the model does not fit the architecture or has no
    /// machine-executable layer.
    #[deprecated(
        note = "compose a session instead: `SessionBuilder::new().architecture(..).model(..)\
                .head_home(..).build_cycle()`"
    )]
    pub fn with_weight_home(
        arch: Architecture,
        model: TinyMlModel,
        home: WeightHome,
    ) -> Result<Self, BackendError> {
        crate::session::SessionBuilder::new()
            .architecture(arch)
            .model(model)
            .head_home(home)
            .build_cycle()
            .map_err(crate::session::SessionError::into_backend)
    }

    /// Builds the backend pinned to one placement forever: no LUT is
    /// built, no migration traffic is issued. This is the fixed-home
    /// comparison point the paper measures HH-PIM against.
    ///
    /// # Errors
    ///
    /// Fails if `placement` is invalid for the architecture or the
    /// model cannot be lowered.
    #[deprecated(
        note = "compose a session instead: `SessionBuilder::new().architecture(..).model(..)\
                .policy(FixedHome::pinned(placement)).build_cycle()`"
    )]
    pub fn with_fixed_placement(
        arch: Architecture,
        model: TinyMlModel,
        placement: Placement,
    ) -> Result<Self, BackendError> {
        crate::session::SessionBuilder::new()
            .architecture(arch)
            .model(model)
            .policy(FixedHome::pinned(placement))
            .build_cycle()
            .map_err(crate::session::SessionError::into_backend)
    }

    /// Builds the backend with an explicit [`PlacementPolicy`] deciding
    /// every slice's placement (and with it the migration traffic).
    ///
    /// # Errors
    ///
    /// Fails if the model does not fit the architecture, the policy
    /// rejects its configuration, or no layer is machine-executable.
    pub fn with_policy(
        arch: Architecture,
        model: TinyMlModel,
        policy: Box<dyn PlacementPolicy>,
    ) -> Result<Self, BackendError> {
        let processor = Processor::with_policy(
            arch,
            model,
            CostParams::default(),
            OptimizerConfig::default(),
            policy,
        )?;
        Self::build(processor, model, None)
    }

    /// Builds the backend around an already-constructed analytic twin
    /// (the session builder's entry point: the processor carries the
    /// calibration, optimizer settings and placement policy).
    ///
    /// # Errors
    ///
    /// Fails if the model cannot be lowered onto the machine.
    pub fn from_processor(
        processor: Processor,
        model: TinyMlModel,
        head_override: Option<WeightHome>,
    ) -> Result<Self, BackendError> {
        Self::build(processor, model, head_override)
    }

    fn build(
        processor: Processor,
        model: TinyMlModel,
        head_override: Option<WeightHome>,
    ) -> Result<Self, BackendError> {
        let arch = processor.arch().arch;
        let params = *processor.cost().params();
        let spec = arch.spec();
        // Reserve the same per-module SRAM activation region the
        // analytic cost model assumes.
        let act_base = spec
            .sram_per_module
            .saturating_sub(params.act_reserve_per_module);
        let machine = PimMachine::new(MachineConfig {
            hp_modules: spec.hp_modules,
            lp_modules: spec.lp_modules,
            module: ModuleConfig {
                mram_bytes: spec.mram_per_module,
                sram_bytes: spec.sram_per_module,
                act_base,
            },
            ..MachineConfig::default()
        });

        let qm = QuantizedModel::random(model.build(), 0xDAC);
        let program =
            compile_model(&qm, processor.cost().profile().pim_macs).map_err(|e| match e {
                CompileError::NotLinear { .. } => BackendError::NoPimLayer { model },
                other => BackendError::Compile(other),
            })?;
        // A fixed, value-diverse activation vector for the head; the
        // machine's timing/energy is data-independent, so any input
        // serves.
        let input: Vec<i8> = program
            .head()
            .map(|h| {
                (0..h.in_features())
                    .map(|i| ((i * 37 + 11) % 256) as u8 as i8)
                    .collect()
            })
            .unwrap_or_default();
        let initial = processor.boot_placement();

        let mut backend = CycleBackend {
            arch,
            machine,
            processor,
            program,
            input,
            placement: initial,
            head_home: WeightHome::Sram,
            head_override,
            head_modules: Vec::new(),
            time_scale: params.time_scale,
            run: None,
            mode: ExecMode::default(),
            graph: TimeGraph::new(),
        };
        backend.refresh_head()?;
        backend.enter_idle()?;
        Ok(backend)
    }

    /// The wrapped machine.
    pub fn machine(&self) -> &PimMachine {
        &self.machine
    }

    /// How tasks are executed (timing-graph replay by default).
    pub fn exec_mode(&self) -> ExecMode {
        self.mode
    }

    /// Selects the execution path. Both paths are bit-identical; the
    /// object walk exists as the equivalence oracle and for debugging.
    pub fn set_exec_mode(&mut self, mode: ExecMode) {
        self.mode = mode;
    }

    /// The lowered timing graph (for inspection/benchmarks).
    pub fn timegraph(&self) -> &TimeGraph {
        &self.graph
    }

    /// Pre-lowers the timing-graph program for the placement currently
    /// realized on the machine, returning the cached program count.
    /// Lets benchmarks measure graph construction in isolation.
    pub fn prepare_graph(&mut self) -> usize {
        let mut graph = std::mem::take(&mut self.graph);
        graph.ensure_program(
            &self.machine,
            self.processor.arch(),
            &self.program,
            &self.placement,
            &self.head_modules,
            self.head_home,
            &self.input,
        );
        let count = graph.program_count();
        self.graph = graph;
        count
    }

    /// Drops every cached timing-graph program (for benchmarks).
    pub fn clear_graph(&mut self) {
        self.graph.clear();
    }

    /// The analytic twin providing slice timing, cost model and LUT.
    pub fn processor(&self) -> &Processor {
        &self.processor
    }

    /// The lowered program executed once per task.
    pub fn program(&self) -> &CompiledProgram {
        &self.program
    }

    /// Where the bit-exact head currently lives.
    pub fn weight_home(&self) -> WeightHome {
        self.head_home
    }

    /// The placement currently realized on the machine.
    pub fn placement(&self) -> Placement {
        self.placement
    }

    /// The slice duration adopted from the analytic runtime.
    pub fn slice_duration(&self) -> SimDuration {
        self.processor.runtime().slice_duration
    }

    /// Migrates the machine to `target` outside any trace, returning
    /// the migration's measured traffic (calibrated units). Useful for
    /// probing re-placement costs in isolation; during `execute` the
    /// backend migrates on its own at slice boundaries.
    ///
    /// # Errors
    ///
    /// Fails if `target` is invalid for the architecture or the
    /// machine rejects the traffic.
    pub fn migrate_to(&mut self, target: Placement) -> Result<MigrationRecord, BackendError> {
        if !self.processor.cost().is_valid(&target) {
            return Err(BackendError::InvalidPlacement { placement: target });
        }
        self.wake_for(self.placement, target)?;
        let mut scratch = EnergyLedger::new();
        let record = self.migrate(0, target, &mut scratch)?;
        self.enter_idle()?;
        Ok(record)
    }

    fn placement_for(&self, n_tasks: u32) -> Placement {
        self.processor.placement_for_tasks(n_tasks)
    }

    fn gating_enabled(&self) -> bool {
        self.processor.arch().gating == GatingPolicy::BankLevel
    }

    fn cluster_modules(&self, cluster: ClusterClass) -> Range<usize> {
        let spec = self.processor.arch();
        match cluster {
            ClusterClass::HighPerformance => 0..spec.hp_modules,
            ClusterClass::LowPower => spec.hp_modules..spec.hp_modules + spec.lp_modules,
        }
    }

    /// Global indices of the modules in clusters the placement keeps
    /// busy (every machine has at least one occupied cluster).
    fn active_modules(&self) -> Vec<usize> {
        let mut modules = Vec::new();
        for class in ClusterClass::ALL {
            if self.placement.cluster_total(class) > 0 {
                modules.extend(self.cluster_modules(class));
            }
        }
        if modules.is_empty() {
            modules.extend(0..self.machine.module_count());
        }
        modules
    }

    /// The head follows the bulk of the weights: it stays in SRAM while
    /// any SRAM space is occupied (those banks are powered anyway) and
    /// retreats into non-volatile MRAM when the placement is MRAM-only,
    /// so idle gating never strands it in a dark bank.
    fn head_home_for(&self, placement: &Placement) -> WeightHome {
        let sram = placement.get(StorageSpace::HpSram) + placement.get(StorageSpace::LpSram);
        if sram > 0 {
            WeightHome::Sram
        } else {
            WeightHome::Mram
        }
    }

    /// Recomputes the head's residency for the current placement and
    /// re-installs its rows (the runtime's data allocator re-homes the
    /// whole network; the ~1 kB head rides along with the bulk
    /// migration whose traffic is metered separately).
    fn refresh_head(&mut self) -> Result<(), BackendError> {
        self.head_modules = self.active_modules();
        self.head_home = self
            .head_override
            .unwrap_or_else(|| self.head_home_for(&self.placement));
        if let Some(head) = self.program.head() {
            head.install(&mut self.machine, &self.head_modules, self.head_home)
                .map_err(BackendError::Compile)?;
        }
        Ok(())
    }

    fn module_err(global: usize, error: hhpim_pim::ModuleError) -> BackendError {
        BackendError::Machine(MachineError::Module {
            module: global,
            error,
        })
    }

    /// Powers up everything the coming busy window needs: banks and PEs
    /// of every cluster occupied by either placement (migration legs
    /// only ever touch those).
    fn wake_for(&mut self, from: Placement, to: Placement) -> Result<(), BackendError> {
        if !self.gating_enabled() {
            return Ok(());
        }
        let now = self.machine.now();
        for class in ClusterClass::ALL {
            if from.cluster_total(class) == 0 && to.cluster_total(class) == 0 {
                continue;
            }
            for g in self.cluster_modules(class) {
                if self.machine.module(g).has_mram() {
                    self.machine
                        .module_mut(g)
                        .set_gated(now, MemSelect::Mram, false)
                        .map_err(|e| Self::module_err(g, e))?;
                }
                self.machine
                    .module_mut(g)
                    .set_gated(now, MemSelect::Sram, false)
                    .map_err(|e| Self::module_err(g, e))?;
                self.machine.module_mut(g).set_pe_powered(now, true);
            }
        }
        Ok(())
    }

    /// Applies the architecture's idle gating: MRAM banks and PEs power
    /// down, SRAM banks without resident weights release their buffers
    /// and gate; SRAM weight banks stay on (volatile retention), as the
    /// analytic runtime charges them.
    fn enter_idle(&mut self) -> Result<(), BackendError> {
        if !self.gating_enabled() {
            return Ok(());
        }
        let now = self.machine.now();
        for class in ClusterClass::ALL {
            let modules: Vec<usize> = self.cluster_modules(class).collect();
            if modules.is_empty() {
                continue;
            }
            let sram_space = StorageSpace::of_cluster(class)[1];
            let weight_banks = self.placement.get(sram_space).min(modules.len());
            for (local, &g) in modules.iter().enumerate() {
                if self.machine.module(g).has_mram() {
                    self.machine
                        .module_mut(g)
                        .set_gated(now, MemSelect::Mram, true)
                        .map_err(|e| Self::module_err(g, e))?;
                }
                if local >= weight_banks {
                    let live = self.machine.module(g).bank(MemSelect::Sram).live_bytes();
                    if live > 0 {
                        self.machine
                            .module_mut(g)
                            .free_bytes(MemSelect::Sram, live)
                            .map_err(|e| Self::module_err(g, e))?;
                    }
                    self.machine
                        .module_mut(g)
                        .set_gated(now, MemSelect::Sram, true)
                        .map_err(|e| Self::module_err(g, e))?;
                }
                self.machine.module_mut(g).set_pe_powered(now, false);
            }
        }
        Ok(())
    }

    /// Adopts `target` without traffic (the analytic runtime's first
    /// slice is likewise free), refreshing head residency and gating.
    fn apply_placement_free(&mut self, target: Placement) -> Result<(), BackendError> {
        self.placement = target;
        self.refresh_head()?;
        self.enter_idle()
    }

    /// Executes the weight migration from the current placement to
    /// `target` on the machine and accounts its dynamic traffic into
    /// `migration_dyn` (reclassified as [`EnergyCat::Movement`] at
    /// report time).
    fn migrate(
        &mut self,
        slice: usize,
        target: Placement,
        migration_dyn: &mut EnergyLedger<hhpim_pim::EnergyCat>,
    ) -> Result<MigrationRecord, BackendError> {
        let from = self.placement;
        let start = self.machine.now();
        let before = self.machine.report();
        let group = self.processor.cost().params().group_size;
        let mut groups = 0usize;
        for leg in movement_legs(&from, &target) {
            groups += leg.groups;
            self.transfer_leg(leg, leg.groups * group)?;
        }
        self.machine.execute(PimInstruction::Barrier)?;
        let after = self.machine.report();
        let mut moved_energy = Energy::ZERO;
        for (&cat, e) in after.energy.iter() {
            if let hhpim_pim::EnergyCat::MemDynamic(..) = cat {
                let delta = e.saturating_sub(before.energy.get(cat));
                if delta.as_pj() > 0.0 {
                    migration_dyn.add(cat, delta);
                    moved_energy += delta;
                }
            }
        }
        self.placement = target;
        self.refresh_head()?;
        Ok(MigrationRecord {
            slice,
            from,
            to: target,
            groups,
            bytes: groups * group,
            time: self
                .machine
                .now()
                .saturating_since(start)
                .mul_f64(self.time_scale),
            energy: moved_energy * self.time_scale,
        })
    }

    /// Moves `bytes` of one migration leg: lanes pair source and
    /// destination modules (one group stream per module pair, exactly
    /// the parallelism the analytic movement model assumes); same-module
    /// legs use the module interface's MRAM↔SRAM path, cross-cluster
    /// legs read on one side and write on the other through the Data
    /// Allocator's MEM interface.
    fn transfer_leg(&mut self, leg: MovementLeg, bytes: usize) -> Result<(), BackendError> {
        let src_mods: Vec<usize> = self.cluster_modules(leg.src.cluster()).collect();
        let dst_mods: Vec<usize> = self.cluster_modules(leg.dst.cluster()).collect();
        if src_mods.is_empty() || dst_mods.is_empty() {
            return Ok(());
        }
        let src_mem = mem_select(leg.src.kind());
        let dst_mem = mem_select(leg.dst.kind());
        let cfg = self.machine.config().module;
        let region = |kind: MemKind| match kind {
            MemKind::Mram => cfg.mram_bytes,
            MemKind::Sram => cfg.act_base,
        };
        let chunk_max = 1.max(
            region(leg.src.kind())
                .min(region(leg.dst.kind()))
                .min(16 * 1024),
        );
        let lanes = src_mods.len();
        let base = bytes / lanes;
        let rem = bytes % lanes;
        let at = self.machine.now();
        for (i, &src_g) in src_mods.iter().enumerate() {
            let dst_g = dst_mods[i % dst_mods.len()];
            let mut remaining = base + usize::from(i < rem);
            while remaining > 0 {
                let chunk = remaining.min(chunk_max);
                if src_g == dst_g {
                    self.machine
                        .module_mut(src_g)
                        .move_intra(at, src_mem, 0, chunk)
                        .map_err(|e| Self::module_err(src_g, e))?;
                } else {
                    let (done, data) = self
                        .machine
                        .module_mut(src_g)
                        .read_words(at, src_mem, 0, chunk)
                        .map_err(|e| Self::module_err(src_g, e))?;
                    self.machine
                        .module_mut(dst_g)
                        .write_words(done, dst_mem, 0, &data)
                        .map_err(|e| Self::module_err(dst_g, e))?;
                }
                remaining -= chunk;
            }
        }
        Ok(())
    }

    /// Executes one inference task: every schedule layer splits across
    /// the occupied spaces by group share and streams on that cluster's
    /// modules in parallel; the head runs bit-exactly; a barrier closes
    /// each layer (layers depend on their predecessor's outputs).
    #[allow(clippy::too_many_arguments)]
    fn run_task(
        machine: &mut PimMachine,
        program: &CompiledProgram,
        placement: &Placement,
        head_modules: &[usize],
        head_home: WeightHome,
        input: &[i8],
        spec: &crate::arch::ArchSpec,
        accs: &mut [LayerAcc],
    ) -> Result<(), BackendError> {
        let k = placement.total().max(1);
        let mut probe = machine.report();
        for (i, layer) in program.layers().iter().enumerate() {
            let t0 = machine.now();
            match &layer.op {
                LayerOp::Schedule { macs_per_task } => {
                    for (space, groups) in placement.occupied() {
                        let cluster = space.cluster();
                        let modules = spec.modules_in(cluster);
                        if modules == 0 {
                            continue;
                        }
                        let share = *macs_per_task as f64 * groups as f64 / k as f64;
                        let per_module = (share / modules as f64).ceil() as usize;
                        if per_module == 0 {
                            continue;
                        }
                        let lo = match cluster {
                            ClusterClass::HighPerformance => 0,
                            ClusterClass::LowPower => spec.hp_modules,
                        };
                        let mask = ModuleMask::range(lo as u8, (lo + modules - 1) as u8);
                        machine.mac_stream(mask, mem_select(space.kind()), 0, per_module)?;
                    }
                }
                LayerOp::Head(plan) => {
                    plan.run(machine, head_modules, head_home, input)
                        .map_err(BackendError::Compile)?;
                }
            }
            machine.execute(PimInstruction::Barrier)?;
            let done = machine.report();
            accs[i].macs += done.macs - probe.macs;
            accs[i].time += machine.now().saturating_since(t0);
            accs[i].energy_pj += done.total_energy().as_pj() - probe.total_energy().as_pj();
            probe = done;
        }
        Ok(())
    }

    /// Runs the slice's tasks over the timing graph: look up (or lower)
    /// the current placement's node program, seed the time queue from
    /// the machine's live completion state, then replay the arena once
    /// per task.
    fn replay_tasks(&mut self, run: &mut CycleRun, n_tasks: u32) -> Result<(), BackendError> {
        let mut graph = std::mem::take(&mut self.graph);
        let result = (|| {
            let prog = graph.ensure_program(
                &self.machine,
                self.processor.arch(),
                &self.program,
                &self.placement,
                &self.head_modules,
                self.head_home,
                &self.input,
            );
            graph.seed(&self.machine);
            for _ in 0..n_tasks {
                graph.replay_task(&mut self.machine, prog, &mut run.accs)?;
            }
            Ok(())
        })();
        self.graph = graph;
        result
    }

    /// One slice on the machine: re-place if the queue length changed,
    /// run the tasks, then gate down for the idle remainder.
    fn do_slice(
        &mut self,
        run: &mut CycleRun,
        event_now: SimTime,
        slice: usize,
        n_tasks: u32,
    ) -> Result<(), BackendError> {
        // Work may overrun a slice; the backlog then delays the next
        // slice's start, exactly like a busy port.
        let slice_start = event_now.max(self.machine.now());
        self.machine.idle_until(slice_start);

        let target = self.placement_for(n_tasks);
        self.wake_for(self.placement, target)?;
        let migration = if target != self.placement {
            Some(self.migrate(slice, target, &mut run.migration_dyn)?)
        } else {
            // Idle gating may have powered down volatile SRAM banks
            // that carried head rows (their contents are physically
            // lost in gated SRAM); the host re-pushes the ~1 kB head
            // after wake-up, as it would on real silicon. Migrated
            // slices get this via migrate() → refresh_head().
            if self.gating_enabled() {
                self.refresh_head()?;
            }
            None
        };
        let movement_native = self.machine.now().saturating_since(slice_start);

        let busy_start = self.machine.now();
        match self.mode {
            ExecMode::TimingGraph => self.replay_tasks(run, n_tasks)?,
            ExecMode::ObjectWalk => {
                for _ in 0..n_tasks {
                    Self::run_task(
                        &mut self.machine,
                        &self.program,
                        &self.placement,
                        &self.head_modules,
                        self.head_home,
                        &self.input,
                        self.processor.arch(),
                        &mut run.accs,
                    )?;
                }
            }
        }
        let busy = self.machine.now().saturating_since(busy_start);
        // Statics accrue across the idle remainder of the slice under
        // the architecture's gating policy.
        self.enter_idle()?;
        self.machine.idle_until(event_now + run.native_slice);

        let scale = self.time_scale;
        let slice_duration = self.processor.runtime().slice_duration;
        let movement_time = movement_native.mul_f64(scale);
        let usable = slice_duration.saturating_sub(movement_time);
        let n = n_tasks.max(1) as u64;
        let t_constraint = usable / n;
        let task_time = busy.mul_f64(scale) / n;
        let total = self.machine.report().total_energy();
        run.records.push(SliceRecord {
            slice,
            n_tasks,
            placement: Some(self.placement),
            t_constraint,
            task_time,
            movement_time,
            groups_moved: migration.as_ref().map(|m| m.groups).unwrap_or(0),
            deadline_met: task_time <= t_constraint,
            energy: total.saturating_sub(run.prev_total) * scale,
        });
        run.prev_total = total;
        if let Some(m) = migration {
            run.migrations.push(m);
        }
        Ok(())
    }

    /// One streaming step: boot on the first slice (its placement is
    /// adopted for free, mirroring the analytic runtime), execute the
    /// slice at its nominal start time, and package the boundary
    /// decisions for the engine.
    fn step_cycle(
        &mut self,
        run: &mut CycleRun,
        n_tasks: u32,
    ) -> Result<SliceOutcome, BackendError> {
        if !run.booted {
            self.apply_placement_free(self.placement_for(n_tasks))?;
            run.booted = true;
        }
        // The same instant the former event loop scheduled this slice
        // at: nominal starts on the native timeline, back-to-back.
        let event_now = run.start_now + run.native_slice * run.slice as u64;
        let slice = run.slice;
        let from = self.placement;
        self.do_slice(run, event_now, slice, n_tasks)?;
        let to = self.placement;
        let record = run
            .records
            .last()
            .expect("do_slice pushes a record")
            .clone();
        let migration = run.migrations.last().filter(|m| m.slice == slice).cloned();
        let idle = self
            .processor
            .runtime()
            .slice_duration
            .saturating_sub(record.movement_time + record.task_time * n_tasks.max(1) as u64);
        run.slice += 1;
        Ok(SliceOutcome {
            record,
            replacement: (from != to).then(|| ReplacementDecision {
                from,
                to,
                legs: movement_legs(&from, &to),
            }),
            migration,
            idle,
        })
    }
}

impl ExecutionBackend for CycleBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Cycle
    }

    fn architecture(&self) -> Architecture {
        self.arch
    }

    fn runtime_config(&self) -> &RuntimeConfig {
        self.processor.runtime()
    }

    fn begin_stream(&mut self) -> Result<(), BackendError> {
        let scale = self.time_scale;
        let start_now = self.machine.now();
        let start_report = self.machine.report();
        self.run = Some(CycleRun {
            records: Vec::new(),
            migrations: Vec::new(),
            accs: vec![LayerAcc::default(); self.program.layers().len()],
            migration_dyn: EnergyLedger::new(),
            prev_total: start_report.total_energy(),
            start_now,
            start_report,
            // The machine runs in native (uncalibrated) time; slices
            // are paced at the calibrated duration divided back down so
            // the two timelines describe the same physical slice.
            native_slice: self.processor.runtime().slice_duration.mul_f64(1.0 / scale),
            booted: false,
            slice: 0,
        });
        Ok(())
    }

    fn step_slice(&mut self, n_tasks: u32) -> Result<SliceOutcome, BackendError> {
        if self.run.is_none() {
            self.begin_stream()?;
        }
        let mut run = self.run.take().expect("stream opened above");
        let result = self.step_cycle(&mut run, n_tasks);
        self.run = Some(run);
        result
    }

    fn step_n(
        &mut self,
        n_tasks: u32,
        n_slices: u32,
        out: &mut Vec<SliceOutcome>,
    ) -> Result<(), BackendError> {
        if self.run.is_none() {
            self.begin_stream()?;
        }
        // Take the run once for the whole batch instead of once per
        // slice — the amortized drain behind `Engine::step_n`.
        let mut run = self.run.take().expect("stream opened above");
        let mut result = Ok(());
        for _ in 0..n_slices {
            match self.step_cycle(&mut run, n_tasks) {
                Ok(outcome) => out.push(outcome),
                Err(e) => {
                    result = Err(e);
                    break;
                }
            }
        }
        self.run = Some(run);
        result
    }

    fn finish_stream(&mut self) -> Result<ExecutionReport, BackendError> {
        if self.run.is_none() {
            self.begin_stream()?;
        }
        let run = self.run.take().expect("stream opened above");
        let scale = self.time_scale;

        // Report only this stream's share: previous runs on the same
        // machine already accounted for their energy. Dynamic traffic
        // spent inside migrations is reclassified from its per-bank
        // category into the shared Movement category.
        let run_report = self.machine.report();
        let mut energy = EnergyLedger::new();
        for (&cat, e) in run_report.energy.iter() {
            let mut delta = e.saturating_sub(run.start_report.energy.get(cat));
            if matches!(cat, hhpim_pim::EnergyCat::MemDynamic(..)) {
                delta = delta.saturating_sub(run.migration_dyn.get(cat));
            }
            if delta.as_pj() > 0.0 {
                energy.add(unify_machine_cat(cat), delta * scale);
            }
        }
        let moved = run.migration_dyn.total();
        if moved.as_pj() > 0.0 {
            energy.add(EnergyCat::Movement, moved * scale);
        }
        let layers = self
            .program
            .layers()
            .iter()
            .zip(&run.accs)
            .map(|(l, a)| LayerRecord {
                layer: l.layer,
                label: l.label.clone(),
                macs: a.macs,
                time: a.time.mul_f64(scale),
                energy: Energy::from_pj(a.energy_pj * scale),
            })
            .collect();
        let deadline_misses = run.records.iter().filter(|r| !r.deadline_met).count();
        Ok(ExecutionReport {
            backend: BackendKind::Cycle,
            arch: self.arch,
            records: run.records,
            layers,
            migrations: run.migrations,
            energy,
            // Stream-local, like the analytic backend's elapsed, so
            // reruns on the same machine stay comparable.
            elapsed: SimTime::ZERO
                + self
                    .machine
                    .now()
                    .saturating_since(run.start_now)
                    .mul_f64(scale),
            deadline_misses,
            instructions: run_report.instructions - run.start_report.instructions,
            macs: run_report.macs - run.start_report.macs,
        })
    }
}

/// Maps the machine's native categories into the shared vocabulary.
fn unify_machine_cat(cat: hhpim_pim::EnergyCat) -> EnergyCat {
    use hhpim_pim::EnergyCat as M;
    match cat {
        M::MemDynamic(c, k) => EnergyCat::MemDynamic(c, k),
        M::MemStatic(c, k) => EnergyCat::MemStatic(c, k),
        M::MemWake(c, k) => EnergyCat::MemWake(c, k),
        M::PeDynamic(c) => EnergyCat::PeDynamic(c),
        M::PeStatic(c) => EnergyCat::PeStatic(c),
        M::Controller(_) => EnergyCat::Controller,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hhpim_workload::{Scenario, ScenarioParams};

    fn small(scenario: Scenario) -> LoadTrace {
        LoadTrace::generate(
            scenario,
            ScenarioParams {
                slices: 5,
                ..ScenarioParams::default()
            },
        )
    }

    #[test]
    fn both_backends_share_report_shape() {
        let trace = small(Scenario::PeriodicSpike);
        let mut analytic =
            AnalyticBackend::new(Architecture::HhPim, TinyMlModel::MobileNetV2).unwrap();
        let mut cycle = CycleBackend::new(Architecture::HhPim, TinyMlModel::MobileNetV2).unwrap();
        let reports = [
            analytic.execute(&trace).unwrap(),
            cycle.execute(&trace).unwrap(),
        ];
        for r in &reports {
            assert_eq!(r.records.len(), 5);
            assert!(r.total_energy().as_pj() > 0.0);
            assert!(r.elapsed > SimTime::ZERO);
            for (i, rec) in r.records.iter().enumerate() {
                assert_eq!(rec.slice, i);
                assert!(rec.energy.as_pj() >= 0.0);
            }
        }
        assert_eq!(reports[0].backend, BackendKind::Analytic);
        assert_eq!(reports[1].backend, BackendKind::Cycle);
        assert_eq!(reports[0].deadline_misses, reports[1].deadline_misses);
    }

    #[test]
    fn cycle_backend_counts_real_work() {
        let trace = small(Scenario::HighConstant);
        let mut cycle = CycleBackend::new(Architecture::HhPim, TinyMlModel::MobileNetV2).unwrap();
        let r = cycle.execute(&trace).unwrap();
        let tasks: u64 = r.records.iter().map(|rec| rec.n_tasks as u64).sum();
        assert!(
            r.macs >= tasks * 88,
            "88-feature head: {} macs for {tasks} tasks",
            r.macs
        );
        assert!(r.instructions > 0);
        assert!(
            r.energy
                .get(EnergyCat::PeDynamic(ClusterClass::HighPerformance))
                .as_pj()
                > 0.0
        );
    }

    #[test]
    fn cycle_backend_is_rerunnable_with_independent_reports() {
        let trace = small(Scenario::LowConstant);
        let mut cycle = CycleBackend::new(Architecture::HhPim, TinyMlModel::MobileNetV2).unwrap();
        let a = cycle.execute(&trace).unwrap();
        let b = cycle.execute(&trace).unwrap();
        assert_eq!(a.records.len(), b.records.len());
        let (ea, eb) = (a.total_energy().as_pj(), b.total_energy().as_pj());
        assert!(
            (ea - eb).abs() / ea < 0.05,
            "re-run energy drifted: {ea} vs {eb}"
        );
        assert_eq!(a.macs, b.macs);
        // Elapsed is trace-local, not cumulative machine time.
        assert_eq!(a.elapsed, b.elapsed);
    }

    #[test]
    fn all_architectures_run_on_the_cycle_machine() {
        let trace = small(Scenario::PeriodicSpike);
        for arch in Architecture::ALL {
            let mut cycle = CycleBackend::new(arch, TinyMlModel::MobileNetV2).unwrap();
            let r = cycle.execute(&trace).unwrap();
            assert_eq!(r.arch, arch);
            assert_eq!(r.deadline_misses, 0, "{arch}");
        }
    }

    #[test]
    fn hybrid_defaults_to_mram_home() {
        let cycle = CycleBackend::new(Architecture::Hybrid, TinyMlModel::MobileNetV2).unwrap();
        assert_eq!(cycle.weight_home(), WeightHome::Mram);
        let hh = CycleBackend::new(Architecture::HhPim, TinyMlModel::MobileNetV2).unwrap();
        assert_eq!(hh.weight_home(), WeightHome::Sram);
    }

    #[test]
    fn trait_objects_run_both_backends() {
        let trace = small(Scenario::PeriodicSpike);
        let mut backends: Vec<Box<dyn ExecutionBackend>> = vec![
            Box::new(AnalyticBackend::new(Architecture::HhPim, TinyMlModel::MobileNetV2).unwrap()),
            Box::new(CycleBackend::new(Architecture::HhPim, TinyMlModel::MobileNetV2).unwrap()),
        ];
        let mut kinds = Vec::new();
        for b in &mut backends {
            let r = b.execute(&trace).unwrap();
            assert_eq!(r.arch, Architecture::HhPim);
            kinds.push(r.backend);
        }
        assert_eq!(kinds, [BackendKind::Analytic, BackendKind::Cycle]);
    }
}
