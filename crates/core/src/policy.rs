//! First-class placement policies: *how* the runtime answers "where do
//! the weight groups live for an `n`-task slice?".
//!
//! The paper's runtime hardwires one answer — consult the DP-built
//! [`AllocationLut`] — and the comparison architectures hardwire
//! another — never move. This module lifts that decision out of
//! [`crate::Processor`] and [`crate::CycleBackend`] into a
//! [`PlacementPolicy`] trait object, so a
//! [`crate::session::SessionBuilder`] can swap policies without new
//! constructors:
//!
//! | policy             | decision                                            |
//! |--------------------|-----------------------------------------------------|
//! | [`LutAdaptive`]    | Algorithms 1 & 2 LUT lookup (the paper's HH-PIM)    |
//! | [`FixedHome`]      | one placement forever (Baseline/Hetero/Hybrid, or a caller-pinned home) |
//! | [`GreedyBaseline`] | energy-greedy fill, repaired group-by-group until the deadline fits |
//!
//! Both execution backends consume the same policy object, so a policy
//! choice changes the analytic accounting and the cycle-level machine
//! identically.

use crate::arch::{Architecture, PlacementMode};
use crate::cost::{CostModel, CostModelError};
use crate::dp::{AllocationLut, OptimizerConfig};
use crate::runtime::RuntimeConfig;
use crate::space::{Placement, StorageSpace};
use crate::store::PlacementStore;
use hhpim_sim::SimDuration;
use std::fmt;
use std::sync::Arc;

/// A weight-placement decision procedure, bound to one cost model at
/// session build time via [`PlacementPolicy::prepare`].
///
/// Implementations must be deterministic: the same prepared policy
/// asked about the same task count must always answer the same
/// placement (the runtime replays decisions slice by slice on both
/// backends and the reports must agree). `Send` is required so
/// policy-holding backends can fan out across comparison threads.
pub trait PlacementPolicy: fmt::Debug + Send {
    /// Short machine-readable name (used in artifacts and reports).
    fn name(&self) -> &'static str;

    /// Builds per-model state (e.g. the allocation LUT) once, before
    /// any placement query. Called by [`crate::Processor`] during
    /// construction.
    ///
    /// Expensive state must be obtained through `store` rather than
    /// built privately: the [`PlacementStore`] memoizes it per
    /// configuration, so every processor, backend and sweep cell in a
    /// process sharing one store pays each DP exactly once. With a
    /// persistent [`crate::artifact`] tier attached to the store
    /// (memory hit → disk hit → build-and-write-back), a policy
    /// prepared in a fresh process may pay no DP at all — the ladder
    /// is transparent here, and a loaded LUT is bit-identical to the
    /// build it replaces.
    ///
    /// # Errors
    ///
    /// Policies validating caller-supplied state (e.g. a pinned
    /// placement) fail here with
    /// [`CostModelError::InvalidPlacement`].
    fn prepare(
        &mut self,
        cost: &CostModel,
        runtime: &RuntimeConfig,
        opt: &OptimizerConfig,
        store: &PlacementStore,
    ) -> Result<(), CostModelError>;

    /// The placement for an `n_tasks` slice.
    fn placement_for(&self, cost: &CostModel, n_tasks: u32) -> Placement;

    /// The placement adopted at boot, before the first slice is known.
    fn boot_placement(&self, cost: &CostModel) -> Placement {
        self.placement_for(cost, 1)
    }

    /// Whether the policy can re-place between slices (`false` lets
    /// backends skip migration machinery entirely).
    fn is_adaptive(&self) -> bool {
        true
    }

    /// Clones the policy into a box (keeps policy-holding types
    /// [`Clone`]).
    fn clone_box(&self) -> Box<dyn PlacementPolicy>;
}

impl Clone for Box<dyn PlacementPolicy> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// A boxed policy is itself a policy, delegating every method to its
/// contents. This lets call sites that select policies dynamically —
/// per-tenant overrides in [`crate::server::ServerBuilder`], config
/// tables, CLI dispatch — hand a `Box<dyn PlacementPolicy>` straight
/// to [`crate::session::SessionBuilder::policy`] without a concrete
/// type in sight.
impl PlacementPolicy for Box<dyn PlacementPolicy> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn prepare(
        &mut self,
        cost: &CostModel,
        runtime: &RuntimeConfig,
        opt: &OptimizerConfig,
        store: &PlacementStore,
    ) -> Result<(), CostModelError> {
        (**self).prepare(cost, runtime, opt, store)
    }

    fn placement_for(&self, cost: &CostModel, n_tasks: u32) -> Placement {
        (**self).placement_for(cost, n_tasks)
    }

    fn boot_placement(&self, cost: &CostModel) -> Placement {
        (**self).boot_placement(cost)
    }

    fn is_adaptive(&self) -> bool {
        (**self).is_adaptive()
    }

    fn clone_box(&self) -> Box<dyn PlacementPolicy> {
        (**self).clone_box()
    }
}

/// The architecture's Table I default policy: the DP LUT for
/// [`PlacementMode::DynamicDp`] designs, the fixed architectural home
/// otherwise.
pub fn default_policy(arch: Architecture) -> Box<dyn PlacementPolicy> {
    match arch.spec().placement {
        PlacementMode::DynamicDp => Box::new(LutAdaptive::new()),
        PlacementMode::Static => Box::new(FixedHome::arch_default()),
    }
}

/// The paper's HH-PIM policy: every queue-length change consults the
/// [`AllocationLut`] built by the bottom-up DP (Algorithms 1 & 2),
/// falling back to the fastest placement when the entry is infeasible.
///
/// The LUT is obtained from the [`PlacementStore`] in
/// [`PlacementPolicy::prepare`]: the first policy prepared for a
/// configuration runs the DP, every later one shares the same
/// [`Arc`]'d table.
#[derive(Debug, Clone, Default)]
pub struct LutAdaptive {
    lut: Option<Arc<AllocationLut>>,
}

impl LutAdaptive {
    /// An unprepared LUT policy (the LUT is resolved in `prepare`).
    pub fn new() -> Self {
        Self::default()
    }

    /// The prepared LUT (`None` before `prepare`).
    pub fn lut(&self) -> Option<&AllocationLut> {
        self.lut.as_deref()
    }
}

impl PlacementPolicy for LutAdaptive {
    fn name(&self) -> &'static str {
        "lut-adaptive"
    }

    fn prepare(
        &mut self,
        cost: &CostModel,
        runtime: &RuntimeConfig,
        opt: &OptimizerConfig,
        store: &PlacementStore,
    ) -> Result<(), CostModelError> {
        self.lut = Some(store.lut(cost, runtime, opt));
        Ok(())
    }

    fn placement_for(&self, cost: &CostModel, n_tasks: u32) -> Placement {
        self.lut
            .as_ref()
            .and_then(|lut| lut.lookup(n_tasks))
            .map(|p| p.placement)
            .unwrap_or_else(|| cost.fastest_placement())
    }

    fn boot_placement(&self, cost: &CostModel) -> Placement {
        // The dynamic machine powers up at its peak configuration; the
        // first slice then re-places for the actual load.
        cost.fastest_placement()
    }

    fn clone_box(&self) -> Box<dyn PlacementPolicy> {
        Box::new(self.clone())
    }
}

/// One placement forever: either the architecture's Table I default
/// home or a caller-pinned placement. Never re-places, so backends
/// issue no migration traffic — this is the comparison point the paper
/// measures HH-PIM against.
#[derive(Debug, Clone, Default)]
pub struct FixedHome {
    pinned: Option<Placement>,
    home: Option<Placement>,
}

impl FixedHome {
    /// The architecture's default fixed home (all-SRAM for Baseline,
    /// the fastest split for Heterogeneous/HH, all-MRAM for Hybrid),
    /// resolved against the cost model in `prepare`.
    pub fn arch_default() -> Self {
        Self::default()
    }

    /// Pins an explicit placement; `prepare` rejects it if it violates
    /// capacities or does not place all weight groups.
    pub fn pinned(placement: Placement) -> Self {
        FixedHome {
            pinned: Some(placement),
            home: None,
        }
    }

    /// The resolved home (`None` before `prepare`).
    pub fn home(&self) -> Option<Placement> {
        self.home
    }
}

/// The Table I fixed home of `arch` under `cost`.
pub(crate) fn arch_fixed_home(arch: Architecture, cost: &CostModel) -> Placement {
    match arch {
        Architecture::Baseline => Placement::all_in(StorageSpace::HpSram, cost.k_groups()),
        Architecture::Hybrid => Placement::all_in(StorageSpace::HpMram, cost.k_groups()),
        _ => cost.fastest_placement(),
    }
}

impl PlacementPolicy for FixedHome {
    fn name(&self) -> &'static str {
        "fixed-home"
    }

    fn prepare(
        &mut self,
        cost: &CostModel,
        _runtime: &RuntimeConfig,
        _opt: &OptimizerConfig,
        store: &PlacementStore,
    ) -> Result<(), CostModelError> {
        self.home = Some(store.fixed_home(cost, self.pinned)?);
        Ok(())
    }

    fn placement_for(&self, cost: &CostModel, _n_tasks: u32) -> Placement {
        self.home
            .unwrap_or_else(|| arch_fixed_home(cost.arch().arch, cost))
    }

    fn is_adaptive(&self) -> bool {
        false
    }

    fn clone_box(&self) -> Box<dyn PlacementPolicy> {
        Box::new(self.clone())
    }
}

/// A DP-free adaptive baseline: fill the lowest-dynamic-energy spaces
/// first, then repair the deadline group-by-group toward faster
/// spaces. Decides in `O(K)` per query where the LUT pays a DP solve
/// per task count at build time — the natural "is the DP worth it?"
/// ablation the session API makes selectable.
#[derive(Debug, Clone, Default)]
pub struct GreedyBaseline {
    usable_slice: SimDuration,
}

impl GreedyBaseline {
    /// An unprepared greedy policy.
    pub fn new() -> Self {
        Self::default()
    }
}

impl PlacementPolicy for GreedyBaseline {
    fn name(&self) -> &'static str {
        "greedy"
    }

    fn prepare(
        &mut self,
        _cost: &CostModel,
        runtime: &RuntimeConfig,
        _opt: &OptimizerConfig,
        _store: &PlacementStore,
    ) -> Result<(), CostModelError> {
        // The same movement-margin headroom the LUT sizes against;
        // nothing here is worth memoizing.
        self.usable_slice = runtime.usable_slice();
        Ok(())
    }

    fn placement_for(&self, cost: &CostModel, n_tasks: u32) -> Placement {
        let t_constraint = self.usable_slice / u64::from(n_tasks.max(1));

        // Energy-greedy fill: cheapest dynamic energy first.
        let mut order: Vec<StorageSpace> = StorageSpace::ALL
            .into_iter()
            .filter(|&s| cost.capacity_groups(s) > 0)
            .collect();
        order.sort_by(|&a, &b| {
            cost.energy_per_group(a)
                .partial_cmp(&cost.energy_per_group(b))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(cost.time_per_group(a).cmp(&cost.time_per_group(b)))
        });
        let mut placement = Placement::empty();
        let mut remaining = cost.k_groups();
        for &space in &order {
            let take = remaining.min(cost.capacity_groups(space));
            placement.set(space, take);
            remaining -= take;
            if remaining == 0 {
                break;
            }
        }

        // Repair: while the slice misses its deadline, move one group
        // from the bottleneck cluster's slowest occupied space into the
        // fastest space with free capacity.
        for _ in 0..cost.k_groups() {
            if cost.task_time(&placement) <= t_constraint {
                return placement;
            }
            let bottleneck = hhpim_mem::ClusterClass::ALL
                .into_iter()
                .max_by_key(|&c| cost.cluster_time(&placement, c))
                .expect("two clusters");
            let Some(donor) = StorageSpace::of_cluster(bottleneck)
                .into_iter()
                .filter(|&s| placement.get(s) > 0)
                .max_by_key(|&s| cost.time_per_group(s))
            else {
                break;
            };
            let Some(dest) = StorageSpace::ALL
                .into_iter()
                .filter(|&s| s != donor && placement.get(s) < cost.capacity_groups(s))
                .min_by_key(|&s| cost.time_per_group(s))
            else {
                break;
            };
            if cost.time_per_group(dest) >= cost.time_per_group(donor) {
                break; // no faster harbor exists; repairing would regress
            }
            placement.set(donor, placement.get(donor) - 1);
            placement.set(dest, placement.get(dest) + 1);
        }
        if cost.task_time(&placement) <= t_constraint {
            placement
        } else {
            // Best effort under an unmeetable deadline, like the LUT's
            // fastest-placement fallback.
            cost.fastest_placement()
        }
    }

    fn boot_placement(&self, cost: &CostModel) -> Placement {
        cost.fastest_placement()
    }

    fn clone_box(&self) -> Box<dyn PlacementPolicy> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{CostParams, WorkloadProfile};
    use hhpim_nn::TinyMlModel;

    fn prepared(
        arch: Architecture,
        mut policy: Box<dyn PlacementPolicy>,
    ) -> (CostModel, Box<dyn PlacementPolicy>) {
        let cost = CostModel::new(
            arch.spec(),
            WorkloadProfile::from_spec(&TinyMlModel::MobileNetV2.spec()),
            CostParams::default(),
        )
        .unwrap();
        let runtime = RuntimeConfig::reference(TinyMlModel::MobileNetV2, *cost.params()).unwrap();
        policy
            .prepare(
                &cost,
                &runtime,
                &OptimizerConfig::default(),
                &PlacementStore::new(),
            )
            .unwrap();
        (cost, policy)
    }

    #[test]
    fn lut_adaptive_matches_direct_lut_lookup() {
        let (cost, policy) = prepared(Architecture::HhPim, Box::new(LutAdaptive::new()));
        let low = policy.placement_for(&cost, 1);
        let high = policy.placement_for(&cost, 10);
        assert_ne!(low, high, "adaptive policy must react to load");
        assert!(cost.is_valid(&low) && cost.is_valid(&high));
        assert_eq!(policy.boot_placement(&cost), cost.fastest_placement());
    }

    #[test]
    fn fixed_home_never_moves_and_validates_pins() {
        let (cost, policy) = prepared(Architecture::Hybrid, Box::new(FixedHome::arch_default()));
        let p1 = policy.placement_for(&cost, 1);
        assert_eq!(p1, policy.placement_for(&cost, 10));
        assert_eq!(p1, Placement::all_in(StorageSpace::HpMram, cost.k_groups()));
        assert!(!policy.is_adaptive());

        // An over-capacity pin is rejected at prepare time.
        let bogus = Placement::all_in(StorageSpace::LpMram, cost.k_groups() * 10);
        let cost2 = CostModel::new(
            Architecture::HhPim.spec(),
            WorkloadProfile::from_spec(&TinyMlModel::MobileNetV2.spec()),
            CostParams::default(),
        )
        .unwrap();
        let runtime = RuntimeConfig::reference(TinyMlModel::MobileNetV2, CostParams::default());
        let err = FixedHome::pinned(bogus)
            .prepare(
                &cost2,
                &runtime.unwrap(),
                &OptimizerConfig::default(),
                &PlacementStore::new(),
            )
            .unwrap_err();
        assert!(matches!(err, CostModelError::InvalidPlacement { .. }));
    }

    #[test]
    fn greedy_is_valid_schedulable_and_load_sensitive() {
        let (cost, policy) = prepared(Architecture::HhPim, Box::new(GreedyBaseline::new()));
        let runtime = RuntimeConfig::reference(TinyMlModel::MobileNetV2, *cost.params()).unwrap();
        let usable = runtime.usable_slice();
        for n in 1..=10u32 {
            let p = policy.placement_for(&cost, n);
            assert!(cost.is_valid(&p), "n={n}: {p}");
            assert!(
                cost.task_time(&p) <= usable / u64::from(n),
                "n={n}: greedy placement misses its own deadline"
            );
        }
        let low = policy.placement_for(&cost, 1);
        let high = policy.placement_for(&cost, 10);
        assert_ne!(low, high, "greedy must adapt to load");
        // At idle the greedy fill stays in the cheap low-power spaces.
        assert!(
            low.get(StorageSpace::LpMram) + low.get(StorageSpace::LpSram) > 0,
            "idle greedy placement should use the LP cluster: {low}"
        );
    }

    #[test]
    fn greedy_energy_stays_near_the_dp_lut() {
        let (cost, lut) = prepared(Architecture::HhPim, Box::new(LutAdaptive::new()));
        let (_, greedy) = prepared(Architecture::HhPim, Box::new(GreedyBaseline::new()));
        for n in 1..=10u32 {
            let e_lut = cost.dynamic_energy_per_task(&lut.placement_for(&cost, n));
            let e_greedy = cost.dynamic_energy_per_task(&greedy.placement_for(&cost, n));
            // The DP optimizes a leakage-aware objective, so compare on
            // a coarse bound: greedy may not be dramatically cheaper on
            // the dynamic term than the optimum's neighborhood.
            assert!(
                e_greedy.as_pj() <= e_lut.as_pj() * 1.5 + 1.0,
                "n={n}: greedy {e_greedy} vs lut {e_lut}"
            );
        }
    }

    #[test]
    fn boxed_policies_delegate_transparently() {
        let boxed: Box<dyn PlacementPolicy> = Box::new(LutAdaptive::new());
        let (cost, direct) = prepared(Architecture::HhPim, Box::new(LutAdaptive::new()));
        let (_, via_box) = prepared(Architecture::HhPim, Box::new(boxed));
        assert_eq!(via_box.name(), "lut-adaptive");
        assert!(via_box.is_adaptive());
        for n in 1..=10u32 {
            assert_eq!(
                via_box.placement_for(&cost, n),
                direct.placement_for(&cost, n)
            );
        }
        assert_eq!(via_box.boot_placement(&cost), direct.boot_placement(&cost));
        assert_eq!(via_box.clone_box().name(), "lut-adaptive");
    }

    #[test]
    fn default_policy_follows_the_table_i_mode() {
        assert_eq!(default_policy(Architecture::HhPim).name(), "lut-adaptive");
        for arch in [
            Architecture::Baseline,
            Architecture::Heterogeneous,
            Architecture::Hybrid,
        ] {
            assert_eq!(default_policy(arch).name(), "fixed-home");
        }
    }
}
